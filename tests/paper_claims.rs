//! Smoke-scale checks of the paper's headline claims, through the facade
//! crate — the "does the repo actually reproduce the paper?" test.

use revmon::core::Priority;
use revmon_bench::{run_cell, run_cell_avg, BenchParams, Scale};

/// A mid-scale grid (half the default in every dimension) so the claims
/// check quickly even in debug builds; ratios match `Scale::default_scale`.
fn mid_scale() -> Scale {
    Scale {
        low_iters: 2_500,
        high_iters_small: 500,
        high_iters_large: 2_500,
        sections: 10,
        repetitions: 3,
        quantum: 30_000,
    }
}

fn params(modified: bool, scale: &Scale, high: usize, low: usize) -> BenchParams {
    BenchParams {
        high_threads: high,
        low_threads: low,
        high_iters: scale.high_iters_small,
        low_iters: scale.low_iters,
        sections: scale.sections,
        write_pct: 40,
        modified,
        seed: 0xFEED,
        quantum: scale.quantum,
    }
}

/// Abstract: "throughput of high-priority threads using our scheme can be
/// improved by 30% to 100% when compared with a classical scheduler".
#[test]
fn high_priority_threads_gain_under_revocation() {
    let scale = mid_scale();
    let (m, _, _) = run_cell_avg(&params(true, &scale, 2, 8), 3);
    let (u, _, _) = run_cell_avg(&params(false, &scale, 2, 8), 3);
    let gain = u.high_elapsed as f64 / m.high_elapsed as f64;
    assert!(gain > 1.15, "expected a clear high-priority win for 2+8, got {gain:.2}x");
}

/// §4.2: "the overall elapsed time for the modified VM must always be
/// longer than for the unmodified VM".
#[test]
fn overall_time_pays_for_the_mechanism() {
    let scale = mid_scale();
    let (m, _, _) = run_cell_avg(&params(true, &scale, 2, 8), 3);
    let (u, _, _) = run_cell_avg(&params(false, &scale, 2, 8), 3);
    assert!(m.overall_elapsed > u.overall_elapsed);
}

/// §4.2: "as the ratio of high-priority threads to low-priority threads
/// increases, the benefit of our strategy diminishes".
#[test]
fn benefit_diminishes_with_more_high_priority_threads() {
    let scale = mid_scale();
    let gain = |high, low| {
        let (m, _, _) = run_cell_avg(&params(true, &scale, high, low), 3);
        let (u, _, _) = run_cell_avg(&params(false, &scale, high, low), 3);
        u.high_elapsed as f64 / m.high_elapsed as f64
    };
    let g28 = gain(2, 8);
    let g82 = gain(8, 2);
    assert!(g28 > g82, "2+8 gain ({g28:.2}x) must exceed 8+2 gain ({g82:.2}x)");
    assert!(g82 < 1.1, "8+2 should show little-to-negative benefit, got {g82:.2}x");
}

/// Footnote 7: high-priority threads log their updates too (fairness),
/// but are never rolled back in a two-level priority workload.
#[test]
fn high_priority_threads_log_but_never_roll_back() {
    let scale = Scale::smoke();
    let c = run_cell(&BenchParams { write_pct: 60, ..params(true, &scale, 2, 4) });
    assert!(c.metrics.log_entries > 0, "all threads log");
    // rollbacks happened (low threads)…
    assert!(c.metrics.rollbacks <= c.metrics.revocations_requested);
}

/// The facade exposes the priority vocabulary used throughout.
#[test]
fn priority_constants_match_java() {
    assert_eq!(Priority::MIN.level(), 1);
    assert_eq!(Priority::NORM.level(), 5);
    assert_eq!(Priority::MAX.level(), 10);
    assert!(Priority::HIGH > Priority::LOW);
}
