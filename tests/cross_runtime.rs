//! Cross-crate integration: the same conceptual workload must behave
//! identically on the VM substrate and the real-thread library, through
//! the facade crate's re-exports.

use revmon::core::Priority;
use revmon::locks::{RevocableMonitor, TCell};
use revmon::vm::builder::{MethodBuilder, ProgramBuilder};
use revmon::vm::value::Value;
use revmon::vm::{Vm, VmConfig};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 4;
const SECTIONS: i64 = 10;
const INCREMENTS: i64 = 200;

/// The counter workload on the VM.
fn vm_counter() -> (i64, u64) {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 1);
    // locals: 0 lock, 1 s, 2 i
    let mut b = MethodBuilder::new(1, 3);
    b.const_i(0);
    b.store(1);
    let outer = b.here();
    b.load(1);
    b.const_i(SECTIONS);
    let done = b.new_label();
    b.if_ge(done);
    b.sync_on_local(0, |b| {
        b.const_i(0);
        b.store(2);
        let top = b.here();
        b.load(2);
        b.const_i(INCREMENTS);
        let sdone = b.new_label();
        b.if_ge(sdone);
        b.get_static(0);
        b.const_i(1);
        b.add();
        b.put_static(0);
        b.load(2);
        b.const_i(1);
        b.add();
        b.store(2);
        b.goto(top);
        b.place(sdone);
    });
    b.load(1);
    b.const_i(1);
    b.add();
    b.store(1);
    b.goto(outer);
    b.place(done);
    b.ret_void();
    pb.implement(run, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let lock = vm.heap_mut().alloc(0, 0);
    for i in 0..THREADS {
        let p = if i == 0 { Priority::HIGH } else { Priority::LOW };
        vm.spawn(&format!("t{i}"), run, vec![Value::Ref(lock)], p);
    }
    let report = vm.run().expect("vm run");
    let v = match vm.read_static(0).unwrap() {
        Value::Int(i) => i,
        other => panic!("unexpected {other:?}"),
    };
    (v, report.global.rollbacks)
}

/// The counter workload on real threads.
fn locks_counter() -> (i64, u64) {
    let m = Arc::new(RevocableMonitor::new());
    let cell = TCell::new(0i64);
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let m = Arc::clone(&m);
            let cell = cell.clone();
            let p = if i == 0 { Priority::HIGH } else { Priority::LOW };
            thread::spawn(move || {
                for _ in 0..SECTIONS {
                    m.enter(p, |tx| {
                        for _ in 0..INCREMENTS {
                            tx.update(&cell, |v| v + 1);
                        }
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (cell.read_unsynchronized(), m.stats().rollbacks)
}

#[test]
fn both_runtimes_agree_on_the_final_state() {
    let (vm_total, _) = vm_counter();
    let (locks_total, _) = locks_counter();
    let expected = THREADS as i64 * SECTIONS * INCREMENTS;
    assert_eq!(vm_total, expected);
    assert_eq!(locks_total, expected);
}

#[test]
fn facade_reexports_are_usable() {
    // Types from all three crates are reachable through `revmon::…`.
    let _p: revmon::core::Priority = revmon::core::Priority::HIGH;
    let _m = revmon::locks::RevocableMonitor::new();
    let _c = revmon::vm::VmConfig::modified();
    let _u = revmon::vm::VmConfig::unmodified();
}

#[test]
fn vm_rollback_counters_and_locks_counters_have_same_meaning() {
    // Both runtimes under contention: rollbacks happen (or not) but never
    // affect the final state; the counters are reported the same way.
    let (vm_total, _vm_rb) = vm_counter();
    let (locks_total, _locks_rb) = locks_counter();
    assert_eq!(vm_total, locks_total);
}
