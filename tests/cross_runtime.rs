//! Cross-crate integration: the same conceptual workload must behave
//! identically on the VM substrate and the real-thread library, through
//! the facade crate's re-exports.

use revmon::core::Priority;
use revmon::locks::{RevocableMonitor, TCell, VolatileCell};
use revmon::vm::builder::{MethodBuilder, ProgramBuilder};
use revmon::vm::value::Value;
use revmon::vm::{Vm, VmConfig};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Assemble a corpus `.rvm` program and run it to its emitted output on
/// the modified VM.
fn run_corpus_vm(name: &str) -> Vec<Value> {
    let path = format!("{}/programs/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let program = revmon::vm::assemble(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let entry = program.method_by_name("main").expect("main exists");
    let mut vm = Vm::new(program, VmConfig::modified());
    vm.spawn("main", entry, vec![], Priority::NORM);
    vm.run().unwrap_or_else(|e| panic!("{name}: VM fault: {e}")).output
}

const THREADS: usize = 4;
const SECTIONS: i64 = 10;
const INCREMENTS: i64 = 200;

/// The counter workload on the VM.
fn vm_counter() -> (i64, u64) {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 1);
    // locals: 0 lock, 1 s, 2 i
    let mut b = MethodBuilder::new(1, 3);
    b.const_i(0);
    b.store(1);
    let outer = b.here();
    b.load(1);
    b.const_i(SECTIONS);
    let done = b.new_label();
    b.if_ge(done);
    b.sync_on_local(0, |b| {
        b.const_i(0);
        b.store(2);
        let top = b.here();
        b.load(2);
        b.const_i(INCREMENTS);
        let sdone = b.new_label();
        b.if_ge(sdone);
        b.get_static(0);
        b.const_i(1);
        b.add();
        b.put_static(0);
        b.load(2);
        b.const_i(1);
        b.add();
        b.store(2);
        b.goto(top);
        b.place(sdone);
    });
    b.load(1);
    b.const_i(1);
    b.add();
    b.store(1);
    b.goto(outer);
    b.place(done);
    b.ret_void();
    pb.implement(run, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let lock = vm.heap_mut().alloc(0, 0);
    for i in 0..THREADS {
        let p = if i == 0 { Priority::HIGH } else { Priority::LOW };
        vm.spawn(&format!("t{i}"), run, vec![Value::Ref(lock)], p);
    }
    let report = vm.run().expect("vm run");
    let v = match vm.read_static(0).unwrap() {
        Value::Int(i) => i,
        other => panic!("unexpected {other:?}"),
    };
    (v, report.global.rollbacks)
}

/// The counter workload on real threads.
fn locks_counter() -> (i64, u64) {
    let m = Arc::new(RevocableMonitor::new());
    let cell = TCell::new(0i64);
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let m = Arc::clone(&m);
            let cell = cell.clone();
            let p = if i == 0 { Priority::HIGH } else { Priority::LOW };
            thread::spawn(move || {
                for _ in 0..SECTIONS {
                    m.enter(p, |tx| {
                        for _ in 0..INCREMENTS {
                            tx.update(&cell, |v| v + 1);
                        }
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (cell.read_unsynchronized(), m.stats().rollbacks)
}

#[test]
fn both_runtimes_agree_on_the_final_state() {
    let (vm_total, _) = vm_counter();
    let (locks_total, _) = locks_counter();
    let expected = THREADS as i64 * SECTIONS * INCREMENTS;
    assert_eq!(vm_total, expected);
    assert_eq!(locks_total, expected);
}

#[test]
fn facade_reexports_are_usable() {
    // Types from all three crates are reachable through `revmon::…`.
    let _p: revmon::core::Priority = revmon::core::Priority::HIGH;
    let _m = revmon::locks::RevocableMonitor::new();
    let _c = revmon::vm::VmConfig::modified();
    let _u = revmon::vm::VmConfig::unmodified();
}

/// The nested-wait adversary (`programs/nested_wait_revoke.rvm`) on real
/// threads: a sleeper holds an outer monitor across a `wait` on a nested
/// inner monitor while a high-priority thread contends for the outer
/// lock. Both runtimes must refuse to revoke across the wait (the inner
/// release would otherwise be un-undoable) and still commit each counter
/// exactly once.
#[test]
fn nested_wait_workload_agrees_across_runtimes() {
    assert_eq!(
        run_corpus_vm("nested_wait_revoke.rvm"),
        vec![Value::Int(1), Value::Int(1)],
        "VM: each counter commits exactly once"
    );

    let outer = Arc::new(RevocableMonitor::new());
    let inner = Arc::new(RevocableMonitor::new());
    let s0 = TCell::new(0i64);
    let s1 = TCell::new(0i64);
    let flag = TCell::new(false);

    let sleeper = {
        let (outer, inner) = (Arc::clone(&outer), Arc::clone(&inner));
        let (s0, s1, flag) = (s0.clone(), s1.clone(), flag.clone());
        thread::spawn(move || {
            outer.enter(Priority::LOW, |txo| {
                txo.update(&s0, |v| v + 1);
                inner.enter(Priority::LOW, |txi| {
                    while !txi.read(&flag) {
                        txi.wait();
                    }
                });
                txo.update(&s1, |v| v + 1);
            });
        })
    };
    let high = {
        let (outer, s0) = (Arc::clone(&outer), s0.clone());
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            outer.enter(Priority::HIGH, |tx| {
                let _ = tx.read(&s0);
            });
        })
    };
    let waker = {
        let (inner, flag) = (Arc::clone(&inner), flag.clone());
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            inner.enter(Priority::NORM, |tx| {
                tx.write(&flag, true);
                tx.notify_all();
            });
        })
    };
    for h in [sleeper, high, waker] {
        h.join().unwrap();
    }
    assert_eq!(s0.read_unsynchronized(), 1, "locks: outer counter commits once");
    assert_eq!(s1.read_unsynchronized(), 1, "locks: post-wait counter commits once");
}

/// The volatile-publish adversary (`programs/volatile_revoke.rvm`) on
/// real threads: a low-priority holder publishes through a volatile
/// mid-section, pinning the section non-revocable, while a lock-free spy
/// reads the plain cell the moment the publish lands. In both runtimes
/// the spy can never observe a value that is later rolled back.
#[test]
fn volatile_publish_workload_agrees_across_runtimes() {
    assert_eq!(
        run_corpus_vm("volatile_revoke.rvm"),
        vec![Value::Int(42), Value::Int(42)],
        "VM: the published value commits and the spy agrees"
    );

    let m = Arc::new(RevocableMonitor::new());
    let s0 = TCell::new(0i64);
    let published = Arc::new(VolatileCell::new(0));

    let low = {
        let (m, s0, published) = (Arc::clone(&m), s0.clone(), Arc::clone(&published));
        thread::spawn(move || {
            m.enter(Priority::LOW, |tx| {
                tx.write(&s0, 41);
                tx.write_volatile(&published, 1);
                tx.write(&s0, 42);
                for _ in 0..100 {
                    tx.checkpoint();
                }
            });
        })
    };
    let spy = {
        let (s0, published) = (s0.clone(), Arc::clone(&published));
        thread::spawn(move || {
            while published.load() == 0 {
                std::hint::spin_loop();
            }
            s0.read_unsynchronized()
        })
    };
    let high = {
        let (m, s0) = (Arc::clone(&m), s0.clone());
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(2));
            m.enter(Priority::HIGH, |tx| {
                let _ = tx.read(&s0);
            });
        })
    };

    low.join().unwrap();
    high.join().unwrap();
    let snapshot = spy.join().unwrap();
    // Once the volatile publish lands the section cannot roll back, so
    // the spy sees a value from the publishing execution — never the
    // pre-section value resurrected by an illegal rollback.
    assert!(
        snapshot == 41 || snapshot == 42,
        "spy must never observe a rolled-back value (saw {snapshot})"
    );
    assert_eq!(s0.read_unsynchronized(), 42, "locks: the final write commits");
    assert!(m.stats().nonrevocable_marks >= 1, "the publish must pin the section");
}

#[test]
fn vm_rollback_counters_and_locks_counters_have_same_meaning() {
    // Both runtimes under contention: rollbacks happen (or not) but never
    // affect the final state; the counters are reported the same way.
    let (vm_total, _vm_rb) = vm_counter();
    let (locks_total, _locks_rb) = locks_counter();
    assert_eq!(vm_total, locks_total);
}
