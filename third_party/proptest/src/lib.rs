//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace patches
//! `proptest` to this vendored micro-implementation (see
//! `[patch.crates-io]` in the workspace `Cargo.toml`). It covers the
//! surface revmon's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//! * range strategies over integers and floats, tuples, [`Just`],
//!   [`prelude::any`], `collection::vec`,
//! * combinators `prop_map`, `prop_flat_map`, `boxed`, and the
//!   [`prop_oneof!`] macro (weighted and unweighted),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name), and failing cases are
//! **not shrunk** — the panic reports the raw failing input via the
//! ordinary assertion message.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing a `Vec` whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(&config, stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), runner.rng());
                    )+
                    $body
                }
            }
        )*
    };
}

/// Pick one of several strategies, optionally weighted
/// (`prop_oneof![2 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a property body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
