//! Value-generation strategies: ranges, tuples, collections, and the
//! `prop_map` / `prop_flat_map` / `boxed` combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Something that can generate values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategy: `self` generates leaves, `f` lifts a strategy
    /// for subtrees into one for branches. Recursion depth is bounded by
    /// `depth`; the upstream size-steering knobs are accepted but unused.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = Union::new(vec![(1, strat.clone()), (2, f(strat).boxed())]).boxed();
        }
        strat
    }

    /// Type-erase the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// Strategy yielding a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice between type-erased strategies (`prop_oneof!`).
#[derive(Clone)]
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms. Weights must not all be 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(arms.iter().any(|(w, _)| *w > 0), "prop_oneof! needs a positive weight");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut r = rng.below(total);
        for (w, s) in &self.arms {
            if r < *w as u64 {
                return s.generate(rng);
            }
            r -= *w as u64;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy `any` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind [`any`] for primitive types.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

macro_rules! any_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy { AnyStrategy(PhantomData) }
        }
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy(PhantomData)
    }
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Length bound for `collection::vec`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

/// Strategy behind `collection::vec`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{ProptestConfig, TestRunner};

    fn rng() -> TestRng {
        let mut r = TestRunner::new(&ProptestConfig::default(), "strategy-tests");
        r.rng().clone()
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            let v = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&v));
            let u = (1u8..=10).generate(&mut rng);
            assert!((1..=10).contains(&u));
        }
    }

    #[test]
    fn map_flat_map_and_union_compose() {
        let mut rng = rng();
        let s = crate::prop_oneof![
            2 => (0i64..10).prop_map(|v| v * 2),
            1 => Just(99i64),
        ];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 99 || (v % 2 == 0 && (0..20).contains(&v)));
        }
        let dependent = (1usize..4).prop_flat_map(|n| crate::collection::vec(0i64..10, n..n + 1));
        for _ in 0..100 {
            let v = dependent.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = rng();
        let s = crate::collection::vec(any::<u32>(), 0..5);
        for _ in 0..200 {
            assert!(s.generate(&mut rng).len() < 5);
        }
    }
}
