//! Deterministic test driver: configuration and the per-test RNG.

/// Subset of upstream `ProptestConfig` that the workspace uses.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator used to produce case inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Drives one property: holds the RNG seeded from the test's name so
/// every run generates the same case sequence.
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    /// Build a runner for the test named `name`.
    pub fn new(_config: &ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name: stable, collision-tolerant seeding.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { rng: TestRng { state: h } }
    }

    /// The case-generation RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}
