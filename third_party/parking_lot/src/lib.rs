//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access, so the workspace patches
//! `parking_lot` to this vendored shim (see `[patch.crates-io]` in the
//! workspace `Cargo.toml`). Only the surface revmon uses is provided:
//! [`Mutex`] with infallible, poison-free [`Mutex::lock`] semantics —
//! poison from a panicked holder is swallowed, exactly the observable
//! behaviour revmon relies on (the revocation machinery unwinds through
//! locked sections by design).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with `parking_lot`-style infallible
/// locking (no poison errors).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available. Never errors: poison
    /// left by a panicked holder is cleared and the data returned as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Acquire the mutex only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn poison_is_swallowed() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let _g = m2.lock();
            panic!("poison it");
        }));
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_contended_is_none() {
        let m = Mutex::new(0);
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }
}
