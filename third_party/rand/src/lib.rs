//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io cache,
//! so the workspace patches `rand` to this vendored micro-implementation
//! (see `[patch.crates-io]` in the workspace `Cargo.toml`). It covers
//! exactly the API surface revmon uses — `SmallRng`, `SeedableRng`,
//! `Rng::gen_range` over integer/float ranges — with the same
//! determinism guarantees (a fixed seed yields a fixed stream). The
//! streams differ from upstream `rand`, which is fine: every consumer in
//! the workspace treats the stream as an arbitrary deterministic source.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every core RNG.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one sample from the range using `rng`.
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )+};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64 stream).
    ///
    /// Not the upstream `SmallRng` algorithm, but offers the same
    /// contract revmon relies on: cheap, seedable, fixed stream per seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = r.gen_range(1u8..=10);
            assert!((1..=10).contains(&u));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<i64> = (0..16).map(|_| a.gen_range(0i64..1 << 40)).collect();
        let vb: Vec<i64> = (0..16).map(|_| b.gen_range(0i64..1 << 40)).collect();
        assert_ne!(va, vb);
    }
}
