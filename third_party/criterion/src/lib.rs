//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so the workspace patches
//! `criterion` to this vendored micro-harness (see `[patch.crates-io]`
//! in the workspace `Cargo.toml`). It keeps the API shape the benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! `bench_function` / `bench_with_input`, [`Bencher::iter`],
//! [`BenchmarkId`], [`criterion_group!`] and [`criterion_main!`] — and
//! reports mean wall-clock time per iteration on stdout. No statistical
//! analysis, warm-up calibration, or HTML reports.

use std::fmt;
use std::time::Instant;

/// Opaque hint preventing the optimiser from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 10, _c: self }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark; `f` drives a [`Bencher`].
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.samples, total_ns: 0, iters: 0 };
        f(&mut b);
        b.report(&self.name, &id.0);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.samples, total_ns: 0, iters: 0 };
        f(&mut b, input);
        b.report(&self.name, &id.0);
        self
    }

    /// Finish the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Id that is just the display form of a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, running it `sample_size` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.total_ns += t0.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("{group}/{id}: no samples");
            return;
        }
        let mean = self.total_ns / self.iters as u128;
        println!("{group}/{id}: mean {mean} ns/iter ({} samples)", self.iters);
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Produce `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("f", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
        g.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
