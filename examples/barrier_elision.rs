//! The §1.1 compiler optimization in action: write-barrier elision.
//!
//! A workload mixing unmonitored thread-private work with monitored
//! shared sections runs on the modified VM twice — with and without the
//! static elision analysis — and prints the barrier counts, the virtual
//! time saved, and the disassembly evidence.
//!
//! Run with `cargo run --release --example barrier_elision`.

use revmon::core::Priority;
use revmon::vm::builder::{MethodBuilder, ProgramBuilder};
use revmon::vm::bytecode::{MethodId, Program};
use revmon::vm::value::Value;
use revmon::vm::{Vm, VmConfig};

/// `run(lock, iters)`: a private accumulation loop (static 1+tid), then a
/// monitored shared section (static 0).
fn program() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.statics(8);
    let run = pb.declare_method("run", 3); // lock, iters, tid
    let mut b = MethodBuilder::new(3, 4);
    // unmonitored private loop: statics[1 + tid] += 1, iters times
    b.const_i(0);
    b.store(3);
    let top = b.here();
    b.load(3);
    b.load(1);
    let done = b.new_label();
    b.if_ge(done);
    // private slot = 1 + tid — emit a small dispatch (slots are static)
    for t in 0..4u16 {
        b.load(2);
        b.const_i(t as i64);
        let next = b.new_label();
        b.if_ne(next);
        b.get_static(1 + t);
        b.const_i(1);
        b.add();
        b.put_static(1 + t);
        b.place(next);
    }
    b.load(3);
    b.const_i(1);
    b.add();
    b.store(3);
    b.goto(top);
    b.place(done);
    // monitored shared section
    b.sync_on_local(0, |b| {
        b.const_i(0);
        b.store(3);
        let t2 = b.here();
        b.load(3);
        b.load(1);
        let d2 = b.new_label();
        b.if_ge(d2);
        b.get_static(0);
        b.const_i(1);
        b.add();
        b.put_static(0);
        b.load(3);
        b.const_i(1);
        b.add();
        b.store(3);
        b.goto(t2);
        b.place(d2);
    });
    b.ret_void();
    pb.implement(run, b);
    (pb.finish(), run)
}

fn run(elide: bool) -> (u64, u64, u64, u64) {
    let (p, m) = program();
    let cfg = if elide { VmConfig::modified().with_elision() } else { VmConfig::modified() };
    let mut vm = Vm::new(p, cfg);
    let lock = vm.heap_mut().alloc(0, 0);
    for tid in 0..4 {
        let prio = if tid == 0 { Priority::HIGH } else { Priority::LOW };
        // the high-priority thread arrives at the lock later (longer
        // private phase), so it finds a low-priority holder mid-section
        let iters = if tid == 0 { 8_000 } else { 5_000 };
        vm.spawn(
            &format!("t{tid}"),
            m,
            vec![Value::Ref(lock), Value::Int(iters), Value::Int(tid)],
            prio,
        );
    }
    let r = vm.run().expect("run");
    (r.clock, r.global.barrier_fast_paths, r.global.barriers_elided, r.global.rollbacks)
}

fn main() {
    let (p, m) = program();
    let analyzed = revmon::vm::analyze(&revmon::vm::rewrite_program(&p));
    println!(
        "static analysis: {} of {} store sites proven never-in-monitor\n",
        analyzed.elided_sites, analyzed.store_sites
    );
    let _ = m;

    println!(
        "{:<22} {:>14} {:>14} {:>12} {:>10}",
        "configuration", "virtual time", "barriers run", "elided", "rollbacks"
    );
    let (t_full, b_full, e_full, r_full) = run(false);
    println!("{:<22} {:>14} {:>14} {:>12} {:>10}", "all barriers", t_full, b_full, e_full, r_full);
    let (t_el, b_el, e_el, r_el) = run(true);
    println!("{:<22} {:>14} {:>14} {:>12} {:>10}", "with elision", t_el, b_el, e_el, r_el);
    let saved = 100.0 * (t_full as f64 - t_el as f64) / t_full as f64;
    println!("\nvirtual time saved by elision: {saved:.1}%");
    println!("(revocation still works: both runs roll back low-priority sections)");
    assert!(b_el < b_full);
}
