//! Embedding the VM: load assembly text at runtime, sweep configurations,
//! and inspect the run report programmatically — the library-level
//! counterpart of the `revmon` CLI.
//!
//! Run with `cargo run --release --example rvm_embedding`.

use revmon::core::Priority;
use revmon::vm::{assemble, SchedulerKind, Vm, VmConfig};

const PROGRAM: &str = r#"
; two low-priority writers vs one high-priority reader on a shared table
.statics 1

.method writer params=2 locals=3
    sync l0 {
        const 0
        store l2
    loop:
        load l2
        load l1
        if_ge done
        getstatic s0
        const 1
        add
        putstatic s0
        load l2
        const 1
        add
        store l2
        goto loop
    done:
    }
    retvoid
.end

.method reader params=1 locals=1
    const 40000
    sleep
    sync l0 {
        getstatic s0
        pop
    }
    retvoid
.end

.method main params=0 locals=1
    new class=0 fields=0
    store l0
    load l0
    const 30000
    const 2
    spawn writer
    pop
    load l0
    const 30000
    const 2
    spawn writer
    pop
    load l0
    const 8
    spawn reader
    pop
    retvoid
.end
"#;

fn main() {
    let program = assemble(PROGRAM).expect("assembly parses");
    println!("loaded {} methods, {} statics\n", program.methods.len(), program.n_statics);

    println!(
        "{:<34} {:>12} {:>12} {:>10} {:>12}",
        "configuration", "clock", "reader-span", "rollbacks", "contended"
    );
    let configs: Vec<(&str, VmConfig)> = vec![
        ("unmodified (blocking)", VmConfig::unmodified()),
        ("modified (revocation)", VmConfig::modified()),
        ("modified + elision", VmConfig::modified().with_elision()),
        ("modified, preemptive scheduler", {
            let mut c = VmConfig::modified();
            c.scheduler = SchedulerKind::PriorityPreemptive;
            c
        }),
    ];
    for (name, cfg) in configs {
        let mut vm = Vm::new(program.clone(), cfg);
        let main = program.method_by_name("main").unwrap();
        vm.spawn("main", main, vec![], Priority::NORM);
        let report = vm.run().expect("run");
        let reader = report
            .threads
            .iter()
            .find(|t| t.name.starts_with("spawn") && t.metrics.rollbacks == 0 && t.elapsed() > 0)
            .map(|t| t.elapsed());
        // the reader is the last spawned thread
        let reader_span = report.threads.last().map(|t| t.elapsed()).unwrap_or(0);
        let _ = reader;
        println!(
            "{:<34} {:>12} {:>12} {:>10} {:>12}",
            name,
            report.clock,
            reader_span,
            report.global.rollbacks,
            report.global.contended_acquires
        );
        if name == "modified (revocation)" {
            // per-monitor contention profile, programmatically
            for m in &report.monitors {
                println!(
                    "    monitor {}: {} acquires, {} contended, peak queue {}",
                    m.object, m.acquires, m.contended, m.peak_queue
                );
            }
        }
    }
    println!("\n(the same program file runs under every configuration — the");
    println!(" mechanism is a property of the VM, not of the program)");
}
