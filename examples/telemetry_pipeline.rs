//! A realistic workload: a soft-real-time telemetry pipeline.
//!
//! Low-priority *aggregator* threads take a shared statistics table's
//! monitor for long batch updates; a high-priority *alarm* thread must
//! read a consistent snapshot with low latency whenever a sensor trips.
//! This is the motivating scenario of the paper's introduction: with
//! plain blocking the alarm waits out whole batch sections (priority
//! inversion); with revocable monitors the batch is preempted and rolled
//! back, and the alarm's latency collapses.
//!
//! Run with `cargo run --release --example telemetry_pipeline`.

use revmon::core::{InversionPolicy, Priority};
use revmon::locks::{RevocableMonitor, TCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const SENSORS: usize = 32;
const BATCHES: usize = 12;
const BATCH_SIZE: usize = 40_000;
const ALARMS: usize = 25;

struct Stats {
    worst: Duration,
    total: Duration,
    alarms: u32,
}

fn run_pipeline(policy: InversionPolicy) -> (Stats, revmon::locks::StatsSnapshot) {
    let table = Arc::new(RevocableMonitor::with_policy(policy));
    let sums: Vec<TCell<i64>> = (0..SENSORS).map(|_| TCell::new(0)).collect();
    let counts: Vec<TCell<i64>> = (0..SENSORS).map(|_| TCell::new(0)).collect();
    let stop = Arc::new(AtomicBool::new(false));

    // Two low-priority aggregators ingesting batches.
    let aggs: Vec<_> = (0..2)
        .map(|a| {
            let m = Arc::clone(&table);
            let sums = sums.clone();
            let counts = counts.clone();
            thread::spawn(move || {
                for batch in 0..BATCHES {
                    m.enter(Priority::LOW, |tx| {
                        for i in 0..BATCH_SIZE {
                            let s = (a * 7 + batch * 13 + i) % SENSORS;
                            let v = (i % 100) as i64;
                            tx.update(&sums[s], |x| x + v);
                            tx.update(&counts[s], |x| x + 1);
                        }
                    });
                }
            })
        })
        .collect();

    // The high-priority alarm thread: consistent min/max sweep on demand.
    let alarm = {
        let m = Arc::clone(&table);
        let sums = sums.clone();
        let counts = counts.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut st = Stats { worst: Duration::ZERO, total: Duration::ZERO, alarms: 0 };
            for _ in 0..ALARMS {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let t0 = Instant::now();
                m.enter(Priority::HIGH, |tx| {
                    // consistent snapshot: counts and sums must agree
                    for s in 0..SENSORS {
                        let c = tx.read(&counts[s]);
                        let sum = tx.read(&sums[s]);
                        assert!(sum >= 0 && c >= 0, "torn snapshot");
                        // the aggregators add ≤99 per count tick
                        assert!(sum <= c * 99, "sum/count invariant broken: {sum} vs {c}");
                    }
                });
                let dt = t0.elapsed();
                st.worst = st.worst.max(dt);
                st.total += dt;
                st.alarms += 1;
                thread::sleep(Duration::from_millis(4));
            }
            st
        })
    };

    for a in aggs {
        a.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let st = alarm.join().unwrap();
    (st, table.stats())
}

fn main() {
    println!(
        "telemetry pipeline: 2 low-priority aggregators ({} batches x {} updates), \
         1 high-priority alarm thread ({} sweeps)\n",
        BATCHES, BATCH_SIZE, ALARMS
    );
    println!(
        "{:<28} {:>14} {:>14} {:>11} {:>9}",
        "policy", "avg alarm", "worst alarm", "rollbacks", "commits"
    );
    for (name, policy) in
        [("blocking", InversionPolicy::Blocking), ("revocation", InversionPolicy::Revocation)]
    {
        let (st, ms) = run_pipeline(policy);
        let avg = if st.alarms > 0 { st.total / st.alarms } else { Duration::ZERO };
        println!(
            "{:<28} {:>14?} {:>14?} {:>11} {:>9}",
            name, avg, st.worst, ms.rollbacks, ms.commits
        );
    }
    println!("\n(alarm latency under revocation is bounded by rollback time,");
    println!(" not by the remaining length of an aggregator's batch section)");
}
