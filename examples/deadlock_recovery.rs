//! Deadlock detection and automatic recovery (§1.1) — in both runtimes.
//!
//! Two dining philosophers pick up their chopsticks in opposite orders, a
//! guaranteed deadlock under plain blocking. Revocable monitors detect the
//! waits-for cycle and revoke a victim: its section rolls back, releases
//! its chopstick, and the other philosopher proceeds; the victim retries.
//!
//! Run with `cargo run --release --example deadlock_recovery`.

use revmon::core::Priority;
use revmon::locks::{RevocableMonitor, TCell, DEADLOCKS_BROKEN, DEADLOCKS_DETECTED};
use revmon::vm::builder::{MethodBuilder, ProgramBuilder};
use revmon::vm::value::Value;
use revmon::vm::{Vm, VmConfig, VmError};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::thread;

fn vm_demo() {
    println!("== VM substrate ==");
    // run(a, b): sync(a) { <spin> sync(b) { meals++ } }
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 2);
    let mut b = MethodBuilder::new(2, 3);
    b.sync_on_local(0, |b| {
        b.const_i(0);
        b.store(2);
        let top = b.here();
        b.load(2);
        b.const_i(30_000);
        let done = b.new_label();
        b.if_ge(done);
        b.load(2);
        b.const_i(1);
        b.add();
        b.store(2);
        b.goto(top);
        b.place(done);
        b.sync_on_local(1, |b| {
            b.get_static(0);
            b.const_i(1);
            b.add();
            b.put_static(0);
        });
    });
    b.ret_void();
    pb.implement(run, b);
    let program = pb.finish();

    for (name, cfg) in
        [("blocking VM", VmConfig::unmodified()), ("revocable VM", VmConfig::modified())]
    {
        let mut vm = Vm::new(program.clone(), cfg);
        let left = vm.heap_mut().alloc(0, 0);
        let right = vm.heap_mut().alloc(0, 0);
        vm.spawn("kant", run, vec![Value::Ref(left), Value::Ref(right)], Priority::NORM);
        vm.spawn("hegel", run, vec![Value::Ref(right), Value::Ref(left)], Priority::NORM);
        match vm.run() {
            Ok(report) => println!(
                "  {name}: both philosophers ate (meals = {:?}); {} deadlock(s) detected, {} broken, {} rollback(s)",
                vm.read_static(0).unwrap(),
                report.global.deadlocks_detected,
                report.global.deadlocks_broken,
                report.global.rollbacks,
            ),
            Err(VmError::Stalled(t)) => {
                println!("  {name}: DEADLOCK — threads {t:?} blocked forever")
            }
            Err(e) => println!("  {name}: fault: {e}"),
        }
    }
}

fn threads_demo() {
    println!("\n== real OS threads ==");
    let left = Arc::new(RevocableMonitor::new());
    let right = Arc::new(RevocableMonitor::new());
    let meals = TCell::new(0i64);
    let both_hold = Arc::new(Barrier::new(2));

    let detected0 = DEADLOCKS_DETECTED.load(Ordering::Relaxed);
    let broken0 = DEADLOCKS_BROKEN.load(Ordering::Relaxed);

    let philosophers: Vec<_> = [
        ("kant", Arc::clone(&left), Arc::clone(&right)),
        ("hegel", Arc::clone(&right), Arc::clone(&left)),
    ]
    .into_iter()
    .map(|(name, first, second)| {
        let meals = meals.clone();
        let both_hold = Arc::clone(&both_hold);
        thread::spawn(move || {
            let mut attempt = 0;
            first.enter(Priority::NORM, |tx| {
                attempt += 1;
                if attempt == 1 {
                    both_hold.wait(); // both grab the first chopstick
                }
                second.enter(Priority::NORM, |tx2| {
                    tx2.update(&meals, |v| v + 1);
                });
                tx.checkpoint();
            });
            (name, attempt)
        })
    })
    .collect();

    for p in philosophers {
        let (name, attempts) = p.join().unwrap();
        println!("  {name}: finished after {attempts} attempt(s)");
    }
    println!(
        "  meals = {}, deadlocks detected = {}, broken = {}",
        meals.read_unsynchronized(),
        DEADLOCKS_DETECTED.load(Ordering::Relaxed) - detected0,
        DEADLOCKS_BROKEN.load(Ordering::Relaxed) - broken0,
    );
    assert_eq!(meals.read_unsynchronized(), 2);
}

fn main() {
    vm_demo();
    threads_demo();
}
