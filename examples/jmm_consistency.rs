//! The Java-memory-model consistency scenarios of §2 (Figures 2–4):
//! when must a monitor become *non-revocable*?
//!
//! Run with `cargo run --release --example jmm_consistency`.

use revmon::core::Priority;
use revmon::vm::builder::{MethodBuilder, ProgramBuilder};
use revmon::vm::value::Value;
use revmon::vm::{Vm, VmConfig};

/// Figure 2: thread T writes `v` inside `inner` nested in `outer`,
/// releases `inner` and keeps computing inside `outer`; T′ then reads `v`
/// under `inner`. Rolling back `outer` would make T′'s read appear out of
/// thin air, so the read must pin `outer` non-revocable.
fn figure2() {
    let mut pb = ProgramBuilder::new();
    pb.statics(2); // 0: v, 1: scratch
    let writer = pb.declare_method("writer", 3);
    let mut w = MethodBuilder::new(3, 4);
    w.sync_on_local(0, |b| {
        b.sync_on_local(1, |b| {
            b.const_i(1);
            b.put_static(0); // v = true
        });
        b.const_i(0);
        b.store(3);
        let top = b.here();
        b.load(3);
        b.load(2);
        let done = b.new_label();
        b.if_ge(done);
        b.get_static(1);
        b.const_i(1);
        b.add();
        b.put_static(1);
        b.load(3);
        b.const_i(1);
        b.add();
        b.store(3);
        b.goto(top);
        b.place(done);
    });
    w.ret_void();
    pb.implement(writer, w);

    let reader = pb.declare_method("reader", 1);
    let mut r = MethodBuilder::new(1, 1);
    r.const_i(30_000);
    r.sleep();
    r.sync_on_local(0, |b| {
        b.get_static(0); // read v under `inner`
        b.pop();
    });
    r.ret_void();
    pb.implement(reader, r);

    let contender = pb.declare_method("contender", 1);
    let mut c = MethodBuilder::new(1, 1);
    c.const_i(60_000);
    c.sleep();
    c.sync_on_local(0, |b| {
        b.get_static(1);
        b.pop();
    });
    c.ret_void();
    pb.implement(contender, c);

    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let outer = vm.heap_mut().alloc(0, 0);
    let inner = vm.heap_mut().alloc(0, 0);
    vm.spawn(
        "T",
        writer,
        vec![Value::Ref(outer), Value::Ref(inner), Value::Int(50_000)],
        Priority::LOW,
    );
    vm.spawn("T'", reader, vec![Value::Ref(inner)], Priority::LOW);
    vm.spawn("Th", contender, vec![Value::Ref(outer)], Priority::HIGH);
    let report = vm.run().expect("run");
    println!("Figure 2 (bad revocation via nesting):");
    println!(
        "  T' read a speculative write  -> sections marked non-revocable: {}",
        report.global.monitors_marked_nonrevocable
    );
    println!(
        "  Th's inversion went unresolved: {} (T was never rolled back: rollbacks = {})",
        report.global.inversions_unresolved, report.threads[0].metrics.rollbacks
    );
}

/// Figure 3: a volatile write inside monitor M, read by an unmonitored
/// spinner — same consequence.
fn figure3() {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    pb.volatile_static(0); // vol
    let writer = pb.declare_method("writer", 2);
    let mut w = MethodBuilder::new(2, 3);
    w.sync_on_local(0, |b| {
        b.const_i(1);
        b.put_static(0); // volatile write inside M
        b.const_i(0);
        b.store(2);
        let top = b.here();
        b.load(2);
        b.load(1);
        let done = b.new_label();
        b.if_ge(done);
        b.get_static(1);
        b.const_i(1);
        b.add();
        b.put_static(1);
        b.load(2);
        b.const_i(1);
        b.add();
        b.store(2);
        b.goto(top);
        b.place(done);
    });
    w.ret_void();
    pb.implement(writer, w);

    let reader = pb.declare_method("reader", 0);
    let mut r = MethodBuilder::new(0, 0);
    let spin = r.here();
    r.get_static(0); // unmonitored volatile read
    let seen = r.new_label();
    r.if_non_zero(seen);
    r.goto(spin);
    r.place(seen);
    r.ret_void();
    pb.implement(reader, r);

    let contender = pb.declare_method("contender", 1);
    let mut c = MethodBuilder::new(1, 1);
    c.const_i(60_000);
    c.sleep();
    c.sync_on_local(0, |b| {
        b.get_static(1);
        b.pop();
    });
    c.ret_void();
    pb.implement(contender, c);

    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let m = vm.heap_mut().alloc(0, 0);
    vm.spawn("T", writer, vec![Value::Ref(m), Value::Int(50_000)], Priority::LOW);
    vm.spawn("T'", reader, vec![], Priority::LOW);
    vm.spawn("Th", contender, vec![Value::Ref(m)], Priority::HIGH);
    let report = vm.run().expect("run");
    println!("\nFigure 3 (bad revocation via volatile):");
    println!(
        "  unmonitored volatile read pinned M -> non-revocable marks: {}, T rollbacks: {}",
        report.global.monitors_marked_nonrevocable, report.threads[0].metrics.rollbacks
    );
}

/// Control: the same nesting with no cross-thread read — revocation
/// proceeds normally.
fn control() {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    let writer = pb.declare_method("writer", 3);
    let mut w = MethodBuilder::new(3, 4);
    w.sync_on_local(0, |b| {
        b.sync_on_local(1, |b| {
            b.const_i(1);
            b.put_static(0);
        });
        b.const_i(0);
        b.store(3);
        let top = b.here();
        b.load(3);
        b.load(2);
        let done = b.new_label();
        b.if_ge(done);
        b.get_static(1);
        b.const_i(1);
        b.add();
        b.put_static(1);
        b.load(3);
        b.const_i(1);
        b.add();
        b.store(3);
        b.goto(top);
        b.place(done);
    });
    w.ret_void();
    pb.implement(writer, w);
    let contender = pb.declare_method("contender", 1);
    let mut c = MethodBuilder::new(1, 1);
    c.const_i(60_000);
    c.sleep();
    c.sync_on_local(0, |b| {
        b.get_static(1);
        b.pop();
    });
    c.ret_void();
    pb.implement(contender, c);

    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let outer = vm.heap_mut().alloc(0, 0);
    let inner = vm.heap_mut().alloc(0, 0);
    vm.spawn(
        "T",
        writer,
        vec![Value::Ref(outer), Value::Ref(inner), Value::Int(50_000)],
        Priority::LOW,
    );
    vm.spawn("Th", contender, vec![Value::Ref(outer)], Priority::HIGH);
    let report = vm.run().expect("run");
    println!("\nControl (no cross-thread observation of speculative state):");
    println!(
        "  non-revocable marks: {}, T rollbacks: {} — revocation worked normally",
        report.global.monitors_marked_nonrevocable, report.threads[0].metrics.rollbacks
    );
}

fn main() {
    figure2();
    figure3();
    control();
}
