//! The paper's Figure 1 walkthrough on the VM substrate, plus a
//! side-by-side latency comparison of the four inversion policies.
//!
//! A low-priority thread `Tl` is caught inside a long synchronized
//! section when high-priority `Th` arrives. Under revocation, `Tl` is
//! preempted: its updates to `o1` are undone, control returns to its
//! `monitorenter`, and `Th` enters first — the exact event sequence of
//! Fig. 1(a)–(f), printed from the VM's trace.
//!
//! Run with `cargo run --release --example priority_inversion`.

use revmon::core::{InversionPolicy, Priority};
use revmon::vm::builder::{MethodBuilder, ProgramBuilder};
use revmon::vm::value::Value;
use revmon::vm::{SchedulerKind, TraceEvent, Vm, VmConfig};

/// `run(lock, iters)`: one synchronized section updating a shared field
/// `iters` times.
fn program() -> (revmon::vm::bytecode::Program, revmon::vm::bytecode::MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 2);
    let mut b = MethodBuilder::new(2, 3);
    b.sync_on_local(0, |b| {
        b.const_i(0);
        b.store(2);
        let top = b.here();
        b.load(2);
        b.load(1);
        let done = b.new_label();
        b.if_ge(done);
        b.get_static(0);
        b.const_i(1);
        b.add();
        b.put_static(0);
        b.load(2);
        b.const_i(1);
        b.add();
        b.store(2);
        b.goto(top);
        b.place(done);
    });
    b.ret_void();
    pb.implement(run, b);
    (pb.finish(), run)
}

fn run_with(cfg: VmConfig) -> (u64, u64, u64) {
    let (p, run) = program();
    let mut vm = Vm::new(p, cfg);
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("Tl", run, vec![Value::Ref(lock), Value::Int(50_000)], Priority::LOW);
    vm.spawn("Th", run, vec![Value::Ref(lock), Value::Int(500)], Priority::HIGH);
    let r = vm.run().expect("run");
    let th = r.threads.iter().find(|t| t.name == "Th").unwrap();
    (th.elapsed(), r.overall_elapsed(), r.global.rollbacks)
}

fn main() {
    // --- the Figure 1 trace ---------------------------------------------
    let (p, run) = program();
    let mut vm = Vm::new(p, VmConfig::modified().with_trace());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("Tl", run, vec![Value::Ref(lock), Value::Int(50_000)], Priority::LOW);
    vm.spawn("Th", run, vec![Value::Ref(lock), Value::Int(500)], Priority::HIGH);
    vm.run().expect("run");
    println!("Figure 1 event sequence (virtual-clock timestamps):");
    for rec in vm.take_trace() {
        let line = match rec.event {
            TraceEvent::Acquire { thread, monitor } => {
                format!("T{} enters the synchronized section on {}", thread.0, monitor)
            }
            TraceEvent::Block { thread, monitor } => {
                format!("T{} blocks on {} (held by a lower-priority thread)", thread.0, monitor)
            }
            TraceEvent::RevokeRequest { by, holder, monitor } => {
                format!(
                    "T{} flags T{} for revocation of its section on {}",
                    by.0, holder.0, monitor
                )
            }
            TraceEvent::Rollback { thread, monitor, entries } => {
                format!(
                    "T{} rolls back {} logged updates, reverting {}'s state",
                    thread.0, entries, monitor
                )
            }
            TraceEvent::Commit { thread, monitor } => {
                format!("T{} commits its section on {}", thread.0, monitor)
            }
            TraceEvent::Release { thread, monitor } => {
                format!("T{} releases {}", thread.0, monitor)
            }
            other => format!("{other:?}"),
        };
        println!("  [{:>9}] {line}", rec.at);
    }

    // --- policy comparison ------------------------------------------------
    println!("\nHigh-priority latency under each policy (virtual ticks):");
    println!("{:<46} {:>12} {:>12} {:>10}", "policy", "Th elapsed", "overall", "rollbacks");
    let cases: Vec<(&str, VmConfig)> = vec![
        ("blocking (unmodified VM, round-robin)", VmConfig::unmodified()),
        ("revocation (modified VM, round-robin)", VmConfig::modified()),
        ("priority inheritance (preemptive sched)", {
            let mut c = VmConfig::unmodified();
            c.policy = InversionPolicy::PriorityInheritance;
            c.scheduler = SchedulerKind::PriorityPreemptive;
            c
        }),
        ("priority ceiling = MAX (preemptive sched)", {
            let mut c = VmConfig::unmodified();
            c.policy = InversionPolicy::PriorityCeiling(Priority::MAX);
            c.scheduler = SchedulerKind::PriorityPreemptive;
            c
        }),
    ];
    for (name, cfg) in cases {
        let (th, overall, rb) = run_with(cfg);
        println!("{name:<46} {th:>12} {overall:>12} {rb:>10}");
    }
}
