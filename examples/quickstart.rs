//! Quickstart: revocable monitors over real OS threads.
//!
//! A high-priority auditor and several low-priority batch writers share
//! one account ledger. With revocable monitors the auditor preempts any
//! batch writer caught mid-section: the writer's partial updates are
//! rolled back, the auditor runs, and the writer retries — no priority
//! inversion, no torn state.
//!
//! Run with `cargo run --release --example quickstart`.

use revmon::core::Priority;
use revmon::locks::{RevocableMonitor, TCell};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

fn main() {
    let ledger = Arc::new(RevocableMonitor::new());
    let checking = TCell::new(1_000i64);
    let savings = TCell::new(5_000i64);

    // Four low-priority batch writers shuffle money in long sections.
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let m = Arc::clone(&ledger);
            let (c, s) = (checking.clone(), savings.clone());
            thread::spawn(move || {
                for _ in 0..200 {
                    m.enter(Priority::LOW, |tx| {
                        // a deliberately long synchronized section
                        for _ in 0..500 {
                            let amount = 1 + (w as i64);
                            tx.update(&c, |v| v - amount);
                            tx.update(&s, |v| v + amount);
                            tx.update(&c, |v| v + amount);
                            tx.update(&s, |v| v - amount);
                        }
                    });
                }
            })
        })
        .collect();

    // One high-priority auditor needs consistent snapshots *now*.
    let auditor = {
        let m = Arc::clone(&ledger);
        let (c, s) = (checking.clone(), savings.clone());
        thread::spawn(move || {
            let mut worst = std::time::Duration::ZERO;
            for _ in 0..100 {
                let t0 = Instant::now();
                let total = m.enter(Priority::HIGH, |tx| tx.read(&c) + tx.read(&s));
                worst = worst.max(t0.elapsed());
                // The invariant must hold in every snapshot, even ones
                // taken right after a revocation.
                assert_eq!(total, 6_000, "torn snapshot!");
                thread::yield_now();
            }
            worst
        })
    };

    let worst = auditor.join().unwrap();
    for w in writers {
        w.join().unwrap();
    }

    let st = ledger.stats();
    println!(
        "final balances : checking={} savings={}",
        checking.read_unsynchronized(),
        savings.read_unsynchronized()
    );
    println!("auditor worst-case monitor latency: {worst:?}");
    println!(
        "monitor stats  : {} acquires, {} contended, {} revocations requested, \
         {} rollbacks ({} entries restored), {} commits",
        st.acquires,
        st.contended,
        st.revocations_requested,
        st.rollbacks,
        st.entries_rolled_back,
        st.commits
    );
    assert_eq!(checking.read_unsynchronized() + savings.read_unsynchronized(), 6_000);
    println!("invariant held through every revocation ✓");
}
