//! Thin/fat lock-word state-machine tests: the monitor must stay thin
//! (one CAS per enter/exit, no state lock) until contention, waiting, or
//! revocation forces inflation — and must deflate back to thin once the
//! queues drain. Counter expectations pin the transitions:
//! `thin_acquires` counts fast-path acquisitions, `inflations` /
//! `deflations` count word transitions.

use revmon_core::Priority;
use revmon_locks::{RevocableMonitor, TCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// Spin until `cond` holds (bounded; panics on timeout so a broken
/// transition fails loudly instead of hanging CI).
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(10), "timed out waiting for {what}");
        thread::yield_now();
    }
}

#[test]
fn recursive_thin_enter_never_inflates() {
    let m = RevocableMonitor::new();
    let c = TCell::new(0i64);
    m.enter(Priority::NORM, |t1| {
        t1.write(&c, 1);
        m.enter(Priority::NORM, |t2| {
            t2.update(&c, |v| v + 10);
            m.enter(Priority::NORM, |t3| {
                t3.update(&c, |v| v + 100);
            });
        });
    });
    assert_eq!(c.read_unsynchronized(), 111);
    let st = m.stats();
    assert_eq!(st.acquires, 3);
    assert_eq!(st.thin_acquires, 3, "uncontended recursion must stay on the fast path");
    assert_eq!(st.inflations, 0, "nothing here may inflate");
    assert_eq!(st.deflations, 0);
    assert_eq!(st.commits, 3);
}

#[test]
fn wait_inflates_and_drain_deflates() {
    let m = Arc::new(RevocableMonitor::new());
    let entered = Arc::new(Barrier::new(2));
    let waiter = {
        let m = Arc::clone(&m);
        let entered = Arc::clone(&entered);
        thread::spawn(move || {
            m.enter(Priority::NORM, |tx| {
                // The notifier cannot enter until `wait` releases the
                // monitor, and `wait` joins the wait set atomically with
                // that release — so one notify after this barrier cannot
                // be lost.
                entered.wait();
                tx.wait();
            });
        })
    };
    entered.wait();
    m.enter(Priority::NORM, |tx| tx.notify_all());
    waiter.join().unwrap();
    let st = m.stats();
    assert!(st.inflations >= 1, "wait needs the fat wait set: must inflate");
    assert!(st.deflations >= 1, "all queues drained: must deflate");
    // Post-drain the word is thin again: the next enter is a fast-path
    // acquisition.
    let thin_before = m.stats().thin_acquires;
    m.enter(Priority::NORM, |_tx| {});
    assert_eq!(m.stats().thin_acquires, thin_before + 1, "drained monitor must be thin again");
}

#[test]
fn contention_inflates_and_drain_deflates() {
    let m = Arc::new(RevocableMonitor::new());
    let entered = Arc::new(Barrier::new(2));
    let go = Arc::new(AtomicBool::new(false));
    let holder = {
        let m = Arc::clone(&m);
        let entered = Arc::clone(&entered);
        let go = Arc::clone(&go);
        thread::spawn(move || {
            m.enter(Priority::NORM, |tx| {
                entered.wait();
                while !go.load(Ordering::Acquire) {
                    tx.checkpoint();
                    std::hint::spin_loop();
                }
            });
        })
    };
    entered.wait();
    let contender = {
        let m = Arc::clone(&m);
        thread::spawn(move || {
            m.enter(Priority::NORM, |_tx| {});
        })
    };
    // The contender inflates the word on its way into the queue; only
    // then release the holder, so the blocking path is really exercised.
    {
        let m = Arc::clone(&m);
        wait_until("contender to inflate the monitor", move || m.stats().inflations >= 1);
    }
    go.store(true, Ordering::Release);
    holder.join().unwrap();
    contender.join().unwrap();
    let st = m.stats();
    assert_eq!(st.acquires, 2);
    assert_eq!(st.thin_acquires, 1, "only the holder's uncontended enter is thin");
    assert!(st.inflations >= 1);
    assert!(st.deflations >= 1, "once both threads are done the word must deflate");
    assert_eq!(st.contended, 1);
    let thin_before = m.stats().thin_acquires;
    m.enter(Priority::NORM, |_tx| {});
    assert_eq!(m.stats().thin_acquires, thin_before + 1, "deflated monitor is thin again");
}

#[test]
fn recursive_enter_while_inflated_keeps_recursion_exact() {
    // The holder acquires thin, a contender inflates underneath it
    // (migrating owner + recursion out of the word), and the holder then
    // nests two more sections through the fat path. Every level must
    // unwind cleanly and the contender must see the committed result.
    let m = Arc::new(RevocableMonitor::new());
    let c = Arc::new(TCell::new(0i64));
    let entered = Arc::new(Barrier::new(2));
    let holder = {
        let m = Arc::clone(&m);
        let c = Arc::clone(&c);
        let entered = Arc::clone(&entered);
        thread::spawn(move || {
            m.enter(Priority::NORM, |t1| {
                t1.write(&c, 1);
                entered.wait();
                {
                    let m2 = Arc::clone(&m);
                    wait_until("contender to inflate under the holder", move || {
                        m2.stats().inflations >= 1
                    });
                }
                m.enter(Priority::NORM, |t2| {
                    t2.update(&c, |v| v + 10);
                    m.enter(Priority::NORM, |t3| {
                        t3.update(&c, |v| v + 100);
                    });
                });
            });
        })
    };
    entered.wait();
    let contender = {
        let m = Arc::clone(&m);
        let c = Arc::clone(&c);
        thread::spawn(move || m.enter(Priority::NORM, |tx| tx.read(&c)))
    };
    holder.join().unwrap();
    assert_eq!(contender.join().unwrap(), 111, "contender runs after the full release");
    let st = m.stats();
    assert_eq!(st.acquires, 4);
    assert_eq!(
        st.thin_acquires, 1,
        "nested enters after inflation must go through the fat reentrant path"
    );
    assert!(st.inflations >= 1);
    assert_eq!(st.commits, 4);
    assert_eq!(st.rollbacks, 0, "equal priorities: no revocation");
}

/// Regression stress for the deflate-after-drain race: the post-park
/// unwind path in `acquire_slow` (a waiter revoked through an enclosing
/// section) takes the state lock without re-freezing the word, then
/// calls `maybe_deflate`. If deflation blindly stored 0 instead of
/// CASing from `INFLATED`, it could wipe a thin ownership record claimed
/// by a concurrent fast-path enter, handing the monitor to two threads
/// at once — here surfacing as lost updates on `b`.
///
/// The mix below drives that exact window: low threads nest
/// outer→inner, high threads revoke them on `outer` (so they wake
/// parked on `inner`'s queue and unwind), and thin threads hammer
/// `inner`'s fast path the whole time.
#[test]
fn deflation_race_under_nested_revocation_stress() {
    const ITERS: i64 = 150;
    let outer = Arc::new(RevocableMonitor::new());
    let inner = Arc::new(RevocableMonitor::new());
    let a = Arc::new(TCell::new(0i64));
    let b = Arc::new(TCell::new(0i64));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let (outer, inner) = (Arc::clone(&outer), Arc::clone(&inner));
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        handles.push(thread::spawn(move || {
            for _ in 0..ITERS {
                outer.enter(Priority::LOW, |tx| {
                    tx.update(&a, |v| v + 1);
                    inner.enter(Priority::LOW, |tx2| {
                        tx2.update(&b, |v| v + 1);
                    });
                });
            }
        }));
    }
    for _ in 0..2 {
        let outer = Arc::clone(&outer);
        let a = Arc::clone(&a);
        handles.push(thread::spawn(move || {
            for _ in 0..ITERS {
                outer.enter(Priority::HIGH, |tx| {
                    tx.read(&a);
                });
            }
        }));
    }
    for _ in 0..2 {
        let inner = Arc::clone(&inner);
        let b = Arc::clone(&b);
        handles.push(thread::spawn(move || {
            for _ in 0..ITERS {
                inner.enter(Priority::NORM, |tx| tx.update(&b, |v| v + 1));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(a.read_unsynchronized(), 2 * ITERS, "outer updates lost");
    assert_eq!(
        b.read_unsynchronized(),
        4 * ITERS,
        "inner updates lost: a deflation stomped a thin owner"
    );
}

#[test]
fn enter_cas_races_never_lose_an_update() {
    // Many threads hammer the same monitor from a barrier start: every
    // interleaving of the enter-CAS (thin claim vs. inflation vs. queue
    // handoff) must serialize the increments exactly.
    const THREADS: usize = 4;
    const ITERS: i64 = 250;
    let m = Arc::new(RevocableMonitor::new());
    let c = Arc::new(TCell::new(0i64));
    let start = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let m = Arc::clone(&m);
            let c = Arc::clone(&c);
            let start = Arc::clone(&start);
            thread::spawn(move || {
                start.wait();
                for _ in 0..ITERS {
                    m.enter(Priority::NORM, |tx| tx.update(&c, |v| v + 1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.read_unsynchronized(), THREADS as i64 * ITERS);
    let st = m.stats();
    assert_eq!(st.acquires, (THREADS as i64 * ITERS) as u64, "equal priorities: no retries");
    assert_eq!(st.commits, st.acquires);
    assert!(st.thin_acquires <= st.acquires, "thin acquisitions are a subset of all acquisitions");
    assert_eq!(st.rollbacks, 0);
}
