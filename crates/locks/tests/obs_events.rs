//! Event-stream contract of the locks runtime: a priority-inversion
//! scenario must emit `Block → RevokeRequest → Rollback → Acquire` (the
//! high-priority thread's), in that order, into an installed
//! `revmon-obs` sink — the library analogue of the paper's Figure 1
//! timeline.
//!
//! Lives in its own integration-test binary because the obs sink is
//! process-global.

use revmon_core::Priority;
use revmon_locks::{RevocableMonitor, TCell};
use revmon_obs::{EventKind, EventSink, TsUnit};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

#[test]
fn inversion_emits_block_revoke_rollback_acquire() {
    let sink = Arc::new(EventSink::new(TsUnit::WallNanos));
    revmon_locks::obs::install(Arc::clone(&sink));

    let monitor = Arc::new(RevocableMonitor::new());
    let cell = TCell::new(0i64);
    let low_in = Arc::new(AtomicBool::new(false));
    let high_done = Arc::new(AtomicBool::new(false));

    let low = {
        let m = Arc::clone(&monitor);
        let c = cell.clone();
        let low_in = Arc::clone(&low_in);
        let high_done = Arc::clone(&high_done);
        std::thread::spawn(move || {
            let attempts = AtomicU32::new(0);
            m.enter(Priority::LOW, |tx| {
                let attempt = attempts.fetch_add(1, Ordering::Relaxed);
                tx.write(&c, 1);
                low_in.store(true, Ordering::Release);
                if attempt == 0 {
                    // Hold the monitor at yield points until the
                    // high-priority thread either revokes us (unwinds
                    // out of checkpoint) or has finished.
                    while !high_done.load(Ordering::Acquire) {
                        tx.checkpoint();
                        std::hint::spin_loop();
                    }
                }
            });
        })
    };

    while !low_in.load(Ordering::Acquire) {
        std::hint::spin_loop();
    }
    monitor.enter(Priority::HIGH, |tx| tx.checkpoint());
    high_done.store(true, Ordering::Release);
    low.join().unwrap();

    revmon_locks::obs::uninstall();
    let events = sink.drain();

    let i_block = events
        .iter()
        .position(|e| e.kind == EventKind::Block)
        .expect("high-priority thread should have blocked");
    let high_tid = events[i_block].thread;
    let i_revoke = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::RevokeRequest { by } if by == high_tid))
        .expect("holder should have been flagged for revocation");
    let i_rollback = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::Rollback { .. }))
        .expect("low-priority section should have rolled back");
    let i_acquire = events
        .iter()
        .enumerate()
        .position(|(i, e)| i > i_block && e.thread == high_tid && e.kind == EventKind::Acquire)
        .expect("high-priority thread should have acquired after blocking");

    assert!(
        i_block < i_revoke && i_revoke < i_rollback && i_rollback < i_acquire,
        "expected Block({i_block}) < RevokeRequest({i_revoke}) < \
         Rollback({i_rollback}) < Acquire({i_acquire}) in {events:#?}"
    );

    // The rolled-back low thread retried and committed: its write stands.
    assert_eq!(cell.read_unsynchronized(), 1);

    // The derived latency histograms saw the episode.
    let h = sink.histograms();
    assert!(h.entry_blocking.count() >= 1, "no blocking time derived");
    assert!(h.rollback_duration.count() >= 1, "no rollback duration derived");
    assert!(h.inversion_resolution.count() >= 1, "no inversion-resolution latency derived");
}
