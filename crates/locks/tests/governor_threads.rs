//! The adaptive revocation governor on real OS threads: after K
//! revocations of the same holder on the same monitor, the next
//! high-priority contender blocks on the prioritized queue instead of
//! revoking again — per-monitor graceful degradation to the blocking
//! baseline. Also covers the nested-section inner-mark rollback rule on
//! this runtime.

use revmon_core::{GovernorConfig, Priority};
use revmon_locks::{RevocableMonitor, TCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Spin until `cond` holds (bounded; panics on timeout so a broken
/// protocol fails loudly instead of hanging CI).
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(10), "timed out waiting for {what}");
        thread::yield_now();
    }
}

/// One revocation burns the budget (K = 1); the second high-priority
/// contender is throttled and must wait for the holder to commit.
#[test]
fn second_contender_is_throttled_after_budget_exhausted() {
    let m = Arc::new(RevocableMonitor::new());
    // Nanosecond clock: a long backoff window so the fallback cannot
    // expire mid-test.
    m.set_governor(GovernorConfig { k: 1, backoff: 30_000_000_000, decay: 0 });
    let cell = TCell::new(0i64);
    let holding = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));

    let low = {
        let m = Arc::clone(&m);
        let cell = cell.clone();
        let (holding, release) = (Arc::clone(&holding), Arc::clone(&release));
        thread::spawn(move || {
            m.enter(Priority::LOW, |tx| {
                tx.write(&cell, 1);
                holding.store(true, Ordering::Release);
                while !release.load(Ordering::Acquire) {
                    tx.checkpoint();
                    std::hint::spin_loop();
                }
                tx.update(&cell, |v| v + 1);
            });
        })
    };

    // Phase 1: the first high contender revokes the low holder (budget
    // spent: streak == K).
    wait_until("low holder to enter", || holding.swap(false, Ordering::AcqRel));
    let high1 = {
        let m = Arc::clone(&m);
        let cell = cell.clone();
        thread::spawn(move || m.enter(Priority::HIGH, |tx| tx.read(&cell)))
    };
    assert_eq!(high1.join().unwrap(), 0, "high1 must see rolled-back state");
    assert_eq!(m.stats().rollbacks, 1);

    // Phase 2: the low holder retried and re-entered; the second high
    // contender consults the governor, is denied, and blocks.
    wait_until("low holder to re-enter", || holding.swap(false, Ordering::AcqRel));
    let high2 = {
        let m = Arc::clone(&m);
        let cell = cell.clone();
        thread::spawn(move || m.enter(Priority::HIGH, |tx| tx.read(&cell)))
    };
    wait_until("governor to throttle high2", {
        let m = Arc::clone(&m);
        move || m.stats().governor_throttles >= 1
    });
    assert_eq!(m.stats().rollbacks, 1, "the throttled contender must not revoke");

    // Phase 3: let the holder commit; the throttled contender then gets
    // the monitor through the ordinary queue handoff.
    release.store(true, Ordering::Release);
    assert_eq!(high2.join().unwrap(), 2, "high2 runs after the section committed");
    low.join().unwrap();

    let st = m.stats();
    assert_eq!(st.rollbacks, 1, "exactly one revocation under a budget of 1");
    assert!(st.governor_throttles >= 1);
    assert!(st.policy_fallbacks >= 1, "a fresh fallback window must have opened");
    assert!(m.governor_max_streak() <= 1, "bounded-revocation guarantee violated");
    assert_eq!(cell.read_unsynchronized(), 2);
}

/// An ungoverned monitor behaves exactly as before: contenders keep
/// revoking and the governor counters stay zero.
#[test]
fn disabled_governor_changes_nothing() {
    let m = Arc::new(RevocableMonitor::new());
    let cell = TCell::new(0i64);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let m = Arc::clone(&m);
            let cell = cell.clone();
            let prio = if i % 2 == 0 { Priority::HIGH } else { Priority::LOW };
            thread::spawn(move || {
                for _ in 0..200 {
                    m.enter(prio, |tx| tx.update(&cell, |v| v + 1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.read_unsynchronized(), 800);
    assert_eq!(m.stats().governor_throttles, 0);
    assert_eq!(m.stats().policy_fallbacks, 0);
}

/// Correctness under a governed storm: counters stay exact while the
/// governor throttles a mixed-priority workload, and no holder is ever
/// revoked more than K times consecutively.
#[test]
fn governed_contention_keeps_counters_exact() {
    const K: u32 = 2;
    let m = Arc::new(RevocableMonitor::new());
    m.set_governor(GovernorConfig { k: K, backoff: 200_000, decay: 50_000_000 });
    let cell = TCell::new(0i64);
    let per_thread = 200i64;
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let m = Arc::clone(&m);
            let cell = cell.clone();
            let prio = if i % 3 == 0 { Priority::HIGH } else { Priority::LOW };
            thread::spawn(move || {
                for _ in 0..per_thread {
                    m.enter(prio, |tx| {
                        for _ in 0..4 {
                            tx.update(&cell, |v| v + 1);
                        }
                        tx.update(&cell, |v| v - 3);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.read_unsynchronized(), 6 * per_thread);
    assert!(m.governor_max_streak() <= K, "a streak exceeded the budget");
}

/// Revoking an *inner* nested section must roll back to the inner undo
/// mark only: the enclosing section's writes survive and the final state
/// reflects them (satellite regression — a rollback to the outer mark
/// would silently lose `a`'s update while the outer section kept
/// running).
#[test]
fn inner_revocation_preserves_outer_section_writes() {
    let outer = Arc::new(RevocableMonitor::new());
    let inner = Arc::new(RevocableMonitor::new());
    let a = TCell::new(0i64);
    let b = TCell::new(0i64);
    let holding = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));

    let low = {
        let (outer, inner) = (Arc::clone(&outer), Arc::clone(&inner));
        let (a, b) = (a.clone(), b.clone());
        let (holding, release) = (Arc::clone(&holding), Arc::clone(&release));
        thread::spawn(move || {
            outer.enter(Priority::LOW, |tx| {
                tx.write(&a, 1);
                inner.enter(Priority::LOW, |tx2| {
                    tx2.write(&b, 10);
                    holding.store(true, Ordering::Release);
                    while !release.load(Ordering::Acquire) {
                        tx2.checkpoint();
                        std::hint::spin_loop();
                    }
                });
            });
        })
    };

    wait_until("low to hold the inner monitor", || holding.swap(false, Ordering::AcqRel));
    let high = {
        let inner = Arc::clone(&inner);
        let b = b.clone();
        thread::spawn(move || inner.enter(Priority::HIGH, |tx| tx.read(&b)))
    };
    assert_eq!(high.join().unwrap(), 0, "inner write must have been rolled back");
    // The inner section retries inside the *same* outer attempt; once it
    // re-holds, let it finish.
    wait_until("low to re-enter the inner monitor", || holding.swap(false, Ordering::AcqRel));
    release.store(true, Ordering::Release);
    low.join().unwrap();

    assert!(inner.stats().rollbacks >= 1, "inner section was never revoked");
    assert_eq!(outer.stats().rollbacks, 0, "outer section must not roll back");
    assert_eq!(a.read_unsynchronized(), 1, "outer write lost: wrong undo mark used");
    assert_eq!(b.read_unsynchronized(), 10);
}
