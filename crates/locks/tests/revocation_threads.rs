//! Real-OS-thread behaviour of the revocable monitor: preemption of
//! low-priority holders, atomicity under rollback, policy baselines.

use revmon_core::{InversionPolicy, Priority};
use revmon_locks::{RevocableMonitor, TCell, VolatileCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

/// Low-priority thread holds the monitor doing a long update loop; a
/// high-priority thread arrives and must preempt it.
#[test]
fn high_priority_contender_revokes_low_holder() {
    let m = Arc::new(RevocableMonitor::new());
    let cell = TCell::new(0i64);
    let hi_done = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(Barrier::new(2));

    let low = {
        let m = Arc::clone(&m);
        let cell = cell.clone();
        let entered = Arc::clone(&entered);
        let hi_done = Arc::clone(&hi_done);
        thread::spawn(move || {
            let mut attempt = 0u32;
            m.enter(Priority::LOW, |tx| {
                attempt += 1;
                tx.write(&cell, 1);
                if attempt == 1 {
                    entered.wait(); // let the high thread know we hold it
                }
                // long in-section loop with yield points; runs until the
                // high-priority thread preempts us (first execution) or
                // to completion (retry)
                for i in 0..2_000_000i64 {
                    tx.update(&cell, |v| v + 1);
                    if i % 1024 == 0 && hi_done.load(Ordering::Relaxed) {
                        break; // retry execution: stop early, we proved it
                    }
                }
            });
        })
    };

    entered.wait();
    let hi = {
        let m = Arc::clone(&m);
        let cell = cell.clone();
        let hi_done = Arc::clone(&hi_done);
        thread::spawn(move || {
            let seen = m.enter(Priority::HIGH, |tx| {
                let v = tx.read(&cell);
                tx.write(&cell, -1_000_000);
                v
            });
            hi_done.store(true, Ordering::Relaxed);
            seen
        })
    };

    let seen_by_high = hi.join().unwrap();
    low.join().unwrap();

    // The high-priority thread must have observed the *rolled-back* state:
    // everything the low thread wrote inside its unfinished section was
    // undone, so the cell read 0 (its pre-section value).
    assert_eq!(seen_by_high, 0, "partial low-priority updates leaked");
    let st = m.stats();
    assert!(st.rollbacks >= 1, "low holder was never revoked: {st:?}");
    assert!(st.revocations_requested >= 1);
    assert!(st.entries_rolled_back > 0);
}

/// Counter exactness under heavy mixed-priority contention.
#[test]
fn contended_counter_is_exact() {
    let m = Arc::new(RevocableMonitor::new());
    let cell = TCell::new(0i64);
    let per_thread = 300i64;
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let m = Arc::clone(&m);
            let cell = cell.clone();
            let prio = if i % 3 == 0 { Priority::HIGH } else { Priority::LOW };
            thread::spawn(move || {
                for _ in 0..per_thread {
                    m.enter(prio, |tx| {
                        // several updates per section so rollbacks have
                        // something to undo
                        for _ in 0..4 {
                            tx.update(&cell, |v| v + 1);
                        }
                        // net effect per section: +1
                        tx.update(&cell, |v| v - 3);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.read_unsynchronized(), 6 * per_thread);
    assert_eq!(m.stats().commits, 6 * per_thread as u64);
}

/// The blocking baseline never revokes.
#[test]
fn blocking_policy_never_rolls_back() {
    let m = Arc::new(RevocableMonitor::with_policy(InversionPolicy::Blocking));
    let cell = TCell::new(0i64);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let m = Arc::clone(&m);
            let cell = cell.clone();
            let prio = if i == 0 { Priority::HIGH } else { Priority::LOW };
            thread::spawn(move || {
                for _ in 0..200 {
                    m.enter(prio, |tx| tx.update(&cell, |v| v + 1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.read_unsynchronized(), 800);
    assert_eq!(m.stats().rollbacks, 0);
    assert_eq!(m.stats().revocations_requested, 0);
}

/// A volatile write inside the section pins it non-revocable: the
/// high-priority contender must wait (inversion unresolved), and the
/// section is never rolled back.
#[test]
fn volatile_write_pins_section() {
    let m = Arc::new(RevocableMonitor::new());
    let cell = TCell::new(0i64);
    let flag = VolatileCell::new(0);
    let entered = Arc::new(Barrier::new(2));

    let low = {
        let m = Arc::clone(&m);
        let cell = cell.clone();
        let flag = flag.clone();
        let entered = Arc::clone(&entered);
        thread::spawn(move || {
            m.enter(Priority::LOW, |tx| {
                tx.write_volatile(&flag, 1); // publishes → non-revocable
                assert!(!tx.is_revocable());
                entered.wait();
                for _ in 0..50_000i64 {
                    tx.update(&cell, |v| v + 1);
                }
            });
        })
    };
    entered.wait();
    assert_eq!(flag.load(), 1, "volatile visible outside the monitor");
    let hi = {
        let m = Arc::clone(&m);
        let cell = cell.clone();
        thread::spawn(move || m.enter(Priority::HIGH, |tx| tx.read(&cell)))
    };
    let seen = hi.join().unwrap();
    low.join().unwrap();
    // The high thread entered only after the low section *completed*.
    assert_eq!(seen, 50_000);
    assert_eq!(m.stats().rollbacks, 0);
    assert!(m.stats().nonrevocable_marks >= 1);
    assert!(m.stats().inversions_unresolved >= 1);
}

/// `irrevocable()` (native-call analogue) likewise blocks revocation and
/// makes the side effect happen exactly once.
#[test]
fn irrevocable_effects_happen_once() {
    let m = Arc::new(RevocableMonitor::new());
    let cell = TCell::new(0i64);
    let effects = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let entered = Arc::new(Barrier::new(2));
    let low = {
        let m = Arc::clone(&m);
        let cell = cell.clone();
        let effects = Arc::clone(&effects);
        let entered = Arc::clone(&entered);
        thread::spawn(move || {
            m.enter(Priority::LOW, |tx| {
                tx.irrevocable();
                effects.fetch_add(1, Ordering::Relaxed); // "println"
                entered.wait();
                for _ in 0..20_000i64 {
                    tx.update(&cell, |v| v + 1);
                }
            });
        })
    };
    entered.wait();
    let hi = {
        let m = Arc::clone(&m);
        let cell = cell.clone();
        thread::spawn(move || m.enter(Priority::HIGH, |tx| tx.read(&cell)))
    };
    hi.join().unwrap();
    low.join().unwrap();
    assert_eq!(effects.load(Ordering::Relaxed), 1, "native effect duplicated");
    assert_eq!(m.stats().rollbacks, 0);
}

/// Nested monitors: revoking the outer section unwinds through the inner
/// one, restoring both logs.
#[test]
fn nested_sections_roll_back_together() {
    let outer = Arc::new(RevocableMonitor::new());
    let inner = Arc::new(RevocableMonitor::new());
    let a = TCell::new(0i64);
    let b = TCell::new(0i64);
    let entered = Arc::new(Barrier::new(2));
    let retried = Arc::new(std::sync::atomic::AtomicU64::new(0));

    let low = {
        let (outer, inner) = (Arc::clone(&outer), Arc::clone(&inner));
        let (a, b) = (a.clone(), b.clone());
        let entered = Arc::clone(&entered);
        let retried = Arc::clone(&retried);
        thread::spawn(move || {
            outer.enter(Priority::LOW, |tx| {
                let attempt = retried.fetch_add(1, Ordering::Relaxed);
                tx.write(&a, 10);
                inner.enter(Priority::LOW, |tx2| {
                    tx2.write(&b, 20);
                });
                if attempt == 0 {
                    entered.wait(); // signal: first attempt is mid-section
                    for _ in 0..1_000_000i64 {
                        tx.checkpoint();
                        std::hint::spin_loop();
                    }
                }
            });
        })
    };
    entered.wait();
    let hi = {
        let outer = Arc::clone(&outer);
        let (a, b) = (a.clone(), b.clone());
        thread::spawn(move || outer.enter(Priority::HIGH, |tx| (tx.read(&a), tx.read(&b))))
    };
    let (sa, sb) = hi.join().unwrap();
    low.join().unwrap();
    // The inner section had *committed into* the outer log; the outer
    // rollback must still have undone its write (the paper keeps nested
    // updates revocable until the outermost exit).
    assert_eq!((sa, sb), (0, 0), "nested updates leaked through rollback");
    assert!(outer.stats().rollbacks >= 1);
    assert!(retried.load(Ordering::Relaxed) >= 2, "closure retried");
    // final state: the retry completed
    assert_eq!(a.read_unsynchronized(), 10);
    assert_eq!(b.read_unsynchronized(), 20);
}

/// wait/notify handshake, with the conservative non-revocability rule.
#[test]
fn wait_notify_handshake() {
    let m = Arc::new(RevocableMonitor::new());
    let flag = TCell::new(0i64);
    let result = TCell::new(0i64);
    let consumer = {
        let m = Arc::clone(&m);
        let (flag, result) = (flag.clone(), result.clone());
        thread::spawn(move || {
            m.enter(Priority::NORM, |tx| {
                while tx.read(&flag) == 0 {
                    tx.wait();
                }
                tx.write(&result, 99);
            });
        })
    };
    thread::sleep(Duration::from_millis(50));
    m.enter(Priority::NORM, |tx| {
        tx.write(&flag, 1);
        tx.notify_all();
    });
    consumer.join().unwrap();
    assert_eq!(result.read_unsynchronized(), 99);
    assert!(m.stats().nonrevocable_marks >= 1, "waiting pinned the section");
}

/// Monitors are independent: no cross-monitor contention effects.
#[test]
fn independent_monitors() {
    let m1 = Arc::new(RevocableMonitor::new());
    let m2 = Arc::new(RevocableMonitor::new());
    let c1 = TCell::new(0i64);
    let c2 = TCell::new(0i64);
    let t1 = {
        let (m1, c1) = (Arc::clone(&m1), c1.clone());
        thread::spawn(move || {
            for _ in 0..500 {
                m1.enter(Priority::LOW, |tx| tx.update(&c1, |v| v + 1));
            }
        })
    };
    let t2 = {
        let (m2, c2) = (Arc::clone(&m2), c2.clone());
        thread::spawn(move || {
            for _ in 0..500 {
                m2.enter(Priority::HIGH, |tx| tx.update(&c2, |v| v + 1));
            }
        })
    };
    t1.join().unwrap();
    t2.join().unwrap();
    assert_eq!(c1.read_unsynchronized(), 500);
    assert_eq!(c2.read_unsynchronized(), 500);
    assert_eq!(m1.stats().rollbacks + m2.stats().rollbacks, 0);
}

/// try_enter: succeeds when free, fails when held, reentrant when owned.
#[test]
fn try_enter_semantics() {
    let m = Arc::new(RevocableMonitor::new());
    let cell = TCell::new(0i64);
    // free → runs
    assert_eq!(m.try_enter(Priority::NORM, |tx| tx.read(&cell)), Some(0));
    // reentrant inside enter
    m.enter(Priority::NORM, |_tx| {
        let inner = m.try_enter(Priority::NORM, |tx2| {
            tx2.update(&cell, |v| v + 1);
            7
        });
        assert_eq!(inner, Some(7));
    });
    assert_eq!(cell.read_unsynchronized(), 1);
    // held by another thread → None
    let hold = Arc::new(Barrier::new(2));
    let release = Arc::new(Barrier::new(2));
    let holder = {
        let m = Arc::clone(&m);
        let (hold, release) = (Arc::clone(&hold), Arc::clone(&release));
        thread::spawn(move || {
            m.enter(Priority::NORM, |_tx| {
                hold.wait();
                release.wait();
            });
        })
    };
    hold.wait();
    assert_eq!(m.try_enter(Priority::NORM, |_tx| 1), None);
    release.wait();
    holder.join().unwrap();
    assert_eq!(m.try_enter(Priority::NORM, |_tx| 2), Some(2));
}

/// The ceiling policy boosts acquirers to the ceiling; correctness holds
/// and no revocation machinery engages.
#[test]
fn ceiling_policy_boosts_and_stays_correct() {
    let m =
        Arc::new(RevocableMonitor::with_policy(InversionPolicy::PriorityCeiling(Priority::MAX)));
    let cell = TCell::new(0i64);
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let m = Arc::clone(&m);
            let cell = cell.clone();
            let prio = if i == 0 { Priority::HIGH } else { Priority::LOW };
            thread::spawn(move || {
                for _ in 0..150 {
                    m.enter(prio, |tx| tx.update(&cell, |v| v + 1));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.read_unsynchronized(), 600);
    let st = m.stats();
    assert_eq!(st.rollbacks, 0);
    assert!(st.priority_boosts >= 600, "every acquisition below MAX boosts");
}
