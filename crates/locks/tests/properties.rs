//! Property-based tests over the real-thread monitor: atomicity and
//! exactness under randomized thread mixes, section shapes, and nesting.
//! Case counts are kept modest — each case spawns real OS threads.

use proptest::prelude::*;
use revmon_core::{InversionPolicy, Priority};
use revmon_locks::{RevocableMonitor, TCell};
use std::sync::Arc;
use std::thread;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The shared counter is exact for any mix of priorities, section
    /// sizes, and policies, despite arbitrary revocation interleavings.
    #[test]
    fn counter_exact_under_random_mixes(
        threads in 2usize..6,
        sections in 1i64..40,
        updates in 1i64..30,
        high_mask in any::<u8>(),
        policy_revoking in any::<bool>(),
    ) {
        let policy = if policy_revoking {
            InversionPolicy::Revocation
        } else {
            InversionPolicy::Blocking
        };
        let m = Arc::new(RevocableMonitor::with_policy(policy));
        let cell = TCell::new(0i64);
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let m = Arc::clone(&m);
                let cell = cell.clone();
                let prio = if (high_mask >> (i % 8)) & 1 == 1 {
                    Priority::HIGH
                } else {
                    Priority::LOW
                };
                thread::spawn(move || {
                    for _ in 0..sections {
                        m.enter(prio, |tx| {
                            for _ in 0..updates {
                                tx.update(&cell, |v| v + 1);
                            }
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(
            cell.read_unsynchronized(),
            threads as i64 * sections * updates
        );
        prop_assert_eq!(m.stats().commits, (threads as i64 * sections) as u64);
    }

    /// Multi-cell invariants survive revocation: transfers between two
    /// cells always conserve the total.
    #[test]
    fn transfers_conserve_total(
        threads in 2usize..5,
        sections in 1i64..30,
        amount in 1i64..100,
    ) {
        let m = Arc::new(RevocableMonitor::new());
        let a = TCell::new(10_000i64);
        let b = TCell::new(0i64);
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let m = Arc::clone(&m);
                let (a, b) = (a.clone(), b.clone());
                let prio = if i == 0 { Priority::HIGH } else { Priority::LOW };
                thread::spawn(move || {
                    for _ in 0..sections {
                        m.enter(prio, |tx| {
                            let va = tx.read(&a);
                            tx.write(&a, va - amount);
                            let vb = tx.read(&b);
                            tx.write(&b, vb + amount);
                            // invariant visible inside the section too
                            assert_eq!(tx.read(&a) + tx.read(&b), 10_000);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(a.read_unsynchronized() + b.read_unsynchronized(), 10_000);
        prop_assert_eq!(
            b.read_unsynchronized(),
            threads as i64 * sections * amount
        );
    }

    /// Nested distinct monitors with consistent ordering: exact results,
    /// no deadlock-breaker interference.
    #[test]
    fn ordered_nesting_is_exact(
        threads in 2usize..5,
        sections in 1i64..25,
    ) {
        let outer = Arc::new(RevocableMonitor::new());
        let inner = Arc::new(RevocableMonitor::new());
        let cell = TCell::new(0i64);
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let (outer, inner) = (Arc::clone(&outer), Arc::clone(&inner));
                let cell = cell.clone();
                let prio = if i % 2 == 0 { Priority::HIGH } else { Priority::LOW };
                thread::spawn(move || {
                    for _ in 0..sections {
                        outer.enter(prio, |tx| {
                            tx.update(&cell, |v| v + 1);
                            inner.enter(prio, |tx2| {
                                tx2.update(&cell, |v| v + 1);
                            });
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(cell.read_unsynchronized(), threads as i64 * sections * 2);
    }
}
