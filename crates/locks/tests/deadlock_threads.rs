//! Deadlock detection and breaking across real OS threads.

use revmon_core::Priority;
use revmon_locks::{RevocableMonitor, TCell, DEADLOCKS_BROKEN, DEADLOCKS_DETECTED};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

/// Classic two-monitor crossed acquisition, forced with a barrier so both
/// threads hold their first monitor before trying the second.
#[test]
fn crossed_monitors_deadlock_is_broken() {
    let a = Arc::new(RevocableMonitor::new());
    let b = Arc::new(RevocableMonitor::new());
    let cell = TCell::new(0i64);
    let both_hold = Arc::new(Barrier::new(2));
    let before = DEADLOCKS_BROKEN.load(Ordering::Relaxed);

    let t1 = {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        let cell = cell.clone();
        let both_hold = Arc::clone(&both_hold);
        let mut attempt = 0;
        thread::spawn(move || {
            a.enter(Priority::NORM, |tx| {
                attempt += 1;
                if attempt == 1 {
                    both_hold.wait();
                }
                b.enter(Priority::NORM, |tx2| {
                    tx2.update(&cell, |v| v + 1);
                });
                tx.checkpoint();
            });
        })
    };
    let t2 = {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        let cell = cell.clone();
        let both_hold = Arc::clone(&both_hold);
        let mut attempt = 0;
        thread::spawn(move || {
            b.enter(Priority::NORM, |tx| {
                attempt += 1;
                if attempt == 1 {
                    both_hold.wait();
                }
                a.enter(Priority::NORM, |tx2| {
                    tx2.update(&cell, |v| v + 1);
                });
                tx.checkpoint();
            });
        })
    };
    t1.join().unwrap();
    t2.join().unwrap();
    assert_eq!(cell.read_unsynchronized(), 2, "both inner sections completed");
    assert!(DEADLOCKS_BROKEN.load(Ordering::Relaxed) > before, "a victim must have been revoked");
    assert!(a.stats().rollbacks + b.stats().rollbacks >= 1);
}

/// Three-monitor cycle.
#[test]
fn three_way_cycle_is_broken() {
    let monitors: Vec<Arc<RevocableMonitor>> =
        (0..3).map(|_| Arc::new(RevocableMonitor::new())).collect();
    let cell = TCell::new(0i64);
    let all_hold = Arc::new(Barrier::new(3));
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let first = Arc::clone(&monitors[i]);
            let second = Arc::clone(&monitors[(i + 1) % 3]);
            let cell = cell.clone();
            let all_hold = Arc::clone(&all_hold);
            thread::spawn(move || {
                let mut attempt = 0;
                first.enter(Priority::NORM, |_tx| {
                    attempt += 1;
                    if attempt == 1 {
                        all_hold.wait();
                    }
                    second.enter(Priority::NORM, |tx2| {
                        tx2.update(&cell, |v| v + 1);
                    });
                });
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.read_unsynchronized(), 3);
}

/// When every cycle member is non-revocable the deadlock stays: detected
/// but unbroken (the paper's fallback — "applications that deadlock are
/// intrinsically incorrect"). The threads are left parked and detached.
#[test]
fn unbreakable_deadlock_stays_blocked() {
    let a = Arc::new(RevocableMonitor::new());
    let b = Arc::new(RevocableMonitor::new());
    let both_hold = Arc::new(Barrier::new(2));
    let detected_before = DEADLOCKS_DETECTED.load(Ordering::Relaxed);
    let (done_tx, done_rx) = mpsc::channel::<()>();

    for (first, second) in [(Arc::clone(&a), Arc::clone(&b)), (Arc::clone(&b), Arc::clone(&a))] {
        let both_hold = Arc::clone(&both_hold);
        let done_tx = done_tx.clone();
        thread::spawn(move || {
            first.enter(Priority::NORM, |tx| {
                tx.irrevocable(); // native-effect: cannot be revoked
                both_hold.wait();
                second.enter(Priority::NORM, |_tx2| {});
            });
            let _ = done_tx.send(());
        });
    }
    drop(done_tx);
    // Neither thread can finish.
    assert!(
        done_rx.recv_timeout(Duration::from_millis(500)).is_err(),
        "unbreakable deadlock should not resolve"
    );
    assert!(
        DEADLOCKS_DETECTED.load(Ordering::Relaxed) > detected_before,
        "the cycle is still detected"
    );
    // The two threads stay parked; they are deliberately leaked.
}

/// Consistent lock ordering never triggers the breaker.
#[test]
fn ordered_acquisition_no_false_positives() {
    let a = Arc::new(RevocableMonitor::new());
    let b = Arc::new(RevocableMonitor::new());
    let cell = TCell::new(0i64);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            let cell = cell.clone();
            thread::spawn(move || {
                for _ in 0..100 {
                    a.enter(Priority::NORM, |_tx| {
                        b.enter(Priority::NORM, |tx2| {
                            tx2.update(&cell, |v| v + 1);
                        });
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cell.read_unsynchronized(), 400);
    assert_eq!(a.stats().rollbacks + b.stats().rollbacks, 0);
}
