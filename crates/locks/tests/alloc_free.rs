//! Steady-state allocation test: after one warmup pass has populated the
//! per-thread pools (section contexts, undo-log buffer, cell stashes),
//! the uncontended enter → logged-write → commit cycle must perform
//! **zero heap allocations** — the tentpole claim of the hot-path
//! overhaul. A counting `#[global_allocator]` proves it.
//!
//! The same file also checks the pooled rollback end to end: a revoked
//! section's writes (including repeated writes to one cell) are restored
//! newest-first, so the retry observes exactly the pre-section values.
//!
//! Kept as a single `#[test]` on purpose: the allocation counter is
//! process-global, and a sibling test running on another harness thread
//! would pollute the count.

use revmon_core::Priority;
use revmon_locks::{RevocableMonitor, TCell};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// `System`, plus a counter armed only inside the measured window.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn steady_state_makes_no_allocations() {
    let m = RevocableMonitor::new();
    let a = TCell::new(0i64);
    let b = TCell::new(0i64);
    let workload = |i: i64| {
        m.enter(Priority::NORM, |tx| {
            tx.write(&a, i);
            tx.update(&b, |v| v + i);
            let _ = tx.read(&a);
            m.enter(Priority::NORM, |tx2| {
                tx2.write(&a, i + 1);
            });
        });
    };
    // Warmup: grows the undo log, the cells' stash buffers, and the
    // section-context pool to their steady-state capacity.
    for i in 0..16 {
        workload(i);
    }
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for i in 0..1_000 {
        workload(i);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(n, 0, "steady-state enter + logged write must not allocate (saw {n} allocations)");
}

fn rollback_restores_pre_section_values_newest_first() {
    let m = Arc::new(RevocableMonitor::new());
    let a = Arc::new(TCell::new(1i64));
    let b = Arc::new(TCell::new(2i64));
    let entered = Arc::new(Barrier::new(2));
    let low = {
        let m = Arc::clone(&m);
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        let entered = Arc::clone(&entered);
        thread::spawn(move || {
            let mut attempt = 0;
            let mut seen_on_retry = None;
            m.enter(Priority::LOW, |tx| {
                attempt += 1;
                if attempt > 1 {
                    // The rollback drained a's stash [1, 10] newest-first
                    // (30 → 10 → 1) and b's [2]; any ordering bug leaves
                    // a at 10 or 30 here.
                    seen_on_retry = Some((tx.read(&a), tx.read(&b)));
                    return;
                }
                tx.write(&a, 10);
                tx.write(&b, 20);
                tx.write(&a, 30);
                entered.wait();
                loop {
                    tx.checkpoint(); // revocation lands here
                    std::hint::spin_loop();
                }
            });
            seen_on_retry
        })
    };
    entered.wait();
    let high = m.enter(Priority::HIGH, |tx| (tx.read(&a), tx.read(&b)));
    assert_eq!(high, (1, 2), "HIGH must see fully restored pre-section values");
    assert_eq!(low.join().unwrap(), Some((1, 2)), "the retry starts from restored state");
    let st = m.stats();
    assert_eq!(st.rollbacks, 1);
    assert_eq!(st.entries_rolled_back, 3, "three logged writes, three restores");
}

#[test]
fn alloc_free_hot_path_and_pooled_rollback() {
    steady_state_makes_no_allocations();
    rollback_restores_pre_section_values_newest_first();
}
