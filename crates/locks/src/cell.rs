//! Transactional data cells.
//!
//! [`TCell`] is the library's unit of revocable shared state: the
//! analogue of a monitor-protected Java field. It is **only readable and
//! writable through a [`Tx`](crate::tx::Tx)** obtained from
//! [`RevocableMonitor::enter`](crate::monitor::RevocableMonitor::enter) —
//! Rust's ownership discipline statically guarantees what the paper's
//! JMM-consistency guard (§2.2) enforces dynamically: no other thread can
//! observe a speculative value, so rollback can never manufacture
//! out-of-thin-air reads.
//!
//! [`VolatileCell`] is the deliberate escape hatch, mirroring Java
//! `volatile` (Fig. 3): it is readable *without* a monitor at any time.
//! Consequently, writing one inside a synchronized section immediately
//! publishes the value, and the library responds exactly as the paper
//! prescribes — the enclosing sections become **non-revocable**.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A revocable cell holding a `T`. Cheap to clone (shared handle).
///
/// All access goes through [`Tx::read`](crate::tx::Tx::read) /
/// [`Tx::write`](crate::tx::Tx::write); the cell itself exposes only
/// construction and (for tests/reporting) a post-synchronization snapshot.
#[derive(Debug)]
pub struct TCell<T> {
    pub(crate) inner: Arc<Mutex<T>>,
}

impl<T> Clone for TCell<T> {
    fn clone(&self) -> Self {
        TCell { inner: Arc::clone(&self.inner) }
    }
}

impl<T> TCell<T> {
    /// A new cell with the given initial value.
    pub fn new(value: T) -> Self {
        TCell { inner: Arc::new(Mutex::new(value)) }
    }
}

impl<T: Clone> TCell<T> {
    /// Read the committed value from *outside* any synchronized section.
    ///
    /// Intended for after-the-fact inspection (assertions, reporting)
    /// once the threads using the cell have quiesced. Unlike a Java
    /// unsynchronized read this cannot observe a torn value, but it *can*
    /// observe a speculative one if misused while a section is live —
    /// which is why it is named the way it is.
    pub fn read_unsynchronized(&self) -> T {
        self.inner.lock().clone()
    }
}

impl<T: Default> Default for TCell<T> {
    fn default() -> Self {
        TCell::new(T::default())
    }
}

/// A Java-`volatile`-like integer cell: readable lock-free from anywhere,
/// at the price that a transactional write to it pins the enclosing
/// synchronized sections non-revocable (the paper's volatile rule).
#[derive(Debug, Default)]
pub struct VolatileCell {
    pub(crate) value: Arc<AtomicI64>,
}

impl Clone for VolatileCell {
    fn clone(&self) -> Self {
        VolatileCell { value: Arc::clone(&self.value) }
    }
}

impl VolatileCell {
    /// A new volatile cell.
    pub fn new(v: i64) -> Self {
        VolatileCell { value: Arc::new(AtomicI64::new(v)) }
    }

    /// Lock-free read, allowed anywhere (this is the point of volatile).
    pub fn load(&self) -> i64 {
        self.value.load(Ordering::SeqCst)
    }

    /// Unmonitored write (outside any section). For writes inside a
    /// section use [`Tx::write_volatile`](crate::tx::Tx::write_volatile),
    /// which applies the non-revocability rule.
    pub fn store_unsynchronized(&self, v: i64) {
        self.value.store(v, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcell_clone_shares_storage() {
        let a = TCell::new(1);
        let b = a.clone();
        *a.inner.lock() = 5;
        assert_eq!(b.read_unsynchronized(), 5);
    }

    #[test]
    fn volatile_cell_is_shared_and_atomic() {
        let v = VolatileCell::new(3);
        let w = v.clone();
        v.store_unsynchronized(9);
        assert_eq!(w.load(), 9);
    }

    #[test]
    fn tcell_default() {
        let c: TCell<i64> = TCell::default();
        assert_eq!(c.read_unsynchronized(), 0);
    }
}
