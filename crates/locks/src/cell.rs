//! Transactional data cells.
//!
//! [`TCell`] is the library's unit of revocable shared state: the
//! analogue of a monitor-protected Java field. It is **only readable and
//! writable through a [`Tx`](crate::tx::Tx)** obtained from
//! [`RevocableMonitor::enter`](crate::monitor::RevocableMonitor::enter) —
//! Rust's ownership discipline statically guarantees what the paper's
//! JMM-consistency guard (§2.2) enforces dynamically: no other thread can
//! observe a speculative value, so rollback can never manufacture
//! out-of-thin-air reads.
//!
//! Storage is a single small mutex around the live value *and* a pooled
//! stash of displaced old values: the write barrier swaps the new value
//! in and pushes the old one onto the stash in the same (uncontended)
//! lock hold. Both the stash and the thread's undo log retain their
//! capacity across sections, so a logged write performs **no heap
//! allocation** in steady state. Correct use keeps each cell
//! consistently protected by one monitor (the paper's
//! data-protected-by-its-lock discipline) — misuse is memory-safe but,
//! exactly as with the previous `Arc<Mutex<T>>` storage, can observe
//! speculative values.
//!
//! [`VolatileCell`] is the deliberate escape hatch, mirroring Java
//! `volatile` (Fig. 3): it is readable *without* a monitor at any time.
//! Consequently, writing one inside a synchronized section immediately
//! publishes the value, and the library responds exactly as the paper
//! prescribes — the enclosing sections become **non-revocable**.

use crate::tx::UndoSink;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Live value plus the stash of displaced old values (oldest first).
/// The stash is popped newest-first by rollback, or retired entry by
/// entry at the outermost commit; its capacity is the pool that makes
/// logged writes allocation-free.
pub(crate) struct CellState<T> {
    pub(crate) value: T,
    stash: Vec<T>,
}

/// Shared storage behind a [`TCell`]; doubles as its own undo-log entry
/// (the log records an `Arc<CellCore>` per write — a refcount bump, not
/// a boxed closure).
pub(crate) struct CellCore<T> {
    pub(crate) state: Mutex<CellState<T>>,
}

impl<T: Send> UndoSink for CellCore<T> {
    fn restore_one(&self) {
        let mut s = self.state.lock();
        if let Some(old) = s.stash.pop() {
            s.value = old;
        }
    }

    fn forget_one(&self) {
        // Pop-and-drop keeps the stash aligned with the undo log while
        // retaining the buffer's capacity for the next section.
        self.state.lock().stash.pop();
    }
}

/// A revocable cell holding a `T`. Cheap to clone (shared handle).
///
/// All access goes through [`Tx::read`](crate::tx::Tx::read) /
/// [`Tx::write`](crate::tx::Tx::write); the cell itself exposes only
/// construction and (for tests/reporting) a post-synchronization snapshot.
pub struct TCell<T> {
    pub(crate) core: Arc<CellCore<T>>,
}

impl<T> Clone for TCell<T> {
    fn clone(&self) -> Self {
        TCell { core: Arc::clone(&self.core) }
    }
}

impl<T> TCell<T> {
    /// A new cell with the given initial value.
    pub fn new(value: T) -> Self {
        TCell {
            core: Arc::new(CellCore { state: Mutex::new(CellState { value, stash: Vec::new() }) }),
        }
    }
}

impl<T: Clone> TCell<T> {
    /// Read the committed value from *outside* any synchronized section.
    ///
    /// Intended for after-the-fact inspection (assertions, reporting)
    /// once the threads using the cell have quiesced. Unlike a Java
    /// unsynchronized read this cannot observe a torn value, but it *can*
    /// observe a speculative one if misused while a section is live —
    /// which is why it is named the way it is.
    pub fn read_unsynchronized(&self) -> T {
        self.core.state.lock().value.clone()
    }

    /// Current value (barrier internals; the caller is the yield point).
    pub(crate) fn get(&self) -> T {
        self.core.state.lock().value.clone()
    }

    /// The write barrier's storage half: swap `v` in, stash the old
    /// value for rollback. One uncontended lock hold, no allocation once
    /// the stash has warmed up.
    pub(crate) fn stash_and_set(&self, v: T) {
        let mut s = self.core.state.lock();
        let old = std::mem::replace(&mut s.value, v);
        s.stash.push(old);
    }

    /// Number of stashed (still-revocable) old values — test visibility.
    #[cfg(test)]
    pub(crate) fn stash_len(&self) -> usize {
        self.core.state.lock().stash.len()
    }
}

impl<T: Send + 'static> TCell<T> {
    /// This cell's undo-log entry: just a refcount bump.
    pub(crate) fn undo_entry(&self) -> crate::tx::UndoEntry {
        Arc::clone(&self.core) as crate::tx::UndoEntry
    }
}

impl<T: Clone + std::fmt::Debug> std::fmt::Debug for TCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("TCell").field(&self.read_unsynchronized()).finish()
    }
}

impl<T: Default> Default for TCell<T> {
    fn default() -> Self {
        TCell::new(T::default())
    }
}

/// A Java-`volatile`-like integer cell: readable lock-free from anywhere,
/// at the price that a transactional write to it pins the enclosing
/// synchronized sections non-revocable (the paper's volatile rule).
#[derive(Debug, Default)]
pub struct VolatileCell {
    pub(crate) value: Arc<AtomicI64>,
}

impl Clone for VolatileCell {
    fn clone(&self) -> Self {
        VolatileCell { value: Arc::clone(&self.value) }
    }
}

impl VolatileCell {
    /// A new volatile cell.
    pub fn new(v: i64) -> Self {
        VolatileCell { value: Arc::new(AtomicI64::new(v)) }
    }

    /// Lock-free read, allowed anywhere (this is the point of volatile).
    pub fn load(&self) -> i64 {
        self.value.load(Ordering::SeqCst)
    }

    /// Unmonitored write (outside any section). For writes inside a
    /// section use [`Tx::write_volatile`](crate::tx::Tx::write_volatile),
    /// which applies the non-revocability rule.
    pub fn store_unsynchronized(&self, v: i64) {
        self.value.store(v, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcell_clone_shares_storage() {
        let a = TCell::new(1);
        let b = a.clone();
        a.core.state.lock().value = 5;
        assert_eq!(b.read_unsynchronized(), 5);
    }

    #[test]
    fn stash_and_restore_round_trip() {
        let c = TCell::new(1i64);
        c.stash_and_set(2);
        c.stash_and_set(3);
        assert_eq!(c.read_unsynchronized(), 3);
        c.core.restore_one();
        assert_eq!(c.read_unsynchronized(), 2);
        c.core.restore_one();
        assert_eq!(c.read_unsynchronized(), 1);
        // Empty stash: restore is a no-op, not a panic.
        c.core.restore_one();
        assert_eq!(c.read_unsynchronized(), 1);
    }

    #[test]
    fn forget_retires_without_changing_value() {
        let c = TCell::new(1i64);
        c.stash_and_set(2);
        c.core.forget_one();
        assert_eq!(c.read_unsynchronized(), 2);
        assert_eq!(c.stash_len(), 0);
    }

    #[test]
    fn volatile_cell_is_shared_and_atomic() {
        let v = VolatileCell::new(3);
        let w = v.clone();
        v.store_unsynchronized(9);
        assert_eq!(w.load(), 9);
    }

    #[test]
    fn tcell_default() {
        let c: TCell<i64> = TCell::default();
        assert_eq!(c.read_unsynchronized(), 0);
    }
}
