//! Hook between the locks runtime and the `revmon-obs` event layer.
//!
//! The library has no natural "VM object" to hang a sink on, so the sink
//! is process-global: [`install`] attaches one, [`uninstall`] detaches
//! it. Every instrumentation site first checks one relaxed atomic — with
//! no sink installed an event site costs a single load-and-branch.
//!
//! Timestamps are monotonic wall-clock nanoseconds since the first use
//! of this module in the process ([`revmon_obs::TsUnit::WallNanos`]).

use parking_lot::Mutex;
use revmon_obs::{Event, EventKind, EventSink};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Arc<EventSink>>> = Mutex::new(None);

/// Attach a sink; subsequent monitor events are recorded into it.
pub fn install(sink: Arc<EventSink>) {
    *SINK.lock() = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Detach and return the current sink, if any.
pub fn uninstall() -> Option<Arc<EventSink>> {
    ENABLED.store(false, Ordering::SeqCst);
    SINK.lock().take()
}

static NAMES: Mutex<Option<std::collections::BTreeMap<u64, String>>> = Mutex::new(None);

/// Give monitor `monitor` (an obs id, see
/// [`RevocableMonitor::obs_id`](crate::RevocableMonitor::obs_id)) a
/// human name. Analysis reports over traces from this process then say
/// `monitor "queue"` instead of `monitor 3`. Naming is process-global
/// and off the hot path; renaming overwrites.
pub fn name_monitor(monitor: u64, name: &str) {
    NAMES.lock().get_or_insert_with(Default::default).insert(monitor, name.to_string());
}

/// Snapshot of the monitor-name table, for trace export
/// ([`revmon_obs::write_trace_jsonl`]) and report rendering.
pub fn monitor_names() -> std::collections::BTreeMap<u64, String> {
    NAMES.lock().clone().unwrap_or_default()
}

/// Whether a sink is installed. The cheap gate for sites that must do
/// extra work (e.g. read the clock) before emitting.
#[inline]
pub(crate) fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonic nanoseconds since the module's first use.
pub(crate) fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Small dense id for the current OS thread, stable for its lifetime.
pub(crate) fn obs_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Emit one event for the current thread, stamped now. One branch when
/// no sink is installed.
#[inline]
pub(crate) fn emit(monitor: u64, kind: EventKind) {
    if !enabled() {
        return;
    }
    emit_slow(obs_tid(), monitor, kind);
}

/// Emit an event attributed to another thread (e.g. flagging a holder
/// for revocation). One branch when no sink is installed.
#[inline]
pub(crate) fn emit_for(thread: u64, monitor: u64, kind: EventKind) {
    if !enabled() {
        return;
    }
    emit_slow(thread, monitor, kind);
}

#[cold]
fn emit_slow(thread: u64, monitor: u64, kind: EventKind) {
    let sink = SINK.lock().clone();
    if let Some(sink) = sink {
        sink.record(Event { ts: now_ns(), thread, monitor, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmon_obs::TsUnit;

    #[test]
    fn obs_tids_are_stable_per_thread() {
        let a = obs_tid();
        let b = obs_tid();
        assert_eq!(a, b);
        let other = std::thread::spawn(obs_tid).join().unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn emit_without_sink_is_a_noop() {
        // Never installs a sink in this test binary: just must not panic.
        emit(1, EventKind::Acquire);
    }

    #[test]
    fn install_uninstall_round_trip() {
        let sink = Arc::new(EventSink::new(TsUnit::WallNanos));
        install(Arc::clone(&sink));
        assert!(enabled());
        let back = uninstall().expect("sink was installed");
        assert!(Arc::ptr_eq(&back, &sink));
        assert!(!enabled());
    }
}
