//! Per-monitor counters.
//!
//! One field list generates both the internal atomic counters
//! (`MonitorStats`) and the public point-in-time copy
//! ([`StatsSnapshot`]), so `snapshot`, `merge`, and the by-name export
//! can never drift out of sync with the counter set.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_stats {
    ($( $(#[$doc:meta])* $field:ident ),+ $(,)?) => {
        /// Internal atomic counters of one monitor.
        #[derive(Debug, Default)]
        pub(crate) struct MonitorStats {
            $( pub $field: AtomicU64, )+
        }

        /// A point-in-time copy of a monitor's counters.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $( $(#[$doc])* pub $field: u64, )+
        }

        impl MonitorStats {
            pub(crate) fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $field: self.$field.load(Ordering::Relaxed), )+
                }
            }
        }

        impl StatsSnapshot {
            /// Component-wise sum, for aggregating across monitors.
            /// Generated from the field list, so it cannot drop a field.
            pub fn merge(&mut self, other: &StatsSnapshot) {
                $( self.$field += other.$field; )+
            }

            /// Visit every counter as `(name, value)`, in declaration
            /// order.
            pub fn for_each_field(&self, mut f: impl FnMut(&'static str, u64)) {
                $( f(stringify!($field), self.$field); )+
            }

            /// Snapshot with every counter set to `v` (test helper for
            /// exhaustiveness checks).
            #[doc(hidden)]
            pub fn uniform(v: u64) -> Self {
                StatsSnapshot { $( $field: v, )+ }
            }
        }
    };
}

impl MonitorStats {
    /// Snapshot with the fast-path split folded back together.
    ///
    /// The thin-lock fast path bumps only `thin_acquires` (one counter
    /// RMW per acquire instead of two); the internal `acquires` atomic
    /// counts fat-path acquisitions alone. `commits` is derived rather
    /// than counted: every counted acquisition ends in exactly one
    /// commit or rollback (revocation retries re-count the acquisition),
    /// so at quiescence `commits = acquires − rollbacks` — and the
    /// uncontended exit path touches no shared counter at all. Every
    /// external read goes through here so the public fields keep their
    /// documented meanings.
    pub(crate) fn reconciled_snapshot(&self) -> StatsSnapshot {
        let mut s = self.snapshot();
        s.acquires += s.thin_acquires;
        s.commits = s.acquires.saturating_sub(s.rollbacks);
        s
    }
}

define_stats! {
    /// Successful acquisitions (uncontended + granted + reentrant).
    acquires,
    /// Acquisitions that completed on the thin-lock fast path (one CAS,
    /// no state lock). `acquires - thin_acquires` went through the fat
    /// (inflated) path.
    thin_acquires,
    /// Thin→fat transitions (contention, wait/notify, or revocation).
    inflations,
    /// Fat→thin transitions after the queues drained.
    deflations,
    /// Blocking episodes on the entry queue.
    contended,
    /// Revocation flags raised against holders of this monitor.
    revocations_requested,
    /// Sections of this monitor rolled back.
    rollbacks,
    /// Undo entries restored by those rollbacks.
    entries_rolled_back,
    /// Sections committed. Derived at snapshot read points as
    /// `acquires − rollbacks` (exact at quiescence); the atomic itself
    /// stays zero so the commit fast path pays no shared-counter RMW.
    commits,
    /// Inversions left unresolved (holder non-revocable).
    inversions_unresolved,
    /// Undo-log entries written (write-barrier slow paths).
    log_entries,
    /// Sections marked non-revocable.
    nonrevocable_marks,
    /// Deadlocks broken by revoking a holder of this monitor.
    deadlocks_broken,
    /// Priority-inheritance / ceiling boosts applied.
    priority_boosts,
    /// Revocations denied by the governor's retry budget (the contender
    /// blocked on the prioritized queue instead).
    governor_throttles,
    /// Fresh fallback-to-blocking windows the governor opened.
    policy_fallbacks,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_cannot_drop_a_field() {
        let mut total = StatsSnapshot::uniform(1);
        total.merge(&StatsSnapshot::uniform(10));
        let mut n = 0;
        total.for_each_field(|name, v| {
            assert_eq!(v, 11, "field {name} dropped by merge");
            n += 1;
        });
        assert!(n >= 11, "field list shrank unexpectedly");
    }

    #[test]
    fn snapshot_reads_the_atomics() {
        let stats = MonitorStats::default();
        stats.acquires.fetch_add(2, Ordering::Relaxed);
        stats.rollbacks.fetch_add(1, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.acquires, 2);
        assert_eq!(snap.rollbacks, 1);
        assert_eq!(snap.commits, 0);
    }
}
