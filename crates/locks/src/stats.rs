//! Per-monitor counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters of one monitor.
#[derive(Debug, Default)]
pub(crate) struct MonitorStats {
    pub acquires: AtomicU64,
    pub contended: AtomicU64,
    pub revocations_requested: AtomicU64,
    pub rollbacks: AtomicU64,
    pub entries_rolled_back: AtomicU64,
    pub commits: AtomicU64,
    pub inversions_unresolved: AtomicU64,
    pub log_entries: AtomicU64,
    pub nonrevocable_marks: AtomicU64,
    pub deadlocks_broken: AtomicU64,
    pub priority_boosts: AtomicU64,
}

/// A point-in-time copy of a monitor's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Successful acquisitions (uncontended + granted + reentrant).
    pub acquires: u64,
    /// Blocking episodes on the entry queue.
    pub contended: u64,
    /// Revocation flags raised against holders of this monitor.
    pub revocations_requested: u64,
    /// Sections of this monitor rolled back.
    pub rollbacks: u64,
    /// Undo entries restored by those rollbacks.
    pub entries_rolled_back: u64,
    /// Sections committed.
    pub commits: u64,
    /// Inversions left unresolved (holder non-revocable).
    pub inversions_unresolved: u64,
    /// Undo-log entries written (write-barrier slow paths).
    pub log_entries: u64,
    /// Sections marked non-revocable.
    pub nonrevocable_marks: u64,
    /// Deadlocks broken by revoking a holder of this monitor.
    pub deadlocks_broken: u64,
    /// Priority-inheritance / ceiling boosts applied.
    pub priority_boosts: u64,
}

impl MonitorStats {
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            acquires: self.acquires.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            revocations_requested: self.revocations_requested.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            entries_rolled_back: self.entries_rolled_back.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            inversions_unresolved: self.inversions_unresolved.load(Ordering::Relaxed),
            log_entries: self.log_entries.load(Ordering::Relaxed),
            nonrevocable_marks: self.nonrevocable_marks.load(Ordering::Relaxed),
            deadlocks_broken: self.deadlocks_broken.load(Ordering::Relaxed),
            priority_boosts: self.priority_boosts.load(Ordering::Relaxed),
        }
    }
}
