//! Per-monitor counters.
//!
//! One field list generates both the internal atomic counters
//! (`MonitorStats`) and the public point-in-time copy
//! ([`StatsSnapshot`]), so `snapshot`, `merge`, and the by-name export
//! can never drift out of sync with the counter set.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_stats {
    ($( $(#[$doc:meta])* $field:ident ),+ $(,)?) => {
        /// Internal atomic counters of one monitor.
        #[derive(Debug, Default)]
        pub(crate) struct MonitorStats {
            $( pub $field: AtomicU64, )+
        }

        /// A point-in-time copy of a monitor's counters.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $( $(#[$doc])* pub $field: u64, )+
        }

        impl MonitorStats {
            pub(crate) fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $field: self.$field.load(Ordering::Relaxed), )+
                }
            }
        }

        impl StatsSnapshot {
            /// Component-wise sum, for aggregating across monitors.
            /// Generated from the field list, so it cannot drop a field.
            pub fn merge(&mut self, other: &StatsSnapshot) {
                $( self.$field += other.$field; )+
            }

            /// Visit every counter as `(name, value)`, in declaration
            /// order.
            pub fn for_each_field(&self, mut f: impl FnMut(&'static str, u64)) {
                $( f(stringify!($field), self.$field); )+
            }

            /// Snapshot with every counter set to `v` (test helper for
            /// exhaustiveness checks).
            #[doc(hidden)]
            pub fn uniform(v: u64) -> Self {
                StatsSnapshot { $( $field: v, )+ }
            }
        }
    };
}

define_stats! {
    /// Successful acquisitions (uncontended + granted + reentrant).
    acquires,
    /// Blocking episodes on the entry queue.
    contended,
    /// Revocation flags raised against holders of this monitor.
    revocations_requested,
    /// Sections of this monitor rolled back.
    rollbacks,
    /// Undo entries restored by those rollbacks.
    entries_rolled_back,
    /// Sections committed.
    commits,
    /// Inversions left unresolved (holder non-revocable).
    inversions_unresolved,
    /// Undo-log entries written (write-barrier slow paths).
    log_entries,
    /// Sections marked non-revocable.
    nonrevocable_marks,
    /// Deadlocks broken by revoking a holder of this monitor.
    deadlocks_broken,
    /// Priority-inheritance / ceiling boosts applied.
    priority_boosts,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_cannot_drop_a_field() {
        let mut total = StatsSnapshot::uniform(1);
        total.merge(&StatsSnapshot::uniform(10));
        let mut n = 0;
        total.for_each_field(|name, v| {
            assert_eq!(v, 11, "field {name} dropped by merge");
            n += 1;
        });
        assert!(n >= 11, "field list shrank unexpectedly");
    }

    #[test]
    fn snapshot_reads_the_atomics() {
        let stats = MonitorStats::default();
        stats.acquires.fetch_add(2, Ordering::Relaxed);
        stats.rollbacks.fetch_add(1, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.acquires, 2);
        assert_eq!(snap.rollbacks, 1);
        assert_eq!(snap.commits, 0);
    }
}
