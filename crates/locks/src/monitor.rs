//! The revocable monitor for real OS threads.
//!
//! Semantics mirror the paper's revocable monitors on the VM side:
//!
//! * **prioritized entry queues** — on release, ownership transfers to
//!   the highest-priority waiter (FIFO within a class);
//! * **inversion detection at acquisition** — a contender whose priority
//!   exceeds the priority deposited by the holder flags the holder's
//!   outermost section on this monitor for revocation;
//! * **revocation at yield points** — the holder polls the flag at every
//!   `Tx` access (and `checkpoint()`), unwinds via the rollback signal,
//!   restores every logged update *before* releasing the monitor, and
//!   retries the closure after the high-priority thread has run;
//! * **policy baselines** — plain blocking, queue-level priority
//!   inheritance, and priority ceiling are available for comparison.
//!
//! # Thin and fat locks
//!
//! Like the Jikes RVM locking the paper builds on, the monitor is **thin
//! by default**: a single `AtomicU64` lock word packs the owner's dense
//! thread id, the recursion count, and the deposited priority, so an
//! uncontended `enter` and `exit` are one CAS each — no OS mutex, no
//! queue, no allocation. The word *inflates* to the full
//! `Mutex<MState>` prioritized-queue representation only on contention,
//! `wait`/`notify`, or revocation, and deflates back to thin once the
//! queues drain. See `docs/INTERNALS.md` for the encoding and the
//! inflation protocol.
//!
//! Closures passed to [`RevocableMonitor::enter`] may run multiple times;
//! like any optimistic-execution API, side effects outside the `Tx` must
//! be idempotent or deferred (use [`Tx::irrevocable`] for native-call-like
//! effects, which pins the section non-revocable first).

use crate::obs;
use crate::registry;
use crate::signal::{as_rollback, RollbackSignal};
use crate::stats::{MonitorStats, StatsSnapshot};
use crate::tx::{self, SectionCtx, Tx};
use parking_lot::{Mutex, MutexGuard};
use revmon_core::{Governor, GovernorConfig, GovernorVerdict, InversionPolicy, Priority};
use revmon_obs::prof::{timers, Phase};
use revmon_obs::EventKind;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, Thread};

static NEXT_MONITOR_ID: AtomicU64 = AtomicU64::new(1);

// ------------------------------------------------------------ lock word
//
// Bit layout of `RevocableMonitor::word`:
//
//   bits  0..32   owner dense thread id (0 = unowned)
//   bits 32..48   recursion count (thin states hold >= 1)
//   bits 48..56   deposited holder priority (the "monitor header"
//                 priority of §4, readable by contenders without a lock)
//   bit      63   INFLATED — the word is frozen and `state` is
//                 authoritative
//
// Invariant: the word is either 0 (free, thin-acquirable), a thin
// ownership record, or exactly `INFLATED`. Transitions out of 0/thin are
// single CASes; `INFLATED` is only set while holding `state` and only
// cleared (deflation) by a full release that leaves no queue, grant, or
// wait-set entries.

/// Word bit marking the monitor as inflated (fat).
const INFLATED: u64 = 1 << 63;
/// One recursion-count increment.
const REC_ONE: u64 = 1 << 32;
/// Maximum thin recursion depth; deeper nesting inflates.
const REC_MAX: u64 = 0xFFFF;

#[inline]
fn pack_thin(dense: u32, rec: u64, prio: u8) -> u64 {
    dense as u64 | (rec << 32) | ((prio as u64) << 48)
}
#[inline]
fn thin_owner(w: u64) -> u32 {
    w as u32
}
#[inline]
fn thin_rec(w: u64) -> u64 {
    (w >> 32) & REC_MAX
}
#[inline]
fn thin_prio(w: u64) -> u8 {
    (w >> 48) as u8
}

#[derive(Debug)]
struct Waiter {
    handle: Thread,
    tid: thread::ThreadId,
    priority: Priority,
    seq: u64,
    /// Observability id of the waiting thread.
    obs: u64,
}

#[derive(Debug)]
struct WaitSetEntry {
    handle: Thread,
    notified: Arc<std::sync::atomic::AtomicBool>,
}

/// Fat-monitor state; authoritative only while the word is `INFLATED`.
#[derive(Default)]
struct MState {
    owner: Option<thread::ThreadId>,
    /// Runtime slot of the owner: park handle, observability id, and the
    /// cached revocation flag contenders raise alongside the section's.
    owner_slot: Option<Arc<tx::ThreadSlot>>,
    /// Priority deposited in the "monitor header" at acquisition (§4).
    holder_priority: Priority,
    /// Active sections of the owner on this monitor, outermost first.
    holder_ctxs: Vec<Arc<SectionCtx>>,
    recursion: u32,
    queue: Vec<Waiter>,
    /// Handoff token: the thread ownership was transferred to.
    grant: Option<thread::ThreadId>,
    next_seq: u64,
    wait_set: Vec<WaitSetEntry>,
}

impl std::fmt::Debug for MState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MState")
            .field("owner", &self.owner)
            .field("recursion", &self.recursion)
            .field("queue_len", &self.queue.len())
            .field("wait_set_len", &self.wait_set.len())
            .field("grant", &self.grant)
            .finish()
    }
}

/// A monitor whose synchronized sections can be revoked to resolve
/// priority inversion (and break deadlocks).
///
/// ```
/// use revmon_locks::{RevocableMonitor, TCell};
/// use revmon_core::Priority;
///
/// let m = RevocableMonitor::new();
/// let balance = TCell::new(100i64);
/// let got = m.enter(Priority::HIGH, |tx| {
///     let b = tx.read(&balance);
///     tx.write(&balance, b - 30);
///     b - 30
/// });
/// assert_eq!(got, 70);
/// assert_eq!(balance.read_unsynchronized(), 70);
/// ```
#[derive(Debug)]
pub struct RevocableMonitor {
    id: u64,
    policy: InversionPolicy,
    /// Thin-lock word (see the module docs for the encoding).
    word: AtomicU64,
    /// Fat representation; authoritative only while `word` is inflated.
    state: Mutex<MState>,
    /// Whether the revocation governor is enabled — a relaxed load keeps
    /// the commit/rollback hot paths free of the governor mutex when the
    /// monitor is ungoverned (the default).
    governed: std::sync::atomic::AtomicBool,
    /// Adaptive revocation governor: config + per-holder history. Leaf
    /// lock, acquired (rarely) with or without `state` held.
    governor: Mutex<(GovernorConfig, Governor)>,
    pub(crate) stats: Arc<MonitorStats>,
}

impl Default for RevocableMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl RevocableMonitor {
    /// A revocation-policy monitor (the paper's mechanism).
    pub fn new() -> Self {
        Self::with_policy(InversionPolicy::Revocation)
    }

    /// A monitor under an explicit policy (blocking / inheritance /
    /// ceiling baselines).
    pub fn with_policy(policy: InversionPolicy) -> Self {
        let stats = Arc::new(MonitorStats::default());
        registry::register_stats(&stats);
        RevocableMonitor {
            id: NEXT_MONITOR_ID.fetch_add(1, Ordering::Relaxed),
            policy,
            word: AtomicU64::new(0),
            state: Mutex::new(MState::default()),
            governed: std::sync::atomic::AtomicBool::new(false),
            governor: Mutex::new((GovernorConfig::disabled(), Governor::new())),
            stats,
        }
    }

    /// A named revocation-policy monitor — shorthand for
    /// [`new`](Self::new) + [`set_name`](Self::set_name).
    pub fn named(name: &str) -> Self {
        let m = Self::new();
        m.set_name(name);
        m
    }

    /// Give this monitor a human name; analysis reports over traces
    /// from this process then say `monitor "queue"` instead of its
    /// numeric id. Off the hot path; renaming overwrites.
    pub fn set_name(&self, name: &str) {
        obs::name_monitor(self.id, name);
    }

    /// The id this monitor carries in [`revmon_obs::Event::monitor`] —
    /// the key for `obs::monitor_names()` and trace name tables.
    pub fn obs_id(&self) -> u64 {
        self.id
    }

    /// This monitor's policy.
    pub fn policy(&self) -> InversionPolicy {
        self.policy
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.reconciled_snapshot()
    }

    /// Configure the adaptive revocation governor for this monitor
    /// (`GovernorConfig::disabled()` turns it back off). `backoff` and
    /// `decay` are in nanoseconds on this runtime (the observability
    /// clock). Takes effect for subsequent contention; accumulated
    /// per-holder history is kept.
    pub fn set_governor(&self, cfg: GovernorConfig) {
        let mut g = self.governor.lock();
        g.0 = cfg;
        self.governed.store(cfg.enabled(), Ordering::Relaxed);
    }

    /// Largest current consecutive-revocation streak the governor has
    /// tracked on this monitor (0 when ungoverned). Under a budget of
    /// `k` this never exceeds `k` — the bounded-revocation guarantee.
    pub fn governor_max_streak(&self) -> u32 {
        self.governor.lock().1.max_streak()
    }

    /// Consult the governor about revoking the holder (identified by its
    /// observability id). A denial is counted, emitted, and answered
    /// `false`: the contender must block on the prioritized queue.
    fn governor_allows(&self, holder_obs: u64) -> bool {
        if !self.governed.load(Ordering::Relaxed) {
            return true;
        }
        let verdict = {
            let mut g = self.governor.lock();
            let (cfg, gov) = &mut *g;
            gov.consult(*cfg, self.id, holder_obs, obs::now_ns())
        };
        match verdict {
            GovernorVerdict::Allow => true,
            GovernorVerdict::Fallback { fresh } => {
                self.stats.governor_throttles.fetch_add(1, Ordering::Relaxed);
                if fresh {
                    self.stats.policy_fallbacks.fetch_add(1, Ordering::Relaxed);
                }
                if obs::enabled() {
                    obs::emit_for(
                        holder_obs,
                        self.id,
                        EventKind::GovernorThrottle { by: obs::obs_tid() },
                    );
                    if fresh {
                        obs::emit_for(holder_obs, self.id, EventKind::PolicyFallback);
                    }
                }
                false
            }
        }
    }

    /// Execute `f` inside the monitor at `priority`.
    ///
    /// Under the revocation policy the closure may execute several times:
    /// a higher-priority contender can preempt it mid-flight, in which
    /// case all `Tx` writes are rolled back and `f` re-runs after the
    /// contender has gone through. A panic from `f` itself (not a
    /// revocation) keeps the updates, releases the monitor, and
    /// propagates — Java exception semantics.
    pub fn enter<R>(&self, priority: Priority, mut f: impl FnMut(&mut Tx<'_>) -> R) -> R {
        loop {
            let ctx = self.acquire(priority);
            let result = {
                let mut tx = Tx { ctx: &ctx, monitor: self, logged: Cell::new(0) };
                let r = catch_unwind(AssertUnwindSafe(|| f(&mut tx)));
                self.flush_logged(&tx);
                r
            };
            match result {
                Ok(r) => {
                    self.commit_and_release(&ctx);
                    return r;
                }
                Err(payload) => {
                    if let Some(sig) = as_rollback(&*payload) {
                        let retry = sig.target == ctx.id;
                        self.rollback_and_release(&ctx);
                        if retry {
                            // This frame is the revocation target: retry.
                            // (Ownership was handed to the queue head —
                            // the high-priority thread — so our re-entry
                            // queues behind it, as in Fig. 1(d–e).)
                            continue;
                        }
                        // An enclosing section is the target: keep
                        // unwinding, like the injected handlers re-throw.
                        resume_unwind(payload);
                    }
                    // Genuine user panic: Java semantics — the updates
                    // stand, the monitor is released, the panic continues.
                    self.commit_and_release(&ctx);
                    resume_unwind(payload);
                }
            }
        }
    }

    /// Like [`enter`](Self::enter) at [`Priority::NORM`].
    pub fn enter_norm<R>(&self, f: impl FnMut(&mut Tx<'_>) -> R) -> R {
        self.enter(Priority::NORM, f)
    }

    /// Non-blocking [`enter`](Self::enter): run `f` only if the monitor
    /// is immediately available (or already held by this thread).
    ///
    /// Returns `None` without running `f` when the monitor is busy — and
    /// also when the section was *revoked* mid-flight and the monitor was
    /// no longer free on retry (the closure's effects are rolled back, so
    /// `None` always means "nothing happened").
    pub fn try_enter<R>(
        &self,
        priority: Priority,
        mut f: impl FnMut(&mut Tx<'_>) -> R,
    ) -> Option<R> {
        loop {
            let ctx = self.try_acquire(priority)?;
            let result = {
                let mut tx = Tx { ctx: &ctx, monitor: self, logged: Cell::new(0) };
                let r = catch_unwind(AssertUnwindSafe(|| f(&mut tx)));
                self.flush_logged(&tx);
                r
            };
            match result {
                Ok(r) => {
                    self.commit_and_release(&ctx);
                    return Some(r);
                }
                Err(payload) => {
                    if let Some(sig) = as_rollback(&*payload) {
                        let retry = sig.target == ctx.id;
                        self.rollback_and_release(&ctx);
                        if retry {
                            continue; // retry without blocking
                        }
                        resume_unwind(payload);
                    }
                    self.commit_and_release(&ctx);
                    resume_unwind(payload);
                }
            }
        }
    }

    // ------------------------------------------------------------ fast path

    /// One-CAS acquisition: claim a free word, or bump the recursion of a
    /// word we already own thin. `None` ⇒ take the slow path.
    #[inline]
    fn fast_enter(&self, eff: Priority) -> Option<Arc<SectionCtx>> {
        let w = self.word.load(Ordering::Relaxed);
        if w == 0 {
            // Push the section *before* publishing ownership: an
            // inflating contender finds holder sections through our
            // stack, so the stack must already contain this section by
            // the time the CAS makes us visible as the owner.
            let ctx = tx::begin_section(self.id);
            let dense = tx::my_dense();
            if self
                .word
                .compare_exchange(
                    0,
                    pack_thin(dense, 1, eff.level()),
                    Ordering::Acquire,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                self.note_thin_acquire();
                return Some(ctx);
            }
            tx::abandon_section(&ctx);
            return None;
        }
        if w & INFLATED == 0 && thin_rec(w) < REC_MAX && thin_owner(w) == tx::my_dense() {
            // Reentrant: same push-before-CAS ordering; the original
            // deposited priority is kept (outermost acquisition rules).
            let ctx = tx::begin_section(self.id);
            if self
                .word
                .compare_exchange(w, w + REC_ONE, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.note_thin_acquire();
                return Some(ctx);
            }
            tx::abandon_section(&ctx);
        }
        None
    }

    #[inline]
    fn note_thin_acquire(&self) {
        // One RMW: `thin_acquires` alone. Snapshot read points fold it
        // back into the public `acquires` total (`reconciled_snapshot`).
        self.stats.thin_acquires.fetch_add(1, Ordering::Relaxed);
        obs::emit(self.id, EventKind::Acquire);
    }

    /// One-CAS release of a thin-owned word. Falls back to the slow path
    /// when the word was inflated underneath us.
    #[inline]
    fn fast_release(&self, ctx: &Arc<SectionCtx>) {
        let w = self.word.load(Ordering::Relaxed);
        if w & INFLATED == 0 {
            let rec = thin_rec(w);
            let new = if rec > 1 { w - REC_ONE } else { 0 };
            if self.word.compare_exchange(w, new, Ordering::Release, Ordering::Relaxed).is_ok() {
                if rec == 1 {
                    obs::emit(self.id, EventKind::Release);
                }
                return;
            }
        }
        self.release_slow(ctx);
    }

    /// Flush the attempt's locally-counted log entries into the shared
    /// counter (once per attempt, off the write hot path).
    #[inline]
    fn flush_logged(&self, tx: &Tx<'_>) {
        let n = tx.logged.get();
        if n > 0 {
            self.stats.log_entries.fetch_add(n, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------ internals

    fn effective(&self, priority: Priority) -> Priority {
        match self.policy {
            InversionPolicy::PriorityCeiling(c) => priority.max_of(c),
            _ => priority,
        }
    }

    /// Acquire the monitor (blocking), push the new section, and return
    /// its context. Unwinds with a rollback signal if this thread is
    /// revoked while parked (deadlock victim / enclosing-section
    /// revocation).
    fn acquire(&self, priority: Priority) -> Arc<SectionCtx> {
        let eff = self.effective(priority);
        if eff > priority {
            self.stats.priority_boosts.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(ctx) = self.fast_enter(eff) {
            return ctx;
        }
        self.acquire_slow(eff)
    }

    /// Inflate the monitor (idempotent) and return the state guard.
    ///
    /// Every slow-path entry to `state` goes through here: the guard is
    /// only meaningful while the word is frozen `INFLATED`, and a
    /// deflated word must be re-frozen *under the state lock* before any
    /// `MState` field is trusted — otherwise a concurrent thin CAS could
    /// claim ownership the fat state knows nothing about.
    fn inflate(&self) -> MutexGuard<'_, MState> {
        let mut s = self.state.lock();
        let prof = timers();
        loop {
            let w = self.word.load(Ordering::Acquire);
            if w & INFLATED != 0 {
                return s;
            }
            // An actual thin→fat transition from here on: span it. (The
            // already-inflated path above stays timer-free.)
            let t_inflate = prof.start(Phase::Inflate);
            if w == 0 {
                // Free: freeze an unowned word.
                if self
                    .word
                    .compare_exchange(0, INFLATED, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    self.stats.inflations.fetch_add(1, Ordering::Relaxed);
                    debug_assert!(s.owner.is_none(), "deflated word with fat owner");
                    prof.finish(Phase::Inflate, t_inflate);
                    return s;
                }
                continue;
            }
            // Thin, held: freeze, then migrate the holder's state out of
            // the word and its thread slot.
            if self.word.compare_exchange(w, INFLATED, Ordering::AcqRel, Ordering::Relaxed).is_err()
            {
                continue;
            }
            self.stats.inflations.fetch_add(1, Ordering::Relaxed);
            let rec = thin_rec(w) as usize;
            let prio = Priority::new(thin_prio(w));
            if let Some(owner_slot) = tx::slot_by_dense(thin_owner(w)) {
                // `take(rec)`: the holder pushes sections before its
                // enter-CAS and pops before its exit-CAS, so its stack
                // may briefly hold one in-flight section beyond (or one
                // short of) the frozen count; the word's count is the
                // committed truth.
                s.holder_ctxs = owner_slot
                    .sections
                    .lock()
                    .iter()
                    .filter(|c| c.monitor_id == self.id && !c.exited.load(Ordering::Acquire))
                    .take(rec)
                    .cloned()
                    .collect();
                s.owner = Some(owner_slot.handle.id());
                s.recursion = rec as u32;
                s.holder_priority = prio;
                if let Some(outer) = s.holder_ctxs.first() {
                    registry::on_acquire(self.id, Arc::clone(&owner_slot), prio, Arc::clone(outer));
                }
                s.owner_slot = Some(owner_slot);
            }
            prof.finish(Phase::Inflate, t_inflate);
            return s;
        }
    }

    /// Blocking acquisition through the inflated representation: the
    /// seed prioritized-queue protocol, unchanged in semantics.
    #[cold]
    fn acquire_slow(&self, eff: Priority) -> Arc<SectionCtx> {
        let slot = tx::my_slot();
        let me = slot.handle.clone();
        let mut counted_contended = false;
        let mut enqueued = false;
        let mut s = self.inflate();
        loop {
            // Reentrant path (inflated while we hold it).
            if s.owner == Some(me.id()) {
                s.recursion += 1;
                let ctx = tx::begin_section(self.id);
                s.holder_ctxs.push(Arc::clone(&ctx));
                drop(s);
                self.stats.acquires.fetch_add(1, Ordering::Relaxed);
                obs::emit(self.id, EventKind::Acquire);
                return ctx;
            }
            // Free (and not reserved for someone else) or granted to us.
            let granted = s.grant == Some(me.id());
            if granted || (s.owner.is_none() && s.grant.is_none()) {
                if granted {
                    s.grant = None;
                }
                s.owner = Some(me.id());
                s.recursion = 1;
                s.holder_priority = eff;
                let ctx = tx::begin_section(self.id);
                s.holder_ctxs = vec![Arc::clone(&ctx)];
                if enqueued {
                    s.queue.retain(|w| w.tid != me.id());
                }
                // Detection at acquisition, holder side: a higher-priority
                // waiter may have queued while this grant was in flight —
                // it must not sit out our whole section. Self-flag so the
                // first yield point rolls us (cheaply, log still empty)
                // back behind it.
                if matches!(self.policy, InversionPolicy::Revocation) {
                    if let Some(top) =
                        s.queue.iter().max_by_key(|w| (w.priority, std::cmp::Reverse(w.seq)))
                    {
                        if top.priority > eff && self.governor_allows(slot.obs) {
                            let by = top.obs;
                            ctx.revoke.store(true, Ordering::Release);
                            slot.pending_revoke.store(true, Ordering::Release);
                            self.stats.revocations_requested.fetch_add(1, Ordering::Relaxed);
                            obs::emit(self.id, EventKind::RevokeRequest { by });
                        }
                    }
                }
                s.owner_slot = Some(Arc::clone(&slot));
                drop(s);
                registry::on_unblock(me.id());
                registry::on_acquire(self.id, Arc::clone(&slot), eff, Arc::clone(&ctx));
                self.stats.acquires.fetch_add(1, Ordering::Relaxed);
                obs::emit(self.id, EventKind::Acquire);
                return ctx;
            }
            // Contended.
            if !counted_contended {
                self.stats.contended.fetch_add(1, Ordering::Relaxed);
                counted_contended = true;
                obs::emit(self.id, EventKind::Block);
            }
            match self.policy {
                InversionPolicy::Revocation => {
                    if eff > s.holder_priority {
                        let t_signal = timers().start(Phase::SignalVictim);
                        if let Some(target) = s.holder_ctxs.first() {
                            let holder_obs = s.owner_slot.as_ref().map_or(0, |o| o.obs);
                            if !target.revocable() {
                                self.stats.inversions_unresolved.fetch_add(1, Ordering::Relaxed);
                                if obs::enabled() {
                                    obs::emit_for(
                                        holder_obs,
                                        self.id,
                                        EventKind::InversionUnresolved { by: obs::obs_tid() },
                                    );
                                }
                            } else if self.governor_allows(holder_obs) {
                                // Section flag first, cached thread flag
                                // second (both Release): the holder's
                                // slow poll consumes the cached flag and
                                // then scans, so this order guarantees
                                // the scan sees the flagged section. The
                                // cached flag is re-raised every loop
                                // iteration in case a slow poll consumed
                                // it without unwinding.
                                if !target.revoke.swap(true, Ordering::AcqRel) {
                                    self.stats
                                        .revocations_requested
                                        .fetch_add(1, Ordering::Relaxed);
                                    if obs::enabled() {
                                        obs::emit_for(
                                            holder_obs,
                                            self.id,
                                            EventKind::RevokeRequest { by: obs::obs_tid() },
                                        );
                                    }
                                }
                                if let Some(holder) = &s.owner_slot {
                                    holder.pending_revoke.store(true, Ordering::Release);
                                    // Wake the holder wherever it is
                                    // parked so it reaches a yield point
                                    // promptly.
                                    holder.handle.unpark();
                                }
                            }
                        }
                        timers().finish(Phase::SignalVictim, t_signal);
                    }
                }
                InversionPolicy::PriorityInheritance => {
                    if eff > s.holder_priority {
                        // Queue-level inheritance: raise the deposited
                        // priority so the holder wins queues it waits in
                        // and is not preempted by mid-priority contenders.
                        s.holder_priority = eff;
                        self.stats.priority_boosts.fetch_add(1, Ordering::Relaxed);
                    }
                }
                InversionPolicy::Blocking | InversionPolicy::PriorityCeiling(_) => {}
            }
            if !enqueued {
                let seq = s.next_seq;
                s.next_seq += 1;
                s.queue.push(Waiter {
                    handle: me.clone(),
                    tid: me.id(),
                    priority: eff,
                    seq,
                    obs: slot.obs,
                });
                enqueued = true;
                drop(s);
                registry::on_block(self.id, me.clone(), eff);
            } else {
                drop(s);
            }
            thread::park();
            // Woken: revoked while parked? (deadlock victim, or an
            // enclosing section flagged by another monitor's contender)
            if let Some(target) = tx::outermost_flagged() {
                let mut s2 = self.state.lock();
                s2.queue.retain(|w| w.tid != me.id());
                if s2.grant == Some(me.id()) {
                    // We were simultaneously granted: pass it on.
                    s2.grant = None;
                    self.grant_next(&mut s2);
                }
                self.maybe_deflate(&mut s2);
                drop(s2);
                registry::on_unblock(me.id());
                resume_unwind(Box::new(RollbackSignal { target }));
            }
            // Still queued or granted, so the word stayed inflated;
            // `inflate()` degenerates to the plain lock.
            s = self.inflate();
        }
    }

    /// Take the monitor only if free (or reentrant). No queueing, no
    /// inflation when a stranger holds it thin.
    fn try_acquire(&self, priority: Priority) -> Option<Arc<SectionCtx>> {
        let eff = self.effective(priority);
        if let Some(ctx) = self.fast_enter(eff) {
            return Some(ctx);
        }
        let slot = tx::my_slot();
        let w = self.word.load(Ordering::Acquire);
        if w != 0 && w & INFLATED == 0 && thin_owner(w) != slot.dense {
            return None; // thin, held by another thread: busy
        }
        let me = slot.handle.clone();
        let mut s = self.inflate();
        if s.owner == Some(me.id()) {
            s.recursion += 1;
            let ctx = tx::begin_section(self.id);
            s.holder_ctxs.push(Arc::clone(&ctx));
            drop(s);
            self.stats.acquires.fetch_add(1, Ordering::Relaxed);
            obs::emit(self.id, EventKind::Acquire);
            return Some(ctx);
        }
        if s.owner.is_some() || s.grant.is_some() {
            return None;
        }
        s.owner = Some(me.id());
        s.owner_slot = Some(Arc::clone(&slot));
        s.recursion = 1;
        s.holder_priority = eff;
        let ctx = tx::begin_section(self.id);
        s.holder_ctxs = vec![Arc::clone(&ctx)];
        drop(s);
        registry::on_acquire(self.id, slot, eff, Arc::clone(&ctx));
        self.stats.acquires.fetch_add(1, Ordering::Relaxed);
        obs::emit(self.id, EventKind::Acquire);
        Some(ctx)
    }

    /// Emit a `Rollback` event whose duration is measured from `t0`
    /// (nanoseconds, observability clock).
    fn emit_rollback(&self, entries: u64, t0: u64) {
        let duration = obs::now_ns().saturating_sub(t0);
        obs::emit(self.id, EventKind::Rollback { entries, duration });
    }

    /// Commit the section (retiring the undo entries if outermost) and
    /// release one recursion level.
    fn commit_and_release(&self, ctx: &Arc<SectionCtx>) {
        // No commit counter here: `commits` is derived at snapshot time
        // (acquires − rollbacks), keeping the uncontended exit at zero
        // shared-counter RMWs.
        let outermost = tx::commit_top_section(ctx);
        if outermost {
            // Mirror the VM's trace semantics: one Commit per retired
            // undo log, i.e. per outermost section exit.
            obs::emit(self.id, EventKind::Commit);
            if self.governed.load(Ordering::Relaxed) {
                let obs_id = tx::my_slot().obs;
                self.governor.lock().1.record_commit(self.id, obs_id, obs::now_ns());
            }
        }
        self.fast_release(ctx);
    }

    /// Restore shared state *before* releasing (§3.1.2), then release
    /// one recursion level.
    fn rollback_and_release(&self, ctx: &Arc<SectionCtx>) {
        let governed = self.governed.load(Ordering::Relaxed);
        let t0 = (obs::enabled() || governed).then(obs::now_ns);
        let n = tx::rollback_section(ctx);
        self.stats.rollbacks.fetch_add(1, Ordering::Relaxed);
        self.stats.entries_rolled_back.fetch_add(n as u64, Ordering::Relaxed);
        if let Some(t0) = t0.filter(|_| obs::enabled()) {
            self.emit_rollback(n as u64, t0);
        }
        if governed {
            let obs_id = tx::my_slot().obs;
            let now = obs::now_ns();
            // Discarded time ≈ the rollback's own duration on this
            // runtime (sections carry no entry timestamp); undo entries
            // are the primary waste measure.
            let wasted = now.saturating_sub(t0.unwrap_or(now));
            let mut g = self.governor.lock();
            let (cfg, gov) = &mut *g;
            gov.record_revocation(*cfg, self.id, obs_id, now, n as u64, wasted);
        }
        tx::exit_section(ctx);
        self.fast_release(ctx);
    }

    /// Release one recursion level through the fat state; on full
    /// release hand off to the highest-priority waiter and deflate once
    /// nothing is queued, granted, or waiting.
    #[cold]
    fn release_slow(&self, ctx: &Arc<SectionCtx>) {
        let mut s = self.inflate();
        if let Some(pos) = s.holder_ctxs.iter().position(|c| c.id == ctx.id) {
            s.holder_ctxs.remove(pos);
        }
        s.recursion = s.recursion.saturating_sub(1);
        if s.recursion > 0 {
            return;
        }
        let owner = s.owner.take();
        s.owner_slot = None;
        s.holder_ctxs.clear();
        // Emit before handing off so the stream orders this Release ahead
        // of the grantee's Acquire (matches the VM: Release only on full
        // release).
        obs::emit(self.id, EventKind::Release);
        self.grant_next(&mut s);
        self.maybe_deflate(&mut s);
        drop(s);
        if let Some(owner) = owner {
            registry::on_release(self.id, owner);
        }
    }

    /// Deflate back to a thin word when the fat state holds nothing a
    /// thin word cannot express. Caller must hold the state lock.
    ///
    /// CAS, not a blind store: one caller (the post-park unwind path in
    /// `acquire_slow`) takes the state lock *without* re-freezing the
    /// word, so by the time it gets the lock another thread may already
    /// have deflated the monitor and a fast-path `enter` may have
    /// claimed the word thin. Overwriting that thin ownership record
    /// with 0 would let a second thread acquire the same monitor. The
    /// CAS only deflates a word still frozen `INFLATED`.
    fn maybe_deflate(&self, s: &mut MState) {
        let t_deflate = timers().start(Phase::Deflate);
        if s.owner.is_none()
            && s.grant.is_none()
            && s.queue.is_empty()
            && s.wait_set.is_empty()
            && self.word.compare_exchange(INFLATED, 0, Ordering::AcqRel, Ordering::Relaxed).is_ok()
        {
            self.stats.deflations.fetch_add(1, Ordering::Relaxed);
            // Only actual fat→thin transitions are recorded; the common
            // still-busy call drops the span.
            timers().finish(Phase::Deflate, t_deflate);
        }
    }

    /// Transfer ownership to the best waiter: highest priority, FIFO
    /// within a class (§4's prioritized monitor queues).
    fn grant_next(&self, s: &mut MState) {
        let t_requeue = timers().start(Phase::Requeue);
        let Some(best) = s
            .queue
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq)))
            .map(|(i, _)| i)
        else {
            return;
        };
        let w = s.queue.remove(best);
        s.grant = Some(w.tid);
        w.handle.unpark();
        timers().finish(Phase::Requeue, t_requeue);
    }

    /// `Object.wait` for the current holder (called via [`Tx::wait`]).
    pub(crate) fn wait_current(&self, ctx: &Arc<SectionCtx>) {
        // Conservative §2.2 treatment: waiting pins every enclosing
        // section non-revocable.
        let flipped = tx::mark_all_nonrevocable();
        self.stats.nonrevocable_marks.fetch_add(flipped, Ordering::Relaxed);
        if flipped > 0 {
            obs::emit(self.id, EventKind::NonRevocable);
        }
        let slot = tx::my_slot();
        let me = slot.handle.clone();
        let notified = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (rec, saved_ctxs, prio) = {
            // Waiting needs the wait set, which only the fat state has.
            let mut s = self.inflate();
            assert_eq!(s.owner, Some(me.id()), "wait on an unowned monitor");
            let rec = s.recursion;
            let prio = s.holder_priority;
            let saved = std::mem::take(&mut s.holder_ctxs);
            s.recursion = 0;
            s.owner = None;
            s.owner_slot = None;
            s.wait_set.push(WaitSetEntry { handle: me.clone(), notified: Arc::clone(&notified) });
            obs::emit(self.id, EventKind::Release);
            self.grant_next(&mut s);
            (rec, saved, prio)
        };
        registry::on_release(self.id, me.id());
        while !notified.load(Ordering::Acquire) {
            thread::park();
        }
        // Re-acquire to the saved depth through the prioritized queue.
        // `inflate()` each time around: the notifier may have deflated
        // the monitor after emptying the wait set, and a re-frozen word
        // is required before trusting the fat state.
        let mut enqueued = false;
        let mut s = self.inflate();
        loop {
            let granted = s.grant == Some(me.id());
            if granted || (s.owner.is_none() && s.grant.is_none()) {
                if granted {
                    s.grant = None;
                }
                s.owner = Some(me.id());
                s.owner_slot = Some(Arc::clone(&slot));
                s.recursion = rec;
                s.holder_priority = prio;
                s.holder_ctxs = saved_ctxs;
                if enqueued {
                    s.queue.retain(|w| w.tid != me.id());
                }
                drop(s);
                registry::on_unblock(me.id());
                registry::on_acquire(self.id, slot, prio, Arc::clone(ctx));
                obs::emit(self.id, EventKind::Acquire);
                return;
            }
            if !enqueued {
                let seq = s.next_seq;
                s.next_seq += 1;
                s.queue.push(Waiter {
                    handle: me.clone(),
                    tid: me.id(),
                    priority: prio,
                    seq,
                    obs: slot.obs,
                });
                enqueued = true;
                obs::emit(self.id, EventKind::Block);
                drop(s);
                registry::on_block(self.id, me.clone(), prio);
            } else {
                drop(s);
            }
            thread::park();
            s = self.inflate();
        }
    }

    /// Wake one or all waiters (they re-contend for the monitor).
    pub(crate) fn notify(&self, all: bool) {
        let w = self.word.load(Ordering::Acquire);
        if w & INFLATED == 0 {
            // Thin ⇒ the wait set is empty (waiting inflates, and the
            // monitor stays inflated while the wait set is non-empty):
            // nothing to wake. Still enforce the ownership contract.
            assert_eq!(thin_owner(w), tx::my_dense(), "notify on an unowned monitor");
            return;
        }
        let mut s = self.state.lock();
        assert_eq!(s.owner, Some(thread::current().id()), "notify on an unowned monitor");
        if all {
            for w in s.wait_set.drain(..) {
                w.notified.store(true, Ordering::Release);
                w.handle.unpark();
            }
        } else if !s.wait_set.is_empty() {
            let w = s.wait_set.remove(0);
            w.notified.store(true, Ordering::Release);
            w.handle.unpark();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::TCell;

    #[test]
    fn uncontended_enter_commits() {
        let m = RevocableMonitor::new();
        let c = TCell::new(0i64);
        let out = m.enter(Priority::NORM, |tx| {
            tx.write(&c, 5);
            tx.read(&c)
        });
        assert_eq!(out, 5);
        assert_eq!(c.read_unsynchronized(), 5);
        let st = m.stats();
        assert_eq!(st.acquires, 1);
        assert_eq!(st.thin_acquires, 1, "uncontended enter must stay thin");
        assert_eq!(st.inflations, 0);
        assert_eq!(st.commits, 1);
        assert_eq!(st.rollbacks, 0);
    }

    #[test]
    fn reentrant_enter_works() {
        let m = RevocableMonitor::new();
        let c = TCell::new(0i64);
        m.enter(Priority::NORM, |tx| {
            tx.write(&c, 1);
            m.enter(Priority::NORM, |tx2| {
                tx2.update(&c, |v| v + 10);
            });
            tx.update(&c, |v| v + 100);
        });
        assert_eq!(c.read_unsynchronized(), 111);
        assert_eq!(m.stats().acquires, 2);
        assert_eq!(m.stats().thin_acquires, 2, "reentrant enter must stay thin");
    }

    #[test]
    fn user_panic_keeps_updates_and_releases() {
        let m = RevocableMonitor::new();
        let c = TCell::new(0i64);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            m.enter(Priority::NORM, |tx| {
                tx.write(&c, 7);
                panic!("user bug");
            })
        }));
        assert!(r.is_err());
        assert_eq!(c.read_unsynchronized(), 7, "Java semantics: updates kept");
        // monitor is free again
        m.enter(Priority::NORM, |tx| tx.write(&c, 8));
        assert_eq!(c.read_unsynchronized(), 8);
    }

    #[test]
    fn word_packing_round_trips() {
        let w = pack_thin(7, 3, Priority::HIGH.level());
        assert_eq!(thin_owner(w), 7);
        assert_eq!(thin_rec(w), 3);
        assert_eq!(thin_prio(w), Priority::HIGH.level());
        assert_eq!(w & INFLATED, 0);
    }
}
