//! The revocable monitor for real OS threads.
//!
//! Semantics mirror the paper's revocable monitors on the VM side:
//!
//! * **prioritized entry queues** — on release, ownership transfers to
//!   the highest-priority waiter (FIFO within a class);
//! * **inversion detection at acquisition** — a contender whose priority
//!   exceeds the priority deposited by the holder flags the holder's
//!   outermost section on this monitor for revocation;
//! * **revocation at yield points** — the holder polls the flag at every
//!   `Tx` access (and `checkpoint()`), unwinds via the rollback signal,
//!   restores every logged update *before* releasing the monitor, and
//!   retries the closure after the high-priority thread has run;
//! * **policy baselines** — plain blocking, queue-level priority
//!   inheritance, and priority ceiling are available for comparison.
//!
//! Closures passed to [`RevocableMonitor::enter`] may run multiple times;
//! like any optimistic-execution API, side effects outside the `Tx` must
//! be idempotent or deferred (use [`Tx::irrevocable`] for native-call-like
//! effects, which pins the section non-revocable first).

use crate::obs;
use crate::registry;
use crate::signal::{as_rollback, RollbackSignal};
use crate::stats::{MonitorStats, StatsSnapshot};
use crate::tx::{self, SectionCtx, Tx};
use parking_lot::Mutex;
use revmon_core::{InversionPolicy, Priority};
use revmon_obs::EventKind;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, Thread};

static NEXT_MONITOR_ID: AtomicU64 = AtomicU64::new(1);

#[derive(Debug)]
struct Waiter {
    handle: Thread,
    tid: thread::ThreadId,
    priority: Priority,
    seq: u64,
    /// Observability id of the waiting thread (0 when tracing is off).
    obs: u64,
}

#[derive(Debug)]
struct WaitSetEntry {
    handle: Thread,
    notified: Arc<std::sync::atomic::AtomicBool>,
}

#[derive(Debug, Default)]
struct MState {
    owner: Option<thread::ThreadId>,
    owner_handle: Option<Thread>,
    /// Priority deposited in the "monitor header" at acquisition (§4).
    holder_priority: Priority,
    /// Active sections of the owner on this monitor, outermost first.
    holder_ctxs: Vec<Arc<SectionCtx>>,
    /// Observability id of the owner (0 when tracing is off), so
    /// contenders can attribute revoke-request events to the holder.
    owner_obs: u64,
    recursion: u32,
    queue: Vec<Waiter>,
    /// Handoff token: the thread ownership was transferred to.
    grant: Option<thread::ThreadId>,
    next_seq: u64,
    wait_set: Vec<WaitSetEntry>,
}

/// A monitor whose synchronized sections can be revoked to resolve
/// priority inversion (and break deadlocks).
///
/// ```
/// use revmon_locks::{RevocableMonitor, TCell};
/// use revmon_core::Priority;
///
/// let m = RevocableMonitor::new();
/// let balance = TCell::new(100i64);
/// let got = m.enter(Priority::HIGH, |tx| {
///     let b = tx.read(&balance);
///     tx.write(&balance, b - 30);
///     b - 30
/// });
/// assert_eq!(got, 70);
/// assert_eq!(balance.read_unsynchronized(), 70);
/// ```
#[derive(Debug)]
pub struct RevocableMonitor {
    id: u64,
    policy: InversionPolicy,
    state: Mutex<MState>,
    pub(crate) stats: Arc<MonitorStats>,
}

impl Default for RevocableMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl RevocableMonitor {
    /// A revocation-policy monitor (the paper's mechanism).
    pub fn new() -> Self {
        Self::with_policy(InversionPolicy::Revocation)
    }

    /// A monitor under an explicit policy (blocking / inheritance /
    /// ceiling baselines).
    pub fn with_policy(policy: InversionPolicy) -> Self {
        let stats = Arc::new(MonitorStats::default());
        registry::register_stats(&stats);
        RevocableMonitor {
            id: NEXT_MONITOR_ID.fetch_add(1, Ordering::Relaxed),
            policy,
            state: Mutex::new(MState::default()),
            stats,
        }
    }

    /// This monitor's policy.
    pub fn policy(&self) -> InversionPolicy {
        self.policy
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Execute `f` inside the monitor at `priority`.
    ///
    /// Under the revocation policy the closure may execute several times:
    /// a higher-priority contender can preempt it mid-flight, in which
    /// case all `Tx` writes are rolled back and `f` re-runs after the
    /// contender has gone through. A panic from `f` itself (not a
    /// revocation) keeps the updates, releases the monitor, and
    /// propagates — Java exception semantics.
    pub fn enter<R>(&self, priority: Priority, mut f: impl FnMut(&mut Tx<'_>) -> R) -> R {
        loop {
            let ctx = self.acquire(priority);
            let result = {
                let mut tx = Tx { ctx: Arc::clone(&ctx), monitor: self };
                catch_unwind(AssertUnwindSafe(|| f(&mut tx)))
            };
            match result {
                Ok(r) => {
                    self.commit_and_release(&ctx);
                    return r;
                }
                Err(payload) => {
                    if let Some(sig) = as_rollback(&*payload) {
                        // Restore shared state *before* releasing (§3.1.2).
                        let t0 = obs::enabled().then(obs::now_ns);
                        let n = ctx.rollback();
                        self.stats.rollbacks.fetch_add(1, Ordering::Relaxed);
                        self.stats.entries_rolled_back.fetch_add(n as u64, Ordering::Relaxed);
                        if let Some(t0) = t0 {
                            self.emit_rollback(n as u64, t0);
                        }
                        self.release(&ctx);
                        let _ = tx::pop_section();
                        if sig.target == ctx.id {
                            // This frame is the revocation target: retry.
                            // (Ownership was handed to the queue head —
                            // the high-priority thread — so our re-entry
                            // queues behind it, as in Fig. 1(d–e).)
                            continue;
                        }
                        // An enclosing section is the target: keep
                        // unwinding, like the injected handlers re-throw.
                        resume_unwind(payload);
                    }
                    // Genuine user panic: Java semantics — the updates
                    // stand, the monitor is released, the panic continues.
                    self.commit_and_release(&ctx);
                    resume_unwind(payload);
                }
            }
        }
    }

    /// Like [`enter`](Self::enter) at [`Priority::NORM`].
    pub fn enter_norm<R>(&self, f: impl FnMut(&mut Tx<'_>) -> R) -> R {
        self.enter(Priority::NORM, f)
    }

    /// Non-blocking [`enter`](Self::enter): run `f` only if the monitor
    /// is immediately available (or already held by this thread).
    ///
    /// Returns `None` without running `f` when the monitor is busy — and
    /// also when the section was *revoked* mid-flight and the monitor was
    /// no longer free on retry (the closure's effects are rolled back, so
    /// `None` always means "nothing happened").
    pub fn try_enter<R>(
        &self,
        priority: Priority,
        mut f: impl FnMut(&mut Tx<'_>) -> R,
    ) -> Option<R> {
        loop {
            let ctx = self.try_acquire(priority)?;
            let result = {
                let mut tx = Tx { ctx: Arc::clone(&ctx), monitor: self };
                catch_unwind(AssertUnwindSafe(|| f(&mut tx)))
            };
            match result {
                Ok(r) => {
                    self.commit_and_release(&ctx);
                    return Some(r);
                }
                Err(payload) => {
                    if let Some(sig) = as_rollback(&*payload) {
                        let t0 = obs::enabled().then(obs::now_ns);
                        let n = ctx.rollback();
                        self.stats.rollbacks.fetch_add(1, Ordering::Relaxed);
                        self.stats.entries_rolled_back.fetch_add(n as u64, Ordering::Relaxed);
                        if let Some(t0) = t0 {
                            self.emit_rollback(n as u64, t0);
                        }
                        self.release(&ctx);
                        let _ = tx::pop_section();
                        if sig.target == ctx.id {
                            continue; // retry without blocking
                        }
                        resume_unwind(payload);
                    }
                    self.commit_and_release(&ctx);
                    resume_unwind(payload);
                }
            }
        }
    }

    /// Take the monitor only if free (or reentrant). No queueing.
    fn try_acquire(&self, priority: Priority) -> Option<Arc<SectionCtx>> {
        let me = thread::current();
        let eff = self.effective(priority);
        let mut s = self.state.lock();
        if s.owner == Some(me.id()) {
            s.recursion += 1;
            let ctx = SectionCtx::new(self.id);
            s.holder_ctxs.push(Arc::clone(&ctx));
            drop(s);
            tx::push_section(Arc::clone(&ctx));
            self.stats.acquires.fetch_add(1, Ordering::Relaxed);
            obs::emit(self.id, EventKind::Acquire);
            return Some(ctx);
        }
        if s.owner.is_some() || s.grant.is_some() {
            return None;
        }
        s.owner = Some(me.id());
        s.owner_handle = Some(me.clone());
        s.owner_obs = if obs::enabled() { obs::obs_tid() } else { 0 };
        s.recursion = 1;
        s.holder_priority = eff;
        let ctx = SectionCtx::new(self.id);
        s.holder_ctxs = vec![Arc::clone(&ctx)];
        drop(s);
        tx::push_section(Arc::clone(&ctx));
        registry::on_acquire(self.id, me, eff, Arc::clone(&ctx));
        self.stats.acquires.fetch_add(1, Ordering::Relaxed);
        obs::emit(self.id, EventKind::Acquire);
        Some(ctx)
    }

    // ------------------------------------------------------------ internals

    fn effective(&self, priority: Priority) -> Priority {
        match self.policy {
            InversionPolicy::PriorityCeiling(c) => priority.max_of(c),
            _ => priority,
        }
    }

    /// Acquire the monitor (blocking), push the new section, and return
    /// its context. Unwinds with a rollback signal if this thread is
    /// revoked while parked (deadlock victim / enclosing-section
    /// revocation).
    fn acquire(&self, priority: Priority) -> Arc<SectionCtx> {
        let me = thread::current();
        let eff = self.effective(priority);
        if eff > priority {
            self.stats.priority_boosts.fetch_add(1, Ordering::Relaxed);
        }
        let mut counted_contended = false;
        let mut enqueued = false;
        let mut s = self.state.lock();
        loop {
            // Reentrant fast path.
            if s.owner == Some(me.id()) {
                s.recursion += 1;
                let ctx = SectionCtx::new(self.id);
                s.holder_ctxs.push(Arc::clone(&ctx));
                drop(s);
                tx::push_section(Arc::clone(&ctx));
                self.stats.acquires.fetch_add(1, Ordering::Relaxed);
                obs::emit(self.id, EventKind::Acquire);
                return ctx;
            }
            // Free (and not reserved for someone else) or granted to us.
            let granted = s.grant == Some(me.id());
            if granted || (s.owner.is_none() && s.grant.is_none()) {
                if granted {
                    s.grant = None;
                }
                s.owner = Some(me.id());
                s.owner_handle = Some(me.clone());
                s.owner_obs = if obs::enabled() { obs::obs_tid() } else { 0 };
                s.recursion = 1;
                s.holder_priority = eff;
                let ctx = SectionCtx::new(self.id);
                s.holder_ctxs = vec![Arc::clone(&ctx)];
                if enqueued {
                    s.queue.retain(|w| w.tid != me.id());
                }
                // Detection at acquisition, holder side: a higher-priority
                // waiter may have queued while this grant was in flight —
                // it must not sit out our whole section. Self-flag so the
                // first yield point rolls us (cheaply, log still empty)
                // back behind it.
                if matches!(self.policy, InversionPolicy::Revocation) {
                    if let Some(top) =
                        s.queue.iter().max_by_key(|w| (w.priority, std::cmp::Reverse(w.seq)))
                    {
                        if top.priority > eff {
                            let by = top.obs;
                            ctx.revoke.store(true, Ordering::Release);
                            self.stats.revocations_requested.fetch_add(1, Ordering::Relaxed);
                            obs::emit(self.id, EventKind::RevokeRequest { by });
                        }
                    }
                }
                drop(s);
                tx::push_section(Arc::clone(&ctx));
                registry::on_unblock(me.id());
                registry::on_acquire(self.id, me.clone(), eff, Arc::clone(&ctx));
                self.stats.acquires.fetch_add(1, Ordering::Relaxed);
                obs::emit(self.id, EventKind::Acquire);
                return ctx;
            }
            // Contended.
            if !counted_contended {
                self.stats.contended.fetch_add(1, Ordering::Relaxed);
                counted_contended = true;
                obs::emit(self.id, EventKind::Block);
            }
            match self.policy {
                InversionPolicy::Revocation => {
                    if eff > s.holder_priority {
                        if let Some(target) = s.holder_ctxs.first() {
                            if target.revocable() {
                                if !target.revoke.swap(true, Ordering::AcqRel) {
                                    self.stats
                                        .revocations_requested
                                        .fetch_add(1, Ordering::Relaxed);
                                    if obs::enabled() {
                                        obs::emit_for(
                                            s.owner_obs,
                                            self.id,
                                            EventKind::RevokeRequest { by: obs::obs_tid() },
                                        );
                                    }
                                }
                                // Wake the holder wherever it is parked so
                                // it reaches a yield point promptly.
                                if let Some(h) = &s.owner_handle {
                                    h.unpark();
                                }
                            } else {
                                self.stats.inversions_unresolved.fetch_add(1, Ordering::Relaxed);
                                if obs::enabled() {
                                    obs::emit_for(
                                        s.owner_obs,
                                        self.id,
                                        EventKind::InversionUnresolved { by: obs::obs_tid() },
                                    );
                                }
                            }
                        }
                    }
                }
                InversionPolicy::PriorityInheritance => {
                    if eff > s.holder_priority {
                        // Queue-level inheritance: raise the deposited
                        // priority so the holder wins queues it waits in
                        // and is not preempted by mid-priority contenders.
                        s.holder_priority = eff;
                        self.stats.priority_boosts.fetch_add(1, Ordering::Relaxed);
                    }
                }
                InversionPolicy::Blocking | InversionPolicy::PriorityCeiling(_) => {}
            }
            if !enqueued {
                let seq = s.next_seq;
                s.next_seq += 1;
                s.queue.push(Waiter {
                    handle: me.clone(),
                    tid: me.id(),
                    priority: eff,
                    seq,
                    obs: if obs::enabled() { obs::obs_tid() } else { 0 },
                });
                enqueued = true;
                drop(s);
                registry::on_block(self.id, me.clone(), eff);
            } else {
                drop(s);
            }
            thread::park();
            // Woken: revoked while parked? (deadlock victim, or an
            // enclosing section flagged by another monitor's contender)
            if let Some(target) = tx::outermost_flagged() {
                let mut s2 = self.state.lock();
                s2.queue.retain(|w| w.tid != me.id());
                if s2.grant == Some(me.id()) {
                    // We were simultaneously granted: pass it on.
                    s2.grant = None;
                    self.grant_next(&mut s2);
                }
                drop(s2);
                registry::on_unblock(me.id());
                resume_unwind(Box::new(RollbackSignal { target }));
            }
            s = self.state.lock();
        }
    }

    /// Emit a `Rollback` event whose duration is measured from `t0`
    /// (nanoseconds, observability clock).
    fn emit_rollback(&self, entries: u64, t0: u64) {
        let duration = obs::now_ns().saturating_sub(t0);
        obs::emit(self.id, EventKind::Rollback { entries, duration });
    }

    /// Commit the section's undo entries (into the parent section, or
    /// discard at the outermost level) and release one recursion level.
    fn commit_and_release(&self, ctx: &Arc<SectionCtx>) {
        let popped = tx::pop_section();
        debug_assert!(popped.map(|c| c.id) == Some(ctx.id), "unbalanced section stack");
        let parent = tx::top_section();
        ctx.commit_into(parent.as_deref());
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        if parent.is_none() {
            // Mirror the VM's trace semantics: one Commit per retired
            // undo log, i.e. per outermost section exit.
            obs::emit(self.id, EventKind::Commit);
        }
        self.release(ctx);
    }

    /// Release one recursion level; on full release hand off to the
    /// highest-priority waiter.
    fn release(&self, ctx: &Arc<SectionCtx>) {
        let mut s = self.state.lock();
        if let Some(pos) = s.holder_ctxs.iter().position(|c| c.id == ctx.id) {
            s.holder_ctxs.remove(pos);
        }
        s.recursion = s.recursion.saturating_sub(1);
        if s.recursion > 0 {
            return;
        }
        s.owner = None;
        s.owner_handle = None;
        // Emit before handing off so the stream orders this Release ahead
        // of the grantee's Acquire (matches the VM: Release only on full
        // release).
        obs::emit(self.id, EventKind::Release);
        self.grant_next(&mut s);
        drop(s);
        registry::on_release(self.id);
    }

    /// Transfer ownership to the best waiter: highest priority, FIFO
    /// within a class (§4's prioritized monitor queues).
    fn grant_next(&self, s: &mut MState) {
        let Some(best) = s
            .queue
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq)))
            .map(|(i, _)| i)
        else {
            return;
        };
        let w = s.queue.remove(best);
        s.grant = Some(w.tid);
        w.handle.unpark();
    }

    /// `Object.wait` for the current holder (called via [`Tx::wait`]).
    pub(crate) fn wait_current(&self, ctx: &Arc<SectionCtx>) {
        // Conservative §2.2 treatment: waiting pins every enclosing
        // section non-revocable.
        let flipped = tx::mark_all_nonrevocable();
        self.stats.nonrevocable_marks.fetch_add(flipped, Ordering::Relaxed);
        if flipped > 0 {
            obs::emit(self.id, EventKind::NonRevocable);
        }
        let me = thread::current();
        let notified = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (rec, saved_ctxs, prio) = {
            let mut s = self.state.lock();
            assert_eq!(s.owner, Some(me.id()), "wait on an unowned monitor");
            let rec = s.recursion;
            let prio = s.holder_priority;
            let saved = std::mem::take(&mut s.holder_ctxs);
            s.recursion = 0;
            s.owner = None;
            s.owner_handle = None;
            s.wait_set.push(WaitSetEntry { handle: me.clone(), notified: Arc::clone(&notified) });
            obs::emit(self.id, EventKind::Release);
            self.grant_next(&mut s);
            (rec, saved, prio)
        };
        registry::on_release(self.id);
        while !notified.load(Ordering::Acquire) {
            thread::park();
        }
        // Re-acquire to the saved depth through the prioritized queue.
        let mut enqueued = false;
        let mut s = self.state.lock();
        loop {
            let granted = s.grant == Some(me.id());
            if granted || (s.owner.is_none() && s.grant.is_none()) {
                if granted {
                    s.grant = None;
                }
                s.owner = Some(me.id());
                s.owner_handle = Some(me.clone());
                s.owner_obs = if obs::enabled() { obs::obs_tid() } else { 0 };
                s.recursion = rec;
                s.holder_priority = prio;
                s.holder_ctxs = saved_ctxs;
                if enqueued {
                    s.queue.retain(|w| w.tid != me.id());
                }
                drop(s);
                registry::on_unblock(me.id());
                registry::on_acquire(self.id, me, prio, Arc::clone(ctx));
                obs::emit(self.id, EventKind::Acquire);
                return;
            }
            if !enqueued {
                let seq = s.next_seq;
                s.next_seq += 1;
                s.queue.push(Waiter {
                    handle: me.clone(),
                    tid: me.id(),
                    priority: prio,
                    seq,
                    obs: if obs::enabled() { obs::obs_tid() } else { 0 },
                });
                enqueued = true;
                obs::emit(self.id, EventKind::Block);
                drop(s);
                registry::on_block(self.id, me.clone(), prio);
            } else {
                drop(s);
            }
            thread::park();
            s = self.state.lock();
        }
    }

    /// Wake one or all waiters (they re-contend for the monitor).
    pub(crate) fn notify(&self, all: bool) {
        let mut s = self.state.lock();
        assert_eq!(s.owner, Some(thread::current().id()), "notify on an unowned monitor");
        if all {
            for w in s.wait_set.drain(..) {
                w.notified.store(true, Ordering::Release);
                w.handle.unpark();
            }
        } else if !s.wait_set.is_empty() {
            let w = s.wait_set.remove(0);
            w.notified.store(true, Ordering::Release);
            w.handle.unpark();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::TCell;

    #[test]
    fn uncontended_enter_commits() {
        let m = RevocableMonitor::new();
        let c = TCell::new(0i64);
        let out = m.enter(Priority::NORM, |tx| {
            tx.write(&c, 5);
            tx.read(&c)
        });
        assert_eq!(out, 5);
        assert_eq!(c.read_unsynchronized(), 5);
        let st = m.stats();
        assert_eq!(st.acquires, 1);
        assert_eq!(st.commits, 1);
        assert_eq!(st.rollbacks, 0);
    }

    #[test]
    fn reentrant_enter_works() {
        let m = RevocableMonitor::new();
        let c = TCell::new(0i64);
        m.enter(Priority::NORM, |tx| {
            tx.write(&c, 1);
            m.enter(Priority::NORM, |tx2| {
                tx2.update(&c, |v| v + 10);
            });
            tx.update(&c, |v| v + 100);
        });
        assert_eq!(c.read_unsynchronized(), 111);
        assert_eq!(m.stats().acquires, 2);
    }

    #[test]
    fn user_panic_keeps_updates_and_releases() {
        let m = RevocableMonitor::new();
        let c = TCell::new(0i64);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            m.enter(Priority::NORM, |tx| {
                tx.write(&c, 7);
                panic!("user bug");
            })
        }));
        assert!(r.is_err());
        assert_eq!(c.read_unsynchronized(), 7, "Java semantics: updates kept");
        // monitor is free again
        m.enter(Priority::NORM, |tx| tx.write(&c, 8));
        assert_eq!(c.read_unsynchronized(), 8);
    }
}
