//! The rollback signal: the library analogue of the paper's internal
//! rollback exception (§3.1.1).
//!
//! Revocation unwinds the holder's closure with a panic payload carrying
//! the *target section id*. Every `enter` frame catches it: the frame
//! whose section matches rolls back and retries; inner frames roll back,
//! release, and re-throw — exactly the injected-handler protocol, with
//! `catch_unwind` standing in for the injected bytecode handlers and the
//! panic machinery for the modified exception propagation (user code
//! cannot intercept the payload type, mirroring the rule that `finally`
//! blocks and `catch (Throwable)` are skipped during rollback).

use std::any::Any;

/// Panic payload for an in-flight revocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RollbackSignal {
    /// Section id whose `enter` frame must absorb the signal and retry.
    pub target: u64,
}

/// Extract a `RollbackSignal` from a caught panic payload.
pub(crate) fn as_rollback(payload: &(dyn Any + Send)) -> Option<RollbackSignal> {
    payload.downcast_ref::<RollbackSignal>().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};

    #[test]
    fn signal_roundtrips_through_unwind() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            panic_any(RollbackSignal { target: 42 });
        }))
        .unwrap_err();
        assert_eq!(as_rollback(&*err), Some(RollbackSignal { target: 42 }));
    }

    #[test]
    fn signal_roundtrips_through_resume_unwind_without_hook() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            std::panic::resume_unwind(Box::new(RollbackSignal { target: 7 }));
        }))
        .unwrap_err();
        assert_eq!(as_rollback(&*err), Some(RollbackSignal { target: 7 }));
    }

    #[test]
    fn ordinary_panics_are_not_signals() {
        let err = catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(as_rollback(&*err), None);
    }
}
