//! # revmon-locks — revocable monitors for real OS threads
//!
//! The "downstream-adoptable" half of the *revmon* reproduction of
//!
//! > Adam Welc, Antony L. Hosking, Suresh Jagannathan.
//! > *Preemption-Based Avoidance of Priority Inversion for Java.*
//! > ICPP 2004.
//!
//! Where `revmon-vm` reproduces the paper's experimental platform (a
//! Jikes-RVM-like green-thread VM), this crate packages the same
//! mechanism as a Rust library over native threads:
//!
//! * [`RevocableMonitor::enter`] runs a closure as a synchronized
//!   section at a given [`Priority`];
//! * shared data lives in [`TCell`]s, accessed through the [`Tx`] handle
//!   — every write is *logged* (the paper's compiler-injected write
//!   barrier) and every access is a *yield point* that polls for
//!   revocation;
//! * when a higher-priority thread contends, the holder is preempted at
//!   its next yield point: its updates are rolled back newest-first, the
//!   monitor transfers to the high-priority thread, and the closure
//!   retries (Fig. 1 of the paper);
//! * deadlocks across monitors are detected on blocking and broken by
//!   revoking the lowest-priority cycle member;
//! * the JMM-consistency concerns of §2 are handled *statically*:
//!   [`TCell`]s are unreachable outside a `Tx`, so speculative state
//!   cannot leak; the deliberate leak — Java `volatile` — exists as
//!   [`VolatileCell`], and writing one inside a section pins the section
//!   non-revocable, exactly the paper's rule;
//! * irrevocable effects ([`Tx::irrevocable`]) model native calls, and
//!   `wait`/`notify` are supported with the conservative §2.2 treatment.
//!
//! ## Quickstart
//!
//! ```
//! use revmon_core::Priority;
//! use revmon_locks::{RevocableMonitor, TCell};
//! use std::sync::Arc;
//!
//! let monitor = Arc::new(RevocableMonitor::new());
//! let counter = TCell::new(0i64);
//!
//! let handles: Vec<_> = (0..4)
//!     .map(|i| {
//!         let m = Arc::clone(&monitor);
//!         let c = counter.clone();
//!         let prio = if i == 0 { Priority::HIGH } else { Priority::LOW };
//!         std::thread::spawn(move || {
//!             for _ in 0..1_000 {
//!                 m.enter(prio, |tx| tx.update(&c, |v| v + 1));
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! assert_eq!(counter.read_unsynchronized(), 4_000);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cell;
pub mod collections;
pub mod monitor;
pub mod obs;
mod registry;
mod signal;
pub mod stats;
pub mod tx;

pub use cell::{TCell, VolatileCell};
pub use monitor::RevocableMonitor;
pub use registry::{aggregate_snapshot, wait_graph_snapshot, DEADLOCKS_BROKEN, DEADLOCKS_DETECTED};
pub use revmon_core::{InversionPolicy, Priority};
pub use stats::StatsSnapshot;
pub use tx::Tx;
