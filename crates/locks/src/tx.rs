//! Transactions: the per-thread runtime context, the per-section
//! context, the allocation-free undo log, and the `Tx` handle passed to
//! `enter` closures.
//!
//! Every shared-data access through a [`Tx`] doubles as a *yield point*
//! (the library analogue of the VM checking `pending_revoke` at
//! compiler-inserted yield points). The hot-path poll is a **single
//! relaxed load** of this thread's cached revocation flag
//! (`ThreadSlot::pending_revoke`); only when a contender or the
//! deadlock breaker has raised it does the slow path scan the section
//! stack for the outermost flagged section and unwind with a rollback
//! signal.
//!
//! Undo logging is likewise allocation-free in steady state: one
//! `revmon_core::UndoLog` per thread (only the owning thread appends or
//! drains it, so it is unsynchronized), whose backing buffer is reused
//! across sections, holding inline typed entries — an `Arc` to the
//! written cell, which stashes displaced old values in its own pooled
//! buffer. `SectionCtx`s themselves are pooled per thread.

use crate::cell::{TCell, VolatileCell};
use crate::signal::RollbackSignal;
use parking_lot::Mutex;
use revmon_core::{LogMark, UndoLog};
use std::cell::{Cell, RefCell};
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::Thread;

/// Shared state of one active synchronized-section execution.
///
/// Slim by design: the undo entries live in the per-thread log (this
/// struct only records the log position at entry), so the only shared
/// mutable state is the two revocation atomics. The plain fields are
/// written exclusively while the `Arc` is unique (fresh allocation or
/// pool reuse through `Arc::get_mut`) and read-only once shared.
pub(crate) struct SectionCtx {
    /// Unique per-execution id (the paper's acquisition identity).
    pub id: u64,
    /// Monitor this section synchronizes on.
    pub monitor_id: u64,
    /// Position of this thread's undo log at section entry; everything
    /// above it belongs to this section (and sections nested inside it).
    pub mark: LogMark,
    /// Set by a higher-priority contender (or the deadlock breaker).
    pub revoke: AtomicBool,
    /// Set by `wait`, `write_volatile`, or `irrevocable()`.
    pub non_revocable: AtomicBool,
    /// Set (before the owner's exit CAS) when the section logically
    /// exits. Exiting does **not** take the section-stack lock: the dead
    /// entry lingers on the stack — every scan filters it out — until the
    /// next `begin_section` sweeps the dead suffix under the lock it
    /// takes anyway. Exits are LIFO, so dead entries always form a
    /// suffix.
    pub exited: AtomicBool,
}

impl std::fmt::Debug for SectionCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SectionCtx")
            .field("id", &self.id)
            .field("monitor_id", &self.monitor_id)
            .field("revoke", &self.revoke)
            .field("non_revocable", &self.non_revocable)
            .finish()
    }
}

impl SectionCtx {
    /// Whether this execution can currently be revoked.
    pub fn revocable(&self) -> bool {
        !self.non_revocable.load(Ordering::Acquire)
    }
}

/// One undo-log entry: a handle to the cell whose old value was stashed.
///
/// Cloning the `Arc` is the whole write barrier's bookkeeping — no boxed
/// closure, no allocation. Restoring pops the cell's newest stashed
/// value; since both the log and each cell's stash are stacks filled in
/// program order, draining the log newest-first pops every stash in
/// exactly reverse write order.
pub(crate) type UndoEntry = Arc<dyn UndoSink>;

/// A store that can take back (or retire) its most recently stashed
/// old value. Implemented by the cells.
pub(crate) trait UndoSink: Send + Sync {
    /// Pop the newest stashed old value back into the live value
    /// (rollback, newest-first).
    fn restore_one(&self);
    /// Pop and drop the newest stashed old value (outermost commit).
    fn forget_one(&self);
}

// ---------------------------------------------------------------- threads

/// Per-OS-thread runtime state shared with contenders.
///
/// The slot outlives any single section: contenders reach it through the
/// monitor's lock word (dense id → slot table) to migrate holder state
/// on inflation, and through the monitor/registry to raise the cached
/// revocation flag.
pub(crate) struct ThreadSlot {
    /// Nonzero dense id, packed into thin-lock words as the owner field.
    pub dense: u32,
    /// Park/unpark handle of the thread.
    pub handle: Thread,
    /// Observability id (same numbering as `obs::obs_tid`).
    pub obs: u64,
    /// Cached revocation flag: raised whenever *some* section of this
    /// thread gets flagged, so the hot-path yield point is one relaxed
    /// load. Cleared by the slow poll before it scans the stack.
    pub pending_revoke: AtomicBool,
    /// Active sections, outermost first. Locked by the owning thread at
    /// section *entry* only (exits mark [`SectionCtx::exited`] lock-free
    /// and the next entry sweeps the dead suffix) and by inflating
    /// contenders migrating holder state (rare).
    pub sections: Mutex<Vec<Arc<SectionCtx>>>,
}

/// Dense-id → slot lookup table (weak: a slot dies with its thread).
fn slot_table() -> &'static Mutex<Vec<Weak<ThreadSlot>>> {
    static TABLE: OnceLock<Mutex<Vec<Weak<ThreadSlot>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Look up a live thread slot by its dense id (lock-word owner field).
pub(crate) fn slot_by_dense(dense: u32) -> Option<Arc<ThreadSlot>> {
    slot_table().lock().get(dense as usize - 1).and_then(Weak::upgrade)
}

/// Retained-capacity cap for the per-thread `SectionCtx` pool.
const CTX_POOL_MAX: usize = 64;

/// Everything the runtime keeps per thread, behind a single
/// `thread_local` so hot-path helpers pay one TLS lookup.
struct ThreadRt {
    /// The shared slot (registered in the global table).
    slot: Arc<ThreadSlot>,
    /// The undo log. Unsynchronized: only this thread appends (write
    /// barrier) or drains (rollback / outermost commit); the backing
    /// buffer is reused across sections.
    undo: RefCell<UndoLog<UndoEntry>>,
    /// Recycled `SectionCtx` allocations.
    pool: RefCell<Vec<Arc<SectionCtx>>>,
    /// Per-thread section-id counter (combined with the dense thread id
    /// into process-unique ids without touching a shared atomic).
    next_local: Cell<u32>,
    /// Live (not-yet-exited) section count. Private to the thread, so
    /// the exit path learns "was that the outermost?" from a plain cell
    /// instead of locking the section stack.
    depth: Cell<usize>,
}

impl ThreadRt {
    fn init() -> Self {
        let mut table = slot_table().lock();
        let slot = Arc::new(ThreadSlot {
            dense: (table.len() + 1) as u32,
            handle: std::thread::current(),
            obs: crate::obs::obs_tid(),
            pending_revoke: AtomicBool::new(false),
            sections: Mutex::new(Vec::new()),
        });
        table.push(Arc::downgrade(&slot));
        drop(table);
        ThreadRt {
            slot,
            undo: RefCell::new(UndoLog::new()),
            pool: RefCell::new(Vec::new()),
            next_local: Cell::new(0),
            depth: Cell::new(0),
        }
    }
}

thread_local! {
    static RT: ThreadRt = ThreadRt::init();
}

/// This thread's slot.
pub(crate) fn my_slot() -> Arc<ThreadSlot> {
    RT.with(|rt| Arc::clone(&rt.slot))
}

/// This thread's dense id without touching the slot's refcount (hot
/// path: the thin-lock CAS only needs the 32-bit id).
#[inline]
pub(crate) fn my_dense() -> u32 {
    RT.with(|rt| rt.slot.dense)
}

// ------------------------------------------------------- section lifecycle

/// Begin a section on `monitor_id`: sweep the dead suffix left by
/// lock-free exits (recycling those contexts), take a pooled context,
/// mark the undo log, and push onto this thread's section stack — all in
/// the one lock hold the push needs anyway. Allocation-free in steady
/// state.
pub(crate) fn begin_section(monitor_id: u64) -> Arc<SectionCtx> {
    RT.with(|rt| {
        let local = rt.next_local.get().wrapping_add(1);
        rt.next_local.set(local);
        let id = ((rt.slot.dense as u64) << 32) | local as u64;
        let mark = rt.undo.borrow().mark();
        let mut pool = rt.pool.borrow_mut();
        let mut stack = rt.slot.sections.lock();
        while stack.last().is_some_and(|c| c.exited.load(Ordering::Acquire)) {
            let mut dead = stack.pop().expect("checked by last()");
            // Pool only while unique: a stale flagger (e.g. the deadlock
            // breaker racing a release) may still hold this incarnation —
            // dropping it is cheaper than reasoning about a flag landing
            // on the wrong section.
            if Arc::get_mut(&mut dead).is_some() && pool.len() < CTX_POOL_MAX {
                pool.push(dead);
            }
        }
        let recycled = pool.pop().map(|mut arc| {
            let c = Arc::get_mut(&mut arc).expect("pooled contexts are unique");
            c.id = id;
            c.monitor_id = monitor_id;
            c.mark = mark;
            *c.revoke.get_mut() = false;
            *c.non_revocable.get_mut() = false;
            *c.exited.get_mut() = false;
            arc
        });
        let ctx = recycled.unwrap_or_else(|| {
            Arc::new(SectionCtx {
                id,
                monitor_id,
                mark,
                revoke: AtomicBool::new(false),
                non_revocable: AtomicBool::new(false),
                exited: AtomicBool::new(false),
            })
        });
        stack.push(Arc::clone(&ctx));
        rt.depth.set(rt.depth.get() + 1);
        ctx
    })
}

/// Exit the innermost section without touching the section-stack lock:
/// one `Release` store (ordered before the owner's exit CAS, so an
/// inflater that observes the post-exit word also observes the flag) and
/// a private depth decrement. Used by the rollback path and by
/// fast-path CAS losers (`abandon`); the commit path goes through
/// [`commit_top_section`].
#[inline]
pub(crate) fn exit_section(ctx: &SectionCtx) {
    ctx.exited.store(true, Ordering::Release);
    RT.with(|rt| rt.depth.set(rt.depth.get().saturating_sub(1)));
}

/// Abandon a just-begun section whose fast-path CAS lost its race. No
/// undo entries exist yet.
pub(crate) fn abandon_section(ctx: &SectionCtx) {
    exit_section(ctx);
}

/// Commit the innermost section: mark it exited and — when it was this
/// thread's outermost — retire its undo entries (drop each cell's
/// stashed value, newest first). Nested commits leave the entries in the
/// log: updates stay revocable until the *outermost* exit, exactly as
/// the paper keeps the whole log until the outermost `monitorexit`.
/// Returns whether this was the outermost section.
#[inline]
pub(crate) fn commit_top_section(ctx: &SectionCtx) -> bool {
    ctx.exited.store(true, Ordering::Release);
    RT.with(|rt| {
        let depth = rt.depth.get().saturating_sub(1);
        rt.depth.set(depth);
        let outermost = depth == 0;
        if outermost {
            // Reverse drain (not `commit_to`): each entry must release
            // its cell's stashed old value, and newest-first keeps the
            // stash pops aligned with the log entries.
            rt.undo.borrow_mut().rollback_to(ctx.mark, |e| e.forget_one());
        }
        outermost
    })
}

/// Roll back the undo entries made since `ctx` was entered (its own and
/// those of sections nested inside it), newest first. Returns how many
/// entries were restored.
pub(crate) fn rollback_section(ctx: &SectionCtx) -> usize {
    // Slow-path phase timer: the undo-log walk is the data-restoration
    // cost the paper's §3.1.2 step 1 pays on every revocation.
    let prof = revmon_obs::prof::timers();
    let t0 = prof.start(revmon_obs::Phase::UndoWalk);
    let n = RT.with(|rt| {
        let mut log = rt.undo.borrow_mut();
        let n = log.len().saturating_sub(ctx.mark.position());
        log.rollback_to(ctx.mark, |e| e.restore_one());
        n
    });
    prof.finish(revmon_obs::Phase::UndoWalk, t0);
    n
}

/// Append one write-barrier entry to this thread's undo log.
#[inline]
pub(crate) fn log_write(entry: UndoEntry) {
    RT.with(|rt| rt.undo.borrow_mut().push(entry));
}

/// Depth of section nesting on the current thread (0 outside any
/// synchronized section). Exposed for diagnostics.
pub fn section_depth() -> usize {
    RT.with(|rt| rt.depth.get())
}

// ------------------------------------------------------------ yield points

/// Poll revocation flags; unwind with a rollback signal when flagged.
/// This is the library's yield point, called from every `Tx` data access
/// and exposed as [`Tx::checkpoint`] for long compute stretches.
///
/// Fast path: one relaxed load of the thread's cached flag and a branch.
/// Contenders raise the per-section flag *before* the cached flag (both
/// with `Release`), so the slow path's scan cannot miss the section that
/// caused the wake-up.
#[inline]
pub(crate) fn poll_revocation() {
    if RT.with(|rt| rt.slot.pending_revoke.load(Ordering::Relaxed)) {
        poll_revocation_slow();
    }
}

/// Uses `resume_unwind` rather than `panic_any`: the signal is control
/// flow (always caught by an `enter` frame), so the process-global panic
/// hook must not fire for it.
#[cold]
fn poll_revocation_slow() {
    RT.with(|rt| rt.slot.pending_revoke.swap(false, Ordering::AcqRel));
    if let Some(target) = outermost_flagged() {
        resume_unwind(Box::new(RollbackSignal { target }));
    }
    // Spurious or pinned (non-revocable): keep running. If a new flag
    // lands after our swap, the contender's store re-raises the cached
    // flag, so the next poll takes the slow path again.
}

/// The outermost *flagged and revocable* section, if any — the rollback
/// target a yield point must unwind to. Slow path (park wake-ups, slow
/// polls).
pub(crate) fn outermost_flagged() -> Option<u64> {
    RT.with(|rt| {
        rt.slot
            .sections
            .lock()
            .iter()
            .find(|c| {
                !c.exited.load(Ordering::Acquire)
                    && c.revoke.load(Ordering::Acquire)
                    && c.revocable()
            })
            .map(|c| c.id)
    })
}

/// Mark every enclosing section non-revocable (native-effect /
/// volatile-write / wait rules of §2.2). Returns how many flipped.
pub(crate) fn mark_all_nonrevocable() -> u64 {
    RT.with(|rt| {
        let mut flipped = 0;
        for c in rt.slot.sections.lock().iter() {
            if !c.exited.load(Ordering::Acquire) && !c.non_revocable.swap(true, Ordering::AcqRel) {
                flipped += 1;
            }
        }
        flipped
    })
}

// -------------------------------------------------------------------- Tx

/// The transaction handle passed to `enter` closures.
///
/// Carries no data itself — it witnesses that the current thread holds
/// the monitor, and routes all shared accesses through the write-barrier
/// (undo logging) and yield-point (revocation polling) machinery.
pub struct Tx<'m> {
    /// Borrowed, not cloned: the `enter` frame owns the `Arc`, and a
    /// refcount bump per monitor entry is measurable on the fast path.
    pub(crate) ctx: &'m Arc<SectionCtx>,
    pub(crate) monitor: &'m crate::monitor::RevocableMonitor,
    /// Writes logged through this handle during one attempt of the
    /// section; flushed into the monitor's `log_entries` counter when
    /// the attempt ends, keeping the shared stats atomic off the write
    /// hot path.
    pub(crate) logged: Cell<u64>,
}

impl Tx<'_> {
    /// Read a cell. A yield point.
    pub fn read<T: Clone + Send + 'static>(&self, cell: &TCell<T>) -> T {
        poll_revocation();
        cell.get()
    }

    /// Write a cell, logging the old value for rollback. A yield point.
    pub fn write<T: Clone + Send + 'static>(&self, cell: &TCell<T>, v: T) {
        poll_revocation();
        self.write_logged(cell, v);
    }

    /// The write barrier without the yield point (shared by
    /// `write`/`update`): stash the old value in the cell, log the cell,
    /// count the entry locally. Zero heap allocations in steady state.
    fn write_logged<T: Clone + Send + 'static>(&self, cell: &TCell<T>, v: T) {
        cell.stash_and_set(v);
        log_write(cell.undo_entry());
        self.logged.set(self.logged.get() + 1);
    }

    /// Update a cell in place (read-modify-write). A yield point — one
    /// poll per update: the previous `read`+`write` pair polled twice,
    /// which bought nothing (a flag raised between the two is caught at
    /// the next access or checkpoint anyway).
    pub fn update<T: Clone + Send + 'static>(&self, cell: &TCell<T>, f: impl FnOnce(T) -> T) {
        poll_revocation();
        let v = cell.get();
        self.write_logged(cell, f(v));
    }

    /// Read a volatile cell (always allowed, lock-free). A yield point.
    pub fn read_volatile(&self, cell: &VolatileCell) -> i64 {
        poll_revocation();
        cell.load()
    }

    /// Write a volatile cell from inside the section. Publishes the value
    /// immediately to unmonitored readers, so every enclosing section
    /// becomes **non-revocable** (§2.2, Fig. 3) — the write is *not*
    /// undone by a rollback that can no longer happen.
    pub fn write_volatile(&self, cell: &VolatileCell, v: i64) {
        poll_revocation();
        let flipped = mark_all_nonrevocable();
        self.monitor.stats.nonrevocable_marks.fetch_add(flipped, Ordering::Relaxed);
        if flipped > 0 {
            crate::obs::emit(self.ctx.monitor_id, revmon_obs::EventKind::NonRevocable);
        }
        cell.value.store(v, Ordering::SeqCst);
    }

    /// Explicit yield point for long monitor-protected compute stretches
    /// with no data accesses (the analogue of loop back-edge yield
    /// points).
    pub fn checkpoint(&self) {
        poll_revocation();
    }

    /// Declare an irrevocable effect (the analogue of a native call):
    /// every enclosing section becomes non-revocable, after which the
    /// closure can safely perform I/O or other non-undoable work.
    pub fn irrevocable(&self) {
        let flipped = mark_all_nonrevocable();
        self.monitor.stats.nonrevocable_marks.fetch_add(flipped, Ordering::Relaxed);
        if flipped > 0 {
            crate::obs::emit(self.ctx.monitor_id, revmon_obs::EventKind::NonRevocable);
        }
    }

    /// `Object.wait()`: release the monitor and park until notified.
    ///
    /// Conservative revocability rule: the section (and its enclosing
    /// ones) become non-revocable — a superset of the paper's rule, which
    /// additionally permits post-`wait` restart points for non-nested
    /// waits (implemented in the VM; kept simple here).
    pub fn wait(&self) {
        self.monitor.wait_current(self.ctx);
    }

    /// `Object.notify()`.
    pub fn notify_one(&self) {
        self.monitor.notify(false);
    }

    /// `Object.notifyAll()`.
    pub fn notify_all(&self) {
        self.monitor.notify(true);
    }

    /// Whether this execution is still revocable (diagnostics).
    pub fn is_revocable(&self) -> bool {
        self.ctx.revocable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain any state a test left behind so tests sharing a thread
    /// start clean.
    fn reset_thread() {
        RT.with(|rt| {
            rt.slot.sections.lock().clear();
            rt.depth.set(0);
            rt.undo.borrow_mut().clear();
        });
    }

    fn log_len() -> usize {
        RT.with(|rt| rt.undo.borrow().len())
    }

    #[test]
    fn rollback_restores_newest_first_and_empties_the_log() {
        reset_thread();
        let a = TCell::new(1i64);
        let b = TCell::new(2i64);
        let ctx = begin_section(1);
        a.stash_and_set(10);
        log_write(a.undo_entry());
        b.stash_and_set(20);
        log_write(b.undo_entry());
        a.stash_and_set(100);
        log_write(a.undo_entry());
        assert_eq!(rollback_section(&ctx), 3);
        assert_eq!(a.read_unsynchronized(), 1);
        assert_eq!(b.read_unsynchronized(), 2);
        assert_eq!(rollback_section(&ctx), 0, "log emptied");
        abandon_section(&ctx);
    }

    #[test]
    fn nested_commit_keeps_entries_until_outermost_exit() {
        reset_thread();
        let c = TCell::new(0i64);
        let outer = begin_section(1);
        c.stash_and_set(1);
        log_write(c.undo_entry());
        let inner = begin_section(2);
        c.stash_and_set(2);
        log_write(c.undo_entry());
        // Inner commit: not outermost, entries stay revocable.
        assert!(!commit_top_section(&inner));
        assert_eq!(log_len(), 2);
        // Outer rollback undoes the inner section's committed write too.
        assert_eq!(rollback_section(&outer), 2);
        assert_eq!(c.read_unsynchronized(), 0);
        abandon_section(&outer);
    }

    #[test]
    fn outermost_commit_retires_entries() {
        reset_thread();
        let c = TCell::new(0i64);
        let ctx = begin_section(1);
        c.stash_and_set(5);
        log_write(c.undo_entry());
        assert!(commit_top_section(&ctx));
        assert_eq!(log_len(), 0);
        assert_eq!(c.read_unsynchronized(), 5, "committed value stands");
        // The stash was retired: a later rollback has nothing to restore.
        assert_eq!(c.stash_len(), 0);
    }

    #[test]
    fn section_ids_are_unique_across_pool_reuse() {
        reset_thread();
        let a = begin_section(1);
        let a_id = a.id;
        abandon_section(&a);
        drop(a);
        let b = begin_section(1);
        assert_ne!(a_id, b.id, "recycled context must get a fresh id");
        abandon_section(&b);
    }

    #[test]
    fn pool_reuse_clears_stale_flags() {
        reset_thread();
        let a = begin_section(1);
        a.revoke.store(true, Ordering::Release);
        a.non_revocable.store(true, Ordering::Release);
        abandon_section(&a);
        drop(a);
        let b = begin_section(1);
        assert!(!b.revoke.load(Ordering::Acquire));
        assert!(b.revocable());
        abandon_section(&b);
    }

    #[test]
    fn flagged_nonrevocable_sections_are_skipped() {
        reset_thread();
        let ctx = begin_section(1);
        ctx.revoke.store(true, Ordering::Release);
        ctx.non_revocable.store(true, Ordering::Release);
        assert_eq!(outermost_flagged(), None);
        abandon_section(&ctx);
    }

    #[test]
    fn outermost_flagged_prefers_outer() {
        reset_thread();
        let outer = begin_section(1);
        let inner = begin_section(2);
        outer.revoke.store(true, Ordering::Release);
        inner.revoke.store(true, Ordering::Release);
        assert_eq!(outermost_flagged(), Some(outer.id));
        exit_section(&inner);
        exit_section(&outer);
    }

    #[test]
    fn cached_flag_gates_the_slow_poll() {
        reset_thread();
        let ctx = begin_section(1);
        // Flag the section but not the cached thread flag: the fast poll
        // must not unwind (contenders always raise both; this checks the
        // fast path really is gated on the cached flag alone).
        ctx.revoke.store(true, Ordering::Release);
        poll_revocation();
        // Now raise the cached flag as a contender would.
        my_slot().pending_revoke.store(true, Ordering::Release);
        let unwound = std::panic::catch_unwind(poll_revocation).is_err();
        assert!(unwound, "slow poll must unwind to the flagged section");
        assert!(
            !my_slot().pending_revoke.load(Ordering::Relaxed),
            "slow poll consumes the cached flag"
        );
        exit_section(&ctx);
    }
}
