//! Transactions: the per-section context, undo log, and the `Tx` handle
//! passed to `enter` closures.
//!
//! Every shared-data access through a [`Tx`] doubles as a *yield point*:
//! it polls the revocation flags of all enclosing sections (the library
//! analogue of the VM checking `pending_revoke` at compiler-inserted
//! yield points) and, when flagged, unwinds with a rollback signal
//! targeted at the outermost flagged section.

use crate::cell::{TCell, VolatileCell};
use crate::signal::RollbackSignal;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_SECTION_ID: AtomicU64 = AtomicU64::new(1);

/// One restore action (applied newest-first on rollback).
type UndoEntry = Box<dyn FnOnce() + Send>;

/// Shared state of one active synchronized-section execution.
pub(crate) struct SectionCtx {
    /// Unique per-execution id (the paper's acquisition identity).
    pub id: u64,
    /// Monitor this section synchronizes on.
    pub monitor_id: u64,
    /// Set by a higher-priority contender (or the deadlock breaker).
    pub revoke: AtomicBool,
    /// Set by `wait`, `write_volatile`, or `irrevocable()`.
    pub non_revocable: AtomicBool,
    /// The sequential undo buffer (restore closures, §3.1.2).
    pub undo: Mutex<Vec<UndoEntry>>,
}

impl std::fmt::Debug for SectionCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SectionCtx")
            .field("id", &self.id)
            .field("monitor_id", &self.monitor_id)
            .field("revoke", &self.revoke)
            .field("non_revocable", &self.non_revocable)
            .field("undo_len", &self.undo.lock().len())
            .finish()
    }
}

impl SectionCtx {
    pub fn new(monitor_id: u64) -> Arc<Self> {
        Arc::new(SectionCtx {
            id: NEXT_SECTION_ID.fetch_add(1, Ordering::Relaxed),
            monitor_id,
            revoke: AtomicBool::new(false),
            non_revocable: AtomicBool::new(false),
            undo: Mutex::new(Vec::new()),
        })
    }

    /// Whether this execution can currently be revoked.
    pub fn revocable(&self) -> bool {
        !self.non_revocable.load(Ordering::Acquire)
    }

    /// Apply the undo log newest-first, emptying it.
    pub fn rollback(&self) -> usize {
        let mut log = self.undo.lock();
        let n = log.len();
        while let Some(restore) = log.pop() {
            restore();
        }
        n
    }

    /// Commit: move this section's undo entries into `parent` (they stay
    /// revocable until the *outermost* section exits, exactly as the
    /// paper keeps the whole log until the outermost `monitorexit`), or
    /// drop them when this is the outermost section.
    pub fn commit_into(&self, parent: Option<&SectionCtx>) -> usize {
        let mut log = self.undo.lock();
        let n = log.len();
        match parent {
            Some(p) => p.undo.lock().extend(log.drain(..)),
            None => log.clear(),
        }
        n
    }
}

thread_local! {
    /// Active sections of the current thread, outermost first.
    static SECTIONS: RefCell<Vec<Arc<SectionCtx>>> = const { RefCell::new(Vec::new()) };
}

/// Push a freshly-entered section onto the thread-local stack.
pub(crate) fn push_section(ctx: Arc<SectionCtx>) {
    SECTIONS.with(|s| s.borrow_mut().push(ctx));
}

/// Pop the innermost section (at `enter` exit, normal or unwinding).
pub(crate) fn pop_section() -> Option<Arc<SectionCtx>> {
    SECTIONS.with(|s| s.borrow_mut().pop())
}

/// The current innermost section (after popping a committed section this
/// is its parent — the commit target for nested commits).
pub(crate) fn top_section() -> Option<Arc<SectionCtx>> {
    SECTIONS.with(|s| s.borrow().last().map(Arc::clone))
}

/// Depth of section nesting on the current thread (0 outside any
/// synchronized section). Exposed for diagnostics.
pub fn section_depth() -> usize {
    SECTIONS.with(|s| s.borrow().len())
}

/// The outermost *flagged and revocable* section, if any — the rollback
/// target a yield point must unwind to.
pub(crate) fn outermost_flagged() -> Option<u64> {
    SECTIONS.with(|s| {
        s.borrow().iter().find(|c| c.revoke.load(Ordering::Acquire) && c.revocable()).map(|c| c.id)
    })
}

/// Poll revocation flags; unwind with a rollback signal when flagged.
/// This is the library's yield point, called from every `Tx` data access
/// and exposed as [`Tx::checkpoint`] for long compute stretches.
///
/// Uses `resume_unwind` rather than `panic_any`: the signal is control
/// flow (always caught by an `enter` frame), so the process-global panic
/// hook must not fire for it.
pub(crate) fn poll_revocation() {
    if let Some(target) = outermost_flagged() {
        resume_unwind(Box::new(RollbackSignal { target }));
    }
}

/// Mark every enclosing section non-revocable (native-effect /
/// volatile-write / wait rules of §2.2). Returns how many flipped.
pub(crate) fn mark_all_nonrevocable() -> u64 {
    SECTIONS.with(|s| {
        let mut flipped = 0;
        for c in s.borrow().iter() {
            if !c.non_revocable.swap(true, Ordering::AcqRel) {
                flipped += 1;
            }
        }
        flipped
    })
}

/// The transaction handle passed to `enter` closures.
///
/// Carries no data itself — it witnesses that the current thread holds
/// the monitor, and routes all shared accesses through the write-barrier
/// (undo logging) and yield-point (revocation polling) machinery.
pub struct Tx<'m> {
    pub(crate) ctx: Arc<SectionCtx>,
    pub(crate) monitor: &'m crate::monitor::RevocableMonitor,
}

impl Tx<'_> {
    /// Read a cell. A yield point.
    pub fn read<T: Clone + Send + 'static>(&self, cell: &TCell<T>) -> T {
        poll_revocation();
        cell.inner.lock().clone()
    }

    /// Write a cell, logging the old value for rollback. A yield point.
    pub fn write<T: Clone + Send + 'static>(&self, cell: &TCell<T>, v: T) {
        poll_revocation();
        let inner = Arc::clone(&cell.inner);
        let old = std::mem::replace(&mut *inner.lock(), v);
        self.ctx.undo.lock().push(Box::new(move || {
            *inner.lock() = old;
        }));
        self.monitor.stats.log_entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Update a cell in place (read-modify-write). A yield point.
    pub fn update<T: Clone + Send + 'static>(&self, cell: &TCell<T>, f: impl FnOnce(T) -> T) {
        let v = self.read(cell);
        self.write(cell, f(v));
    }

    /// Read a volatile cell (always allowed, lock-free).
    pub fn read_volatile(&self, cell: &VolatileCell) -> i64 {
        poll_revocation();
        cell.load()
    }

    /// Write a volatile cell from inside the section. Publishes the value
    /// immediately to unmonitored readers, so every enclosing section
    /// becomes **non-revocable** (§2.2, Fig. 3) — the write is *not*
    /// undone by a rollback that can no longer happen.
    pub fn write_volatile(&self, cell: &VolatileCell, v: i64) {
        poll_revocation();
        let flipped = mark_all_nonrevocable();
        self.monitor.stats.nonrevocable_marks.fetch_add(flipped, Ordering::Relaxed);
        if flipped > 0 {
            crate::obs::emit(self.ctx.monitor_id, revmon_obs::EventKind::NonRevocable);
        }
        cell.value.store(v, Ordering::SeqCst);
    }

    /// Explicit yield point for long monitor-protected compute stretches
    /// with no data accesses (the analogue of loop back-edge yield
    /// points).
    pub fn checkpoint(&self) {
        poll_revocation();
    }

    /// Declare an irrevocable effect (the analogue of a native call):
    /// every enclosing section becomes non-revocable, after which the
    /// closure can safely perform I/O or other non-undoable work.
    pub fn irrevocable(&self) {
        let flipped = mark_all_nonrevocable();
        self.monitor.stats.nonrevocable_marks.fetch_add(flipped, Ordering::Relaxed);
        if flipped > 0 {
            crate::obs::emit(self.ctx.monitor_id, revmon_obs::EventKind::NonRevocable);
        }
    }

    /// `Object.wait()`: release the monitor and park until notified.
    ///
    /// Conservative revocability rule: the section (and its enclosing
    /// ones) become non-revocable — a superset of the paper's rule, which
    /// additionally permits post-`wait` restart points for non-nested
    /// waits (implemented in the VM; kept simple here).
    pub fn wait(&self) {
        self.monitor.wait_current(&self.ctx);
    }

    /// `Object.notify()`.
    pub fn notify_one(&self) {
        self.monitor.notify(false);
    }

    /// `Object.notifyAll()`.
    pub fn notify_all(&self) {
        self.monitor.notify(true);
    }

    /// Whether this execution is still revocable (diagnostics).
    pub fn is_revocable(&self) -> bool {
        self.ctx.revocable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollback_applies_undo_newest_first() {
        let ctx = SectionCtx::new(1);
        let trace = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let t = Arc::clone(&trace);
            ctx.undo.lock().push(Box::new(move || t.lock().push(i)));
        }
        assert_eq!(ctx.rollback(), 3);
        assert_eq!(*trace.lock(), vec![2, 1, 0]);
        assert_eq!(ctx.rollback(), 0, "log emptied");
    }

    #[test]
    fn nested_commit_moves_entries_to_parent() {
        let outer = SectionCtx::new(1);
        let inner = SectionCtx::new(1);
        inner.undo.lock().push(Box::new(|| {}));
        inner.undo.lock().push(Box::new(|| {}));
        assert_eq!(inner.commit_into(Some(&outer)), 2);
        assert_eq!(outer.undo.lock().len(), 2);
        assert_eq!(inner.undo.lock().len(), 0);
    }

    #[test]
    fn outermost_commit_drops_entries() {
        let ctx = SectionCtx::new(1);
        ctx.undo.lock().push(Box::new(|| {}));
        assert_eq!(ctx.commit_into(None), 1);
        assert_eq!(ctx.undo.lock().len(), 0);
    }

    #[test]
    fn section_ids_are_unique() {
        let a = SectionCtx::new(1);
        let b = SectionCtx::new(1);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn flagged_nonrevocable_sections_are_skipped() {
        let ctx = SectionCtx::new(1);
        ctx.revoke.store(true, Ordering::Release);
        ctx.non_revocable.store(true, Ordering::Release);
        push_section(Arc::clone(&ctx));
        assert_eq!(outermost_flagged(), None);
        pop_section();
    }

    #[test]
    fn outermost_flagged_prefers_outer() {
        let outer = SectionCtx::new(1);
        let inner = SectionCtx::new(2);
        outer.revoke.store(true, Ordering::Release);
        inner.revoke.store(true, Ordering::Release);
        push_section(Arc::clone(&outer));
        push_section(Arc::clone(&inner));
        assert_eq!(outermost_flagged(), Some(outer.id));
        pop_section();
        pop_section();
    }
}
