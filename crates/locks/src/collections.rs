//! Higher-level constructs composed from revocable monitors —
//! demonstrating that the paper's primitive supports ordinary
//! monitor-style libraries unchanged.

use crate::cell::TCell;
use crate::monitor::RevocableMonitor;
use crate::tx::Tx;
use revmon_core::Priority;
use std::collections::VecDeque;

/// A classic monitor-based bounded FIFO queue (the `wait`/`notify`
/// textbook example), built on a [`RevocableMonitor`].
///
/// Producers and consumers declare a priority per operation; a
/// low-priority producer caught mid-`push` by a high-priority consumer is
/// revoked and retried like any other synchronized section. The
/// `wait`-based blocking paths pin their sections non-revocable
/// (the library's conservative §2.2 rule), so a parked peer is never
/// "un-notified".
///
/// ```
/// use revmon_locks::collections::BoundedQueue;
/// use revmon_core::Priority;
///
/// let q = BoundedQueue::new(2);
/// q.push(Priority::NORM, 1);
/// q.push(Priority::NORM, 2);
/// assert_eq!(q.try_push(Priority::NORM, 3), Err(3)); // full
/// assert_eq!(q.pop(Priority::NORM), 1);
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Debug)]
pub struct BoundedQueue<T: Clone + Send + 'static> {
    monitor: RevocableMonitor,
    items: TCell<VecDeque<T>>,
    capacity: usize,
}

impl<T: Clone + Send + 'static> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        BoundedQueue {
            monitor: RevocableMonitor::new(),
            items: TCell::new(VecDeque::new()),
            capacity,
        }
    }

    fn read_len(&self, tx: &Tx<'_>) -> usize {
        tx.read(&self.items).len()
    }

    /// Blocking push: waits while full.
    pub fn push(&self, priority: Priority, value: T) {
        self.monitor.enter(priority, |tx| {
            while self.read_len(tx) >= self.capacity {
                tx.wait();
            }
            let mut q = tx.read(&self.items);
            q.push_back(value.clone());
            tx.write(&self.items, q);
            tx.notify_all();
        });
    }

    /// Non-waiting push; gives the value back if the queue is full.
    pub fn try_push(&self, priority: Priority, value: T) -> Result<(), T> {
        let pushed = self.monitor.enter(priority, |tx| {
            if self.read_len(tx) >= self.capacity {
                return false;
            }
            let mut q = tx.read(&self.items);
            q.push_back(value.clone());
            tx.write(&self.items, q);
            tx.notify_all();
            true
        });
        if pushed {
            Ok(())
        } else {
            Err(value)
        }
    }

    /// Blocking pop: waits while empty.
    pub fn pop(&self, priority: Priority) -> T {
        self.monitor.enter(priority, |tx| loop {
            let mut q = tx.read(&self.items);
            if let Some(v) = q.pop_front() {
                tx.write(&self.items, q);
                tx.notify_all();
                return v;
            }
            tx.wait();
        })
    }

    /// Non-waiting pop.
    pub fn try_pop(&self, priority: Priority) -> Option<T> {
        self.monitor.enter(priority, |tx| {
            let mut q = tx.read(&self.items);
            let v = q.pop_front();
            if v.is_some() {
                tx.write(&self.items, q);
                tx.notify_all();
            }
            v
        })
    }

    /// Current length (a synchronized snapshot).
    pub fn len(&self) -> usize {
        self.monitor.enter(Priority::NORM, |tx| self.read_len(tx))
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying monitor's statistics.
    pub fn stats(&self) -> crate::stats::StatsSnapshot {
        self.monitor.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(Priority::NORM, i);
        }
        for i in 0..5 {
            assert_eq!(q.pop(Priority::NORM), i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn try_variants_respect_capacity() {
        let q = BoundedQueue::new(1);
        assert_eq!(q.try_push(Priority::NORM, 9), Ok(()));
        assert_eq!(q.try_push(Priority::NORM, 10), Err(10));
        assert_eq!(q.try_pop(Priority::NORM), Some(9));
        assert_eq!(q.try_pop(Priority::NORM), None);
    }

    #[test]
    fn producers_and_consumers_transfer_everything() {
        let q = Arc::new(BoundedQueue::new(4));
        let total: i64 = 500;
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..total {
                        q.push(Priority::LOW, p * total + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut sum = 0i64;
                    for _ in 0..total {
                        sum += q.pop(Priority::HIGH);
                    }
                    sum
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let got: i64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expect: i64 = (0..2 * total).sum();
        assert_eq!(got, expect, "every pushed item popped exactly once");
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<i32>::new(0);
    }
}
