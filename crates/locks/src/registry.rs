//! Global registry: waits-for graph over OS threads for deadlock
//! detection and victim revocation.
//!
//! The registry is consulted only on the slow paths (blocking,
//! acquisition handoff) and never while a monitor's own state lock is
//! held, which gives a simple global lock order (monitor state ≺
//! registry) and keeps the fast path lock-free of global state.
//!
//! Victim flagging touches only the victim's `SectionCtx` atomics and its
//! `Thread` handle (unpark), so the breaker never needs another monitor's
//! state lock.

use crate::obs;
use crate::stats::{MonitorStats, StatsSnapshot};
use crate::tx::{SectionCtx, ThreadSlot};
use parking_lot::Mutex;
use revmon_core::{MonitorId, Priority, ThreadId, WaitsForGraph};
use revmon_obs::{Event, EventKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::Thread;

/// Global deadlock counters (library-wide, since cycles span monitors).
pub static DEADLOCKS_DETECTED: AtomicU64 = AtomicU64::new(0);
/// Deadlocks broken by revoking a victim.
pub static DEADLOCKS_BROKEN: AtomicU64 = AtomicU64::new(0);

struct HolderInfo {
    thread: ThreadId,
    /// The holder's runtime slot: park handle, observability id, and the
    /// cached revocation flag the breaker raises alongside the section's.
    slot: Arc<ThreadSlot>,
    priority: Priority,
    /// Outermost section of the holder on this monitor — the revocation
    /// target for deadlock breaking.
    ctx: Arc<SectionCtx>,
}

#[derive(Default)]
struct Registry {
    graph: WaitsForGraph,
    ids: HashMap<std::thread::ThreadId, ThreadId>,
    next_id: u32,
    holders: HashMap<u64, HolderInfo>,
    /// Declared priority of each currently blocked thread (snapshot
    /// annotation; maintained by `on_block`/`on_unblock`).
    waiter_prios: HashMap<ThreadId, Priority>,
}

impl Registry {
    fn dense_id(&mut self, t: std::thread::ThreadId) -> ThreadId {
        if let Some(&id) = self.ids.get(&t) {
            return id;
        }
        let id = ThreadId(self.next_id);
        self.next_id += 1;
        self.ids.insert(t, id);
        id
    }
}

fn registry() -> &'static Mutex<Registry> {
    static R: OnceLock<Mutex<Registry>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Registry::default()))
}

fn mid(monitor_id: u64) -> MonitorId {
    MonitorId(monitor_id as u32)
}

/// Record that `slot`'s thread took ownership of `monitor_id`
/// (outermost acquisition only), and re-point stale waiter edges.
pub(crate) fn on_acquire(
    monitor_id: u64,
    slot: Arc<ThreadSlot>,
    priority: Priority,
    ctx: Arc<SectionCtx>,
) {
    let mut r = registry().lock();
    let me = r.dense_id(slot.handle.id());
    r.holders.insert(monitor_id, HolderInfo { thread: me, slot, priority, ctx });
    r.graph.retarget_monitor(mid(monitor_id), me);
}

/// Record full release of `monitor_id` by `owner`. The owner guard
/// closes a race with the next acquirer: the releaser reports here after
/// dropping the monitor's state lock, by which time a successor may
/// already have registered — removing unconditionally would erase the
/// successor's entry.
pub(crate) fn on_release(monitor_id: u64, owner: std::thread::ThreadId) {
    let mut r = registry().lock();
    if let Some(&id) = r.ids.get(&owner) {
        if r.holders.get(&monitor_id).is_some_and(|h| h.thread == id) {
            r.holders.remove(&monitor_id);
        }
    }
}

/// Record that `handle`'s thread blocked on `monitor_id`; detect and
/// break any deadlock cycle this closes. Returns whether a victim was
/// flagged (diagnostics).
pub(crate) fn on_block(monitor_id: u64, handle: Thread, priority: Priority) -> bool {
    let mut r = registry().lock();
    let me = r.dense_id(handle.id());
    r.waiter_prios.insert(me, priority);
    let Some(owner) = r.holders.get(&monitor_id).map(|h| h.thread) else {
        // Monitor between owners (grant in flight): no edge to record;
        // the next on_acquire will retarget if we are still queued.
        return false;
    };
    if owner == me {
        return false;
    }
    r.graph.add_wait(me, mid(monitor_id), owner);
    let Some(cycle) = r.graph.find_cycle_from(me) else {
        return false;
    };
    DEADLOCKS_DETECTED.fetch_add(1, Ordering::Relaxed);
    obs::emit(Event::NO_MONITOR, EventKind::DeadlockDetected { cycle_len: cycle.len() as u64 });
    // Victim: lowest-priority (youngest on ties) member holding a
    // *revocable* section on the monitor its predecessor waits for.
    let mut candidates: Vec<(Priority, std::cmp::Reverse<u32>, u64)> = Vec::new();
    for &v in &cycle {
        let Some(pred_edge) =
            cycle.iter().filter_map(|&p| r.graph.edge_of(p)).find(|e| e.owner == v)
        else {
            continue;
        };
        let held_monitor = pred_edge.monitor.0 as u64;
        let Some(h) = r.holders.get(&held_monitor) else { continue };
        if h.thread != v || !h.ctx.revocable() || h.ctx.revoke.load(Ordering::Acquire) {
            continue;
        }
        candidates.push((h.priority, std::cmp::Reverse(v.0), held_monitor));
    }
    candidates.sort();
    let Some(&(_, _, victim_monitor)) = candidates.first() else {
        return false; // unbreakable (all non-revocable): threads stay blocked
    };
    let h = r.holders.get(&victim_monitor).expect("candidate came from holders");
    // Section flag before the cached thread flag (both Release): the
    // victim's slow poll consumes the cached flag and then scans, so
    // this order guarantees the scan sees the flagged section.
    h.ctx.revoke.store(true, Ordering::Release);
    h.slot.pending_revoke.store(true, Ordering::Release);
    h.slot.handle.unpark();
    DEADLOCKS_BROKEN.fetch_add(1, Ordering::Relaxed);
    obs::emit_for(h.slot.obs, victim_monitor, EventKind::DeadlockBroken);
    true
}

/// Monitors register their counters here so library-wide aggregates stay
/// available without keeping dropped monitors alive.
static STATS_REGISTRY: Mutex<Vec<Weak<MonitorStats>>> = Mutex::new(Vec::new());

/// Register a monitor's counters for [`aggregate_snapshot`].
pub(crate) fn register_stats(stats: &Arc<MonitorStats>) {
    STATS_REGISTRY.lock().push(Arc::downgrade(stats));
}

/// Sum of the counters of every live monitor in the process, plus the
/// library-wide deadlock-detected count (a global, since cycles span
/// monitors). Dropped monitors are pruned on the way through.
pub fn aggregate_snapshot() -> StatsSnapshot {
    let mut reg = STATS_REGISTRY.lock();
    reg.retain(|w| w.strong_count() > 0);
    let mut total = StatsSnapshot::default();
    for w in reg.iter() {
        if let Some(s) = w.upgrade() {
            total.merge(&s.reconciled_snapshot());
        }
    }
    total
}

/// Record that `thread` stopped waiting (granted, or revoked out of the
/// queue).
pub(crate) fn on_unblock(thread: std::thread::ThreadId) {
    let mut r = registry().lock();
    if let Some(&id) = r.ids.get(&thread) {
        r.graph.remove_wait(id);
        r.waiter_prios.remove(&id);
    }
}

/// A deterministic snapshot of the process-wide wait-for graph: every
/// thread→monitor→holder blocking edge, annotated with the waiter's
/// declared priority and the holder's deposited priority.
///
/// Thread ids are the registry's dense per-process ids (stable for a
/// thread's lifetime); monitor ids are obs ids
/// ([`RevocableMonitor::obs_id`](crate::RevocableMonitor::obs_id)), so
/// [`crate::obs::monitor_names`] labels them. `governor_streak` is
/// always 0 in this runtime — its revocation governors are per-monitor
/// and not visible from the global registry.
///
/// This is the `revmon serve` live `/graph` payload; render with
/// [`GraphSnapshot::to_dot`](revmon_obs::GraphSnapshot::to_dot) or
/// [`to_json`](revmon_obs::GraphSnapshot::to_json).
pub fn wait_graph_snapshot() -> revmon_obs::GraphSnapshot {
    let r = registry().lock();
    let holder_prio: HashMap<ThreadId, u8> =
        r.holders.values().map(|h| (h.thread, h.priority.0)).collect();
    let edges = r
        .graph
        .edges()
        .map(|e| revmon_obs::GraphEdge {
            waiter: e.waiter.0 as u64,
            waiter_priority: r.waiter_prios.get(&e.waiter).map(|p| p.0).unwrap_or(0),
            monitor: e.monitor.0 as u64,
            holder: e.owner.0 as u64,
            holder_priority: holder_prio.get(&e.owner).copied().unwrap_or(0),
            governor_streak: 0,
        })
        .collect();
    revmon_obs::GraphSnapshot::new(edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_are_stable() {
        let mut r = Registry::default();
        let t = std::thread::current().id();
        let a = r.dense_id(t);
        let b = r.dense_id(t);
        assert_eq!(a, b);
    }
}
