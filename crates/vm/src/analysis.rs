//! Write-barrier elision analysis.
//!
//! §1.1: *"all compiled code needs at least a fast-path test on every
//! non-local update to check if the thread is executing within a
//! synchronized section […] Compiler analyses and optimization may elide
//! these run-time checks when the update can be shown statically never to
//! occur within a synchronized section."*
//!
//! A store needs its barrier unless it can be shown **never** to execute
//! while the thread holds a monitor:
//!
//! * a store lexically inside one of its method's synchronized regions
//!   always needs the barrier;
//! * a store outside every region needs it only if the *method itself*
//!   may be reached from inside some synchronized region — computed as a
//!   transitive closure over the call graph, seeded by every `Call` that
//!   appears inside a region;
//! * methods whose control flow can jump *into* the middle of a region
//!   from outside (impossible with builder-structured code, possible with
//!   raw bytecode) are treated conservatively: every store keeps its
//!   barrier.
//!
//! Read barriers (the JMM guard's dependency check) are **not** elided:
//! the problematic reads of Figures 2–3 are precisely reads *outside* any
//! monitor, so removing unmonitored read barriers would blind the guard.
//! The paper's conclusion floats that optimization as future work; we
//! document the soundness caveat here instead.

use crate::bytecode::{Insn, Method, Program};

/// Per-method, per-pc elision table: `true` = this store's write barrier
/// is statically removable.
#[derive(Debug, Clone)]
pub struct ElisionTable {
    /// `table[method][pc]` — only meaningful at store instructions.
    table: Vec<Box<[bool]>>,
    /// Number of store sites whose barrier was elided.
    pub elided_sites: usize,
    /// Total store sites.
    pub store_sites: usize,
}

impl ElisionTable {
    /// Whether the store at `method`/`pc` may skip its barrier.
    #[inline]
    pub fn is_elided(&self, method: usize, pc: u32) -> bool {
        self.table.get(method).and_then(|m| m.get(pc as usize)).copied().unwrap_or(false)
    }
}

fn is_store(i: &Insn) -> bool {
    matches!(i, Insn::PutField(_) | Insn::PutStatic(_) | Insn::AStore)
}

/// Whether `pc` lies inside any of the method's synchronized regions.
fn in_region(m: &Method, pc: u32) -> bool {
    m.sync_regions.iter().any(|r| pc >= r.enter && pc < r.exit)
}

/// Conservative escape hatch: any branch from outside a region into its
/// interior (not its entry) makes lexical reasoning unsound.
fn has_irregular_region_entry(m: &Method) -> bool {
    let targets = |i: &Insn| match *i {
        Insn::Goto(t)
        | Insn::IfZero(t)
        | Insn::IfNonZero(t)
        | Insn::IfLt(t)
        | Insn::IfGe(t)
        | Insn::IfEq(t)
        | Insn::IfNe(t) => Some(t),
        _ => None,
    };
    for (pc, i) in m.code.iter().enumerate() {
        let Some(t) = targets(i) else { continue };
        for r in &m.sync_regions {
            let from_outside = !(pc as u32 >= r.enter && (pc as u32) < r.exit);
            let into_interior = t > r.enter && t < r.exit;
            if from_outside && into_interior {
                return true;
            }
        }
    }
    // Handlers that land inside a region from outside count too.
    for h in &m.handlers {
        for r in &m.sync_regions {
            let covers_region = h.start <= r.enter && h.end >= r.exit;
            let into_interior = h.target > r.enter && h.target < r.exit;
            if into_interior && !covers_region {
                return true;
            }
        }
    }
    false
}

/// Compute the elision table for a (possibly rewritten) program.
pub fn analyze(p: &Program) -> ElisionTable {
    let n = p.methods.len();
    // 1. may_run_in_monitor: seeded by calls inside regions, closed
    //    transitively over the call graph.
    let mut may_run = vec![false; n];
    let mut work: Vec<usize> = Vec::new();
    for m in &p.methods {
        for (pc, i) in m.code.iter().enumerate() {
            if let Insn::Call(callee) = i {
                if in_region(m, pc as u32) && !may_run[callee.index()] {
                    may_run[callee.index()] = true;
                    work.push(callee.index());
                }
            }
        }
    }
    while let Some(mi) = work.pop() {
        for i in &p.methods[mi].code {
            if let Insn::Call(callee) = i {
                if !may_run[callee.index()] {
                    may_run[callee.index()] = true;
                    work.push(callee.index());
                }
            }
        }
    }

    // 2. Per-store decision.
    let mut elided_sites = 0;
    let mut store_sites = 0;
    let table: Vec<Box<[bool]>> = p
        .methods
        .iter()
        .enumerate()
        .map(|(mi, m)| {
            let conservative = may_run[mi] || has_irregular_region_entry(m);
            m.code
                .iter()
                .enumerate()
                .map(|(pc, i)| {
                    if !is_store(i) {
                        return false;
                    }
                    store_sites += 1;
                    let elide = !conservative && !in_region(m, pc as u32);
                    if elide {
                        elided_sites += 1;
                    }
                    elide
                })
                .collect()
        })
        .collect();

    ElisionTable { table, elided_sites, store_sites }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MethodBuilder, ProgramBuilder};
    use crate::rewrite::rewrite_program;

    /// helper() stores to static 1; caller calls it inside (or outside) a
    /// region, plus does its own stores inside and outside.
    fn program(call_inside: bool) -> (Program, usize, usize) {
        let mut pb = ProgramBuilder::new();
        pb.statics(3);
        let helper = pb.declare_method("helper", 0);
        let mut h = MethodBuilder::new(0, 0);
        h.const_i(1);
        h.put_static(1);
        h.ret_void();
        pb.implement(helper, h);
        let run = pb.declare_method("run", 1);
        let mut b = MethodBuilder::new(1, 1);
        b.const_i(5);
        b.put_static(0); // store outside the region
        b.sync_on_local(0, |b| {
            b.const_i(6);
            b.put_static(2); // store inside the region
            if call_inside {
                b.call(helper);
            }
        });
        if !call_inside {
            b.call(helper);
        }
        b.ret_void();
        pb.implement(run, b);
        (pb.finish(), helper.index(), run.index())
    }

    #[test]
    fn stores_inside_regions_keep_barriers() {
        let (p, _, run) = program(false);
        let t = analyze(&p);
        let m = &p.methods[run];
        for (pc, i) in m.code.iter().enumerate() {
            if is_store(i) && in_region(m, pc as u32) {
                assert!(!t.is_elided(run, pc as u32), "in-region store must keep barrier");
            }
        }
    }

    #[test]
    fn stores_outside_regions_elided_when_uncallable_from_monitors() {
        let (p, helper, run) = program(false);
        let t = analyze(&p);
        // helper is only called outside the region: its store is elided.
        let hm = &p.methods[helper];
        let store_pc = hm.code.iter().position(is_store).unwrap();
        assert!(t.is_elided(helper, store_pc as u32));
        // run's own out-of-region store is elided too.
        let rm = &p.methods[run];
        let out_pc = rm
            .code
            .iter()
            .enumerate()
            .position(|(pc, i)| is_store(i) && !in_region(rm, pc as u32))
            .unwrap();
        assert!(t.is_elided(run, out_pc as u32));
    }

    #[test]
    fn callee_of_a_region_keeps_barriers() {
        let (p, helper, _) = program(true);
        let t = analyze(&p);
        let hm = &p.methods[helper];
        let store_pc = hm.code.iter().position(is_store).unwrap();
        assert!(
            !t.is_elided(helper, store_pc as u32),
            "store of a method reachable from a monitor must keep its barrier"
        );
    }

    #[test]
    fn transitive_closure_over_calls() {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let c = pb.declare_method("c", 0);
        let mut cb = MethodBuilder::new(0, 0);
        cb.const_i(1);
        cb.put_static(0);
        cb.ret_void();
        pb.implement(c, cb);
        let bm = pb.declare_method("b", 0);
        let mut bb = MethodBuilder::new(0, 0);
        bb.call(c);
        bb.ret_void();
        pb.implement(bm, bb);
        let a = pb.declare_method("a", 1);
        let mut ab = MethodBuilder::new(1, 1);
        ab.sync_on_local(0, |x| {
            x.call(bm);
        });
        ab.ret_void();
        pb.implement(a, ab);
        let p = pb.finish();
        let t = analyze(&p);
        assert!(!t.is_elided(c.index(), 1), "a -> region -> b -> c: c keeps barriers");
    }

    #[test]
    fn analysis_works_on_rewritten_programs() {
        let (p, helper, _) = program(false);
        let r = rewrite_program(&p);
        let t = analyze(&r);
        let hm = &r.methods[helper];
        let store_pc = hm.code.iter().position(is_store).unwrap();
        assert!(t.is_elided(helper, store_pc as u32));
        assert!(t.store_sites >= 3);
        assert!(t.elided_sites >= 1);
    }

    #[test]
    fn irregular_entry_disables_elision_for_the_method() {
        use crate::bytecode::{Method, SyncRegion};
        use crate::value::Value;
        use Insn::*;
        // Hand-built: a jump from outside into the middle of the region.
        let code = vec![
            Goto(5),              // 0: jump INTO region interior
            Load(0),              // 1
            MonitorEnter,         // 2: region enter
            Const(Value::Int(1)), // 3
            PutStatic(0),         // 4
            Const(Value::Int(2)), // 5  <- jumped-to interior
            PutStatic(1),         // 6
            Load(0),              // 7
            MonitorExit,          // 8
            RetVoid,              // 9
        ];
        let p = Program {
            methods: vec![Method {
                name: "m".into(),
                params: 1,
                locals: 1,
                code,
                handlers: vec![],
                sync_regions: vec![SyncRegion { enter: 2, exit: 9 }],
                synchronized: false,
                rollback_scopes: vec![],
            }],
            n_statics: 2,
            volatile_statics: vec![],
            class_names: Default::default(),
        };
        let t = analyze(&p);
        assert_eq!(t.elided_sites, 0, "irregular entry must force conservatism");
    }
}
