//! Optional event trace, used by tests and the Figure-1 walkthrough
//! example to assert on the exact sequence of monitor events.

use crate::value::ObjRef;
use revmon_core::ThreadId;

/// One traced event (virtual-clock timestamps attached by the VM).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Thread acquired the monitor (uncontended, handed off, or
    /// recursive re-entry).
    Acquire {
        /// Acquiring thread.
        thread: ThreadId,
        /// Monitor object.
        monitor: ObjRef,
    },
    /// Thread blocked on the monitor's entry queue.
    Block {
        /// Blocking thread.
        thread: ThreadId,
        /// Monitor object.
        monitor: ObjRef,
    },
    /// A higher-priority contender flagged the holder for revocation.
    RevokeRequest {
        /// Requesting (high-priority) thread.
        by: ThreadId,
        /// Flagged holder.
        holder: ThreadId,
        /// Contended monitor.
        monitor: ObjRef,
    },
    /// A section was rolled back.
    Rollback {
        /// Revoked thread.
        thread: ThreadId,
        /// Monitor of the revoked section.
        monitor: ObjRef,
        /// Undo-log entries restored.
        entries: u64,
    },
    /// A section committed (its outermost `MonitorExit` retired the log).
    Commit {
        /// Committing thread.
        thread: ThreadId,
        /// Monitor object.
        monitor: ObjRef,
    },
    /// Thread released the monitor.
    Release {
        /// Releasing thread.
        thread: ThreadId,
        /// Monitor object.
        monitor: ObjRef,
    },
    /// A section was marked non-revocable (JMM guard, native call,
    /// nested wait).
    NonRevocable {
        /// Owning thread.
        thread: ThreadId,
        /// Monitor of the flagged section.
        monitor: ObjRef,
    },
    /// A deadlock cycle was detected.
    DeadlockDetected {
        /// Number of threads in the cycle.
        cycle_len: usize,
    },
    /// A deadlock was broken by revoking `victim`.
    DeadlockBroken {
        /// Revoked thread.
        victim: ThreadId,
    },
    /// An inversion was detected but could not be resolved (target
    /// non-revocable).
    InversionUnresolved {
        /// High-priority requester.
        by: ThreadId,
        /// Low-priority holder.
        holder: ThreadId,
        /// Contended monitor.
        monitor: ObjRef,
    },
}

/// A timestamped trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual-clock tick of the event.
    pub at: u64,
    /// The event.
    pub event: TraceEvent,
}
