//! Optional event trace, used by tests and the Figure-1 walkthrough
//! example to assert on the exact sequence of monitor events.

use crate::value::ObjRef;
use revmon_core::ThreadId;

/// One traced event (virtual-clock timestamps attached by the VM).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Thread acquired the monitor (uncontended, handed off, or
    /// recursive re-entry).
    Acquire {
        /// Acquiring thread.
        thread: ThreadId,
        /// Monitor object.
        monitor: ObjRef,
    },
    /// Thread blocked on the monitor's entry queue.
    Block {
        /// Blocking thread.
        thread: ThreadId,
        /// Monitor object.
        monitor: ObjRef,
    },
    /// A higher-priority contender flagged the holder for revocation.
    RevokeRequest {
        /// Requesting (high-priority) thread.
        by: ThreadId,
        /// Flagged holder.
        holder: ThreadId,
        /// Contended monitor.
        monitor: ObjRef,
    },
    /// A section was rolled back.
    Rollback {
        /// Revoked thread.
        thread: ThreadId,
        /// Monitor of the revoked section.
        monitor: ObjRef,
        /// Undo-log entries restored.
        entries: u64,
    },
    /// A section committed (its outermost `MonitorExit` retired the log).
    Commit {
        /// Committing thread.
        thread: ThreadId,
        /// Monitor object.
        monitor: ObjRef,
    },
    /// Thread released the monitor.
    Release {
        /// Releasing thread.
        thread: ThreadId,
        /// Monitor object.
        monitor: ObjRef,
    },
    /// A section was marked non-revocable (JMM guard, native call,
    /// nested wait).
    NonRevocable {
        /// Owning thread.
        thread: ThreadId,
        /// Monitor of the flagged section.
        monitor: ObjRef,
    },
    /// A deadlock cycle was detected.
    DeadlockDetected {
        /// Number of threads in the cycle.
        cycle_len: usize,
    },
    /// A deadlock was broken by revoking `victim`.
    DeadlockBroken {
        /// Revoked thread.
        victim: ThreadId,
    },
    /// An inversion was detected but could not be resolved (target
    /// non-revocable).
    InversionUnresolved {
        /// High-priority requester.
        by: ThreadId,
        /// Low-priority holder.
        holder: ThreadId,
        /// Contended monitor.
        monitor: ObjRef,
    },
    /// The governor denied a revocation: the holder's retry budget on
    /// this monitor is spent, so the contender blocks instead.
    GovernorThrottle {
        /// High-priority contender that was throttled.
        by: ThreadId,
        /// Low-priority holder that keeps the monitor.
        holder: ThreadId,
        /// Governed monitor.
        monitor: ObjRef,
    },
    /// The governor opened a fresh fallback-to-blocking window for this
    /// monitor (the per-monitor degradation to the blocking baseline).
    PolicyFallback {
        /// Holder whose revocation history triggered the fallback.
        holder: ThreadId,
        /// Governed monitor.
        monitor: ObjRef,
    },
}

impl TraceEvent {
    /// Lower this VM event into the runtime-agnostic `revmon-obs` model,
    /// stamped with virtual-clock tick `at`. The obs `thread` is the
    /// event's primary actor (the flagged holder for revoke requests,
    /// the victim for deadlock breaking), matching the locks runtime's
    /// attribution so exporters treat both streams identically.
    pub(crate) fn to_obs(self, at: u64) -> revmon_obs::Event {
        use revmon_obs::{Event, EventKind};
        let (thread, monitor, kind) = match self {
            TraceEvent::Acquire { thread, monitor } => {
                (thread.0 as u64, monitor.0 as u64, EventKind::Acquire)
            }
            TraceEvent::Block { thread, monitor } => {
                (thread.0 as u64, monitor.0 as u64, EventKind::Block)
            }
            TraceEvent::RevokeRequest { by, holder, monitor } => {
                (holder.0 as u64, monitor.0 as u64, EventKind::RevokeRequest { by: by.0 as u64 })
            }
            TraceEvent::Rollback { thread, monitor, entries } => {
                (thread.0 as u64, monitor.0 as u64, EventKind::Rollback { entries, duration: 0 })
            }
            TraceEvent::Commit { thread, monitor } => {
                (thread.0 as u64, monitor.0 as u64, EventKind::Commit)
            }
            TraceEvent::Release { thread, monitor } => {
                (thread.0 as u64, monitor.0 as u64, EventKind::Release)
            }
            TraceEvent::NonRevocable { thread, monitor } => {
                (thread.0 as u64, monitor.0 as u64, EventKind::NonRevocable)
            }
            TraceEvent::DeadlockDetected { cycle_len } => (
                Event::NO_THREAD,
                Event::NO_MONITOR,
                EventKind::DeadlockDetected { cycle_len: cycle_len as u64 },
            ),
            TraceEvent::DeadlockBroken { victim } => {
                (victim.0 as u64, Event::NO_MONITOR, EventKind::DeadlockBroken)
            }
            TraceEvent::InversionUnresolved { by, holder, monitor } => (
                holder.0 as u64,
                monitor.0 as u64,
                EventKind::InversionUnresolved { by: by.0 as u64 },
            ),
            TraceEvent::GovernorThrottle { by, holder, monitor } => {
                (holder.0 as u64, monitor.0 as u64, EventKind::GovernorThrottle { by: by.0 as u64 })
            }
            TraceEvent::PolicyFallback { holder, monitor } => {
                (holder.0 as u64, monitor.0 as u64, EventKind::PolicyFallback)
            }
        };
        Event { ts: at, thread, monitor, kind }
    }
}

/// A timestamped trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual-clock tick of the event.
    pub at: u64,
    /// The event.
    pub event: TraceEvent,
}
