//! Deterministic state fingerprinting for schedule exploration.
//!
//! The explorer (crate `revmon-explore`) deduplicates interleavings by
//! hashing the complete *logical* VM state at every scheduling decision
//! point: two executions that reach the same fingerprint with the same
//! remaining preemption budget explore identical futures, so one of them
//! can be pruned (classic stateful model-checking sleep/dedup).
//!
//! What is **included**: the virtual clock, RNG draw count (seed + draw
//! count pins the [`rand::rngs::SmallRng`] stream), emitted output, run
//! queue order, last-dispatched thread, every thread's control state
//! (frames, locals, operand stacks, sections, snapshots, undo logs,
//! scheduling state, priorities), the heap (all object slots and
//! statics), monitor table (owners, recursion, deposited priorities,
//! entry queues with queued-at priorities, wait sets, ceilings, sticky
//! flags), and the live JMM speculative-write map.
//!
//! What is deliberately **excluded**: metrics counters, peak-queue /
//! acquire / contention statistics, trace buffers, timing bookkeeping
//! (`steps`, `next_background_scan`, `quantum_left` is derived from the
//! dispatch loop), and — crucially — section **acquisition ids**. Acq ids
//! come from a global counter whose value depends on *how many* monitor
//! entries happened along the path, so two different interleavings that
//! converge to the same logical state would differ spuriously. A pending
//! revocation (`pending_revoke`, which stores an acq id) is therefore
//! encoded as the *index* of the targeted section in the thread's
//! section stack instead.

use crate::thread::ThreadState;
use crate::vm::Vm;
use revmon_core::{LogMark, UndoLog};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A mark at log position 0 (the public API only hands out marks at the
/// current tail, so the origin mark comes from an empty log).
fn origin_mark() -> LogMark {
    UndoLog::<crate::thread::UndoEntry>::new().mark()
}

impl Vm {
    /// Hash the complete logical machine state into a `u64`.
    ///
    /// Deterministic across runs and processes for the same logical
    /// state (uses [`DefaultHasher`] with its fixed default keys; no
    /// ambient randomness). See the module docs for what is included
    /// and what is deliberately left out.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();

        // Global execution position.
        self.clock.hash(&mut h);
        self.rng_draws.hash(&mut h);
        self.output.hash(&mut h);
        self.last_dispatched.hash(&mut h);
        // Run queue *order* matters: policies choose by index.
        self.run_queue.len().hash(&mut h);
        for tid in &self.run_queue {
            tid.hash(&mut h);
        }

        // Threads.
        self.threads.len().hash(&mut h);
        for t in &self.threads {
            t.base_priority.hash(&mut h);
            t.effective_priority.hash(&mut h);
            hash_thread_state(t.state, &mut h);
            t.wait_recursion.hash(&mut h);
            t.consecutive_revocations.hash(&mut h);
            t.uncaught.hash(&mut h);
            t.held.hash(&mut h);

            t.frames.len().hash(&mut h);
            for f in &t.frames {
                f.method.hash(&mut h);
                f.pc.hash(&mut h);
                f.locals.hash(&mut h);
                f.stack.hash(&mut h);
            }

            t.sections.len().hash(&mut h);
            for s in &t.sections {
                s.monitor.hash(&mut h);
                s.mark.position().hash(&mut h);
                s.frame_depth.hash(&mut h);
                s.revocable.hash(&mut h);
                s.region.hash(&mut h);
                hash_snapshot(&s.snapshot, &mut h);
            }
            // Encode a pending revocation as the index of the targeted
            // section (acq ids are path-dependent; indices are not).
            match t.pending_revoke {
                None => u64::MAX.hash(&mut h),
                Some(acq) => match t.section_by_acq(acq) {
                    Some(idx) => (idx as u64).hash(&mut h),
                    // Target already gone (revocation raced with exit):
                    // distinct sentinel.
                    None => (u64::MAX - 1).hash(&mut h),
                },
            }
            hash_snapshot(&t.pending_snapshot, &mut h);

            let entries = t.undo.since(origin_mark());
            entries.len().hash(&mut h);
            for e in entries {
                e.loc.hash(&mut h);
                e.old.hash(&mut h);
            }
        }

        // Heap (objects + statics, deterministic order).
        self.heap.hash_state(&mut h);

        // Monitors (BTreeMap: ascending object order).
        self.monitors.len().hash(&mut h);
        for (obj, m) in self.monitors.iter() {
            obj.hash(&mut h);
            m.owner.hash(&mut h);
            m.recursion.hash(&mut h);
            m.holder_priority.hash(&mut h);
            m.ceiling.hash(&mut h);
            m.sticky_nonrevocable.hash(&mut h);
            m.queue.len().hash(&mut h);
            for (tid, prio) in m.queue.iter_entries() {
                tid.hash(&mut h);
                prio.hash(&mut h);
            }
            m.wait_set.hash(&mut h);
        }

        // Live speculative writes (sorted by location).
        let spec = self.jmm.entries();
        spec.len().hash(&mut h);
        for (loc, w) in spec {
            loc.hash(&mut h);
            w.writer.hash(&mut h);
            (w.log_pos as u64).hash(&mut h);
        }

        h.finish()
    }
}

fn hash_thread_state<H: Hasher>(s: ThreadState, h: &mut H) {
    match s {
        ThreadState::Ready => 0u8.hash(h),
        ThreadState::Running => 1u8.hash(h),
        ThreadState::BlockedEnter(m) => {
            2u8.hash(h);
            m.hash(h);
        }
        ThreadState::Waiting(m) => {
            3u8.hash(h);
            m.hash(h);
        }
        ThreadState::BlockedReacquire(m) => {
            4u8.hash(h);
            m.hash(h);
        }
        ThreadState::Sleeping(until) => {
            5u8.hash(h);
            until.hash(h);
        }
        ThreadState::BlockedJoin(t) => {
            6u8.hash(h);
            t.hash(h);
        }
        ThreadState::Terminated => 7u8.hash(h),
    }
}

fn hash_snapshot<H: Hasher>(s: &Option<crate::thread::Snapshot>, h: &mut H) {
    match s {
        None => false.hash(h),
        Some(s) => {
            true.hash(h);
            s.locals.hash(h);
            s.stack.hash(h);
            s.resume_pc.hash(h);
            s.after_wait.hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::{MethodBuilder, ProgramBuilder};
    use crate::vm::{Vm, VmConfig};
    use revmon_core::Priority;

    fn fresh_vm() -> Vm {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let main = pb.declare_method("main", 0);
        let mut b = MethodBuilder::new(0, 0);
        b.const_i(7);
        b.put_static(0);
        b.ret_void();
        pb.implement(main, b);
        let mut vm = Vm::new(pb.finish(), VmConfig::modified());
        vm.spawn("main", main, vec![], Priority::NORM);
        vm
    }

    #[test]
    fn identical_states_agree() {
        let a = fresh_vm();
        let b = fresh_vm();
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
    }

    #[test]
    fn stepping_changes_the_fingerprint() {
        let mut vm = fresh_vm();
        let before = vm.state_fingerprint();
        vm.run().unwrap();
        assert_ne!(before, vm.state_fingerprint());
    }

    #[test]
    fn replaying_the_same_run_reproduces_the_fingerprint() {
        let mut a = fresh_vm();
        let mut b = fresh_vm();
        a.run().unwrap();
        b.run().unwrap();
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
    }
}
