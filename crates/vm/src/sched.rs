//! Pluggable scheduling policies.
//!
//! The VM's dispatch loop is fixed (quantum accounting, yield points,
//! revocation checks), but *which* runnable thread gets the next slice is
//! delegated to a [`SchedulePolicy`]. The two classic policies —
//! round-robin (the paper's Jikes RVM 2.2.1 setting) and
//! priority-preemptive (for the ablations) — live here, along with
//! [`Scripted`], which replays an explicit decision sequence and records
//! every choice point it passes. `Scripted` is the substrate of the
//! `revmon-explore` model checker: with the quantum set to one tick,
//! every yield point where more than one thread is runnable becomes an
//! enumerable decision.
//!
//! Policies see an immutable candidate list — the Ready threads in run
//! queue (arrival) order, stale entries already pruned — and return the
//! index of the thread to dispatch. They never mutate VM state, which is
//! what makes schedules replayable.

use revmon_core::{Priority, ThreadId};
use std::sync::{Arc, Mutex};

/// One runnable thread as presented to a policy, in run-queue order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// The runnable thread.
    pub tid: ThreadId,
    /// Its current effective priority (base + inheritance/ceiling boosts).
    pub effective_priority: Priority,
    /// Its base (programmer-assigned) priority.
    pub base_priority: Priority,
}

/// Ambient scheduling information passed alongside the candidates.
#[derive(Clone, Copy, Debug)]
pub struct SchedContext {
    /// The thread that held the previous time slice, if any.
    pub last_dispatched: Option<ThreadId>,
    /// Current virtual-clock value.
    pub clock: u64,
}

/// A scheduling decision procedure.
///
/// `choose` is called with a non-empty candidate list; the returned index
/// is clamped to the list by the caller. Implementations must be
/// deterministic functions of their own state plus the arguments —
/// ambient randomness or wall-clock input would break bit-exact replay.
pub trait SchedulePolicy: Send {
    /// Short stable name for reports and schedule artifacts.
    fn name(&self) -> &'static str;
    /// Pick the index of the candidate to dispatch next.
    fn choose(&mut self, candidates: &[Candidate], ctx: &SchedContext) -> usize;
}

/// Which built-in scheduler drives runnable threads.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// Plain round-robin, priorities ignored (Jikes RVM 2.2.1; the
    /// paper's setting for all measurements).
    #[default]
    RoundRobin,
    /// Always run the highest effective-priority runnable thread,
    /// round-robin within a priority class. Needed for the priority
    /// inheritance / ceiling ablations to be meaningful.
    PriorityPreemptive,
}

impl SchedulerKind {
    /// Construct the policy implementing this kind.
    pub fn policy(self) -> Box<dyn SchedulePolicy> {
        match self {
            SchedulerKind::RoundRobin => Box::new(RoundRobin),
            SchedulerKind::PriorityPreemptive => Box::new(PriorityPreemptive),
        }
    }
}

/// Round-robin: dispatch the longest-waiting Ready thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin;

impl SchedulePolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }
    fn choose(&mut self, _candidates: &[Candidate], _ctx: &SchedContext) -> usize {
        0
    }
}

/// Priority-preemptive: highest effective priority wins; FIFO within a
/// priority class.
#[derive(Clone, Copy, Debug, Default)]
pub struct PriorityPreemptive;

impl SchedulePolicy for PriorityPreemptive {
    fn name(&self) -> &'static str {
        "priority-preemptive"
    }
    fn choose(&mut self, candidates: &[Candidate], _ctx: &SchedContext) -> usize {
        let mut best = 0usize;
        for (i, c) in candidates.iter().enumerate().skip(1) {
            if c.effective_priority > candidates[best].effective_priority {
                best = i;
            }
        }
        best
    }
}

/// Sentinel decision value meaning "take the default choice here".
///
/// The default at a choice point is candidate 0 — the front of the run
/// queue, which is exactly what the production [`RoundRobin`] policy
/// dispatches. An all-default schedule therefore reproduces the stock
/// scheduler's fair rotation, and is guaranteed to make global progress
/// (a "continue the last thread" default would livelock on lock-free
/// spin loops, burning the whole round budget on every explored
/// schedule). Shrinking replaces decisions with this sentinel to strip
/// forced switches one by one.
pub const DEFAULT_CHOICE: u32 = u32::MAX;

/// One recorded scheduling decision at a multi-candidate choice point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Number of candidates at this choice point.
    pub n_candidates: u32,
    /// Index actually dispatched.
    pub chosen: u32,
    /// Thread actually dispatched.
    pub chosen_tid: ThreadId,
    /// Index of the previously dispatched thread among the candidates,
    /// if it was still runnable (diagnostic: shows whether the decision
    /// continued, rotated away from, or returned to the previous thread).
    pub cont_index: Option<u32>,
}

impl DecisionRecord {
    /// Whether the recorded choice deviated from the default (candidate
    /// 0, the fair round-robin rotation) — a switch the baseline
    /// scheduler would not have made. These deviations are what the
    /// explorer's context bound counts, in the style of delay-bounded
    /// scheduling (Emmi, Qadeer & Rakamarić, POPL 2011): bounding
    /// deviations from a deterministic fair scheduler rather than raw
    /// context switches keeps the baseline live on programs whose
    /// threads never block (lock-free spin loops).
    pub fn is_preemption(&self) -> bool {
        self.chosen != 0
    }
}

/// The decision log produced by one [`Scripted`] run, shared with the
/// driver through an `Arc<Mutex<_>>` (the policy itself is boxed away
/// inside the VM).
pub type ScriptLog = Arc<Mutex<Vec<DecisionRecord>>>;

/// Replay policy: consumes an explicit decision sequence at
/// multi-candidate choice points and records every decision it makes.
///
/// * Single-candidate rounds are **not** choice points: nothing is
///   consumed or recorded, so decision indices line up across runs that
///   share a prefix.
/// * Past the end of the script — or on a [`DEFAULT_CHOICE`] / \
///   out-of-range entry — the default choice applies: candidate 0, the
///   stock round-robin rotation. A fully empty script therefore
///   reproduces the production scheduler's schedule.
#[derive(Debug)]
pub struct Scripted {
    script: Vec<u32>,
    cursor: usize,
    log: ScriptLog,
}

impl Scripted {
    /// Policy replaying `script`; decisions are appended to the returned
    /// shared log as the run proceeds.
    pub fn new(script: Vec<u32>) -> (Self, ScriptLog) {
        let log: ScriptLog = Arc::new(Mutex::new(Vec::new()));
        (Scripted { script, cursor: 0, log: log.clone() }, log)
    }
}

impl SchedulePolicy for Scripted {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn choose(&mut self, candidates: &[Candidate], ctx: &SchedContext) -> usize {
        if candidates.len() < 2 {
            return 0; // not a choice point
        }
        let cont_index = ctx
            .last_dispatched
            .and_then(|last| candidates.iter().position(|c| c.tid == last))
            .map(|i| i as u32);
        let scripted = self.script.get(self.cursor).copied();
        self.cursor += 1;
        let chosen = match scripted {
            Some(i) if (i as usize) < candidates.len() => i as usize,
            _ => 0, // fair rotation, same as RoundRobin
        };
        self.log.lock().expect("script log poisoned").push(DecisionRecord {
            n_candidates: candidates.len() as u32,
            chosen: chosen as u32,
            chosen_tid: candidates[chosen].tid,
            cont_index,
        });
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u32, prio: Priority) -> Candidate {
        Candidate { tid: ThreadId(id), effective_priority: prio, base_priority: prio }
    }

    fn ctx(last: Option<u32>) -> SchedContext {
        SchedContext { last_dispatched: last.map(ThreadId), clock: 0 }
    }

    #[test]
    fn round_robin_always_takes_the_front() {
        let mut p = RoundRobin;
        let cs = [cand(3, Priority::LOW), cand(1, Priority::MAX)];
        assert_eq!(p.choose(&cs, &ctx(None)), 0);
    }

    #[test]
    fn priority_preemptive_takes_highest_earliest() {
        let mut p = PriorityPreemptive;
        let cs = [
            cand(0, Priority::LOW),
            cand(1, Priority::HIGH),
            cand(2, Priority::NORM),
            cand(3, Priority::HIGH),
        ];
        // Ties broken by queue position: thread 1 over thread 3.
        assert_eq!(p.choose(&cs, &ctx(None)), 1);
    }

    #[test]
    fn scripted_skips_single_candidate_rounds() {
        let (mut p, log) = Scripted::new(vec![1]);
        assert_eq!(p.choose(&[cand(0, Priority::NORM)], &ctx(None)), 0);
        assert!(log.lock().unwrap().is_empty(), "no decision recorded");
        // The script entry is still unconsumed: first real choice uses it.
        let cs = [cand(0, Priority::NORM), cand(1, Priority::NORM)];
        assert_eq!(p.choose(&cs, &ctx(Some(0))), 1);
        let rec = log.lock().unwrap()[0];
        assert_eq!(rec.n_candidates, 2);
        assert_eq!(rec.chosen, 1);
        assert_eq!(rec.cont_index, Some(0));
        assert!(rec.is_preemption());
    }

    #[test]
    fn scripted_defaults_to_the_fair_rotation() {
        let (mut p, log) = Scripted::new(vec![]);
        let cs = [cand(0, Priority::NORM), cand(1, Priority::NORM)];
        assert_eq!(p.choose(&cs, &ctx(Some(1))), 0, "front of queue, like RoundRobin");
        assert_eq!(p.choose(&cs, &ctx(None)), 0);
        let recs = log.lock().unwrap();
        assert!(!recs[0].is_preemption(), "the default is never a deviation");
        assert_eq!(recs[0].cont_index, Some(1), "previous thread was still runnable");
        assert_eq!(recs[1].cont_index, None);
        assert!(!recs[1].is_preemption());
    }

    #[test]
    fn scripted_treats_out_of_range_as_default() {
        let (mut p, log) = Scripted::new(vec![DEFAULT_CHOICE, 7]);
        let cs = [cand(0, Priority::NORM), cand(1, Priority::NORM)];
        assert_eq!(p.choose(&cs, &ctx(Some(1))), 0);
        assert_eq!(p.choose(&cs, &ctx(Some(1))), 0);
        assert_eq!(log.lock().unwrap().len(), 2);
    }

    #[test]
    fn kind_constructs_matching_policy() {
        assert_eq!(SchedulerKind::RoundRobin.policy().name(), "round-robin");
        assert_eq!(SchedulerKind::PriorityPreemptive.policy().name(), "priority-preemptive");
    }
}
