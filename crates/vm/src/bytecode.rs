//! The mini instruction set, methods, exception tables and programs.
//!
//! The ISA covers exactly the constructs the paper's technique
//! manipulates: an operand stack and locals (so operand-stack
//! save/restore at `monitorenter` is meaningful), the three store kinds
//! that get write barriers (`PutField`, `PutStatic`, `AStore`), explicit
//! `MonitorEnter`/`MonitorExit`, exception scopes with `finally`-style
//! catch-all handlers, `wait`/`notify`, native (irrevocable) calls, and
//! yield-point-bearing control flow.
//!
//! Methods carry *synchronized region* metadata (`SyncRegion`), the
//! static analogue of Java's `monitorenter`/`monitorexit` bracketing that
//! the BCEL rewriting pass in the paper discovers from bytecode; our
//! [`rewrite`](crate::rewrite) pass consumes it to inject rollback scopes.

use crate::value::Value;
use std::fmt;

/// Index of a method within its [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MethodId(pub u32);

impl MethodId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Built-in native operations. All of them are *irrevocable*: executing
/// one inside a synchronized section forces non-revocability of every
/// enclosing monitor (§2.2: "Calling a native method within a monitor
/// also forces non-revocability of the monitor").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NativeOp {
    /// Print the top of stack to the VM's output buffer (pops it).
    Print,
    /// Pop a value and append it to the VM's observable output as a raw
    /// word (models console I/O).
    Emit,
}

/// One instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Insn {
    // -- stack / locals ---------------------------------------------------
    /// Push a constant.
    Const(Value),
    /// Push local `0`.
    Load(u16),
    /// Pop into local `0`.
    Store(u16),
    /// Duplicate top of stack.
    Dup,
    /// Discard top of stack.
    Pop,
    /// Swap the two top stack slots.
    Swap,

    // -- arithmetic (pop 2, push 1; Neg pops 1) ---------------------------
    /// Integer add.
    Add,
    /// Integer subtract (`a - b` with `b` on top).
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide (traps on zero).
    Div,
    /// Integer remainder (traps on zero).
    Rem,
    /// Integer negate.
    Neg,

    // -- control flow (branch targets are code offsets) -------------------
    /// Unconditional jump. Backward jumps are yield points.
    Goto(u32),
    /// Jump if popped value is zero/null.
    IfZero(u32),
    /// Jump if popped value is non-zero/non-null.
    IfNonZero(u32),
    /// Pop b, a; jump if `a < b`.
    IfLt(u32),
    /// Pop b, a; jump if `a >= b`.
    IfGe(u32),
    /// Pop b, a; jump if `a == b` (word equality).
    IfEq(u32),
    /// Pop b, a; jump if `a != b`.
    IfNe(u32),

    // -- heap --------------------------------------------------------------
    /// Allocate an object: `New { class_tag, fields, volatile_mask }`.
    New {
        /// Class tag for handler matching / diagnostics.
        class_tag: u32,
        /// Number of field slots.
        fields: u16,
        /// Bitmask of volatile fields.
        volatile_mask: u64,
    },
    /// Pop length, allocate an array, push ref.
    NewArray,
    /// Pop ref, push field `0` — a *read barrier* site.
    GetField(u16),
    /// Pop value, pop ref, store into field `0` — a *write barrier* site
    /// (Java `putfield`).
    PutField(u16),
    /// Pop index, pop ref, push element — read barrier site.
    ALoad,
    /// Pop value, pop index, pop ref, store element — write barrier site
    /// (Java `Xastore`).
    AStore,
    /// Push static slot `0` — read barrier site.
    GetStatic(u16),
    /// Pop value into static slot `0` — write barrier site (`putstatic`).
    PutStatic(u16),
    /// Pop ref, push its slot count.
    ArrayLen,

    // -- monitors ----------------------------------------------------------
    /// Pop ref, acquire its monitor (may block; a yield point).
    MonitorEnter,
    /// Pop ref, release its monitor.
    MonitorExit,
    /// Pop ref; `Object.wait()` on its monitor (must hold it).
    Wait,
    /// Pop ref; `Object.notify()`.
    Notify,
    /// Pop ref; `Object.notifyAll()`.
    NotifyAll,

    // -- calls ---------------------------------------------------------------
    /// Call a method; pops its `params` arguments (last argument on top).
    /// Method entry is a yield point (as in Jikes RVM prologues).
    Call(MethodId),
    /// Spawn a thread running the method: pops the priority level (int,
    /// clamped to 1..=10) then the method's arguments (last on top);
    /// pushes the new thread's id. Spawning is irrevocable — inside a
    /// synchronized section it pins every enclosing monitor non-revocable
    /// (a rolled-back spawn cannot "un-create" the thread).
    Spawn(MethodId),
    /// Pop a thread id; block until that thread terminates. A yield
    /// point. Join cycles surface as a VM stall, like unbroken deadlocks.
    Join,
    /// Return with the popped value.
    Ret,
    /// Return void.
    RetVoid,

    // -- exceptions ----------------------------------------------------------
    /// Pop an exception object reference and throw it.
    Throw,

    // -- scheduling / misc -----------------------------------------------------
    /// Explicit yield point.
    Yield,
    /// Pop n; sleep for n virtual-clock ticks.
    Sleep,
    /// Push the current virtual clock value.
    Now,
    /// Pop bound; push a VM-seeded uniform random integer in `[0, bound)`.
    RandInt,
    /// Irrevocable native call.
    Native(NativeOp),
    /// Spin: pop n and charge n instruction-costs of pure compute without
    /// touching shared state (models "benign operations"). Checked against
    /// the quantum, so it cannot overrun a time slice.
    Work,
    /// No operation.
    Nop,

    // -- injected by the rewrite pass (see crate::rewrite) ----------------------
    /// Snapshot locals + operand stack (below the monitor ref on top) so a
    /// rollback can re-execute the following `MonitorEnter`. Injected
    /// immediately before every `MonitorEnter` of a rollback scope.
    SaveState,
    /// Rollback-handler intrinsic: the thread's innermost active section
    /// must correspond to this handler. If it is the revocation target,
    /// release its monitor, restore the snapshot and jump back to the
    /// `SaveState`; otherwise release and re-throw to the next outer
    /// rollback scope.
    RollbackHandler,
}

/// What a handler catches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CatchKind {
    /// `catch (SomeClass e)` — matches thrown objects whose `class_tag`
    /// equals the payload.
    Class(u32),
    /// `catch (Throwable t)` / `finally` — matches every *user*
    /// exception. Never matches the internal rollback exception (§3.1.2:
    /// the augmented exception handling routine ignores all handlers that
    /// do not explicitly catch the rollback exception).
    All,
    /// The injected rollback-exception handler. Matches only rollback.
    Rollback,
}

/// One exception-table entry: pcs in `[start, end)` are covered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Handler {
    /// First covered pc.
    pub start: u32,
    /// One past the last covered pc.
    pub end: u32,
    /// Handler entry pc.
    pub target: u32,
    /// What it catches.
    pub kind: CatchKind,
}

/// A statically-delimited synchronized region inside a method body:
/// `enter` is the pc of the `MonitorEnter` and `exit` the pc one past its
/// matching `MonitorExit`. The rewrite pass turns each region into a
/// rollback scope.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SyncRegion {
    /// pc of the `MonitorEnter`.
    pub enter: u32,
    /// pc one past the matching `MonitorExit`.
    pub exit: u32,
}

/// A rewrite-injected rollback scope: one per [`SyncRegion`] after
/// [`rewrite`](crate::rewrite) has run. The interpreter revokes sections
/// by restoring the snapshot taken at `save_pc`; `handler_pc` points at
/// the injected [`Insn::RollbackHandler`] (kept as metadata mirroring the
/// paper's injected bytecode handler).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RollbackScope {
    /// pc of the injected `SaveState`.
    pub save_pc: u32,
    /// pc of the `MonitorEnter` (always `save_pc + 1`).
    pub enter_pc: u32,
    /// pc one past the matching `MonitorExit`.
    pub exit_pc: u32,
    /// pc of the injected `RollbackHandler`.
    pub handler_pc: u32,
}

/// A method.
#[derive(Clone, Debug)]
pub struct Method {
    /// Diagnostic name.
    pub name: String,
    /// Number of parameters (become locals `0..params`).
    pub params: u16,
    /// Total local-variable slots (≥ `params`).
    pub locals: u16,
    /// Code.
    pub code: Vec<Insn>,
    /// Exception table. Searched in order; first match wins (as in the
    /// JVM specification).
    pub handlers: Vec<Handler>,
    /// Synchronized regions discovered/declared in `code`.
    pub sync_regions: Vec<SyncRegion>,
    /// Whether this is a `synchronized` method (the rewrite pass wraps it
    /// in a non-synchronized wrapper holding `monitorenter(this)`).
    pub synchronized: bool,
    /// Rollback scopes injected by the rewrite pass; empty on unrewritten
    /// methods (whose sections therefore can never be revoked).
    pub rollback_scopes: Vec<RollbackScope>,
}

impl Method {
    /// Find the first matching handler for an exception of `kind_tag`
    /// (None = rollback) thrown at `pc`.
    pub fn find_handler(&self, pc: u32, thrown_class: Option<u32>) -> Option<&Handler> {
        self.handlers.iter().find(|h| {
            pc >= h.start
                && pc < h.end
                && match (h.kind, thrown_class) {
                    (CatchKind::Rollback, None) => true,
                    (_, None) => false, // rollback ignores user handlers
                    (CatchKind::Rollback, Some(_)) => false,
                    (CatchKind::All, Some(_)) => true,
                    (CatchKind::Class(c), Some(t)) => c == t,
                }
        })
    }
}

/// A whole program: methods + static-slot declarations.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All methods.
    pub methods: Vec<Method>,
    /// Number of static slots.
    pub n_statics: u32,
    /// Static slots declared volatile.
    pub volatile_statics: Vec<u32>,
    /// Class tag → human name (the assembler's `.class` directive).
    /// Metadata only — execution never consults it; observability uses
    /// it to label monitors in reports (see `Vm::monitor_names`).
    pub class_names: std::collections::BTreeMap<u32, String>,
}

impl Program {
    /// Look up a method.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Find a method by name (diagnostics/tests).
    pub fn method_by_name(&self, name: &str) -> Option<MethodId> {
        self.methods.iter().position(|m| m.name == name).map(|i| MethodId(i as u32))
    }

    /// Total instruction count across methods.
    pub fn code_size(&self) -> usize {
        self.methods.iter().map(|m| m.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn method_with_handlers(handlers: Vec<Handler>) -> Method {
        Method {
            name: "t".into(),
            params: 0,
            locals: 0,
            code: vec![Insn::RetVoid],
            handlers,
            sync_regions: vec![],
            synchronized: false,
            rollback_scopes: vec![],
        }
    }

    #[test]
    fn rollback_skips_catch_all() {
        // §3.1.2: during rollback, `finally`/catch(Throwable) are ignored.
        let m = method_with_handlers(vec![
            Handler { start: 0, end: 10, target: 20, kind: CatchKind::All },
            Handler { start: 0, end: 10, target: 30, kind: CatchKind::Rollback },
        ]);
        let h = m.find_handler(5, None).unwrap();
        assert_eq!(h.target, 30);
    }

    #[test]
    fn user_exception_skips_rollback_handler() {
        let m = method_with_handlers(vec![
            Handler { start: 0, end: 10, target: 30, kind: CatchKind::Rollback },
            Handler { start: 0, end: 10, target: 20, kind: CatchKind::All },
        ]);
        let h = m.find_handler(5, Some(7)).unwrap();
        assert_eq!(h.target, 20);
    }

    #[test]
    fn class_matching_is_exact() {
        let m = method_with_handlers(vec![Handler {
            start: 0,
            end: 10,
            target: 20,
            kind: CatchKind::Class(3),
        }]);
        assert!(m.find_handler(5, Some(3)).is_some());
        assert!(m.find_handler(5, Some(4)).is_none());
    }

    #[test]
    fn range_is_half_open() {
        let m = method_with_handlers(vec![Handler {
            start: 2,
            end: 4,
            target: 9,
            kind: CatchKind::All,
        }]);
        assert!(m.find_handler(1, Some(0)).is_none());
        assert!(m.find_handler(2, Some(0)).is_some());
        assert!(m.find_handler(3, Some(0)).is_some());
        assert!(m.find_handler(4, Some(0)).is_none());
    }

    #[test]
    fn first_matching_handler_wins() {
        let m = method_with_handlers(vec![
            Handler { start: 0, end: 10, target: 11, kind: CatchKind::All },
            Handler { start: 0, end: 10, target: 12, kind: CatchKind::All },
        ]);
        assert_eq!(m.find_handler(0, Some(0)).unwrap().target, 11);
    }
}
