//! Revocation: requesting and performing the rollback of a synchronized
//! section (§1.1, §3.1.2).
//!
//! A revocation request flags the holder (`pending_revoke`); the flag is
//! honoured at the holder's next yield point (dispatch boundaries for
//! ready/running threads, immediately for threads suspended at a safe
//! point — blocked or sleeping). Performing the revocation:
//!
//! 1. **Restore shared state first** — the undo log is processed in
//!    reverse down to the target section's mark *"before a thread that
//!    has been interrupted releases any of its locks"*, so partial
//!    results never become visible to other threads;
//! 2. **Release monitors innermost-first** — what the injected rollback
//!    handlers do as the internal rollback exception propagates outward,
//!    skipping every user handler and `finally` block in between;
//! 3. **Restore control** — the target section's saved locals/operand
//!    stack are reinstated and the pc returns to the injected `SaveState`
//!    preceding the section's `MonitorEnter` (or, for a post-`wait`
//!    restart point, the thread queues to re-acquire the monitor and
//!    resume just after the `wait`).

use crate::error::VmError;
use crate::thread::ThreadState;
use crate::trace::TraceEvent;
use crate::value::ObjRef;
use crate::vm::Vm;
use revmon_core::ThreadId;
use revmon_obs::prof::{timers, Phase};

impl Vm {
    /// Flag `holder` so that its outermost section on `obj` is revoked at
    /// its next yield point. No-op (counted as unresolved) when the
    /// section is non-revocable, sticky-blocked, or livelock-guarded.
    pub(crate) fn request_revocation(
        &mut self,
        by: ThreadId,
        holder: ThreadId,
        obj: ObjRef,
    ) -> Result<(), VmError> {
        let Some(idx) = self.thread(holder).outermost_section_on(obj) else {
            return Ok(()); // already released in the meantime
        };
        let livelock_denied = self.config.max_consecutive_revocations != 0
            && self.thread(holder).consecutive_revocations
                >= self.config.max_consecutive_revocations;
        let can = self.thread(holder).sections[idx].can_revoke() && !livelock_denied;
        if !can {
            self.global.inversions_unresolved += 1;
            self.emit_trace(TraceEvent::InversionUnresolved { by, holder, monitor: obj });
            return Ok(());
        }
        // Adaptive governor: once the (monitor, holder) pair has burnt its
        // retry budget, the contender stays blocked on the prioritized
        // entry queue instead of revoking — per-monitor degradation to the
        // blocking baseline, reversible after the decay window.
        match self.governor.consult(self.config.governor, obj.0 as u64, holder.0 as u64, self.clock)
        {
            revmon_core::GovernorVerdict::Allow => {}
            revmon_core::GovernorVerdict::Fallback { fresh } => {
                self.global.governor_throttles += 1;
                self.emit_trace(TraceEvent::GovernorThrottle { by, holder, monitor: obj });
                if fresh {
                    self.global.policy_fallbacks += 1;
                    self.emit_trace(TraceEvent::PolicyFallback { holder, monitor: obj });
                }
                return Ok(());
            }
        }
        let acq = self.thread(holder).sections[idx].acq_id;
        // Keep the shallowest (outermost) target if requests pile up.
        let replace = match self.thread(holder).pending_revoke {
            None => true,
            Some(existing) => match self.thread(holder).section_by_acq(existing) {
                Some(ei) => idx < ei,
                None => true, // stale target
            },
        };
        if replace {
            self.thread_mut(holder).pending_revoke = Some(acq);
        }
        self.global.revocations_requested += 1;
        self.emit_trace(TraceEvent::RevokeRequest { by, holder, monitor: obj });
        // Threads suspended at a safe point are revoked immediately: a
        // Ready thread was descheduled *at* a yield point, and blocked or
        // sleeping threads sit at monitor-enter / sleep yield points. On
        // this uniprocessor the holder can never be Running while the
        // requester runs, so in practice every revocation happens at the
        // holder's current yield point — the paper's "next yield point"
        // with zero scheduling delay. (A Running holder — possible only
        // via the background scanner firing mid-dispatch — is still
        // deferred to its next yield point in the dispatch loop.)
        match self.thread(holder).state {
            ThreadState::BlockedEnter(_)
            | ThreadState::Sleeping(_)
            | ThreadState::BlockedJoin(_)
            | ThreadState::Ready => {
                self.perform_revocation(holder)?;
            }
            _ => {}
        }
        Ok(())
    }

    /// Act on a pending revocation. Called at the holder's yield points
    /// and, for suspended holders, directly from `request_revocation` /
    /// the deadlock breaker.
    pub(crate) fn perform_revocation(&mut self, tid: ThreadId) -> Result<(), VmError> {
        let Some(acq) = self.thread_mut(tid).pending_revoke.take() else {
            return Ok(());
        };
        let Some(idx) = self.thread(tid).section_by_acq(acq) else {
            return Ok(()); // section exited before the flag was honoured
        };
        if !self.thread(tid).sections[idx].can_revoke() {
            // Became non-revocable after the request (JMM guard raced).
            self.global.inversions_unresolved += 1;
            return Ok(());
        }

        // Slow-path phase timers (host wall nanoseconds — see the
        // `revmon_obs::prof` docs for why the VM doesn't use ticks here).
        let prof = timers();

        let prior_state = self.thread(tid).state;
        // Detach from whatever the thread is suspended on.
        let t_signal = prof.start(Phase::SignalVictim);
        match prior_state {
            ThreadState::BlockedEnter(m) => {
                self.monitors.get_mut(m).queue.remove_where(|&t| t == tid);
                self.graph.remove_wait(tid);
            }
            ThreadState::Sleeping(_) => {}
            ThreadState::BlockedJoin(target) => {
                if let Some(ws) = self.join_waiters.get_mut(&target) {
                    ws.retain(|&w| w != tid);
                }
            }
            ThreadState::Running | ThreadState::Ready => {}
            ThreadState::Waiting(_) | ThreadState::BlockedReacquire(_) => {
                // Unreachable: a waiting thread does not own the monitor,
                // so nothing can target its sections for revocation.
                return Err(VmError::Internal("revocation of a waiting thread"));
            }
            ThreadState::Terminated => return Ok(()),
        }
        prof.finish(Phase::SignalVictim, t_signal);

        // 1. Restore shared state (before releasing any locks).
        let t_undo = prof.start(Phase::UndoWalk);
        let mark = self.thread(tid).sections[idx].mark;
        let mut entries: u64 = 0;
        {
            let mut log = std::mem::take(&mut self.threads[tid.index()].undo);
            let heap = &mut self.heap;
            let jmm = &mut self.jmm;
            let guard = self.config.jmm_guard;
            // Test-only fault injection: silently drop the restore of the
            // newest N entries (but still clear the JMM map and count them,
            // as the buggy rollback the fault models would).
            let mut skip = self.config.fault_skip_undo;
            log.rollback_to(mark, |e| {
                if guard {
                    jmm.clear(e.loc, tid);
                }
                if skip > 0 {
                    skip -= 1;
                } else {
                    // The location was valid when logged; restoring cannot
                    // fail.
                    let _ = heap.write(e.loc, e.old);
                }
                entries += 1;
            });
            self.threads[tid.index()].undo = log;
        }
        let entered_at = self.thread(tid).sections[idx].entered_at;
        let discarded_ticks = self.clock.saturating_sub(entered_at);
        let t0 = self.clock;
        self.charge(self.config.cost.rollback(entries as usize));
        {
            let m = self.thread(tid).sections[idx].monitor;
            let duration = self.clock - t0;
            self.emit_trace_dur(
                TraceEvent::Rollback { thread: tid, monitor: m, entries },
                duration,
            );
        }
        prof.finish(Phase::UndoWalk, t_undo);

        // 2. Release monitors innermost-first, as the propagating rollback
        //    exception's handlers would.
        let t_requeue = prof.start(Phase::Requeue);
        let after_wait =
            self.thread(tid).sections[idx].snapshot.as_ref().map(|s| s.after_wait).unwrap_or(false);
        let to_release: Vec<ObjRef> =
            self.thread(tid).sections[idx..].iter().rev().map(|s| s.monitor).collect();
        for m in to_release {
            self.release_one_level(tid, m)?;
        }
        // Requeue resumes for the reschedule step below; the restore
        // phase between them is accounted separately.
        let requeue_part = t_requeue.map(|t0| t0.elapsed().as_nanos() as u64).unwrap_or(0);

        // 3. Restore control.
        let t_restore = prof.start(Phase::Restore);
        let target = self.thread(tid).sections[idx].clone();
        let snap = target.snapshot.clone().expect("can_revoke implies snapshot");
        {
            let t = self.thread_mut(tid);
            // For a post-wait restart the section record survives (the
            // thread is still lexically inside it and will re-acquire);
            // otherwise the section is gone until `MonitorEnter` re-runs.
            t.sections.truncate(if after_wait { idx + 1 } else { idx });
            t.frames.truncate(target.frame_depth + 1);
            let f = t.frames.last_mut().expect("section frame exists");
            f.locals = snap.locals.clone();
            f.stack = snap.stack.clone();
            f.pc = snap.resume_pc;
            t.metrics.rollbacks += 1;
            t.metrics.entries_rolled_back += entries;
            t.consecutive_revocations += 1;
        }
        self.governor.record_revocation(
            self.config.governor,
            target.monitor.0 as u64,
            tid.0 as u64,
            self.clock,
            entries,
            discarded_ticks,
        );
        prof.finish(Phase::Restore, t_restore);

        // 4. Reschedule.
        let t_requeue2 = prof.start(Phase::Requeue);
        if after_wait {
            let eff = self.thread(tid).effective_priority;
            self.thread_mut(tid).wait_recursion = 1;
            if self.monitors.get(target.monitor).and_then(|m| m.owner).is_none() {
                // Nobody took the monitor at release (empty queue): take it
                // back immediately and continue.
                self.thread_mut(tid).state = ThreadState::BlockedReacquire(target.monitor);
                self.monitors.get_mut(target.monitor).queue.push(tid, eff);
                let granted =
                    self.monitors.get_mut(target.monitor).queue.pop().expect("just pushed");
                self.grant(granted, target.monitor)?;
                // grant() made the thread Ready; if it was running it keeps
                // its dispatch only via the run queue now.
            } else {
                self.thread_mut(tid).state = ThreadState::BlockedReacquire(target.monitor);
                self.monitors.get_mut(target.monitor).queue.push(tid, eff);
                if let Some(owner) = self.monitors.get(target.monitor).and_then(|m| m.owner) {
                    self.graph.add_wait(tid, revmon_core::MonitorId(target.monitor.0), owner);
                }
            }
        } else {
            match prior_state {
                ThreadState::Running => { /* keeps running from the restart pc */ }
                ThreadState::Ready => { /* still queued */ }
                ThreadState::BlockedEnter(_)
                | ThreadState::Sleeping(_)
                | ThreadState::BlockedJoin(_) => {
                    self.make_ready(tid);
                }
                _ => unreachable!("filtered above"),
            }
        }
        if let Some(t0) = t_requeue2 {
            // One Requeue sample per revocation: release + reschedule.
            prof.record(Phase::Requeue, requeue_part + t0.elapsed().as_nanos() as u64);
        }
        let rolled_monitor = target.monitor;
        self.with_probe(|p, vm| p.on_rollback(vm, tid, rolled_monitor, entries));
        Ok(())
    }
}
