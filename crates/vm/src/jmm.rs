//! The JMM-consistency guard (§2.1–2.2).
//!
//! Rolling back a synchronized section is only legal if no other thread
//! has observed its speculative updates; otherwise a value another thread
//! already used would retroactively appear "out of thin air" (Figs. 2–3).
//! The paper's remedy: *"disable the revocability of monitors whose
//! rollback could create inconsistencies with respect to the JMM. […] We
//! mark a monitor M non-revocable when a read-write dependency is created
//! between a write performed within M and a read performed by another
//! thread."*
//!
//! The guard keeps a map from heap location to the latest *speculative*
//! write (one performed inside a still-active synchronized section).
//! Entries are added by the write-barrier slow path, and removed when the
//! writer's outermost section commits or when the entries are rolled
//! back. A read by a different thread that hits a live entry marks every
//! enclosing active section of the writer non-revocable.
//!
//! This single rule covers both problem cases in the paper:
//!
//! * **Fig. 2 (nesting):** T writes `v` under `inner` nested in `outer`,
//!   exits `inner` (entries stay live — `outer` is still active), then T′
//!   reads `v` under `inner`. The read hits the live entry and `outer`
//!   becomes non-revocable.
//! * **Fig. 3 (volatile):** volatile reads take the same read-barrier
//!   path, so an unmonitored volatile read of a speculative volatile
//!   write flags the writer's sections identically.
//!
//! Reads by the writer itself never flag anything (a thread may always
//! observe its own speculative state), and reads of committed data find
//! no entry — so the common "same data guarded by the same monitor"
//! discipline never forfeits revocability, matching the paper's
//! intuition.

use crate::heap::Location;
use revmon_core::ThreadId;
use std::collections::HashMap;

/// Information about the latest speculative write to a location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpeculativeWrite {
    /// Writing thread.
    pub writer: ThreadId,
    /// Undo-log position of the write in the writer's log: every active
    /// section of the writer whose mark is ≤ this position encloses the
    /// write.
    pub log_pos: usize,
}

/// The read-barrier map.
#[derive(Debug, Default)]
pub struct JmmGuard {
    map: HashMap<Location, SpeculativeWrite>,
}

impl JmmGuard {
    /// Empty guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a speculative write by `writer` at log position `log_pos`.
    /// A later write to the same location supersedes the entry (sections
    /// enclosing the earlier write necessarily enclose the later one,
    /// since marks only grow).
    #[inline]
    pub fn record_write(&mut self, loc: Location, writer: ThreadId, log_pos: usize) {
        self.map.insert(loc, SpeculativeWrite { writer, log_pos });
    }

    /// Read-barrier check: does `reader`'s read of `loc` observe another
    /// thread's speculative write? Returns the write if so; the caller
    /// must then mark the writer's enclosing sections non-revocable.
    #[inline]
    pub fn check_read(&self, loc: Location, reader: ThreadId) -> Option<SpeculativeWrite> {
        if self.map.is_empty() {
            return None; // fast path: nothing speculative anywhere
        }
        match self.map.get(&loc) {
            Some(w) if w.writer != reader => Some(*w),
            _ => None,
        }
    }

    /// Remove the entry for `loc` if it belongs to `writer` — called for
    /// each log entry when the writer commits (outermost `MonitorExit`)
    /// or rolls the entry back.
    #[inline]
    pub fn clear(&mut self, loc: Location, writer: ThreadId) {
        if let Some(w) = self.map.get(&loc) {
            if w.writer == writer {
                self.map.remove(&loc);
            }
        }
    }

    /// All live speculative writes, sorted by location — a deterministic
    /// view for invariant checking and state fingerprinting.
    pub fn entries(&self) -> Vec<(Location, SpeculativeWrite)> {
        let mut v: Vec<(Location, SpeculativeWrite)> =
            self.map.iter().map(|(&l, &w)| (l, w)).collect();
        v.sort_by_key(|&(l, _)| l);
        v
    }

    /// Number of live speculative entries (diagnostics).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no speculative write is live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ObjRef;

    fn loc(i: u32) -> Location {
        Location::Obj(ObjRef(0), i)
    }

    #[test]
    fn own_reads_never_flag() {
        let mut g = JmmGuard::new();
        g.record_write(loc(0), ThreadId(1), 0);
        assert_eq!(g.check_read(loc(0), ThreadId(1)), None);
    }

    #[test]
    fn cross_thread_read_flags() {
        let mut g = JmmGuard::new();
        g.record_write(loc(0), ThreadId(1), 7);
        let w = g.check_read(loc(0), ThreadId(2)).expect("flagged");
        assert_eq!(w.writer, ThreadId(1));
        assert_eq!(w.log_pos, 7);
    }

    #[test]
    fn committed_entries_no_longer_flag() {
        let mut g = JmmGuard::new();
        g.record_write(loc(0), ThreadId(1), 0);
        g.clear(loc(0), ThreadId(1));
        assert_eq!(g.check_read(loc(0), ThreadId(2)), None);
        assert!(g.is_empty());
    }

    #[test]
    fn clear_ignores_entries_superseded_by_another_writer() {
        let mut g = JmmGuard::new();
        g.record_write(loc(0), ThreadId(1), 0);
        // Thread 2 later writes the same location speculatively (it could
        // do so after thread 1 committed but before 1's per-entry clears
        // run — clears must not wipe 2's entry).
        g.record_write(loc(0), ThreadId(2), 3);
        g.clear(loc(0), ThreadId(1));
        assert_eq!(
            g.check_read(loc(0), ThreadId(1)),
            Some(SpeculativeWrite { writer: ThreadId(2), log_pos: 3 })
        );
    }

    #[test]
    fn later_write_supersedes_position() {
        let mut g = JmmGuard::new();
        g.record_write(loc(0), ThreadId(1), 2);
        g.record_write(loc(0), ThreadId(1), 9);
        assert_eq!(g.check_read(loc(0), ThreadId(2)).unwrap().log_pos, 9);
    }

    #[test]
    fn distinct_locations_tracked_independently() {
        let mut g = JmmGuard::new();
        g.record_write(Location::Static(0), ThreadId(1), 0);
        g.record_write(loc(1), ThreadId(1), 1);
        assert!(g.check_read(Location::Static(0), ThreadId(2)).is_some());
        assert!(g.check_read(loc(2), ThreadId(2)).is_none());
        assert_eq!(g.len(), 2);
    }
}
