//! VM faults.

use crate::heap::HeapError;
use crate::value::ValueError;
use revmon_core::ThreadId;
use std::fmt;

/// A fault that stops the whole VM. Program-level exceptions (including
/// null dereferences and bounds errors) are *not* `VmError`s — they throw
/// Java-style exceptions inside the program; only an uncaught one
/// terminates its thread (recorded in the thread's report).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// Heap fault the VM itself could not turn into a program exception
    /// (e.g. dangling internal reference — a VM bug).
    Heap(HeapError),
    /// Operand-stack underflow (malformed program).
    StackUnderflow {
        /// Method name.
        method: String,
        /// Faulting pc.
        pc: u32,
    },
    /// pc ran off the end of a method (missing return).
    BadPc {
        /// Method name.
        method: String,
        /// Faulting pc.
        pc: u32,
    },
    /// Monitor protocol violation (exit without enter, wait without
    /// ownership, unstructured section nesting).
    IllegalMonitorState(&'static str),
    /// The configured `max_steps` instruction budget was exhausted —
    /// the safety net against runaway programs.
    StepLimit(u64),
    /// No thread can make progress: every live thread is blocked and no
    /// sleeper exists. Contains the blocked threads (an unbroken deadlock
    /// or a lost wakeup).
    Stalled(Vec<ThreadId>),
    /// Value-level type confusion (malformed program).
    Value(ValueError),
    /// Internal invariant violation; the payload describes it.
    Internal(&'static str),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Heap(e) => write!(f, "heap fault: {e}"),
            VmError::StackUnderflow { method, pc } => {
                write!(f, "operand stack underflow in {method} at pc {pc}")
            }
            VmError::BadPc { method, pc } => {
                write!(f, "pc {pc} out of bounds in {method} (missing return?)")
            }
            VmError::IllegalMonitorState(what) => write!(f, "illegal monitor state: {what}"),
            VmError::StepLimit(n) => write!(f, "step limit of {n} instructions exhausted"),
            VmError::Stalled(ts) => write!(f, "no runnable threads; blocked: {ts:?}"),
            VmError::Value(e) => write!(f, "value fault: {e}"),
            VmError::Internal(what) => write!(f, "internal VM invariant violated: {what}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<HeapError> for VmError {
    fn from(e: HeapError) -> Self {
        VmError::Heap(e)
    }
}

impl From<ValueError> for VmError {
    fn from(e: ValueError) -> Self {
        VmError::Value(e)
    }
}
