//! The bytecode interpreter: one instruction per `step`, with write
//! barriers on the three store kinds (§3.1.2), read barriers feeding the
//! JMM-consistency guard (§2.2), and Java-style program exceptions for
//! null dereferences, bounds errors, and division by zero.

use crate::bytecode::{Insn, NativeOp};
use crate::error::VmError;
use crate::heap::{HeapError, Location};
use crate::thread::{Frame, Snapshot, ThreadState, UndoEntry};
use crate::trace::TraceEvent;
use crate::value::{ObjRef, Value, ValueError};
use crate::vm::{StepOutcome, Vm};
use rand::Rng;
use revmon_core::ThreadId;

/// Class tag of the built-in `NullPointerException`.
pub const NPE_TAG: u32 = 0xFFFF_FF01;
/// Class tag of the built-in `ArrayIndexOutOfBoundsException`.
pub const OOB_TAG: u32 = 0xFFFF_FF02;
/// Class tag of the built-in `ArithmeticException` (division by zero).
pub const ARITH_TAG: u32 = 0xFFFF_FF03;
/// Class tag of the built-in `OutOfMemoryError` (heap-object limit).
pub const OOM_TAG: u32 = 0xFFFF_FF04;

impl Vm {
    /// Execute one instruction of `tid`. The pc is advanced before
    /// execution (branch targets overwrite it), matching the JVM.
    pub(crate) fn step(&mut self, tid: ThreadId) -> Result<StepOutcome, VmError> {
        // Dispatch prologue in a single pass over the thread entry:
        // fetch (method, pc), resolve the code slice, advance the pc and
        // count the instruction under one borrow. Field access (not the
        // `thread_mut` accessor) keeps the frame borrow disjoint from the
        // `self.program` borrow. This runs once per bytecode executed.
        let t = &mut self.threads[tid.index()];
        let f = t.frames.last_mut().expect("thread has no frames");
        let (mid, pc) = (f.method, f.pc);
        let method = &self.program.methods[mid.index()];
        let Some(&insn) = method.code.get(pc as usize) else {
            return Err(VmError::BadPc { method: method.name.clone(), pc });
        };
        f.pc = pc + 1;
        t.metrics.instructions += 1;
        self.charge(self.config.cost.instruction);

        let cont = Ok(StepOutcome::Continue { yield_point: false });
        let cont_yield = Ok(StepOutcome::Continue { yield_point: true });

        match insn {
            // --- stack / locals ---------------------------------------
            Insn::Const(v) => {
                self.push(tid, v);
                cont
            }
            Insn::Load(i) => {
                let v = self.local(tid, i)?;
                self.push(tid, v);
                cont
            }
            Insn::Store(i) => {
                let v = self.pop(tid)?;
                self.set_local(tid, i, v)?;
                cont
            }
            Insn::Dup => {
                let v = self.pop(tid)?;
                self.push(tid, v);
                self.push(tid, v);
                cont
            }
            Insn::Pop => {
                self.pop(tid)?;
                cont
            }
            Insn::Swap => {
                let b = self.pop(tid)?;
                let a = self.pop(tid)?;
                self.push(tid, b);
                self.push(tid, a);
                cont
            }

            // --- arithmetic -------------------------------------------
            Insn::Add => self.binop(tid, |a, b| Some(a.wrapping_add(b))),
            Insn::Sub => self.binop(tid, |a, b| Some(a.wrapping_sub(b))),
            Insn::Mul => self.binop(tid, |a, b| Some(a.wrapping_mul(b))),
            Insn::Div => self.binop(tid, |a, b| a.checked_div(b)),
            Insn::Rem => self.binop(tid, |a, b| a.checked_rem(b)),
            Insn::Neg => {
                let a = self.pop_int(tid)?;
                self.push(tid, Value::Int(a.wrapping_neg()));
                cont
            }

            // --- control flow -----------------------------------------
            Insn::Goto(t) => {
                self.thread_mut(tid).frame_mut().pc = t;
                Ok(StepOutcome::Continue { yield_point: t <= pc })
            }
            Insn::IfZero(t) => {
                let v = self.pop(tid)?;
                self.branch_if(tid, !v.is_truthy(), t, pc)
            }
            Insn::IfNonZero(t) => {
                let v = self.pop(tid)?;
                self.branch_if(tid, v.is_truthy(), t, pc)
            }
            Insn::IfLt(t) => {
                let (a, b) = self.pop2_int(tid)?;
                self.branch_if(tid, a < b, t, pc)
            }
            Insn::IfGe(t) => {
                let (a, b) = self.pop2_int(tid)?;
                self.branch_if(tid, a >= b, t, pc)
            }
            Insn::IfEq(t) => {
                let b = self.pop(tid)?;
                let a = self.pop(tid)?;
                self.branch_if(tid, a == b, t, pc)
            }
            Insn::IfNe(t) => {
                let b = self.pop(tid)?;
                let a = self.pop(tid)?;
                self.branch_if(tid, a != b, t, pc)
            }

            // --- heap ---------------------------------------------------
            Insn::New { class_tag, fields, volatile_mask } => {
                if self.heap_exhausted() {
                    return self.throw_builtin(tid, OOM_TAG);
                }
                let r = self.heap.alloc_with_volatile(class_tag, fields as u32, volatile_mask);
                self.push(tid, Value::Ref(r));
                cont
            }
            Insn::NewArray => {
                let n = self.pop_int(tid)?;
                if n < 0 {
                    return self.throw_builtin(tid, OOB_TAG);
                }
                if self.heap_exhausted() {
                    return self.throw_builtin(tid, OOM_TAG);
                }
                let r = self.heap.alloc_array(n as u32);
                self.push(tid, Value::Ref(r));
                cont
            }
            Insn::GetField(off) => {
                let r = match self.pop_obj(tid)? {
                    Ok(r) => r,
                    Err(outcome) => return Ok(outcome),
                };
                self.read_shared(tid, Location::Obj(r, off as u32))
            }
            Insn::PutField(off) => {
                let v = self.pop(tid)?;
                let r = match self.pop_obj(tid)? {
                    Ok(r) => r,
                    Err(outcome) => return Ok(outcome),
                };
                let e = self.store_elided(mid, pc);
                self.write_shared(tid, Location::Obj(r, off as u32), v, e)
            }
            Insn::ALoad => {
                let i = self.pop_int(tid)?;
                let r = match self.pop_obj(tid)? {
                    Ok(r) => r,
                    Err(outcome) => return Ok(outcome),
                };
                if i < 0 {
                    return self.throw_builtin(tid, OOB_TAG);
                }
                self.read_shared(tid, Location::Obj(r, i as u32))
            }
            Insn::AStore => {
                let v = self.pop(tid)?;
                let i = self.pop_int(tid)?;
                let r = match self.pop_obj(tid)? {
                    Ok(r) => r,
                    Err(outcome) => return Ok(outcome),
                };
                if i < 0 {
                    return self.throw_builtin(tid, OOB_TAG);
                }
                let e = self.store_elided(mid, pc);
                self.write_shared(tid, Location::Obj(r, i as u32), v, e)
            }
            Insn::GetStatic(s) => self.read_shared(tid, Location::Static(s as u32)),
            Insn::PutStatic(s) => {
                let v = self.pop(tid)?;
                let e = self.store_elided(mid, pc);
                self.write_shared(tid, Location::Static(s as u32), v, e)
            }
            Insn::ArrayLen => {
                let r = match self.pop_obj(tid)? {
                    Ok(r) => r,
                    Err(outcome) => return Ok(outcome),
                };
                let n = self.heap.length_of(r)?;
                self.push(tid, Value::Int(n as i64));
                cont
            }

            // --- monitors -----------------------------------------------
            Insn::MonitorEnter => {
                let r = match self.pop_obj(tid)? {
                    Ok(r) => r,
                    Err(outcome) => return Ok(outcome),
                };
                if self.monitor_enter(tid, r)? {
                    cont_yield
                } else {
                    Ok(StepOutcome::Descheduled)
                }
            }
            Insn::MonitorExit => {
                let r = match self.pop_obj(tid)? {
                    Ok(r) => r,
                    Err(outcome) => return Ok(outcome),
                };
                self.charge(self.config.cost.monitor_op);
                self.exit_section_common(tid, r)?;
                cont_yield
            }
            Insn::Wait => {
                let r = match self.pop_obj(tid)? {
                    Ok(r) => r,
                    Err(outcome) => return Ok(outcome),
                };
                self.do_wait(tid, r)?;
                Ok(StepOutcome::Descheduled)
            }
            Insn::Notify => {
                let r = match self.pop_obj(tid)? {
                    Ok(r) => r,
                    Err(outcome) => return Ok(outcome),
                };
                self.do_notify(tid, r, false)?;
                cont
            }
            Insn::NotifyAll => {
                let r = match self.pop_obj(tid)? {
                    Ok(r) => r,
                    Err(outcome) => return Ok(outcome),
                };
                self.do_notify(tid, r, true)?;
                cont
            }

            // --- calls ---------------------------------------------------
            Insn::Call(callee) => {
                let cm = &self.program.methods[callee.index()];
                let (params, locals) = (cm.params as usize, cm.locals as usize);
                let mut args = vec![Value::Null; locals];
                for i in (0..params).rev() {
                    args[i] = self.pop(tid)?;
                }
                self.thread_mut(tid).frames.push(Frame {
                    method: callee,
                    pc: 0,
                    locals: args,
                    stack: Vec::new(),
                });
                cont_yield // method entry is a yield point (Jikes prologues)
            }
            Insn::Spawn(target) => {
                // Spawning is irrevocable (a rollback cannot un-create the
                // thread): pin every enclosing section, like a native call.
                if self.thread(tid).in_section() {
                    let flipped = self.thread_mut(tid).mark_all_nonrevocable();
                    self.global.monitors_marked_nonrevocable += flipped;
                }
                let prio_level = self.pop_int(tid)?;
                let cm = &self.program.methods[target.index()];
                let params = cm.params as usize;
                let mut args = vec![Value::Null; params];
                for i in (0..params).rev() {
                    args[i] = self.pop(tid)?;
                }
                let name = format!("spawn{}", self.threads.len());
                let prio = revmon_core::Priority::new(prio_level.clamp(1, 10) as u8);
                let child = self.spawn(&name, target, args, prio);
                self.push(tid, Value::Int(child.0 as i64));
                cont_yield
            }
            Insn::Join => {
                let target = self.pop_int(tid)?;
                if target < 0 || target as usize >= self.threads.len() {
                    return self.throw_builtin(tid, OOB_TAG);
                }
                let target = ThreadId(target as u32);
                if target == tid || self.thread(target).is_terminated() {
                    return cont_yield; // joining self or a finished thread: no-op
                }
                self.thread_mut(tid).state = ThreadState::BlockedJoin(target);
                self.join_waiters.entry(target).or_default().push(tid);
                Ok(StepOutcome::Descheduled)
            }
            Insn::Ret => {
                let v = self.pop(tid)?;
                self.do_return(tid, Some(v))
            }
            Insn::RetVoid => self.do_return(tid, None),

            // --- exceptions ----------------------------------------------
            Insn::Throw => {
                let r = match self.pop_obj(tid)? {
                    Ok(r) => r,
                    Err(outcome) => return Ok(outcome),
                };
                self.throw_user(tid, r)
            }

            // --- scheduling / misc ----------------------------------------
            Insn::Yield => {
                // Thread.yield(): go to the back of the run queue.
                self.make_ready(tid);
                Ok(StepOutcome::Descheduled)
            }
            Insn::Sleep => {
                let n = self.pop_int(tid)?;
                if n <= 0 {
                    return cont_yield;
                }
                self.thread_mut(tid).state = ThreadState::Sleeping(self.clock + n as u64);
                Ok(StepOutcome::Descheduled)
            }
            Insn::Now => {
                let c = self.clock;
                self.push(tid, Value::Int(c as i64));
                cont
            }
            Insn::RandInt => {
                let bound = self.pop_int(tid)?;
                let v = if bound <= 0 {
                    0
                } else {
                    self.rng_draws += 1;
                    self.rng.gen_range(0..bound)
                };
                self.push(tid, Value::Int(v));
                cont
            }
            Insn::Native(op) => {
                // Native effects are irrevocable: every enclosing monitor
                // becomes non-revocable (§2.2).
                if self.thread(tid).in_section() {
                    let flipped = self.thread_mut(tid).mark_all_nonrevocable();
                    self.global.monitors_marked_nonrevocable += flipped;
                    if flipped > 0 {
                        let m = self.thread(tid).sections[0].monitor;
                        self.emit_trace(TraceEvent::NonRevocable { thread: tid, monitor: m });
                        if self.config.sticky_nonrevocable {
                            let ms: Vec<ObjRef> =
                                self.thread(tid).sections.iter().map(|s| s.monitor).collect();
                            for m in ms {
                                self.monitors.get_mut(m).sticky_nonrevocable = true;
                            }
                        }
                    }
                }
                match op {
                    NativeOp::Print | NativeOp::Emit => {
                        let v = self.pop(tid)?;
                        self.output.push(v);
                    }
                }
                cont
            }
            Insn::Work => {
                let n = self.pop_int(tid)?;
                if n > 0 {
                    self.charge(n as u64 * self.config.cost.instruction);
                }
                cont_yield
            }
            Insn::Nop => cont,

            // --- rewrite-injected --------------------------------------------
            Insn::SaveState => {
                let t = self.thread_mut(tid);
                let f = t.frame();
                let snap = Snapshot {
                    locals: f.locals.clone(),
                    stack: f.stack.clone(),
                    resume_pc: pc, // re-execution re-runs SaveState itself
                    after_wait: false,
                };
                t.pending_snapshot = Some(snap);
                cont
            }
            Insn::RollbackHandler => {
                Err(VmError::Internal("RollbackHandler reached by normal control flow"))
            }
        }
    }

    /// Whether the configured heap-object limit is reached (this VM has
    /// no GC — allocation is an arena, so the limit is a hard program
    /// budget).
    fn heap_exhausted(&self) -> bool {
        self.config.max_heap_objects != 0
            && self.heap.object_count() >= self.config.max_heap_objects
    }

    // --- shared-data access with barriers ------------------------------

    /// Read barrier + heap read + push. The read barrier is the JMM
    /// guard's dependency check (§2.2); the paper's conclusion notes such
    /// read barriers could be elided outside locked regions — disabling
    /// `jmm_guard` models that elision.
    fn read_shared(&mut self, tid: ThreadId, loc: Location) -> Result<StepOutcome, VmError> {
        if self.config.jmm_guard {
            self.charge(self.config.cost.barrier_fast);
            if let Some(w) = self.jmm.check_read(loc, tid) {
                let flipped = self.threads[w.writer.index()].mark_nonrevocable_enclosing(w.log_pos);
                self.global.monitors_marked_nonrevocable += flipped;
                if flipped > 0 {
                    let m = self.threads[w.writer.index()]
                        .sections
                        .first()
                        .map(|s| s.monitor)
                        .unwrap_or(ObjRef(0));
                    self.emit_trace(TraceEvent::NonRevocable { thread: w.writer, monitor: m });
                    if self.config.sticky_nonrevocable {
                        let ms: Vec<ObjRef> = self.threads[w.writer.index()]
                            .sections
                            .iter()
                            .filter(|s| !s.revocable)
                            .map(|s| s.monitor)
                            .collect();
                        for m in ms {
                            self.monitors.get_mut(m).sticky_nonrevocable = true;
                        }
                    }
                }
            }
        }
        match self.heap.read(loc) {
            Ok(v) => {
                self.push(tid, v);
                self.with_probe(|p, vm| p.on_heap_read(vm, tid, loc, v));
                Ok(StepOutcome::Continue { yield_point: false })
            }
            Err(HeapError::BadOffset(..)) | Err(HeapError::BadStatic(_)) => {
                self.throw_builtin(tid, OOB_TAG)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Whether the store at `mid`/`pc` was statically proven to never
    /// execute inside a synchronized section (§1.1's elision).
    #[inline]
    fn store_elided(&self, mid: crate::bytecode::MethodId, pc: u32) -> bool {
        match &self.elision {
            Some(t) => t.is_elided(mid.index(), pc),
            None => false,
        }
    }

    /// Write barrier + heap write: fast-path "in a synchronized section?"
    /// test on every store when barriers are compiled in, slow-path
    /// logging of the old value when inside one (§3.1.2). `elided` stores
    /// skip the barrier entirely (statically proven never-in-monitor).
    fn write_shared(
        &mut self,
        tid: ThreadId,
        loc: Location,
        v: Value,
        elided: bool,
    ) -> Result<StepOutcome, VmError> {
        match self.heap.write(loc, v) {
            Ok(old) => {
                let mut logged = false;
                if self.config.barriers {
                    if elided {
                        debug_assert!(
                            !self.thread(tid).in_section(),
                            "elided store executed inside a synchronized section"
                        );
                        self.thread_mut(tid).metrics.barriers_elided += 1;
                    } else {
                        // One borrow covers the fast-path counter, the
                        // in-section test, and the slow-path logging; the
                        // clock is charged once at the end.
                        let mut ticks = self.config.cost.barrier_fast;
                        let t = &mut self.threads[tid.index()];
                        t.metrics.barrier_fast_paths += 1;
                        if t.in_section() {
                            logged = true;
                            t.undo.push(UndoEntry { loc, old });
                            t.metrics.log_entries += 1;
                            t.metrics.barrier_slow_paths += 1;
                            let pos = t.undo.len() - 1;
                            if self.config.jmm_guard {
                                self.jmm.record_write(loc, tid, pos);
                            }
                            ticks += self.config.cost.barrier_slow;
                        }
                        self.charge(ticks);
                    }
                }
                self.with_probe(|p, vm| p.on_heap_write(vm, tid, loc, old, v, logged));
                Ok(StepOutcome::Continue { yield_point: false })
            }
            Err(HeapError::BadOffset(..)) | Err(HeapError::BadStatic(_)) => {
                self.throw_builtin(tid, OOB_TAG)
            }
            Err(e) => Err(e.into()),
        }
    }

    // --- exceptions ---------------------------------------------------------

    /// Allocate and throw a built-in exception (`NPE`, `OOB`, `ARITH`).
    pub(crate) fn throw_builtin(
        &mut self,
        tid: ThreadId,
        tag: u32,
    ) -> Result<StepOutcome, VmError> {
        let exc = self.heap.alloc(tag, 0);
        self.throw_user(tid, exc)
    }

    /// Throw a user exception from the current pc, unwinding frames. The
    /// *standard* propagation rules apply (this is not the rollback path):
    /// catch-all/`finally` handlers run, and monitors of synchronized
    /// regions being exited are released (as javac's synthetic handlers
    /// would), with their updates kept — an exceptional exit is a normal
    /// exit as far as the log is concerned.
    pub(crate) fn throw_user(
        &mut self,
        tid: ThreadId,
        exc: ObjRef,
    ) -> Result<StepOutcome, VmError> {
        let class_tag = self.heap.object(exc)?.class_tag;
        loop {
            let depth = self.thread(tid).frames.len() - 1;
            let (mid, throw_pc) = {
                let f = self.thread(tid).frame();
                (f.method, f.pc.saturating_sub(1))
            };
            let handler =
                self.program.methods[mid.index()].find_handler(throw_pc, Some(class_tag)).copied();
            if let Some(h) = handler {
                // Release sections of this frame whose region does not
                // cover the handler.
                #[allow(clippy::while_let_loop)]
                loop {
                    let Some(top) = self.thread(tid).sections.last() else { break };
                    if top.frame_depth < depth {
                        break;
                    }
                    let covers = match top.region {
                        Some((s, e)) => h.target >= s && h.target < e,
                        None => true, // unknown extent: assume it covers
                    };
                    if top.frame_depth == depth && covers {
                        break;
                    }
                    let obj = top.monitor;
                    self.exit_section_common(tid, obj)?;
                }
                let f = self.thread_mut(tid).frame_mut();
                f.stack.clear();
                f.stack.push(Value::Ref(exc));
                f.pc = h.target;
                return Ok(StepOutcome::Continue { yield_point: false });
            }
            // No handler here: release this frame's sections and pop it.
            #[allow(clippy::while_let_loop)]
            loop {
                let Some(top) = self.thread(tid).sections.last() else { break };
                if top.frame_depth < depth {
                    break;
                }
                let obj = top.monitor;
                self.exit_section_common(tid, obj)?;
            }
            self.thread_mut(tid).frames.pop();
            if self.thread(tid).frames.is_empty() {
                let t = self.thread_mut(tid);
                t.uncaught = Some(class_tag);
                t.state = ThreadState::Terminated;
                return Ok(StepOutcome::Terminated);
            }
        }
    }

    fn do_return(&mut self, tid: ThreadId, v: Option<Value>) -> Result<StepOutcome, VmError> {
        let depth = self.thread(tid).frames.len() - 1;
        if self.thread(tid).sections.last().map(|s| s.frame_depth >= depth).unwrap_or(false) {
            return Err(VmError::IllegalMonitorState("return with an open synchronized section"));
        }
        self.thread_mut(tid).frames.pop();
        if self.thread(tid).frames.is_empty() {
            self.thread_mut(tid).state = ThreadState::Terminated;
            return Ok(StepOutcome::Terminated);
        }
        if let Some(v) = v {
            self.push(tid, v);
        }
        Ok(StepOutcome::Continue { yield_point: false })
    }

    // --- small helpers -----------------------------------------------------

    fn branch_if(
        &mut self,
        tid: ThreadId,
        taken: bool,
        target: u32,
        insn_pc: u32,
    ) -> Result<StepOutcome, VmError> {
        if taken {
            self.thread_mut(tid).frame_mut().pc = target;
            // Taken backward branches are yield points (loop back-edges,
            // where Jikes RVM plants its yieldpoints).
            Ok(StepOutcome::Continue { yield_point: target <= insn_pc })
        } else {
            Ok(StepOutcome::Continue { yield_point: false })
        }
    }

    fn binop(
        &mut self,
        tid: ThreadId,
        f: impl FnOnce(i64, i64) -> Option<i64>,
    ) -> Result<StepOutcome, VmError> {
        let (a, b) = self.pop2_int(tid)?;
        match f(a, b) {
            Some(v) => {
                self.push(tid, Value::Int(v));
                Ok(StepOutcome::Continue { yield_point: false })
            }
            None => self.throw_builtin(tid, ARITH_TAG),
        }
    }

    pub(crate) fn push(&mut self, tid: ThreadId, v: Value) {
        self.thread_mut(tid).frame_mut().stack.push(v);
    }

    pub(crate) fn pop(&mut self, tid: ThreadId) -> Result<Value, VmError> {
        let (name, pc) = {
            let f = self.thread(tid).frame();
            (f.method, f.pc)
        };
        self.thread_mut(tid).frame_mut().stack.pop().ok_or_else(|| VmError::StackUnderflow {
            method: self.program.methods[name.index()].name.clone(),
            pc,
        })
    }

    fn pop_int(&mut self, tid: ThreadId) -> Result<i64, VmError> {
        Ok(self.pop(tid)?.as_int()?)
    }

    fn pop2_int(&mut self, tid: ThreadId) -> Result<(i64, i64), VmError> {
        let b = self.pop_int(tid)?;
        let a = self.pop_int(tid)?;
        Ok((a, b))
    }

    /// Pop a reference; a `Null` turns into a thrown NPE (the `Err` arm
    /// carries the resulting step outcome).
    fn pop_obj(&mut self, tid: ThreadId) -> Result<Result<ObjRef, StepOutcome>, VmError> {
        match self.pop(tid)?.as_ref() {
            Ok(r) => Ok(Ok(r)),
            Err(ValueError::NullReference) => Ok(Err(self.throw_builtin(tid, NPE_TAG)?)),
            Err(e) => Err(e.into()),
        }
    }

    fn local(&self, tid: ThreadId, i: u16) -> Result<Value, VmError> {
        self.thread(tid)
            .frame()
            .locals
            .get(i as usize)
            .copied()
            .ok_or(VmError::Internal("local index out of range"))
    }

    fn set_local(&mut self, tid: ThreadId, i: u16, v: Value) -> Result<(), VmError> {
        let f = self.thread_mut(tid).frame_mut();
        match f.locals.get_mut(i as usize) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(VmError::Internal("local index out of range")),
        }
    }
}
