//! Green threads: frames, synchronized-section records, undo logs.
//!
//! Threads in this VM are *pseudo-preemptive* exactly as in Jikes RVM
//! (§3.1, footnote 4): context switches happen only at yield points
//! (explicit `Yield`, taken backward branches, method entries, and
//! monitor operations), which is also where pending revocations are acted
//! upon.

use crate::bytecode::MethodId;
use crate::heap::Location;
use crate::value::{ObjRef, Value};
use revmon_core::{LogMark, Metrics, Priority, ThreadId, UndoLog};

/// One logged update: where and what the old value was. Matches the
/// paper's log record ("object or array reference, value offset and the
/// (old) value itself"; statics: "offset of the static variable in the
/// global symbol table and the old value").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UndoEntry {
    /// Overwritten location.
    pub loc: Location,
    /// Value to restore on rollback.
    pub old: Value,
}

/// An activation record.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Executing method.
    pub method: MethodId,
    /// Next instruction index.
    pub pc: u32,
    /// Local variable slots.
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
}

/// Saved frame state for re-execution (the paper's injected
/// "save the values on the operand stack just before each rollback-scope's
/// monitorenter" plus local variables, §3.1.1).
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Saved locals.
    pub locals: Vec<Value>,
    /// Saved operand stack (monitor reference on top, so re-execution
    /// re-runs `MonitorEnter` itself).
    pub stack: Vec<Value>,
    /// pc to resume at (the `SaveState` instruction, or the instruction
    /// after `Wait` for post-wait restart points).
    pub resume_pc: u32,
    /// Whether resuming requires re-acquiring the monitor first (post-wait
    /// restart): the snapshot resumes *inside* the section rather than at
    /// its `MonitorEnter`.
    pub after_wait: bool,
}

/// An active synchronized-section record, pushed at `MonitorEnter` and
/// popped at `MonitorExit` or by rollback.
#[derive(Clone, Debug)]
pub struct Section {
    /// The monitor object.
    pub monitor: ObjRef,
    /// Globally unique acquisition id — the rollback exception's target
    /// identity (§3.1.1: the handler "checks if it corresponds to the
    /// synchronized section that is to be re-executed").
    pub acq_id: u64,
    /// Undo-log mark taken at entry.
    pub mark: LogMark,
    /// Index of the frame executing the section.
    pub frame_depth: usize,
    /// Saved state for re-execution; `None` when the section was entered
    /// through unrewritten code (unmodified VM) and can never roll back.
    pub snapshot: Option<Snapshot>,
    /// Cleared when the JMM-consistency guard, a native call, or a nested
    /// `wait` forbids revocation of this execution (§2.2).
    pub revocable: bool,
    /// Static extent `[enter_pc, exit_pc)` of the region in its method's
    /// code, when known (structured `sync_on_local` blocks / rewritten
    /// regions). Used to release monitors correctly while unwinding user
    /// exceptions. `None` (raw unstructured enter) pessimistically covers
    /// the whole method.
    pub region: Option<(u32, u32)>,
    /// Virtual-clock tick at which this execution entered the section.
    /// A rollback discards `now − entered_at` ticks of section work; the
    /// revocation governor accounts them against the monitor.
    pub entered_at: u64,
}

impl Section {
    /// Whether this execution can currently be revoked.
    pub fn can_revoke(&self) -> bool {
        self.revocable && self.snapshot.is_some()
    }
}

/// Scheduling state of a green thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable, waiting for the scheduler.
    Ready,
    /// Currently executing.
    Running,
    /// Queued on a monitor's entry queue (contended `MonitorEnter`).
    BlockedEnter(ObjRef),
    /// In a monitor's wait set (`Object.wait`).
    Waiting(ObjRef),
    /// Notified (or rolled back to a post-wait restart): queued to
    /// re-acquire the monitor before resuming.
    BlockedReacquire(ObjRef),
    /// Asleep until the given virtual-clock tick.
    Sleeping(u64),
    /// Blocked in `Join` until the given thread terminates.
    BlockedJoin(ThreadId),
    /// Finished.
    Terminated,
}

/// A green thread.
#[derive(Debug)]
pub struct VmThread {
    /// Identity.
    pub id: ThreadId,
    /// Diagnostic name.
    pub name: String,
    /// Base (programmer-assigned) priority.
    pub base_priority: Priority,
    /// Effective priority (base, possibly boosted by priority
    /// inheritance or a ceiling while holding monitors).
    pub effective_priority: Priority,
    /// Activation stack.
    pub frames: Vec<Frame>,
    /// Active synchronized sections, innermost last.
    pub sections: Vec<Section>,
    /// Sequential undo buffer.
    pub undo: UndoLog<UndoEntry>,
    /// Scheduling state.
    pub state: ThreadState,
    /// Pending revocation: acquisition id of the section to roll back,
    /// set by a higher-priority contender (or the deadlock breaker) and
    /// honoured at the next yield point.
    pub pending_revoke: Option<u64>,
    /// Monitors currently held (one entry per first acquisition, with
    /// recursion counted in the monitor itself). Used to recompute
    /// effective priority when inheritance boosts expire.
    pub held: Vec<ObjRef>,
    /// Virtual time when the thread first ran (`run()` entry timestamp).
    pub start_time: Option<u64>,
    /// Virtual time when the thread terminated.
    pub end_time: Option<u64>,
    /// Per-thread counters.
    pub metrics: Metrics,
    /// Saved wait-set recursion count while in `Object.wait` (the monitor
    /// is fully released and re-acquired to this depth).
    pub wait_recursion: u32,
    /// Consecutive revocations of the current section execution without an
    /// intervening commit — the livelock guard consults this.
    pub consecutive_revocations: u32,
    /// Snapshot produced by the last `SaveState`, consumed by the next
    /// `MonitorEnter` (possibly after blocking on the entry queue).
    pub pending_snapshot: Option<Snapshot>,
    /// Class tag of an uncaught exception that terminated the thread.
    pub uncaught: Option<u32>,
}

impl VmThread {
    /// A fresh thread about to execute `method` with `args`.
    pub fn new(
        id: ThreadId,
        name: String,
        priority: Priority,
        method: MethodId,
        locals: u16,
        args: Vec<Value>,
    ) -> Self {
        let mut l = args;
        l.resize(locals as usize, Value::Null);
        VmThread {
            id,
            name,
            base_priority: priority,
            effective_priority: priority,
            frames: vec![Frame { method, pc: 0, locals: l, stack: Vec::new() }],
            sections: Vec::new(),
            undo: UndoLog::new(),
            state: ThreadState::Ready,
            pending_revoke: None,
            held: Vec::new(),
            start_time: None,
            end_time: None,
            metrics: Metrics::new(),
            wait_recursion: 0,
            consecutive_revocations: 0,
            pending_snapshot: None,
            uncaught: None,
        }
    }

    /// The current (top) frame.
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("thread has no frames")
    }

    /// The current frame, mutably.
    pub fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("thread has no frames")
    }

    /// Innermost active section, if any. The write-barrier fast path is
    /// exactly `!self.in_section()`.
    pub fn in_section(&self) -> bool {
        !self.sections.is_empty()
    }

    /// Index of the *outermost* section on `monitor`, if held.
    pub fn outermost_section_on(&self, monitor: ObjRef) -> Option<usize> {
        self.sections.iter().position(|s| s.monitor == monitor)
    }

    /// Index of the section with acquisition id `acq`, if still active.
    pub fn section_by_acq(&self, acq: u64) -> Option<usize> {
        self.sections.iter().position(|s| s.acq_id == acq)
    }

    /// Mark every active section enclosing log position `pos`
    /// non-revocable; returns how many flipped. Used by the JMM guard.
    pub fn mark_nonrevocable_enclosing(&mut self, pos: usize) -> u64 {
        let mut flipped = 0;
        for s in &mut self.sections {
            if s.mark.position() <= pos && s.revocable {
                s.revocable = false;
                flipped += 1;
            }
        }
        flipped
    }

    /// Mark every active section non-revocable (native call, nested
    /// `wait`); returns how many flipped.
    pub fn mark_all_nonrevocable(&mut self) -> u64 {
        let mut flipped = 0;
        for s in &mut self.sections {
            if s.revocable {
                s.revocable = false;
                flipped += 1;
            }
        }
        flipped
    }

    /// Whether the thread has terminated.
    pub fn is_terminated(&self) -> bool {
        self.state == ThreadState::Terminated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread() -> VmThread {
        VmThread::new(ThreadId(0), "t".into(), Priority::LOW, MethodId(0), 3, vec![Value::Int(7)])
    }

    #[test]
    fn args_become_locals_padded_with_null() {
        let t = thread();
        assert_eq!(t.frame().locals, vec![Value::Int(7), Value::Null, Value::Null]);
        assert_eq!(t.frame().pc, 0);
    }

    #[test]
    fn section_lookup_by_monitor_finds_outermost() {
        let mut t = thread();
        let m = ObjRef(5);
        for acq in 0..3u64 {
            t.sections.push(Section {
                monitor: m,
                acq_id: acq,
                mark: t.undo.mark(),
                frame_depth: 0,
                snapshot: None,
                revocable: true,
                region: None,
                entered_at: 0,
            });
        }
        assert_eq!(t.outermost_section_on(m), Some(0));
        assert_eq!(t.section_by_acq(2), Some(2));
        assert_eq!(t.outermost_section_on(ObjRef(9)), None);
    }

    #[test]
    fn nonrevocable_marking_respects_positions() {
        let mut t = thread();
        t.undo.push(UndoEntry { loc: Location::Static(0), old: Value::Null });
        let outer_mark = revmon_core::undo::UndoLog::<UndoEntry>::new().mark(); // pos 0
        t.sections.push(Section {
            monitor: ObjRef(1),
            acq_id: 1,
            mark: outer_mark,
            frame_depth: 0,
            snapshot: None,
            revocable: true,
            region: None,
            entered_at: 0,
        });
        t.undo.push(UndoEntry { loc: Location::Static(1), old: Value::Null });
        let inner_mark = t.undo.mark(); // pos 2
        t.sections.push(Section {
            monitor: ObjRef(2),
            acq_id: 2,
            mark: inner_mark,
            frame_depth: 0,
            snapshot: None,
            revocable: true,
            region: None,
            entered_at: 0,
        });
        // A write at log position 1 is enclosed only by the outer section.
        let flipped = t.mark_nonrevocable_enclosing(1);
        assert_eq!(flipped, 1);
        assert!(!t.sections[0].revocable);
        assert!(t.sections[1].revocable);
    }

    #[test]
    fn mark_all_nonrevocable_counts_only_flips() {
        let mut t = thread();
        for acq in 0..2 {
            t.sections.push(Section {
                monitor: ObjRef(acq as u32),
                acq_id: acq,
                mark: t.undo.mark(),
                frame_depth: 0,
                snapshot: None,
                revocable: true,
                region: None,
                entered_at: 0,
            });
        }
        assert_eq!(t.mark_all_nonrevocable(), 2);
        assert_eq!(t.mark_all_nonrevocable(), 0);
    }

    #[test]
    fn can_revoke_requires_snapshot_and_flag() {
        let mut s = Section {
            monitor: ObjRef(0),
            acq_id: 0,
            mark: UndoLog::<UndoEntry>::new().mark(),
            frame_depth: 0,
            snapshot: None,
            revocable: true,
            region: None,
            entered_at: 0,
        };
        assert!(!s.can_revoke());
        s.snapshot =
            Some(Snapshot { locals: vec![], stack: vec![], resume_pc: 0, after_wait: false });
        assert!(s.can_revoke());
        s.revocable = false;
        assert!(!s.can_revoke());
    }
}
