//! Execution probes: read-only hooks into the interpreter's shared-data
//! and monitor paths.
//!
//! A [`Probe`] lets an external oracle (the `revmon-explore` invariant
//! checker) observe every shared heap access, section entry, commit, and
//! rollback *as it happens*, with full read access to the VM at each
//! hook. Probes cannot mutate VM state; they exist to check it. When no
//! probe is attached the hooks cost one `Option` test.

use crate::heap::Location;
use crate::value::{ObjRef, Value};
use crate::vm::Vm;
use revmon_core::ThreadId;

/// Read-only observer of VM execution events.
///
/// All hooks have empty default bodies so oracles implement only what
/// they need. The `&Vm` argument is the machine state *after* the event
/// took effect.
#[allow(unused_variables)]
pub trait Probe: Send {
    /// A synchronized section was entered (its record pushed): `tid` now
    /// holds `monitor` with fresh undo mark. The heap at this instant is
    /// the state a rollback of this section must restore.
    fn on_section_enter(&mut self, vm: &Vm, tid: ThreadId, monitor: ObjRef) {}

    /// A shared-heap word was written. `logged` is true when the write
    /// barrier's slow path appended an undo entry for it.
    fn on_heap_write(
        &mut self,
        vm: &Vm,
        tid: ThreadId,
        loc: Location,
        old: Value,
        new: Value,
        logged: bool,
    ) {
    }

    /// A shared-heap word was read by `tid`.
    fn on_heap_read(&mut self, vm: &Vm, tid: ThreadId, loc: Location, value: Value) {}

    /// `tid`'s outermost section on `monitor` committed (undo log
    /// retired, updates now permanent).
    fn on_commit(&mut self, vm: &Vm, tid: ThreadId, monitor: ObjRef) {}

    /// `tid`'s section on `monitor` was rolled back; `entries` undo
    /// entries were restored. The VM state reflects the completed
    /// rollback (shared state restored, monitors released, control
    /// rewound).
    fn on_rollback(&mut self, vm: &Vm, tid: ThreadId, monitor: ObjRef, entries: u64) {}
}

impl Vm {
    /// Attach an execution probe (replacing any previous one).
    pub fn attach_probe(&mut self, probe: Box<dyn Probe>) {
        self.probe = Some(probe);
    }

    /// Detach and return the probe, if one was attached.
    pub fn detach_probe(&mut self) -> Option<Box<dyn Probe>> {
        self.probe.take()
    }

    /// Run `f` against the attached probe (if any) with the probe
    /// temporarily moved out, so it can borrow the whole VM immutably.
    #[inline]
    pub(crate) fn with_probe(&mut self, f: impl FnOnce(&mut dyn Probe, &Vm)) {
        if let Some(mut p) = self.probe.take() {
            f(&mut *p, self);
            self.probe = Some(p);
        }
    }
}
