//! The object heap: objects, arrays, statics, volatiles.
//!
//! Objects and arrays share one representation (a vector of word slots);
//! statics live in a global slot table, mirroring the paper's three store
//! kinds (`putfield`, `putstatic`, `Xastore`). Volatility is a per-slot
//! property declared at allocation (fields) or at program build time
//! (statics); the JMM guard (crate::jmm) consults it only for diagnostics —
//! the non-revocability rule treats any cross-thread read of a speculative
//! write identically, which subsumes the volatile case of Fig. 3.

use crate::value::{ObjRef, Value, ValueError};

/// A heap location: the unit of write-barrier logging and of the
/// JMM-consistency map. One logged entry = one location + old value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Location {
    /// Field `offset` of object/array `0` (arrays: element index).
    Obj(ObjRef, u32),
    /// Static slot `0` in the global table.
    Static(u32),
}

/// A heap object or array.
#[derive(Clone, Debug)]
pub struct Object {
    /// Class tag, used for exception-handler matching and diagnostics.
    pub class_tag: u32,
    /// Field / element slots.
    slots: Vec<Value>,
    /// Bitmask of volatile slots (bit i set = slot i volatile). Objects
    /// with more than 64 fields cannot declare volatiles past slot 63;
    /// arrays have no volatile elements (as in Java).
    volatile_mask: u64,
    /// Whether this object is an array (affects diagnostics only).
    pub is_array: bool,
}

impl Object {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the object has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether slot `i` was declared volatile.
    pub fn is_volatile(&self, i: u32) -> bool {
        i < 64 && (self.volatile_mask >> i) & 1 == 1
    }
}

/// A static slot declaration.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticSlot {
    value: Value,
    volatile: bool,
}

/// The heap: object store + static table.
#[derive(Debug, Default)]
pub struct Heap {
    objects: Vec<Object>,
    statics: Vec<StaticSlot>,
}

/// Heap access fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HeapError {
    /// Object reference out of range (should be impossible for refs the
    /// VM itself produced).
    BadRef(ObjRef),
    /// Slot offset out of range for the object — Java's
    /// `ArrayIndexOutOfBounds` / bad field offset.
    BadOffset(ObjRef, u32),
    /// Static slot out of range.
    BadStatic(u32),
    /// Value-level fault.
    Value(ValueError),
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::BadRef(r) => write!(f, "dangling reference {r}"),
            HeapError::BadOffset(r, o) => write!(f, "offset {o} out of bounds for {r}"),
            HeapError::BadStatic(s) => write!(f, "static slot {s} out of range"),
            HeapError::Value(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HeapError {}

impl From<ValueError> for HeapError {
    fn from(e: ValueError) -> Self {
        HeapError::Value(e)
    }
}

impl Heap {
    /// An empty heap with `n_statics` static slots (all `Null`,
    /// non-volatile; use [`Heap::declare_static_volatile`] to flag).
    pub fn new(n_statics: usize) -> Self {
        Heap { objects: Vec::new(), statics: vec![StaticSlot::default(); n_statics] }
    }

    /// Feed the complete heap contents — every object slot and every
    /// static — into `h` in deterministic order (state fingerprinting).
    pub fn hash_state<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        self.objects.len().hash(h);
        for o in &self.objects {
            o.class_tag.hash(h);
            o.volatile_mask.hash(h);
            o.is_array.hash(h);
            o.slots.hash(h);
        }
        self.statics.len().hash(h);
        for s in &self.statics {
            s.value.hash(h);
            s.volatile.hash(h);
        }
    }

    /// Mark static slot `i` volatile.
    pub fn declare_static_volatile(&mut self, i: u32) -> Result<(), HeapError> {
        let slot = self.statics.get_mut(i as usize).ok_or(HeapError::BadStatic(i))?;
        slot.volatile = true;
        Ok(())
    }

    /// Allocate an object with `fields` slots, all `Null`.
    pub fn alloc(&mut self, class_tag: u32, fields: u32) -> ObjRef {
        self.alloc_with_volatile(class_tag, fields, 0)
    }

    /// Allocate an object whose volatile slots are given by `mask`.
    pub fn alloc_with_volatile(&mut self, class_tag: u32, fields: u32, mask: u64) -> ObjRef {
        let r = ObjRef(self.objects.len() as u32);
        self.objects.push(Object {
            class_tag,
            slots: vec![Value::Null; fields as usize],
            volatile_mask: mask,
            is_array: false,
        });
        r
    }

    /// Allocate an array of `len` elements, all `Int(0)`.
    pub fn alloc_array(&mut self, len: u32) -> ObjRef {
        let r = ObjRef(self.objects.len() as u32);
        self.objects.push(Object {
            class_tag: u32::MAX,
            slots: vec![Value::Int(0); len as usize],
            volatile_mask: 0,
            is_array: true,
        });
        r
    }

    /// Read `loc`.
    pub fn read(&self, loc: Location) -> Result<Value, HeapError> {
        match loc {
            Location::Obj(r, off) => {
                let o = self.object(r)?;
                o.slots.get(off as usize).copied().ok_or(HeapError::BadOffset(r, off))
            }
            Location::Static(s) => {
                self.statics.get(s as usize).map(|sl| sl.value).ok_or(HeapError::BadStatic(s))
            }
        }
    }

    /// Write `loc`, returning the **old** value (what the write barrier
    /// logs).
    pub fn write(&mut self, loc: Location, v: Value) -> Result<Value, HeapError> {
        match loc {
            Location::Obj(r, off) => {
                let o = self.objects.get_mut(r.index()).ok_or(HeapError::BadRef(r))?;
                let slot = o.slots.get_mut(off as usize).ok_or(HeapError::BadOffset(r, off))?;
                Ok(std::mem::replace(slot, v))
            }
            Location::Static(s) => {
                let slot = self.statics.get_mut(s as usize).ok_or(HeapError::BadStatic(s))?;
                Ok(std::mem::replace(&mut slot.value, v))
            }
        }
    }

    /// Whether `loc` is a volatile slot.
    pub fn is_volatile(&self, loc: Location) -> bool {
        match loc {
            Location::Obj(r, off) => {
                self.objects.get(r.index()).map(|o| o.is_volatile(off)).unwrap_or(false)
            }
            Location::Static(s) => {
                self.statics.get(s as usize).map(|sl| sl.volatile).unwrap_or(false)
            }
        }
    }

    /// Borrow an object.
    pub fn object(&self, r: ObjRef) -> Result<&Object, HeapError> {
        self.objects.get(r.index()).ok_or(HeapError::BadRef(r))
    }

    /// Array/object slot count.
    pub fn length_of(&self, r: ObjRef) -> Result<u32, HeapError> {
        Ok(self.object(r)?.len() as u32)
    }

    /// Number of live objects (no GC in this VM — allocation is an arena).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of static slots.
    pub fn static_count(&self) -> usize {
        self.statics.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_returns_old_value() {
        let mut h = Heap::new(1);
        let o = h.alloc(0, 2);
        let loc = Location::Obj(o, 1);
        assert_eq!(h.write(loc, Value::Int(5)).unwrap(), Value::Null);
        assert_eq!(h.write(loc, Value::Int(9)).unwrap(), Value::Int(5));
        assert_eq!(h.read(loc).unwrap(), Value::Int(9));
    }

    #[test]
    fn statics_work_like_slots() {
        let mut h = Heap::new(2);
        assert_eq!(h.read(Location::Static(0)).unwrap(), Value::Null);
        h.write(Location::Static(1), Value::Int(3)).unwrap();
        assert_eq!(h.read(Location::Static(1)).unwrap(), Value::Int(3));
        assert!(h.read(Location::Static(2)).is_err());
    }

    #[test]
    fn arrays_default_to_zero() {
        let mut h = Heap::new(0);
        let a = h.alloc_array(3);
        assert_eq!(h.read(Location::Obj(a, 0)).unwrap(), Value::Int(0));
        assert_eq!(h.length_of(a).unwrap(), 3);
        assert!(h.object(a).unwrap().is_array);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut h = Heap::new(0);
        let a = h.alloc_array(2);
        assert!(matches!(h.read(Location::Obj(a, 2)), Err(HeapError::BadOffset(_, 2))));
        assert!(matches!(
            h.write(Location::Obj(a, 9), Value::Int(1)),
            Err(HeapError::BadOffset(_, 9))
        ));
    }

    #[test]
    fn volatile_flags() {
        let mut h = Heap::new(1);
        h.declare_static_volatile(0).unwrap();
        assert!(h.is_volatile(Location::Static(0)));
        let o = h.alloc_with_volatile(0, 3, 0b100);
        assert!(h.is_volatile(Location::Obj(o, 2)));
        assert!(!h.is_volatile(Location::Obj(o, 0)));
    }

    #[test]
    fn dangling_ref_detected() {
        let h = Heap::new(0);
        assert!(matches!(h.read(Location::Obj(ObjRef(0), 0)), Err(HeapError::BadRef(_))));
    }
}
