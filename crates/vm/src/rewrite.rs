//! The "bytecode rewriting" pass (§3.1.1).
//!
//! Mirrors the paper's BCEL transformation pipeline:
//!
//! 1. **Synchronized methods** are turned into non-synchronized
//!    equivalents: for each `synchronized` method we create a wrapper
//!    with an identical signature whose body is a synchronized block (on
//!    `this`) around a call to the renamed original. Call sites keep the
//!    original [`MethodId`], which now denotes the wrapper. (The paper
//!    additionally directs the VM to inline the original into the
//!    wrapper; our cost model charges `Call` like any instruction, so the
//!    wrapper costs one extra instruction — negligible, as inlining made
//!    it in the paper.)
//!
//! 2. **Rollback scopes**: every synchronized region gets
//!    * a [`SaveState`](Insn::SaveState) injected immediately before its
//!      `MonitorEnter` — the paper's "inject bytecode to save the values
//!      on the operand stack just before each rollback-scope's
//!      monitorenter" (plus locals),
//!    * an appended [`RollbackHandler`](Insn::RollbackHandler) block and
//!      a [`CatchKind::Rollback`] exception-table entry covering the
//!      region — the injected handler that catches the internal rollback
//!      exception, releases the region's monitor, and either restores the
//!      saved state (if it is the revocation target) or re-throws to the
//!      next outer rollback scope.
//!
//! Branch targets, exception tables and region metadata are remapped
//! around the insertions.
//!
//! The unmodified VM simply runs the *unrewritten* program: no
//! `SaveState` ⇒ sections carry no snapshot ⇒ nothing can be revoked,
//! and the interpreter charges no barrier costs (`barriers` off).

use crate::bytecode::{
    CatchKind, Handler, Insn, Method, MethodId, Program, RollbackScope, SyncRegion,
};

/// Rewrite a whole program. Idempotence is rejected: rewriting an already
/// rewritten program panics (it would double-inject scopes).
pub fn rewrite_program(p: &Program) -> Program {
    let mut methods: Vec<Method> = p.methods.clone();

    // Pass 1: unwrap synchronized methods. The inner (renamed) method is
    // appended; the wrapper replaces the original slot so call sites are
    // untouched.
    let n = methods.len();
    for i in 0..n {
        if methods[i].synchronized {
            let mut inner = methods[i].clone();
            inner.synchronized = false;
            inner.name = format!("{}$sync", inner.name);
            let inner_id = MethodId(methods.len() as u32);
            let returns_value = inner.code.iter().any(|x| matches!(x, Insn::Ret));
            let wrapper =
                make_wrapper(&methods[i].name, methods[i].params, inner_id, returns_value);
            methods.push(inner);
            methods[i] = wrapper;
        }
    }

    // Pass 2: inject rollback scopes into every method with sync regions.
    for m in &mut methods {
        assert!(m.rollback_scopes.is_empty(), "method {} already rewritten", m.name);
        if !m.sync_regions.is_empty() {
            inject_rollback_scopes(m);
        }
    }

    Program {
        methods,
        n_statics: p.n_statics,
        volatile_statics: p.volatile_statics.clone(),
        class_names: p.class_names.clone(),
    }
}

/// Build the non-synchronized wrapper for a synchronized method.
fn make_wrapper(name: &str, params: u16, inner: MethodId, returns_value: bool) -> Method {
    let mut code = Vec::new();
    code.push(Insn::Load(0)); // this
    let enter = code.len() as u32;
    code.push(Insn::MonitorEnter);
    for i in 0..params {
        code.push(Insn::Load(i));
    }
    code.push(Insn::Call(inner));
    let scratch = params; // one extra local for the return value
    if returns_value {
        code.push(Insn::Store(scratch));
    }
    code.push(Insn::Load(0));
    code.push(Insn::MonitorExit);
    let exit = code.len() as u32;
    if returns_value {
        code.push(Insn::Load(scratch));
        code.push(Insn::Ret);
    } else {
        code.push(Insn::RetVoid);
    }
    Method {
        name: name.to_string(),
        params,
        locals: params + u16::from(returns_value),
        code,
        handlers: vec![],
        sync_regions: vec![SyncRegion { enter, exit }],
        synchronized: false,
        rollback_scopes: vec![],
    }
}

/// Inject `SaveState` + rollback handlers for every sync region of `m`.
fn inject_rollback_scopes(m: &mut Method) {
    let mut inserts: Vec<u32> = m.sync_regions.iter().map(|r| r.enter).collect();
    inserts.sort_unstable();
    inserts.dedup();

    // Number of insertion points strictly below pc — the displacement of
    // any *boundary/target* at pc. (A branch to a region's MonitorEnter
    // must land on the injected SaveState so re-entry re-saves state.)
    let shift = |pc: u32| -> u32 { inserts.partition_point(|&e| e < pc) as u32 };

    // Rebuild code with SaveState inserted before each region enter.
    let mut code = Vec::with_capacity(m.code.len() + inserts.len());
    for (pc, insn) in m.code.iter().enumerate() {
        if inserts.binary_search(&(pc as u32)).is_ok() {
            code.push(Insn::SaveState);
        }
        code.push(remap_insn(*insn, &shift));
    }

    // Remap exception table and regions.
    for h in &mut m.handlers {
        h.start += shift(h.start);
        h.end += shift(h.end);
        h.target += shift(h.target);
    }
    let regions: Vec<SyncRegion> = m
        .sync_regions
        .iter()
        .map(|r| SyncRegion { enter: r.enter + shift(r.enter) + 1, exit: r.exit + shift(r.exit) })
        .collect();
    m.sync_regions = regions.clone();

    // Append one RollbackHandler per region + its exception-table entry.
    for r in &regions {
        let handler_pc = code.len() as u32;
        code.push(Insn::RollbackHandler);
        let save_pc = r.enter - 1;
        m.handlers.push(Handler {
            start: save_pc,
            end: r.exit,
            target: handler_pc,
            kind: CatchKind::Rollback,
        });
        m.rollback_scopes.push(RollbackScope {
            save_pc,
            enter_pc: r.enter,
            exit_pc: r.exit,
            handler_pc,
        });
    }

    m.code = code;
}

fn remap_insn(i: Insn, shift: &impl Fn(u32) -> u32) -> Insn {
    match i {
        Insn::Goto(t) => Insn::Goto(t + shift(t)),
        Insn::IfZero(t) => Insn::IfZero(t + shift(t)),
        Insn::IfNonZero(t) => Insn::IfNonZero(t + shift(t)),
        Insn::IfLt(t) => Insn::IfLt(t + shift(t)),
        Insn::IfGe(t) => Insn::IfGe(t + shift(t)),
        Insn::IfEq(t) => Insn::IfEq(t + shift(t)),
        Insn::IfNe(t) => Insn::IfNe(t + shift(t)),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MethodBuilder, ProgramBuilder};

    fn simple_sync_program() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let run = pb.declare_method("run", 1);
        let mut b = MethodBuilder::new(1, 1);
        b.sync_on_local(0, |b| {
            b.const_i(1);
            b.put_static(0);
        });
        b.ret_void();
        pb.implement(run, b);
        (pb.finish(), run)
    }

    #[test]
    fn savestate_injected_before_monitorenter() {
        let (p, run) = simple_sync_program();
        let r = rewrite_program(&p);
        let m = r.method(run);
        let scope = m.rollback_scopes[0];
        assert!(matches!(m.code[scope.save_pc as usize], Insn::SaveState));
        assert!(matches!(m.code[scope.enter_pc as usize], Insn::MonitorEnter));
        assert_eq!(scope.enter_pc, scope.save_pc + 1);
        assert!(matches!(m.code[scope.handler_pc as usize], Insn::RollbackHandler));
        assert!(matches!(m.code[(scope.exit_pc - 1) as usize], Insn::MonitorExit));
    }

    #[test]
    fn rollback_handler_entry_covers_region() {
        let (p, run) = simple_sync_program();
        let r = rewrite_program(&p);
        let m = r.method(run);
        let scope = m.rollback_scopes[0];
        let h = m
            .handlers
            .iter()
            .find(|h| h.kind == CatchKind::Rollback)
            .expect("rollback handler registered");
        assert_eq!(h.start, scope.save_pc);
        assert_eq!(h.end, scope.exit_pc);
        assert_eq!(h.target, scope.handler_pc);
    }

    #[test]
    fn branch_around_region_remapped() {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let run = pb.declare_method("run", 1);
        let mut b = MethodBuilder::new(1, 2);
        // loop: 10 iterations of the sync block
        b.const_i(10);
        b.store(1);
        let top = b.here();
        b.load(1);
        let done = b.new_label();
        b.if_zero(done);
        b.sync_on_local(0, |b| {
            b.const_i(1);
            b.put_static(0);
        });
        b.load(1);
        b.const_i(1);
        b.sub();
        b.store(1);
        b.goto(top);
        b.place(done);
        b.ret_void();
        pb.implement(run, b);
        let p = pb.finish();
        let r = rewrite_program(&p);
        let m = r.method(run);
        // the backward goto must still hit the loop head (`load(1)` at
        // original pc 2, unshifted because the insertion is after it)
        let goto_target = m
            .code
            .iter()
            .find_map(|i| match i {
                Insn::Goto(t) => Some(*t),
                _ => None,
            })
            .unwrap();
        assert!(matches!(m.code[goto_target as usize], Insn::Load(1)));
        // forward branch (if_zero) must land one past the end, on RetVoid
        let if_target = m
            .code
            .iter()
            .find_map(|i| match i {
                Insn::IfZero(t) => Some(*t),
                _ => None,
            })
            .unwrap();
        assert!(matches!(m.code[if_target as usize], Insn::RetVoid));
    }

    #[test]
    fn branch_to_region_enter_lands_on_savestate() {
        // Hand-build code whose loop branches straight back to the
        // MonitorEnter (re-entering the section each iteration).
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let run = pb.declare_method("run", 1);
        let mut b = MethodBuilder::new(1, 1);
        b.load(0); // push monitor ref; loop target is the MonitorEnter below
        let enter_pc_holder = b.pc();
        b.monitor_enter_raw();
        b.const_i(1);
        b.put_static(0);
        b.load(0);
        b.monitor_exit_raw();
        let exit_pc = b.pc();
        b.raw_handler(crate::bytecode::Handler {
            // artificial user handler referencing the enter pc as target
            start: enter_pc_holder,
            end: exit_pc,
            target: enter_pc_holder,
            kind: CatchKind::Class(99),
        });
        b.ret_void();
        pb.implement(run, b);
        let mut p = pb.finish();
        p.methods[run.index()].sync_regions =
            vec![SyncRegion { enter: enter_pc_holder, exit: exit_pc }];
        let r = rewrite_program(&p);
        let m = r.method(run);
        let user_handler = m.handlers.iter().find(|h| h.kind == CatchKind::Class(99)).unwrap();
        assert!(matches!(m.code[user_handler.target as usize], Insn::SaveState));
    }

    #[test]
    fn synchronized_method_wrapped() {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let inc = pb.declare_method("inc", 1);
        let mut b = MethodBuilder::new(1, 1);
        b.set_synchronized();
        b.get_static(0);
        b.const_i(1);
        b.add();
        b.put_static(0);
        b.ret_void();
        pb.implement(inc, b);
        let p = pb.finish();
        let r = rewrite_program(&p);
        // wrapper replaced the original id
        let w = r.method(inc);
        assert!(!w.synchronized);
        assert_eq!(w.name, "inc");
        assert_eq!(w.sync_regions.len(), 1);
        assert_eq!(w.rollback_scopes.len(), 1);
        // renamed inner appended
        let inner = r.method_by_name("inc$sync").expect("inner method");
        assert!(r.method(inner).code.iter().any(|i| matches!(i, Insn::PutStatic(0))));
        // wrapper calls inner inside the region
        assert!(w.code.iter().any(|i| matches!(i, Insn::Call(m) if *m == inner)));
    }

    #[test]
    fn synchronized_method_with_return_value() {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let get = pb.declare_method("get", 1);
        let mut b = MethodBuilder::new(1, 1);
        b.set_synchronized();
        b.get_static(0);
        b.ret();
        pb.implement(get, b);
        let p = pb.finish();
        let r = rewrite_program(&p);
        let w = r.method(get);
        // wrapper must stash the value, exit the monitor, then return it
        assert!(matches!(w.code.last(), Some(Insn::RollbackHandler)));
        assert!(w.code.iter().any(|i| matches!(i, Insn::Ret)));
        assert!(w.code.iter().any(|i| matches!(i, Insn::Store(1))));
        assert_eq!(w.locals, 2);
    }

    #[test]
    fn nested_regions_get_two_scopes() {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let run = pb.declare_method("run", 2);
        let mut b = MethodBuilder::new(2, 2);
        b.sync_on_local(0, |b| {
            b.sync_on_local(1, |b| {
                b.const_i(1);
                b.put_static(0);
            });
        });
        b.ret_void();
        pb.implement(run, b);
        let p = pb.finish();
        let r = rewrite_program(&p);
        let m = r.method(run);
        assert_eq!(m.rollback_scopes.len(), 2);
        for s in &m.rollback_scopes {
            assert!(matches!(m.code[s.save_pc as usize], Insn::SaveState));
            assert!(matches!(m.code[s.enter_pc as usize], Insn::MonitorEnter));
            assert!(matches!(m.code[s.handler_pc as usize], Insn::RollbackHandler));
        }
        // scopes nest: one strictly inside the other
        let (a, bscope) = (m.rollback_scopes[0], m.rollback_scopes[1]);
        let (inner, outer) = if a.enter_pc < bscope.enter_pc { (bscope, a) } else { (a, bscope) };
        assert!(outer.enter_pc < inner.enter_pc && inner.exit_pc < outer.exit_pc);
    }

    #[test]
    #[should_panic(expected = "already rewritten")]
    fn double_rewrite_rejected() {
        let (p, _) = simple_sync_program();
        let r = rewrite_program(&p);
        let _ = rewrite_program(&r);
    }

    #[test]
    fn unsynchronized_methods_untouched() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_method("f", 0);
        let mut b = MethodBuilder::new(0, 0);
        b.const_i(1);
        b.pop();
        b.ret_void();
        pb.implement(f, b);
        let p = pb.finish();
        let r = rewrite_program(&p);
        assert_eq!(r.method(f).code, p.method(f).code);
        assert!(r.method(f).rollback_scopes.is_empty());
    }
}
