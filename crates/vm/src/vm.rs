//! The virtual machine: configuration, thread spawning, and the
//! green-thread dispatch loop with its virtual clock.
//!
//! Scheduling reproduces the paper's environment (§4): Jikes RVM 2.2.1
//! schedules threads *round-robin without priorities* on a uniprocessor;
//! priorities act only at monitor entry queues (prioritized queues) and
//! through the revocation mechanism itself. The scheduling *decision* is
//! pluggable (see [`crate::sched`]): round-robin is the default, a
//! priority-preemptive policy serves the ablation experiments, and a
//! scripted policy replays explicit decision sequences for the
//! `revmon-explore` model checker.

use crate::bytecode::{MethodId, Program};
use crate::error::VmError;
use crate::heap::Heap;
use crate::jmm::JmmGuard;
use crate::monitor::MonitorTable;
use crate::rewrite::rewrite_program;
use crate::sched::{Candidate, SchedContext, SchedulePolicy};
use crate::thread::{ThreadState, VmThread};
use crate::trace::{TraceEvent, TraceRecord};
use crate::value::Value;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use revmon_core::{
    CostModel, DetectionStrategy, Governor, GovernorConfig, InversionPolicy, Metrics, Priority,
    QueueDiscipline, ThreadId, WaitsForGraph,
};
use std::collections::VecDeque;

pub use crate::sched::SchedulerKind;

/// VM configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Priority-inversion strategy.
    pub policy: InversionPolicy,
    /// How inversion is detected.
    pub detection: DetectionStrategy,
    /// Monitor entry-queue discipline.
    pub queue_discipline: QueueDiscipline,
    /// Scheduler flavour.
    pub scheduler: SchedulerKind,
    /// Virtual-clock cost model.
    pub cost: CostModel,
    /// Whether write barriers are compiled in (the "modified VM"). The
    /// unmodified VM compiles the benchmark without any barriers.
    pub barriers: bool,
    /// Whether the JMM-consistency read guard is active (requires
    /// `barriers`; the unmodified VM has neither).
    pub jmm_guard: bool,
    /// Whether to run the bytecode rewriting pass (rollback scopes +
    /// synchronized-method wrappers). Without it nothing can be revoked.
    pub rewrite: bool,
    /// Run the write-barrier elision analysis (§1.1's compiler
    /// optimization): stores proven never to execute inside a
    /// synchronized section skip even the fast-path test.
    pub elide_barriers: bool,
    /// RNG seed (for `RandInt`), making runs fully deterministic.
    pub seed: u64,
    /// Safety net: abort after this many instructions (0 = unlimited).
    pub max_steps: u64,
    /// Heap-object budget: allocations beyond this throw the built-in
    /// `OutOfMemoryError` (0 = unlimited). There is no GC — the heap is
    /// an arena.
    pub max_heap_objects: usize,
    /// Livelock guard: after this many consecutive revocations of the
    /// same section execution, further requests are denied until it
    /// commits (0 = unlimited; the paper's mechanism is unlimited).
    pub max_consecutive_revocations: u32,
    /// Adaptive revocation governor: bounded retry budget with
    /// exponential backoff and per-monitor fallback to blocking
    /// (disabled by default — the paper's mechanism is ungoverned).
    pub governor: GovernorConfig,
    /// Strict mode: once any execution of a monitor is marked
    /// non-revocable, all future executions are too (sticky header bit).
    pub sticky_nonrevocable: bool,
    /// Record a [`TraceRecord`] stream for tests/examples.
    pub trace: bool,
    /// **Test-only fault injection**: skip restoring the newest N undo
    /// entries during each rollback (0 = correct behaviour). Exists so
    /// the `revmon-explore` invariant checker can prove it catches a
    /// broken rollback; never set this outside tests.
    pub fault_skip_undo: u32,
    /// **Test-only fault injection**: treat *every* contended acquire as
    /// a priority inversion, regardless of the holder's priority. Forces
    /// pathological repeat-revocation (mutual revocation ping-pong) so
    /// the governor's livelock handling can be exercised under the
    /// explore harness; never set this outside tests.
    pub fault_force_inversion: bool,
}

impl VmConfig {
    /// The paper's **unmodified VM**: plain blocking monitors, no
    /// barriers, no rewriting — priority inversion unaddressed (but entry
    /// queues still prioritized, as in the paper's baseline).
    pub fn unmodified() -> Self {
        VmConfig {
            policy: InversionPolicy::Blocking,
            detection: DetectionStrategy::AtAcquisition,
            queue_discipline: QueueDiscipline::Priority,
            scheduler: SchedulerKind::RoundRobin,
            cost: CostModel::default(),
            barriers: false,
            jmm_guard: false,
            rewrite: false,
            elide_barriers: false,
            seed: 0x5eed,
            max_steps: 0,
            max_heap_objects: 0,
            max_consecutive_revocations: 0,
            governor: GovernorConfig::disabled(),
            sticky_nonrevocable: false,
            trace: false,
            fault_skip_undo: 0,
            fault_force_inversion: false,
        }
    }

    /// The paper's **modified VM**: revocable monitors with write
    /// barriers, the rewrite pass, detection at acquisition and the JMM
    /// guard.
    pub fn modified() -> Self {
        VmConfig {
            policy: InversionPolicy::Revocation,
            barriers: true,
            jmm_guard: true,
            rewrite: true,
            ..Self::unmodified()
        }
    }

    /// Builder-style: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Builder-style: enable tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Builder-style: enable write-barrier elision.
    pub fn with_elision(mut self) -> Self {
        self.elide_barriers = true;
        self
    }

    /// Builder-style: set the step safety limit.
    pub fn with_max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Builder-style: set the revocation governor.
    pub fn with_governor(mut self, governor: GovernorConfig) -> Self {
        self.governor = governor;
        self
    }
}

impl Default for VmConfig {
    fn default() -> Self {
        Self::modified()
    }
}

/// Per-thread results.
#[derive(Clone, Debug)]
pub struct ThreadReport {
    /// Thread identity.
    pub id: ThreadId,
    /// Thread name.
    pub name: String,
    /// Base priority.
    pub priority: Priority,
    /// Virtual time of first dispatch (the paper's "first time-stamp at
    /// the beginning of the run() method").
    pub start_time: u64,
    /// Virtual time of termination.
    pub end_time: u64,
    /// Counters.
    pub metrics: Metrics,
    /// Class tag of an uncaught exception, if one killed the thread.
    pub uncaught: Option<u32>,
}

impl ThreadReport {
    /// Elapsed virtual time of this thread's `run()`.
    pub fn elapsed(&self) -> u64 {
        self.end_time.saturating_sub(self.start_time)
    }
}

/// Per-monitor results.
#[derive(Clone, Copy, Debug)]
pub struct MonitorReport {
    /// The monitor object.
    pub object: crate::value::ObjRef,
    /// Total acquisitions.
    pub acquires: u64,
    /// Blocking episodes.
    pub contended: u64,
    /// Largest entry-queue length observed.
    pub peak_queue: usize,
}

/// Whole-run results.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Final virtual-clock value.
    pub clock: u64,
    /// Per-thread reports.
    pub threads: Vec<ThreadReport>,
    /// Aggregated counters (sum of per-thread + VM-global events).
    pub global: Metrics,
    /// Values emitted by `Native(Emit/Print)`.
    pub output: Vec<Value>,
    /// Per-monitor contention profile (every object ever synchronized
    /// on), sorted by contention.
    pub monitors: Vec<MonitorReport>,
}

impl RunReport {
    /// The paper's headline metric: elapsed time from the earliest start
    /// to the latest end across threads with base priority ≥ `cut`
    /// (§4.1's total elapsed time of high-priority threads).
    pub fn elapsed_for(&self, cut: Priority) -> u64 {
        let sel: Vec<&ThreadReport> = self.threads.iter().filter(|t| t.priority >= cut).collect();
        let start = sel.iter().map(|t| t.start_time).min().unwrap_or(0);
        let end = sel.iter().map(|t| t.end_time).max().unwrap_or(0);
        end.saturating_sub(start)
    }

    /// Overall elapsed time (all threads).
    pub fn overall_elapsed(&self) -> u64 {
        self.elapsed_for(Priority::MIN)
    }

    /// A multi-line human-readable summary of the run (used by the CLI's
    /// `--stats` and handy in examples).
    pub fn summary(&self) -> String {
        let g = &self.global;
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(out, "virtual clock      : {}", self.clock);
        let _ = writeln!(out, "threads            : {}", self.threads.len());
        let _ = writeln!(out, "instructions       : {}", g.instructions);
        let _ = writeln!(
            out,
            "monitor acquires   : {} ({} contended)",
            g.monitor_acquires, g.contended_acquires
        );
        let _ = writeln!(out, "context switches   : {}", g.context_switches);
        let _ = writeln!(out, "log entries        : {}", g.log_entries);
        let _ = writeln!(out, "revocations req.   : {}", g.revocations_requested);
        let _ = writeln!(
            out,
            "rollbacks          : {} ({} entries restored)",
            g.rollbacks, g.entries_rolled_back
        );
        let _ = writeln!(
            out,
            "inversions         : {} detected, {} unresolved",
            g.inversions_detected, g.inversions_unresolved
        );
        let _ = writeln!(out, "non-revocable marks: {}", g.monitors_marked_nonrevocable);
        if g.governor_throttles != 0 || g.policy_fallbacks != 0 {
            let _ = writeln!(
                out,
                "governor           : {} throttled, {} fallback windows",
                g.governor_throttles, g.policy_fallbacks
            );
        }
        let _ = writeln!(
            out,
            "deadlocks          : {} detected, {} broken",
            g.deadlocks_detected, g.deadlocks_broken
        );
        let _ = writeln!(
            out,
            "barriers           : {} fast paths, {} slow paths, {} elided",
            g.barrier_fast_paths, g.barrier_slow_paths, g.barriers_elided
        );
        out
    }
}

/// The virtual machine.
pub struct Vm {
    /// The (possibly rewritten) program.
    pub(crate) program: Program,
    pub(crate) heap: Heap,
    pub(crate) monitors: MonitorTable,
    pub(crate) threads: Vec<VmThread>,
    pub(crate) run_queue: VecDeque<ThreadId>,
    pub(crate) clock: u64,
    pub(crate) quantum_left: u64,
    pub(crate) rng: SmallRng,
    pub(crate) jmm: JmmGuard,
    pub(crate) graph: WaitsForGraph,
    pub(crate) config: VmConfig,
    /// VM-global counters (per-thread counters live on the threads).
    pub(crate) global: Metrics,
    pub(crate) next_acq_id: u64,
    pub(crate) output: Vec<Value>,
    pub(crate) last_dispatched: Option<ThreadId>,
    pub(crate) steps: u64,
    pub(crate) next_background_scan: u64,
    pub(crate) trace: Vec<TraceRecord>,
    /// Optional observability sink; trace events are forwarded into it
    /// (virtual-clock timestamps) independently of `config.trace`.
    pub(crate) sink: Option<std::sync::Arc<revmon_obs::EventSink>>,
    /// Static write-barrier elision table (when `elide_barriers`).
    pub(crate) elision: Option<crate::analysis::ElisionTable>,
    /// Threads blocked in `Join`, keyed by the thread they wait for.
    /// Ordered map: wake-up processing must be deterministic.
    pub(crate) join_waiters: std::collections::BTreeMap<ThreadId, Vec<ThreadId>>,
    /// The scheduling decision procedure (from `config.scheduler` unless
    /// overridden via [`Vm::set_schedule_policy`]).
    pub(crate) policy: Box<dyn SchedulePolicy>,
    /// Optional execution probe (see [`crate::probe`]).
    pub(crate) probe: Option<Box<dyn crate::probe::Probe>>,
    /// Number of `RandInt` draws so far; together with `config.seed` this
    /// pins the RNG state (used by state fingerprinting).
    pub(crate) rng_draws: u64,
    /// Adaptive revocation governor state (see `config.governor`).
    pub(crate) governor: Governor,
}

impl Vm {
    /// Build a VM for `program` under `config` (running the rewrite pass
    /// if configured).
    ///
    /// The final program — after rewriting — is passed through the
    /// [bytecode verifier](crate::verify); a malformed program is a host
    /// bug and panics here. Use [`Vm::try_new`] to inspect the failures
    /// instead.
    pub fn new(program: Program, config: VmConfig) -> Self {
        match Self::try_new(program, config) {
            Ok(vm) => vm,
            Err(errors) => {
                let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
                panic!("program failed verification:\n  {}", msgs.join("\n  "));
            }
        }
    }

    /// Like [`Vm::new`] but returns the verifier's findings instead of
    /// panicking.
    pub fn try_new(
        program: Program,
        config: VmConfig,
    ) -> Result<Self, Vec<crate::verify::VerifyError>> {
        let program = if config.rewrite { rewrite_program(&program) } else { program };
        crate::verify::verify_program(&program)?;
        Ok(Self::new_unverified(program, config))
    }

    /// Construct without verification (the program must already have been
    /// rewritten if the config asks for revocation support).
    fn new_unverified(program: Program, config: VmConfig) -> Self {
        let mut heap = Heap::new(program.n_statics as usize);
        for &s in &program.volatile_statics {
            heap.declare_static_volatile(s).expect("volatile static in range");
        }
        let bg = match config.detection {
            DetectionStrategy::Background { period } => period,
            DetectionStrategy::AtAcquisition => u64::MAX,
        };
        let elision = config.elide_barriers.then(|| crate::analysis::analyze(&program));
        Vm {
            program,
            heap,
            monitors: MonitorTable::new(config.queue_discipline),
            threads: Vec::new(),
            run_queue: VecDeque::new(),
            clock: 0,
            quantum_left: 0,
            rng: SmallRng::seed_from_u64(config.seed),
            jmm: JmmGuard::new(),
            graph: WaitsForGraph::new(),
            config,
            global: Metrics::new(),
            next_acq_id: 0,
            output: Vec::new(),
            last_dispatched: None,
            steps: 0,
            next_background_scan: bg,
            trace: Vec::new(),
            sink: None,
            elision,
            join_waiters: std::collections::BTreeMap::new(),
            policy: config.scheduler.policy(),
            probe: None,
            rng_draws: 0,
            governor: Governor::new(),
        }
    }

    /// Replace the scheduling policy (e.g. with a
    /// [`Scripted`](crate::sched::Scripted) replay policy). The built-in
    /// policies come from `config.scheduler`.
    pub fn set_schedule_policy(&mut self, policy: Box<dyn SchedulePolicy>) {
        self.policy = policy;
    }

    /// The barrier-elision table, if the analysis ran (diagnostics).
    pub fn elision_table(&self) -> Option<&crate::analysis::ElisionTable> {
        self.elision.as_ref()
    }

    /// The rewritten program actually executing (for tests inspecting
    /// injected scopes).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Direct heap access (setting up benchmark data structures from the
    /// host before the run, and inspecting results after).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// Read-only heap access.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Monitor id → human name, for analysis reports.
    ///
    /// Monitor ids in the event stream are heap `ObjRef`s; names come
    /// from the program's class-name table (the assembler's
    /// `.class <tag> <name>` directive or `ProgramBuilder::class_name`).
    /// A lone instance of a named class gets the bare class name;
    /// multiple instances are numbered in allocation order (`name#0`,
    /// `name#1`, …), which is deterministic under the deterministic
    /// scheduler. Objects of unnamed classes are omitted.
    pub fn monitor_names(&self) -> std::collections::BTreeMap<u64, String> {
        let mut totals: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
        let tag_of =
            |i: usize| self.heap.object(crate::value::ObjRef(i as u32)).ok().map(|o| o.class_tag);
        for i in 0..self.heap.object_count() {
            if let Some(tag) = tag_of(i) {
                if self.program.class_names.contains_key(&tag) {
                    *totals.entry(tag).or_insert(0) += 1;
                }
            }
        }
        let mut seen: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
        let mut names = std::collections::BTreeMap::new();
        for i in 0..self.heap.object_count() {
            let Some(tag) = tag_of(i) else { continue };
            let Some(base) = self.program.class_names.get(&tag) else { continue };
            let ordinal = seen.entry(tag).or_insert(0);
            let name = if totals[&tag] == 1 { base.clone() } else { format!("{base}#{ordinal}") };
            *ordinal += 1;
            names.insert(i as u64, name);
        }
        names
    }

    /// Spawn a thread executing `method(args…)` at `priority`.
    pub fn spawn(
        &mut self,
        name: &str,
        method: MethodId,
        args: Vec<Value>,
        priority: Priority,
    ) -> ThreadId {
        let m = self.program.method(method);
        assert_eq!(args.len(), m.params as usize, "wrong argument count for {}", m.name);
        let locals = m.locals;
        let id = ThreadId(self.threads.len() as u32);
        let t = VmThread::new(id, name.to_string(), priority, method, locals, args);
        self.threads.push(t);
        self.run_queue.push_back(id);
        id
    }

    pub(crate) fn emit_trace(&mut self, event: TraceEvent) {
        if self.config.trace {
            self.trace.push(TraceRecord { at: self.clock, event });
        }
        if let Some(sink) = &self.sink {
            sink.record(event.to_obs(self.clock));
        }
    }

    /// Like [`Vm::emit_trace`] but also carries the event's duration into
    /// the obs stream (rollbacks: how many virtual ticks the restore
    /// charged). The public [`TraceEvent`] stays duration-free.
    pub(crate) fn emit_trace_dur(&mut self, event: TraceEvent, duration: u64) {
        if self.config.trace {
            self.trace.push(TraceRecord { at: self.clock, event });
        }
        if let Some(sink) = &self.sink {
            let mut ev = event.to_obs(self.clock);
            if let revmon_obs::EventKind::Rollback { duration: d, .. } = &mut ev.kind {
                *d = duration;
            }
            sink.record(ev);
        }
    }

    /// Attach an observability sink. Every monitor event the VM produces
    /// is forwarded to it as a [`revmon_obs::Event`] stamped with the
    /// virtual clock — use [`revmon_obs::TsUnit::VirtualTicks`] when
    /// constructing the sink. Works independently of `config.trace`.
    pub fn attach_sink(&mut self, sink: std::sync::Arc<revmon_obs::EventSink>) {
        self.sink = Some(sink);
    }

    /// Detach and return the sink, if one was attached.
    pub fn detach_sink(&mut self) -> Option<std::sync::Arc<revmon_obs::EventSink>> {
        self.sink.take()
    }

    /// Consume the recorded trace.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.trace)
    }

    /// Charge `ticks` to the virtual clock and the current quantum.
    #[inline]
    pub(crate) fn charge(&mut self, ticks: u64) {
        self.clock += ticks;
        self.quantum_left = self.quantum_left.saturating_sub(ticks);
    }

    pub(crate) fn thread(&self, tid: ThreadId) -> &VmThread {
        &self.threads[tid.index()]
    }

    pub(crate) fn thread_mut(&mut self, tid: ThreadId) -> &mut VmThread {
        &mut self.threads[tid.index()]
    }

    /// Make a thread runnable (push to run queue and set `Ready`).
    /// Idempotent: a thread already queued keeps its position, so the run
    /// queue holds at most one entry per thread.
    pub(crate) fn make_ready(&mut self, tid: ThreadId) {
        self.thread_mut(tid).state = ThreadState::Ready;
        if !self.run_queue.contains(&tid) {
            self.run_queue.push_back(tid);
        }
    }

    /// Run until every thread terminates. Returns the report, or an error
    /// if the machine faults or stalls.
    pub fn run(&mut self) -> Result<RunReport, VmError> {
        while self.run_round()? != RoundOutcome::Done {}
        Ok(self.report())
    }

    /// Execute one scheduling round: pick a runnable thread and dispatch
    /// it for one time slice (or advance the clock to the earliest
    /// sleeper when nothing is runnable). This is [`Vm::run`]'s loop body,
    /// exposed so external drivers — the `revmon-explore` model checker —
    /// can interpose state checks between slices.
    pub fn run_round(&mut self) -> Result<RoundOutcome, VmError> {
        self.background_scan_if_due()?;
        self.wake_sleepers();
        let Some(tid) = self.pick_next() else {
            // No runnable threads: advance to the earliest sleeper,
            // finish, or report a stall.
            if let Some(wake) = self
                .threads
                .iter()
                .filter_map(|t| match t.state {
                    ThreadState::Sleeping(until) => Some(until),
                    _ => None,
                })
                .min()
            {
                self.clock = self.clock.max(wake);
                self.wake_sleepers();
                return Ok(RoundOutcome::AdvancedClock);
            }
            if self.threads.iter().all(|t| t.is_terminated()) {
                return Ok(RoundOutcome::Done);
            }
            let blocked: Vec<ThreadId> =
                self.threads.iter().filter(|t| !t.is_terminated()).map(|t| t.id).collect();
            return Err(VmError::Stalled(blocked));
        };
        self.dispatch(tid)?;
        Ok(RoundOutcome::Ran(tid))
    }

    /// Produce the report for the current machine state.
    pub fn report(&self) -> RunReport {
        let mut global = self.global;
        let threads: Vec<ThreadReport> = self
            .threads
            .iter()
            .map(|t| {
                global.merge(&t.metrics);
                ThreadReport {
                    id: t.id,
                    name: t.name.clone(),
                    priority: t.base_priority,
                    start_time: t.start_time.unwrap_or(0),
                    end_time: t.end_time.unwrap_or(self.clock),
                    metrics: t.metrics,
                    uncaught: t.uncaught,
                }
            })
            .collect();
        let mut monitors: Vec<MonitorReport> = self
            .monitors
            .iter()
            .map(|(&object, m)| MonitorReport {
                object,
                acquires: m.acquires,
                contended: m.contended,
                peak_queue: m.peak_queue,
            })
            .collect();
        // Sorted by contention, with the object reference as a total-order
        // tie-break so report order is deterministic.
        monitors.sort_by_key(|m| (std::cmp::Reverse((m.contended, m.acquires)), m.object));
        RunReport { clock: self.clock, threads, global, output: self.output.clone(), monitors }
    }

    /// Pick the next thread to dispatch: prune stale queue entries
    /// (threads re-queued then blocked again), present the Ready threads
    /// to the [`SchedulePolicy`] in queue order, and dequeue its choice.
    fn pick_next(&mut self) -> Option<ThreadId> {
        let threads = &self.threads;
        self.run_queue.retain(|tid| threads[tid.index()].state == ThreadState::Ready);
        if self.run_queue.is_empty() {
            return None;
        }
        let candidates: Vec<Candidate> = self
            .run_queue
            .iter()
            .map(|&tid| Candidate {
                tid,
                effective_priority: threads[tid.index()].effective_priority,
                base_priority: threads[tid.index()].base_priority,
            })
            .collect();
        let ctx = SchedContext { last_dispatched: self.last_dispatched, clock: self.clock };
        let idx = self.policy.choose(&candidates, &ctx).min(candidates.len() - 1);
        self.run_queue.remove(idx)
    }

    fn wake_sleepers(&mut self) {
        let now = self.clock;
        let due: Vec<ThreadId> = self
            .threads
            .iter()
            .filter(|t| matches!(t.state, ThreadState::Sleeping(u) if u <= now))
            .map(|t| t.id)
            .collect();
        for tid in due {
            self.make_ready(tid);
        }
    }

    /// Run `tid` until it blocks, sleeps, terminates, or exhausts its
    /// quantum at a yield point.
    fn dispatch(&mut self, tid: ThreadId) -> Result<(), VmError> {
        if self.last_dispatched != Some(tid) {
            self.charge(self.config.cost.context_switch);
            self.thread_mut(tid).metrics.context_switches += 1;
        }
        self.last_dispatched = Some(tid);
        self.quantum_left = self.config.cost.quantum;
        {
            let clock = self.clock;
            let t = self.thread_mut(tid);
            t.state = ThreadState::Running;
            if t.start_time.is_none() {
                t.start_time = Some(clock);
            }
        }
        // Dispatch start is a yield point: act on pending revocations.
        let mut at_yield_point = true;
        loop {
            if at_yield_point && self.thread(tid).pending_revoke.is_some() {
                self.perform_revocation(tid)?;
                if self.thread(tid).state != ThreadState::Running {
                    return Ok(()); // rollback left it re-acquiring
                }
            }
            if at_yield_point && self.quantum_left == 0 {
                // Time slice over: rotate.
                self.make_ready(tid);
                return Ok(());
            }
            self.steps += 1;
            if self.config.max_steps != 0 && self.steps > self.config.max_steps {
                return Err(VmError::StepLimit(self.config.max_steps));
            }
            match self.step(tid)? {
                StepOutcome::Continue { yield_point } => at_yield_point = yield_point,
                StepOutcome::Descheduled => return Ok(()),
                StepOutcome::Terminated => {
                    self.thread_mut(tid).end_time = Some(self.clock);
                    // Wake any joiners.
                    if let Some(waiters) = self.join_waiters.remove(&tid) {
                        for w in waiters {
                            self.make_ready(w);
                        }
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Background inversion detection (§1.1's "periodically in the
    /// background" option): scan all contended monitors for a waiter with
    /// priority above the deposited holder priority.
    fn background_scan_if_due(&mut self) -> Result<(), VmError> {
        let DetectionStrategy::Background { period } = self.config.detection else {
            return Ok(());
        };
        if self.clock < self.next_background_scan {
            return Ok(());
        }
        self.next_background_scan = self.clock + period;
        let contended: Vec<(crate::value::ObjRef, ThreadId, Priority)> = self
            .monitors
            .iter()
            .filter_map(|(&obj, m)| {
                let owner = m.owner?;
                let top = m.queue.max_waiting_priority()?;
                (top > m.holder_priority).then_some((obj, owner, top))
            })
            .collect();
        for (obj, owner, _top) in contended {
            // Re-use the acquisition-time request path; requester identity
            // is synthesized from the queue's best waiter.
            let by = self
                .monitors
                .get(obj)
                .and_then(|m| m.queue.iter().next().copied())
                .unwrap_or(owner);
            self.request_revocation(by, owner, obj)?;
        }
        Ok(())
    }
}

impl Vm {
    // --- read-only introspection (exploration / invariant checking) ----

    /// Current virtual-clock value.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// All green threads, indexed by [`ThreadId`].
    pub fn vm_threads(&self) -> &[VmThread] {
        &self.threads
    }

    /// The monitor table (every object ever synchronized on).
    pub fn monitor_table(&self) -> &MonitorTable {
        &self.monitors
    }

    /// The JMM-consistency guard's speculative-write map.
    pub fn jmm_guard(&self) -> &JmmGuard {
        &self.jmm
    }

    /// The run queue's current contents, front first.
    pub fn run_queue_snapshot(&self) -> Vec<ThreadId> {
        self.run_queue.iter().copied().collect()
    }

    /// Number of threads currently queued to run. A scheduling round can
    /// only present a choice when this is at least 2, which lets callers
    /// skip per-round work (e.g. state fingerprinting) on the long
    /// single-runnable stretches of a program.
    pub fn run_queue_len(&self) -> usize {
        self.run_queue.len()
    }

    /// The thread holding / last holding a time slice.
    pub fn last_dispatched(&self) -> Option<ThreadId> {
        self.last_dispatched
    }

    /// Values emitted so far via `Native(Emit/Print)`.
    pub fn output(&self) -> &[Value] {
        &self.output
    }

    /// Number of `RandInt` draws performed so far.
    pub fn rng_draws(&self) -> u64 {
        self.rng_draws
    }

    /// The configuration this VM was built with.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// The revocation governor's state (introspection for the explore
    /// bounded-revocation invariant and the CLI stats report).
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// A deterministic snapshot of the live wait-for graph: every
    /// thread→monitor→holder blocking edge, annotated with effective
    /// priorities and the governor's revocation streak for the
    /// `(monitor, holder)` pair. Render with
    /// [`GraphSnapshot::to_dot`](revmon_obs::GraphSnapshot::to_dot) /
    /// [`to_json`](revmon_obs::GraphSnapshot::to_json), using
    /// [`Vm::monitor_names`] for labels.
    pub fn wait_graph_snapshot(&self) -> revmon_obs::GraphSnapshot {
        let prio = |tid: revmon_core::ThreadId| {
            self.threads.get(tid.index()).map(|t| t.effective_priority.0).unwrap_or(0)
        };
        let edges = self
            .graph
            .edges()
            .map(|e| revmon_obs::GraphEdge {
                waiter: e.waiter.0 as u64,
                waiter_priority: prio(e.waiter),
                monitor: e.monitor.0 as u64,
                holder: e.owner.0 as u64,
                holder_priority: prio(e.owner),
                governor_streak: self.governor.streak(e.monitor.0 as u64, e.owner.0 as u64),
            })
            .collect();
        revmon_obs::GraphSnapshot::new(edges)
    }
}

/// What one scheduling round did (see [`Vm::run_round`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundOutcome {
    /// A thread was dispatched for one time slice.
    Ran(ThreadId),
    /// Nothing was runnable: the clock jumped to the earliest sleeper's
    /// deadline.
    AdvancedClock,
    /// Every thread has terminated.
    Done,
}

/// What one interpreter step produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// Keep running this thread; `yield_point` marks quantum/revocation
    /// check sites.
    Continue {
        /// Whether the executed instruction was a yield point.
        yield_point: bool,
    },
    /// The thread blocked, slept, or was otherwise descheduled (state
    /// already updated).
    Descheduled,
    /// The thread finished its root method.
    Terminated,
}
