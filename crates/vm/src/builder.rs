//! Program construction DSL.
//!
//! Tests, examples and the benchmark generator author "Java-like" programs
//! through [`ProgramBuilder`] / [`MethodBuilder`]: labels with fixups,
//! structured synchronized blocks (which record the [`SyncRegion`]
//! metadata the rewrite pass consumes), and structured try/catch/finally.
//!
//! ```
//! use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
//!
//! let mut pb = ProgramBuilder::new();
//! pb.statics(1);
//! let run = pb.declare_method("run", 1); // param 0: the lock object
//! let mut b = MethodBuilder::new(1, 2);
//! b.sync_on_local(0, |b| {
//!     b.const_i(42);
//!     b.put_static(0);
//! });
//! b.ret_void();
//! pb.implement(run, b);
//! let program = pb.finish();
//! assert_eq!(program.method(run).sync_regions.len(), 1);
//! ```

use crate::bytecode::{CatchKind, Handler, Insn, Method, MethodId, NativeOp, Program, SyncRegion};
use crate::value::Value;

/// A forward-referenceable code label.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Label(usize);

/// Builds one method.
#[derive(Debug)]
pub struct MethodBuilder {
    params: u16,
    locals: u16,
    code: Vec<Insn>,
    handlers: Vec<Handler>,
    sync_regions: Vec<SyncRegion>,
    synchronized: bool,
    /// label -> Some(pc) once placed.
    labels: Vec<Option<u32>>,
    /// (instruction index, label) to patch at finish.
    fixups: Vec<(usize, Label)>,
}

impl MethodBuilder {
    /// A builder for a method with `params` parameters and `locals` total
    /// local slots (`locals >= params`).
    pub fn new(params: u16, locals: u16) -> Self {
        assert!(locals >= params, "locals must include parameter slots");
        MethodBuilder {
            params,
            locals,
            code: Vec::new(),
            handlers: Vec::new(),
            sync_regions: Vec::new(),
            synchronized: false,
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Mark the method `synchronized` (on `this` = local 0). The rewrite
    /// pass will wrap it (§3.1.1).
    pub fn set_synchronized(&mut self) {
        assert!(self.params >= 1, "synchronized methods need a `this` parameter");
        self.synchronized = true;
    }

    /// Current pc (next instruction index).
    pub fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    /// Create an unplaced label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Place `label` at the current pc.
    pub fn place(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label placed twice");
        self.labels[label.0] = Some(self.pc());
    }

    /// Create a label placed at the current pc (loop heads).
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.place(l);
        l
    }

    fn emit(&mut self, i: Insn) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn emit_branch(&mut self, label: Label, make: fn(u32) -> Insn) {
        let at = self.emit(make(u32::MAX));
        self.fixups.push((at, label));
    }

    // --- straight-line emitters ------------------------------------------

    /// Push an integer constant.
    pub fn const_i(&mut self, v: i64) {
        self.emit(Insn::Const(Value::Int(v)));
    }
    /// Push `null`.
    pub fn const_null(&mut self) {
        self.emit(Insn::Const(Value::Null));
    }
    /// Push local `i`.
    pub fn load(&mut self, i: u16) {
        assert!(i < self.locals, "local {i} out of range");
        self.emit(Insn::Load(i));
    }
    /// Pop into local `i`.
    pub fn store(&mut self, i: u16) {
        assert!(i < self.locals, "local {i} out of range");
        self.emit(Insn::Store(i));
    }
    /// Duplicate top of stack.
    pub fn dup(&mut self) {
        self.emit(Insn::Dup);
    }
    /// Discard top of stack.
    pub fn pop(&mut self) {
        self.emit(Insn::Pop);
    }
    /// Swap top two stack slots.
    pub fn swap(&mut self) {
        self.emit(Insn::Swap);
    }
    /// Integer add.
    pub fn add(&mut self) {
        self.emit(Insn::Add);
    }
    /// Integer subtract.
    pub fn sub(&mut self) {
        self.emit(Insn::Sub);
    }
    /// Integer multiply.
    pub fn mul(&mut self) {
        self.emit(Insn::Mul);
    }
    /// Integer divide.
    pub fn div(&mut self) {
        self.emit(Insn::Div);
    }
    /// Integer remainder.
    pub fn rem(&mut self) {
        self.emit(Insn::Rem);
    }
    /// Integer negate.
    pub fn neg(&mut self) {
        self.emit(Insn::Neg);
    }

    // --- branches -----------------------------------------------------------

    /// Unconditional jump.
    pub fn goto(&mut self, l: Label) {
        self.emit_branch(l, Insn::Goto);
    }
    /// Jump if popped value is zero/null.
    pub fn if_zero(&mut self, l: Label) {
        self.emit_branch(l, Insn::IfZero);
    }
    /// Jump if popped value is non-zero.
    pub fn if_non_zero(&mut self, l: Label) {
        self.emit_branch(l, Insn::IfNonZero);
    }
    /// Pop b, a; jump if `a < b`.
    pub fn if_lt(&mut self, l: Label) {
        self.emit_branch(l, Insn::IfLt);
    }
    /// Pop b, a; jump if `a >= b`.
    pub fn if_ge(&mut self, l: Label) {
        self.emit_branch(l, Insn::IfGe);
    }
    /// Pop b, a; jump if `a == b`.
    pub fn if_eq(&mut self, l: Label) {
        self.emit_branch(l, Insn::IfEq);
    }
    /// Pop b, a; jump if `a != b`.
    pub fn if_ne(&mut self, l: Label) {
        self.emit_branch(l, Insn::IfNe);
    }

    // --- heap ------------------------------------------------------------------

    /// Allocate a plain object.
    pub fn new_object(&mut self, class_tag: u32, fields: u16) {
        self.emit(Insn::New { class_tag, fields, volatile_mask: 0 });
    }
    /// Allocate an object with volatile fields per `mask`.
    pub fn new_object_volatile(&mut self, class_tag: u32, fields: u16, mask: u64) {
        self.emit(Insn::New { class_tag, fields, volatile_mask: mask });
    }
    /// Pop length, push new array ref.
    pub fn new_array(&mut self) {
        self.emit(Insn::NewArray);
    }
    /// Pop ref, push field.
    pub fn get_field(&mut self, off: u16) {
        self.emit(Insn::GetField(off));
    }
    /// Pop value, pop ref, store field.
    pub fn put_field(&mut self, off: u16) {
        self.emit(Insn::PutField(off));
    }
    /// Pop index, pop ref, push element.
    pub fn aload(&mut self) {
        self.emit(Insn::ALoad);
    }
    /// Pop value, index, ref; store element.
    pub fn astore(&mut self) {
        self.emit(Insn::AStore);
    }
    /// Push static slot.
    pub fn get_static(&mut self, s: u16) {
        self.emit(Insn::GetStatic(s));
    }
    /// Pop into static slot.
    pub fn put_static(&mut self, s: u16) {
        self.emit(Insn::PutStatic(s));
    }
    /// Pop ref, push length.
    pub fn array_len(&mut self) {
        self.emit(Insn::ArrayLen);
    }

    // --- monitors / threading -----------------------------------------------------

    /// Raw `monitorenter` on the popped ref. Prefer
    /// [`sync_on_local`](Self::sync_on_local), which records the region
    /// metadata the rewrite pass needs.
    pub fn monitor_enter_raw(&mut self) {
        self.emit(Insn::MonitorEnter);
    }
    /// Raw `monitorexit` on the popped ref.
    pub fn monitor_exit_raw(&mut self) {
        self.emit(Insn::MonitorExit);
    }

    /// Structured `synchronized (local) { body }`. Emits the enter/exit
    /// bracketing and records the [`SyncRegion`].
    pub fn sync_on_local(&mut self, local: u16, body: impl FnOnce(&mut Self)) {
        self.load(local);
        let enter = self.pc();
        self.emit(Insn::MonitorEnter);
        body(self);
        self.load(local);
        self.emit(Insn::MonitorExit);
        let exit = self.pc();
        self.sync_regions.push(SyncRegion { enter, exit });
    }

    /// Structured counted loop: `for local := 0; local < bound(); local++
    /// { body }`. `bound` pushes the (recomputed each iteration) bound;
    /// the loop back-edge is a yield point.
    pub fn for_loop(
        &mut self,
        counter: u16,
        bound: impl Fn(&mut Self),
        body: impl FnOnce(&mut Self),
    ) {
        self.const_i(0);
        self.store(counter);
        let top = self.here();
        self.load(counter);
        bound(self);
        let done = self.new_label();
        self.if_ge(done);
        body(self);
        self.load(counter);
        self.const_i(1);
        self.add();
        self.store(counter);
        self.goto(top);
        self.place(done);
    }

    /// Structured counted loop with a constant bound.
    pub fn repeat(&mut self, counter: u16, n: i64, body: impl FnOnce(&mut Self)) {
        self.for_loop(counter, |b| b.const_i(n), body);
    }

    /// Structured `if (cond != 0) { then } else { otherwise }`. `cond`
    /// must push exactly one value.
    pub fn if_else(
        &mut self,
        cond: impl FnOnce(&mut Self),
        then: impl FnOnce(&mut Self),
        otherwise: impl FnOnce(&mut Self),
    ) {
        cond(self);
        let else_l = self.new_label();
        self.if_zero(else_l);
        then(self);
        let end = self.new_label();
        self.goto(end);
        self.place(else_l);
        otherwise(self);
        self.place(end);
    }

    /// Structured `while (cond != 0) { body }` (back-edge is a yield
    /// point). `cond` must push exactly one value.
    pub fn while_loop(&mut self, cond: impl Fn(&mut Self), body: impl FnOnce(&mut Self)) {
        let top = self.here();
        cond(self);
        let done = self.new_label();
        self.if_zero(done);
        body(self);
        self.goto(top);
        self.place(done);
    }

    /// `statics[s] += k` — the ubiquitous shared-counter idiom.
    pub fn add_static(&mut self, s: u16, k: i64) {
        self.get_static(s);
        self.const_i(k);
        self.add();
        self.put_static(s);
    }

    /// `Object.wait()` on the popped ref.
    pub fn wait_on_local(&mut self, local: u16) {
        self.load(local);
        self.emit(Insn::Wait);
    }
    /// `Object.notify()` on the popped ref.
    pub fn notify_local(&mut self, local: u16) {
        self.load(local);
        self.emit(Insn::Notify);
    }
    /// `Object.notifyAll()` on the popped ref.
    pub fn notify_all_local(&mut self, local: u16) {
        self.load(local);
        self.emit(Insn::NotifyAll);
    }

    /// Explicit yield point.
    pub fn yield_point(&mut self) {
        self.emit(Insn::Yield);
    }
    /// Pop n; sleep n ticks.
    pub fn sleep(&mut self) {
        self.emit(Insn::Sleep);
    }
    /// Push current virtual time.
    pub fn now(&mut self) {
        self.emit(Insn::Now);
    }
    /// Pop bound; push uniform random int in `[0, bound)`.
    pub fn rand_int(&mut self) {
        self.emit(Insn::RandInt);
    }
    /// Irrevocable native call.
    pub fn native(&mut self, op: NativeOp) {
        self.emit(Insn::Native(op));
    }
    /// Pop n; charge n ticks of monitor-neutral compute.
    pub fn work(&mut self) {
        self.emit(Insn::Work);
    }

    // --- calls / returns ---------------------------------------------------------------

    /// Call `m` (arguments already pushed, last on top).
    pub fn call(&mut self, m: MethodId) {
        self.emit(Insn::Call(m));
    }
    /// Spawn a thread running `m` (args then priority already pushed);
    /// pushes the new thread id.
    pub fn spawn(&mut self, m: MethodId) {
        self.emit(Insn::Spawn(m));
    }
    /// Pop a thread id and join it.
    pub fn join(&mut self) {
        self.emit(Insn::Join);
    }
    /// Return popped value.
    pub fn ret(&mut self) {
        self.emit(Insn::Ret);
    }
    /// Return void.
    pub fn ret_void(&mut self) {
        self.emit(Insn::RetVoid);
    }

    // --- exceptions -----------------------------------------------------------------------

    /// Pop exception ref and throw.
    pub fn throw(&mut self) {
        self.emit(Insn::Throw);
    }

    /// Allocate-and-throw an exception object with `class_tag`.
    pub fn throw_new(&mut self, class_tag: u32) {
        self.new_object(class_tag, 0);
        self.throw();
    }

    /// Structured `try { body } catch (kind) { handler }`.
    ///
    /// Handler-entry convention follows the JVM: the operand stack is
    /// cleared and the exception object pushed. The handler body receives
    /// it on top of the stack.
    pub fn try_catch(
        &mut self,
        kind: CatchKind,
        body: impl FnOnce(&mut Self),
        handler: impl FnOnce(&mut Self),
    ) {
        assert!(
            kind != CatchKind::Rollback,
            "rollback handlers are injected by the rewrite pass only"
        );
        let start = self.pc();
        body(self);
        let end = self.pc();
        let after = self.new_label();
        self.goto(after);
        let target = self.pc();
        handler(self);
        self.place(after);
        self.handlers.push(Handler { start, end, target, kind });
    }

    /// Structured `try { body } finally { cleanup }` (cleanup duplicated
    /// on the normal and exceptional paths, as javac compiles it). Uses
    /// local `scratch` to hold the in-flight exception.
    pub fn try_finally(
        &mut self,
        scratch: u16,
        body: impl FnOnce(&mut Self),
        cleanup: impl Fn(&mut Self),
    ) {
        let start = self.pc();
        body(self);
        let end = self.pc();
        cleanup(self);
        let after = self.new_label();
        self.goto(after);
        let target = self.pc();
        // exceptional path: stash exception, run cleanup, rethrow
        self.store(scratch);
        cleanup(self);
        self.load(scratch);
        self.throw();
        self.place(after);
        self.handlers.push(Handler { start, end, target, kind: CatchKind::All });
    }

    /// Register a raw handler entry (advanced use).
    pub fn raw_handler(&mut self, h: Handler) {
        self.handlers.push(h);
    }

    fn finish(mut self, name: &str) -> Method {
        for (at, label) in std::mem::take(&mut self.fixups) {
            let pc = self.labels[label.0].expect("unplaced label");
            self.code[at] = match self.code[at] {
                Insn::Goto(_) => Insn::Goto(pc),
                Insn::IfZero(_) => Insn::IfZero(pc),
                Insn::IfNonZero(_) => Insn::IfNonZero(pc),
                Insn::IfLt(_) => Insn::IfLt(pc),
                Insn::IfGe(_) => Insn::IfGe(pc),
                Insn::IfEq(_) => Insn::IfEq(pc),
                Insn::IfNe(_) => Insn::IfNe(pc),
                other => panic!("fixup on non-branch {other:?}"),
            };
        }
        Method {
            name: name.to_string(),
            params: self.params,
            locals: self.locals,
            code: self.code,
            handlers: self.handlers,
            sync_regions: self.sync_regions,
            synchronized: self.synchronized,
            rollback_scopes: vec![],
        }
    }
}

/// Builds a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    methods: Vec<Option<Method>>,
    names: Vec<String>,
    n_statics: u32,
    volatile_statics: Vec<u32>,
    class_names: std::collections::BTreeMap<u32, String>,
}

impl ProgramBuilder {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Give class tag `tag` a human name; monitors on its instances are
    /// labeled with it in analysis reports.
    pub fn class_name(&mut self, tag: u32, name: &str) {
        self.class_names.insert(tag, name.to_string());
    }

    /// Declare `n` static slots.
    pub fn statics(&mut self, n: u32) {
        self.n_statics = self.n_statics.max(n);
    }

    /// Flag static slot `s` volatile.
    pub fn volatile_static(&mut self, s: u32) {
        self.statics(s + 1);
        self.volatile_statics.push(s);
    }

    /// Declare a method (callable before its body exists, enabling
    /// mutual recursion). `params` is recorded for documentation; the
    /// authoritative count comes from the [`MethodBuilder`].
    pub fn declare_method(&mut self, name: &str, _params: u16) -> MethodId {
        self.methods.push(None);
        self.names.push(name.to_string());
        MethodId((self.methods.len() - 1) as u32)
    }

    /// Install the body for a declared method.
    pub fn implement(&mut self, id: MethodId, b: MethodBuilder) {
        let name = self.names[id.index()].clone();
        assert!(self.methods[id.index()].is_none(), "method {name} implemented twice");
        self.methods[id.index()] = Some(b.finish(&name));
    }

    /// Declare + implement in one step.
    pub fn add_method(&mut self, name: &str, b: MethodBuilder) -> MethodId {
        let id = self.declare_method(name, b.params);
        self.implement(id, b);
        id
    }

    /// Produce the program. Panics if any declared method lacks a body.
    pub fn finish(self) -> Program {
        let methods = self
            .methods
            .into_iter()
            .enumerate()
            .map(|(i, m)| m.unwrap_or_else(|| panic!("method {} has no body", self.names[i])))
            .collect();
        Program {
            methods,
            n_statics: self.n_statics,
            volatile_statics: self.volatile_statics,
            class_names: self.class_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_patch() {
        let mut b = MethodBuilder::new(0, 1);
        b.const_i(3);
        b.store(0);
        let top = b.here();
        b.load(0);
        let done = b.new_label();
        b.if_zero(done);
        b.load(0);
        b.const_i(1);
        b.sub();
        b.store(0);
        b.goto(top);
        b.place(done);
        b.ret_void();
        let mut pb = ProgramBuilder::new();
        let id = pb.add_method("loop", b);
        let p = pb.finish();
        let code = &p.method(id).code;
        assert!(matches!(code[3], Insn::IfZero(t) if t as usize == code.len() - 1));
        assert!(matches!(code[8], Insn::Goto(2)));
    }

    #[test]
    fn sync_block_records_region() {
        let mut b = MethodBuilder::new(1, 1);
        b.sync_on_local(0, |b| {
            b.const_i(1);
            b.pop();
        });
        b.ret_void();
        let mut pb = ProgramBuilder::new();
        let id = pb.add_method("s", b);
        let p = pb.finish();
        let m = p.method(id);
        assert_eq!(m.sync_regions.len(), 1);
        let r = m.sync_regions[0];
        assert!(matches!(m.code[r.enter as usize], Insn::MonitorEnter));
        assert!(matches!(m.code[(r.exit - 1) as usize], Insn::MonitorExit));
    }

    #[test]
    fn nested_sync_blocks_record_both_regions() {
        let mut b = MethodBuilder::new(2, 2);
        b.sync_on_local(0, |b| {
            b.sync_on_local(1, |b| {
                b.const_i(1);
                b.pop();
            });
        });
        b.ret_void();
        let mut pb = ProgramBuilder::new();
        let id = pb.add_method("n", b);
        let p = pb.finish();
        let m = p.method(id);
        assert_eq!(m.sync_regions.len(), 2);
        // inner recorded first (its body closes first)
        let (inner, outer) = (m.sync_regions[0], m.sync_regions[1]);
        assert!(outer.enter < inner.enter && inner.exit < outer.exit);
    }

    #[test]
    fn try_catch_registers_handler_and_skips_it_normally() {
        let mut b = MethodBuilder::new(0, 0);
        b.try_catch(
            CatchKind::Class(7),
            |b| {
                b.const_i(1);
                b.pop();
            },
            |b| {
                b.pop(); // discard exception object
            },
        );
        b.ret_void();
        let mut pb = ProgramBuilder::new();
        let id = pb.add_method("tc", b);
        let p = pb.finish();
        let m = p.method(id);
        assert_eq!(m.handlers.len(), 1);
        let h = m.handlers[0];
        assert_eq!(h.kind, CatchKind::Class(7));
        assert!(h.target >= h.end);
    }

    #[test]
    #[should_panic(expected = "rollback handlers are injected")]
    fn user_code_cannot_catch_rollback() {
        let mut b = MethodBuilder::new(0, 0);
        b.try_catch(CatchKind::Rollback, |_| {}, |_| {});
    }

    #[test]
    #[should_panic(expected = "unplaced label")]
    fn unplaced_label_panics_at_finish() {
        let mut b = MethodBuilder::new(0, 0);
        let l = b.new_label();
        b.goto(l);
        let mut pb = ProgramBuilder::new();
        pb.add_method("bad", b);
    }

    #[test]
    fn structured_for_loop_counts() {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let m = pb.declare_method("m", 0);
        let mut b = MethodBuilder::new(0, 1);
        b.repeat(0, 10, |b| b.add_static(0, 2));
        b.ret_void();
        pb.implement(m, b);
        let mut vm = crate::vm::Vm::new(pb.finish(), crate::vm::VmConfig::unmodified());
        vm.spawn("t", m, vec![], revmon_core::Priority::NORM);
        vm.run().unwrap();
        assert_eq!(vm.read_static(0).unwrap(), Value::Int(20));
    }

    #[test]
    fn structured_if_else_branches() {
        let mut pb = ProgramBuilder::new();
        pb.statics(2);
        let m = pb.declare_method("m", 1);
        let mut b = MethodBuilder::new(1, 1);
        b.if_else(|b| b.load(0), |b| b.add_static(0, 1), |b| b.add_static(1, 1));
        b.ret_void();
        pb.implement(m, b);
        let p = pb.finish();
        for (arg, s0, s1) in [(1i64, 1i64, 0i64), (0, 0, 1)] {
            let mut vm = crate::vm::Vm::new(p.clone(), crate::vm::VmConfig::unmodified());
            vm.spawn("t", m, vec![Value::Int(arg)], revmon_core::Priority::NORM);
            vm.run().unwrap();
            // untouched statics read as Null, which as_int treats as 0
            assert_eq!(vm.read_static(0).unwrap().as_int().unwrap(), s0);
            assert_eq!(vm.read_static(1).unwrap().as_int().unwrap(), s1);
        }
    }

    #[test]
    fn structured_while_loop_runs_until_false() {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let m = pb.declare_method("m", 0);
        let mut b = MethodBuilder::new(0, 1);
        b.const_i(5);
        b.store(0);
        b.while_loop(
            |b| b.load(0),
            |b| {
                b.add_static(0, 1);
                b.load(0);
                b.const_i(1);
                b.sub();
                b.store(0);
            },
        );
        b.ret_void();
        pb.implement(m, b);
        let mut vm = crate::vm::Vm::new(pb.finish(), crate::vm::VmConfig::unmodified());
        vm.spawn("t", m, vec![], revmon_core::Priority::NORM);
        vm.run().unwrap();
        assert_eq!(vm.read_static(0).unwrap(), Value::Int(5));
    }

    #[test]
    fn volatile_static_declares_slot() {
        let mut pb = ProgramBuilder::new();
        pb.volatile_static(4);
        let mut b = MethodBuilder::new(0, 0);
        b.ret_void();
        pb.add_method("m", b);
        let p = pb.finish();
        assert_eq!(p.n_statics, 5);
        assert_eq!(p.volatile_statics, vec![4]);
    }
}
