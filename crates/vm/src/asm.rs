//! A textual assembly format for the mini-ISA, so programs can live in
//! `.rvm` files and be run/disassembled/verified from the command line
//! (see the `revmon-cli` crate).
//!
//! ```text
//! ; counter.rvm — two workers under one lock
//! .statics 1
//!
//! .method worker params=1 locals=2
//!     sync l0 {
//!         const 0
//!         store l1
//!     loop:
//!         load l1
//!         const 500
//!         if_ge done
//!         getstatic s0
//!         const 1
//!         add
//!         putstatic s0
//!         load l1
//!         const 1
//!         add
//!         store l1
//!         goto loop
//!     done:
//!     }
//!     retvoid
//! .end
//!
//! .method main params=0 locals=1
//!     new class=0 fields=0
//!     store l0
//!     load l0
//!     const 8        ; priority
//!     spawn worker
//!     load l0
//!     const 2
//!     spawn worker
//!     join
//!     join
//!     retvoid
//! .end
//! ```
//!
//! Directives: `.statics N`, `.volatile N`, `.method NAME params=N
//! locals=N [synchronized]` … `.end`, `.handler START END TARGET
//! class=N|all` (labels). Labels end with `:`; `sync lN { … }` blocks
//! emit the monitor bracketing and record the region metadata the
//! rewrite pass needs. Comments run from `;` to end of line.

use crate::bytecode::{CatchKind, Handler, Insn, Method, MethodId, NativeOp, Program, SyncRegion};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError { line, message: message.into() }
}

/// Parse assembly text into a [`Program`].
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    // Pass 1: method name table (for forward call/spawn references).
    let mut names: HashMap<String, MethodId> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line = strip(raw);
        if let Some(rest) = line.strip_prefix(".method") {
            let name =
                rest.split_whitespace().next().ok_or_else(|| err(i + 1, ".method needs a name"))?;
            if names.contains_key(name) {
                return Err(err(i + 1, format!("duplicate method `{name}`")));
            }
            names.insert(name.to_string(), MethodId(order.len() as u32));
            order.push(name.to_string());
        }
    }

    let mut n_statics: u32 = 0;
    let mut volatile_statics: Vec<u32> = Vec::new();
    let mut class_names: std::collections::BTreeMap<u32, String> =
        std::collections::BTreeMap::new();
    let mut methods: Vec<Option<Method>> = vec![None; order.len()];
    let mut cur: Option<MethodAsm> = None;

    for (i, raw) in src.lines().enumerate() {
        let ln = i + 1;
        let line = strip(raw);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".statics") {
            n_statics = n_statics.max(parse_num(rest.trim(), ln)? as u32);
            continue;
        }
        if let Some(rest) = line.strip_prefix(".volatile") {
            let s = parse_num(rest.trim(), ln)? as u32;
            volatile_statics.push(s);
            n_statics = n_statics.max(s + 1);
            continue;
        }
        if let Some(rest) = line.strip_prefix(".class") {
            let mut parts = rest.split_whitespace();
            let tag =
                parse_num(parts.next().ok_or_else(|| err(ln, ".class needs a tag"))?, ln)? as u32;
            let name = parts.next().ok_or_else(|| err(ln, ".class needs a name after the tag"))?;
            if parts.next().is_some() {
                return Err(err(ln, ".class takes exactly a tag and a name"));
            }
            if class_names.insert(tag, name.to_string()).is_some() {
                return Err(err(ln, format!("duplicate .class for tag {tag}")));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix(".method") {
            if cur.is_some() {
                return Err(err(ln, ".method inside a method (missing .end?)"));
            }
            cur = Some(MethodAsm::start(rest, ln)?);
            continue;
        }
        if line == ".end" {
            let m = cur.take().ok_or_else(|| err(ln, ".end outside a method"))?;
            let (name, method) = m.finish(ln)?;
            let id = names[&name];
            methods[id.index()] = Some(method);
            continue;
        }
        if let Some(rest) = line.strip_prefix(".handler") {
            let m = cur.as_mut().ok_or_else(|| err(ln, ".handler outside a method"))?;
            m.handler_directive(rest, ln)?;
            continue;
        }
        let m = cur.as_mut().ok_or_else(|| err(ln, format!("code outside a method: `{line}`")))?;
        m.line(line, ln, &names)?;
    }
    if cur.is_some() {
        return Err(err(src.lines().count(), "unterminated .method (missing .end)"));
    }

    let methods: Vec<Method> = methods
        .into_iter()
        .zip(&order)
        .map(|(m, n)| m.unwrap_or_else(|| panic!("method {n} declared but unparsed")))
        .collect();
    Ok(Program { methods, n_statics, volatile_statics, class_names })
}

/// Strip comments and surrounding whitespace.
fn strip(raw: &str) -> &str {
    match raw.find(';') {
        Some(p) => raw[..p].trim(),
        None => raw.trim(),
    }
}

fn parse_num(s: &str, ln: usize) -> Result<i64, AsmError> {
    s.parse::<i64>().map_err(|_| err(ln, format!("expected a number, got `{s}`")))
}

fn parse_kv(tok: &str, key: &str, ln: usize) -> Result<i64, AsmError> {
    tok.strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| err(ln, format!("expected {key}=N, got `{tok}`")))
        .and_then(|v| parse_num(v, ln))
}

fn parse_local(tok: &str, ln: usize) -> Result<u16, AsmError> {
    tok.strip_prefix('l')
        .and_then(|r| r.parse::<u16>().ok())
        .ok_or_else(|| err(ln, format!("expected a local like l0, got `{tok}`")))
}

fn parse_static(tok: &str, ln: usize) -> Result<u16, AsmError> {
    tok.strip_prefix('s')
        .and_then(|r| r.parse::<u16>().ok())
        .ok_or_else(|| err(ln, format!("expected a static like s0, got `{tok}`")))
}

/// In-progress method assembly.
struct MethodAsm {
    name: String,
    params: u16,
    locals: u16,
    synchronized: bool,
    code: Vec<Insn>,
    labels: HashMap<String, u32>,
    /// (insn index, label, line) to patch.
    fixups: Vec<(usize, String, usize)>,
    /// open `sync lN {` blocks: (local, enter pc).
    sync_stack: Vec<(u16, u32)>,
    sync_regions: Vec<SyncRegion>,
    /// raw handler directives: (start, end, target labels, kind, line).
    handler_dirs: Vec<(String, String, String, CatchKind, usize)>,
}

impl MethodAsm {
    fn start(rest: &str, ln: usize) -> Result<Self, AsmError> {
        let mut toks = rest.split_whitespace();
        let name = toks.next().ok_or_else(|| err(ln, ".method needs a name"))?.to_string();
        let mut params = None;
        let mut locals = None;
        let mut synchronized = false;
        for t in toks {
            if t == "synchronized" {
                synchronized = true;
            } else if t.starts_with("params=") {
                params = Some(parse_kv(t, "params", ln)? as u16);
            } else if t.starts_with("locals=") {
                locals = Some(parse_kv(t, "locals", ln)? as u16);
            } else {
                return Err(err(ln, format!("unknown .method attribute `{t}`")));
            }
        }
        let params = params.ok_or_else(|| err(ln, ".method needs params=N"))?;
        let locals = locals.unwrap_or(params).max(params);
        Ok(MethodAsm {
            name,
            params,
            locals,
            synchronized,
            code: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            sync_stack: Vec::new(),
            sync_regions: Vec::new(),
            handler_dirs: Vec::new(),
        })
    }

    fn handler_directive(&mut self, rest: &str, ln: usize) -> Result<(), AsmError> {
        let toks: Vec<&str> = rest.split_whitespace().collect();
        if toks.len() != 4 {
            return Err(err(ln, ".handler START END TARGET class=N|all"));
        }
        let kind = if toks[3] == "all" {
            CatchKind::All
        } else {
            CatchKind::Class(parse_kv(toks[3], "class", ln)? as u32)
        };
        self.handler_dirs.push((
            toks[0].to_string(),
            toks[1].to_string(),
            toks[2].to_string(),
            kind,
            ln,
        ));
        Ok(())
    }

    fn emit(&mut self, i: Insn) {
        self.code.push(i);
    }

    fn branch(&mut self, label: &str, ln: usize, make: fn(u32) -> Insn) {
        self.code.push(make(u32::MAX));
        self.fixups.push((self.code.len() - 1, label.to_string(), ln));
    }

    fn line(
        &mut self,
        line: &str,
        ln: usize,
        names: &HashMap<String, MethodId>,
    ) -> Result<(), AsmError> {
        // label?
        if let Some(l) = line.strip_suffix(':') {
            let l = l.trim();
            if self.labels.insert(l.to_string(), self.code.len() as u32).is_some() {
                return Err(err(ln, format!("duplicate label `{l}`")));
            }
            return Ok(());
        }
        // sync block close?
        if line == "}" {
            let (local, enter) = self.sync_stack.pop().ok_or_else(|| err(ln, "unmatched `}`"))?;
            self.emit(Insn::Load(local));
            self.emit(Insn::MonitorExit);
            self.sync_regions.push(SyncRegion { enter, exit: self.code.len() as u32 });
            return Ok(());
        }
        let mut toks = line.split_whitespace();
        let op = toks.next().expect("nonempty line");
        let rest: Vec<&str> = toks.collect();
        let arg = |i: usize| -> Result<&str, AsmError> {
            rest.get(i).copied().ok_or_else(|| err(ln, format!("`{op}` needs an operand")))
        };
        match op {
            "sync" => {
                // `sync lN {`
                let local = parse_local(arg(0)?, ln)?;
                if rest.get(1) != Some(&"{") {
                    return Err(err(ln, "expected `sync lN {`"));
                }
                self.emit(Insn::Load(local));
                let enter = self.code.len() as u32;
                self.emit(Insn::MonitorEnter);
                self.sync_stack.push((local, enter));
            }
            "const" => {
                let t = arg(0)?;
                let v = if t == "null" { Value::Null } else { Value::Int(parse_num(t, ln)?) };
                self.emit(Insn::Const(v));
            }
            "load" => {
                let l = parse_local(arg(0)?, ln)?;
                self.emit(Insn::Load(l));
            }
            "store" => {
                let l = parse_local(arg(0)?, ln)?;
                self.emit(Insn::Store(l));
            }
            "dup" => self.emit(Insn::Dup),
            "pop" => self.emit(Insn::Pop),
            "swap" => self.emit(Insn::Swap),
            "add" => self.emit(Insn::Add),
            "sub" => self.emit(Insn::Sub),
            "mul" => self.emit(Insn::Mul),
            "div" => self.emit(Insn::Div),
            "rem" => self.emit(Insn::Rem),
            "neg" => self.emit(Insn::Neg),
            "goto" => self.branch(arg(0)?, ln, Insn::Goto),
            "if_zero" => self.branch(arg(0)?, ln, Insn::IfZero),
            "if_nonzero" => self.branch(arg(0)?, ln, Insn::IfNonZero),
            "if_lt" => self.branch(arg(0)?, ln, Insn::IfLt),
            "if_ge" => self.branch(arg(0)?, ln, Insn::IfGe),
            "if_eq" => self.branch(arg(0)?, ln, Insn::IfEq),
            "if_ne" => self.branch(arg(0)?, ln, Insn::IfNe),
            "new" => {
                let mut class_tag = 0u32;
                let mut fields = 0u16;
                let mut volatile_mask = 0u64;
                for t in &rest {
                    if t.starts_with("class=") {
                        class_tag = parse_kv(t, "class", ln)? as u32;
                    } else if t.starts_with("fields=") {
                        fields = parse_kv(t, "fields", ln)? as u16;
                    } else if t.starts_with("volatile=") {
                        volatile_mask = parse_kv(t, "volatile", ln)? as u64;
                    } else {
                        return Err(err(ln, format!("unknown new attribute `{t}`")));
                    }
                }
                self.emit(Insn::New { class_tag, fields, volatile_mask });
            }
            "newarray" => self.emit(Insn::NewArray),
            "getfield" => {
                let o = parse_num(arg(0)?, ln)? as u16;
                self.emit(Insn::GetField(o));
            }
            "putfield" => {
                let o = parse_num(arg(0)?, ln)? as u16;
                self.emit(Insn::PutField(o));
            }
            "aload" => self.emit(Insn::ALoad),
            "astore" => self.emit(Insn::AStore),
            "getstatic" => {
                let s = parse_static(arg(0)?, ln)?;
                self.emit(Insn::GetStatic(s));
            }
            "putstatic" => {
                let s = parse_static(arg(0)?, ln)?;
                self.emit(Insn::PutStatic(s));
            }
            "arraylen" => self.emit(Insn::ArrayLen),
            "monitorenter" => self.emit(Insn::MonitorEnter),
            "monitorexit" => self.emit(Insn::MonitorExit),
            "wait" => self.emit(Insn::Wait),
            "notify" => self.emit(Insn::Notify),
            "notifyall" => self.emit(Insn::NotifyAll),
            "call" | "spawn" => {
                let name = arg(0)?;
                let id =
                    *names.get(name).ok_or_else(|| err(ln, format!("unknown method `{name}`")))?;
                self.emit(if op == "call" { Insn::Call(id) } else { Insn::Spawn(id) });
            }
            "join" => self.emit(Insn::Join),
            "ret" => self.emit(Insn::Ret),
            "retvoid" => self.emit(Insn::RetVoid),
            "throw" => self.emit(Insn::Throw),
            "yield" => self.emit(Insn::Yield),
            "sleep" => self.emit(Insn::Sleep),
            "now" => self.emit(Insn::Now),
            "randint" => self.emit(Insn::RandInt),
            "native" => {
                let o = match arg(0)? {
                    "print" => NativeOp::Print,
                    "emit" => NativeOp::Emit,
                    other => return Err(err(ln, format!("unknown native `{other}`"))),
                };
                self.emit(Insn::Native(o));
            }
            "work" => self.emit(Insn::Work),
            "nop" => self.emit(Insn::Nop),
            other => return Err(err(ln, format!("unknown instruction `{other}`"))),
        }
        Ok(())
    }

    fn finish(mut self, ln: usize) -> Result<(String, Method), AsmError> {
        if !self.sync_stack.is_empty() {
            return Err(err(ln, "unclosed sync block"));
        }
        for (at, label, l) in std::mem::take(&mut self.fixups) {
            let &pc = self
                .labels
                .get(&label)
                .ok_or_else(|| err(l, format!("undefined label `{label}`")))?;
            self.code[at] = match self.code[at] {
                Insn::Goto(_) => Insn::Goto(pc),
                Insn::IfZero(_) => Insn::IfZero(pc),
                Insn::IfNonZero(_) => Insn::IfNonZero(pc),
                Insn::IfLt(_) => Insn::IfLt(pc),
                Insn::IfGe(_) => Insn::IfGe(pc),
                Insn::IfEq(_) => Insn::IfEq(pc),
                Insn::IfNe(_) => Insn::IfNe(pc),
                other => unreachable!("fixup on non-branch {other:?}"),
            };
        }
        let mut handlers = Vec::new();
        for (s, e, t, kind, l) in std::mem::take(&mut self.handler_dirs) {
            let lookup = |lab: &str| {
                self.labels
                    .get(lab)
                    .copied()
                    .ok_or_else(|| err(l, format!("undefined label `{lab}`")))
            };
            handlers.push(Handler {
                start: lookup(&s)?,
                end: lookup(&e)?,
                target: lookup(&t)?,
                kind,
            });
        }
        Ok((
            self.name.clone(),
            Method {
                name: self.name,
                params: self.params,
                locals: self.locals,
                code: self.code,
                handlers,
                sync_regions: self.sync_regions,
                synchronized: self.synchronized,
                rollback_scopes: vec![],
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value as V;
    use crate::{Vm, VmConfig};
    use revmon_core::Priority;

    const COUNTER: &str = r#"
; self-contained fork/join counter
.statics 2

.method worker params=1 locals=2
    sync l0 {
        const 0
        store l1
    loop:
        load l1
        const 500
        if_ge done
        getstatic s0
        const 1
        add
        putstatic s0
        load l1
        const 1
        add
        store l1
        goto loop
    done:
    }
    retvoid
.end

.method main params=0 locals=1
    new class=0 fields=0
    store l0
    load l0
    const 2        ; low priority
    spawn worker
    load l0
    const 8        ; high priority
    spawn worker
    join
    join
    getstatic s0
    putstatic s1
    retvoid
.end
"#;

    #[test]
    fn assembles_and_runs_on_both_vms() {
        for cfg in [VmConfig::unmodified(), VmConfig::modified()] {
            let p = assemble(COUNTER).expect("assembles");
            let main = p.method_by_name("main").unwrap();
            let mut vm = Vm::new(p, cfg);
            vm.spawn("main", main, vec![], Priority::NORM);
            vm.run().expect("runs");
            assert_eq!(vm.read_static(1).unwrap(), V::Int(1_000));
        }
    }

    #[test]
    fn sync_blocks_record_regions() {
        let p = assemble(COUNTER).unwrap();
        let w = p.method_by_name("worker").unwrap();
        let m = p.method(w);
        assert_eq!(m.sync_regions.len(), 1);
        assert!(matches!(m.code[m.sync_regions[0].enter as usize], Insn::MonitorEnter));
    }

    #[test]
    fn volatile_directive_applies() {
        let p = assemble(".statics 2\n.volatile 1\n.method m params=0 locals=0\nretvoid\n.end\n")
            .unwrap();
        assert_eq!(p.volatile_statics, vec![1]);
        assert_eq!(p.n_statics, 2);
    }

    #[test]
    fn handler_directive_resolves_labels() {
        let src = r#"
.statics 1
.method m params=0 locals=0
try_start:
    new class=9 fields=0
    throw
try_end:
    retvoid
catch:
    pop
    const 1
    putstatic s0
    retvoid
.handler try_start try_end catch class=9
.end
"#;
        let p = assemble(src).unwrap();
        let m = p.method_by_name("m").unwrap();
        let mut vm = Vm::new(p, VmConfig::unmodified());
        vm.spawn("main", m, vec![], Priority::NORM);
        vm.run().unwrap();
        assert_eq!(vm.read_static(0).unwrap(), V::Int(1));
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = assemble(".method m params=0 locals=0\n    fly\n.end\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("fly"));
    }

    #[test]
    fn undefined_label_detected() {
        let e = assemble(".method m params=0 locals=0\n    goto nowhere\n.end\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn unclosed_sync_detected() {
        let e = assemble(".method m params=1 locals=1\n    sync l0 {\n.end\n").unwrap_err();
        assert!(e.message.contains("unclosed sync"));
    }

    #[test]
    fn duplicate_method_detected() {
        let e = assemble(
            ".method m params=0 locals=0\nretvoid\n.end\n.method m params=0 locals=0\nretvoid\n.end\n",
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn synchronized_attribute_sets_flag_and_rewrites() {
        let src = ".statics 1\n.method inc params=1 locals=1 synchronized\n    getstatic s0\n    const 1\n    add\n    putstatic s0\n    retvoid\n.end\n";
        let p = assemble(src).unwrap();
        assert!(p.methods[0].synchronized);
        let r = crate::rewrite::rewrite_program(&p);
        assert!(r.method_by_name("inc$sync").is_some());
    }
}
