//! Runtime values.
//!
//! The VM is word-oriented like the paper's logging scheme (§3.1.2 logs
//! "object or array reference, value offset and the (old) value itself"):
//! every field, array element, static slot, local and operand-stack slot
//! holds one [`Value`].

use std::fmt;

/// A reference to a heap object (index into the VM heap).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjRef(pub u32);

impl ObjRef {
    /// Heap index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// One VM word.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Value {
    /// The null reference. Also the default value of every slot.
    #[default]
    Null,
    /// A (64-bit) integer; models Java's numeric primitives.
    Int(i64),
    /// A heap reference.
    Ref(ObjRef),
}

impl Value {
    /// Interpret as integer; `Null` reads as 0 (convenient for flags).
    pub fn as_int(self) -> Result<i64, ValueError> {
        match self {
            Value::Int(i) => Ok(i),
            Value::Null => Ok(0),
            Value::Ref(_) => Err(ValueError::ExpectedInt),
        }
    }

    /// Interpret as (non-null) reference.
    pub fn as_ref(self) -> Result<ObjRef, ValueError> {
        match self {
            Value::Ref(r) => Ok(r),
            Value::Null => Err(ValueError::NullReference),
            Value::Int(_) => Err(ValueError::ExpectedRef),
        }
    }

    /// Truthiness for conditional branches (non-zero / non-null).
    pub fn is_truthy(self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => i != 0,
            Value::Ref(_) => true,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<ObjRef> for Value {
    fn from(r: ObjRef) -> Self {
        Value::Ref(r)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Ref(r) => write!(f, "{r}"),
        }
    }
}

/// Type confusion / null dereference faults. These surface as
/// [`VmError`](crate::VmError)s — a program that trips one is buggy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValueError {
    /// An integer was required.
    ExpectedInt,
    /// A reference was required.
    ExpectedRef,
    /// Null dereference.
    NullReference,
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::ExpectedInt => write!(f, "expected an integer value"),
            ValueError::ExpectedRef => write!(f, "expected a reference value"),
            ValueError::NullReference => write!(f, "null reference"),
        }
    }
}

impl std::error::Error for ValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_reads_as_zero_int() {
        assert_eq!(Value::Null.as_int(), Ok(0));
    }

    #[test]
    fn ref_is_not_an_int() {
        assert_eq!(Value::Ref(ObjRef(1)).as_int(), Err(ValueError::ExpectedInt));
    }

    #[test]
    fn null_deref_is_reported() {
        assert_eq!(Value::Null.as_ref(), Err(ValueError::NullReference));
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(-3).is_truthy());
        assert!(Value::Ref(ObjRef(0)).is_truthy());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(ObjRef(2)), Value::Ref(ObjRef(2)));
    }
}
