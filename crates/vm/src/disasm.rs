//! Human-readable disassembly of programs — the debugging companion to
//! the builder and the rewrite pass. Region boundaries, exception-table
//! coverage and injected rollback scopes are annotated inline, which
//! makes rewrite-pass output inspectable at a glance.

use crate::bytecode::{CatchKind, Insn, Method, Program};
use std::fmt::Write;

/// Disassemble one method.
pub fn disassemble_method(m: &Method) -> String {
    let mut out = String::new();
    let sync = if m.synchronized { "synchronized " } else { "" };
    let _ = writeln!(out, "{}method {}({} params, {} locals):", sync, m.name, m.params, m.locals);
    for (pc, insn) in m.code.iter().enumerate() {
        let pc = pc as u32;
        let mut notes: Vec<String> = Vec::new();
        for (i, r) in m.sync_regions.iter().enumerate() {
            if r.enter == pc {
                notes.push(format!("region#{i} enter"));
            }
            if r.exit == pc + 1 {
                notes.push(format!("region#{i} exit"));
            }
        }
        for (i, s) in m.rollback_scopes.iter().enumerate() {
            if s.save_pc == pc {
                notes.push(format!("scope#{i} save"));
            }
            if s.handler_pc == pc {
                notes.push(format!("scope#{i} handler"));
            }
        }
        for (i, h) in m.handlers.iter().enumerate() {
            if h.target == pc {
                let kind = match h.kind {
                    CatchKind::All => "catch-all".to_string(),
                    CatchKind::Rollback => "catch-rollback".to_string(),
                    CatchKind::Class(c) => format!("catch#{c}"),
                };
                notes.push(format!("handler#{i} ({kind}) [{}..{})", h.start, h.end));
            }
        }
        let note =
            if notes.is_empty() { String::new() } else { format!("   ; {}", notes.join(", ")) };
        let _ = writeln!(out, "  {pc:>4}: {}{note}", render(insn));
    }
    out
}

/// Disassemble a whole program.
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "program: {} methods, {} statics ({} volatile)",
        p.methods.len(),
        p.n_statics,
        p.volatile_statics.len()
    );
    for (tag, name) in &p.class_names {
        let _ = writeln!(out, "class {tag}: {name}");
    }
    for m in &p.methods {
        out.push('\n');
        out.push_str(&disassemble_method(m));
    }
    out
}

fn render(i: &Insn) -> String {
    match i {
        Insn::Const(v) => format!("const        {v}"),
        Insn::Load(i) => format!("load         l{i}"),
        Insn::Store(i) => format!("store        l{i}"),
        Insn::Dup => "dup".into(),
        Insn::Pop => "pop".into(),
        Insn::Swap => "swap".into(),
        Insn::Add => "add".into(),
        Insn::Sub => "sub".into(),
        Insn::Mul => "mul".into(),
        Insn::Div => "div".into(),
        Insn::Rem => "rem".into(),
        Insn::Neg => "neg".into(),
        Insn::Goto(t) => format!("goto         -> {t}"),
        Insn::IfZero(t) => format!("if_zero      -> {t}"),
        Insn::IfNonZero(t) => format!("if_nonzero   -> {t}"),
        Insn::IfLt(t) => format!("if_lt        -> {t}"),
        Insn::IfGe(t) => format!("if_ge        -> {t}"),
        Insn::IfEq(t) => format!("if_eq        -> {t}"),
        Insn::IfNe(t) => format!("if_ne        -> {t}"),
        Insn::New { class_tag, fields, .. } => {
            format!("new          class={class_tag} fields={fields}")
        }
        Insn::NewArray => "newarray".into(),
        Insn::GetField(o) => format!("getfield     +{o}"),
        Insn::PutField(o) => format!("putfield     +{o}   ; write-barrier site"),
        Insn::ALoad => "aload".into(),
        Insn::AStore => "astore              ; write-barrier site".into(),
        Insn::GetStatic(s) => format!("getstatic    s{s}"),
        Insn::PutStatic(s) => format!("putstatic    s{s}   ; write-barrier site"),
        Insn::ArrayLen => "arraylen".into(),
        Insn::MonitorEnter => "monitorenter".into(),
        Insn::MonitorExit => "monitorexit".into(),
        Insn::Wait => "wait".into(),
        Insn::Notify => "notify".into(),
        Insn::NotifyAll => "notifyall".into(),
        Insn::Call(m) => format!("call         {m}"),
        Insn::Spawn(m) => format!("spawn        {m}   ; irrevocable"),
        Insn::Join => "join".into(),
        Insn::Ret => "ret".into(),
        Insn::RetVoid => "retvoid".into(),
        Insn::Throw => "throw".into(),
        Insn::Yield => "yield".into(),
        Insn::Sleep => "sleep".into(),
        Insn::Now => "now".into(),
        Insn::RandInt => "randint".into(),
        Insn::Native(op) => format!("native       {op:?}   ; irrevocable"),
        Insn::Work => "work".into(),
        Insn::Nop => "nop".into(),
        Insn::SaveState => "savestate           ; injected by rewrite".into(),
        Insn::RollbackHandler => "rollbackhandler     ; injected by rewrite".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MethodBuilder, ProgramBuilder};
    use crate::rewrite::rewrite_program;

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let run = pb.declare_method("run", 1);
        let mut b = MethodBuilder::new(1, 1);
        b.sync_on_local(0, |b| {
            b.const_i(1);
            b.put_static(0);
        });
        b.ret_void();
        pb.implement(run, b);
        pb.finish()
    }

    #[test]
    fn raw_method_shows_region_markers() {
        let p = sample();
        let d = disassemble_method(&p.methods[0]);
        assert!(d.contains("region#0 enter"));
        assert!(d.contains("region#0 exit"));
        assert!(d.contains("monitorenter"));
        assert!(d.contains("write-barrier site"));
    }

    #[test]
    fn rewritten_method_shows_injected_artifacts() {
        let r = rewrite_program(&sample());
        let d = disassemble_method(&r.methods[0]);
        assert!(d.contains("savestate"));
        assert!(d.contains("rollbackhandler"));
        assert!(d.contains("scope#0 save"));
        assert!(d.contains("scope#0 handler"));
        assert!(d.contains("catch-rollback"));
    }

    #[test]
    fn program_header_lists_statics() {
        let mut pb = ProgramBuilder::new();
        pb.volatile_static(0);
        let m = pb.declare_method("m", 0);
        let mut b = MethodBuilder::new(0, 0);
        b.ret_void();
        pb.implement(m, b);
        let d = disassemble(&pb.finish());
        assert!(d.contains("1 statics (1 volatile)"));
    }

    #[test]
    fn every_instruction_renders_distinctly() {
        // A smoke check that all pcs appear with their index.
        let p = sample();
        let d = disassemble_method(&p.methods[0]);
        for pc in 0..p.methods[0].code.len() {
            assert!(d.contains(&format!("{pc:>4}: ")), "pc {pc} missing");
        }
    }
}
