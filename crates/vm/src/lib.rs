//! # revmon-vm — a deterministic green-thread VM with revocable monitors
//!
//! This crate is the substrate for reproducing
//!
//! > Adam Welc, Antony L. Hosking, Suresh Jagannathan.
//! > *Preemption-Based Avoidance of Priority Inversion for Java.*
//! > ICPP 2004.
//!
//! It stands in for IBM's Jikes RVM 2.2.1, the paper's implementation
//! vehicle: a Java-like virtual machine with
//!
//! * **pseudo-preemptive green threads** — context switches only at
//!   yield points (explicit yields, taken backward branches, method
//!   entries, monitor operations), scheduled round-robin on a virtual
//!   uniprocessor clock;
//! * **monitors on every object**, with prioritized entry queues;
//! * a **mini bytecode ISA** covering exactly what the paper's technique
//!   manipulates: operand stack + locals, the three store kinds that get
//!   write barriers, `monitorenter`/`monitorexit`, exception scopes with
//!   `finally`, `wait`/`notify`, volatile slots, and irrevocable native
//!   calls;
//! * the **rewrite pass** (§3.1.1): synchronized-method wrapping,
//!   injected `SaveState` before each section's `monitorenter`, and
//!   injected rollback handlers;
//! * **revocable monitors** (§1.1, §3.1.2): write-barrier undo logging,
//!   priority-inversion detection at acquisition (or in the background),
//!   rollback at the next yield point with monitors released only after
//!   shared state is restored;
//! * the **JMM-consistency guard** (§2.2): sections whose speculative
//!   updates were observed by another thread become non-revocable, as do
//!   sections containing native calls or nested `wait`s;
//! * **deadlock detection and resolution** by victim revocation;
//! * baselines: plain blocking, priority inheritance (transitive), and
//!   priority ceiling, plus a priority-preemptive scheduler for
//!   ablations.
//!
//! ## Quick example
//!
//! ```
//! use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
//! use revmon_vm::{Vm, VmConfig};
//! use revmon_core::Priority;
//! use revmon_vm::value::Value;
//!
//! // static0 += 1, done inside `synchronized (arg0) { … }`
//! let mut pb = ProgramBuilder::new();
//! pb.statics(1);
//! let run = pb.declare_method("run", 1);
//! let mut b = MethodBuilder::new(1, 1);
//! b.sync_on_local(0, |b| {
//!     b.get_static(0);
//!     b.const_i(1);
//!     b.add();
//!     b.put_static(0);
//! });
//! b.ret_void();
//! pb.implement(run, b);
//!
//! let mut vm = Vm::new(pb.finish(), VmConfig::modified());
//! let lock = vm.heap_mut().alloc(0, 0);
//! for i in 0..4 {
//!     let prio = if i == 0 { Priority::HIGH } else { Priority::LOW };
//!     vm.spawn(&format!("t{i}"), run, vec![Value::Ref(lock)], prio);
//! }
//! let report = vm.run().unwrap();
//! assert_eq!(vm.read_static(0).unwrap(), Value::Int(4));
//! assert!(report.clock > 0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod asm;
pub mod builder;
pub mod bytecode;
pub mod disasm;
pub mod error;
mod fingerprint;
pub mod heap;
pub mod interp;
pub mod jmm;
pub mod monitor;
pub mod probe;
mod revoke;
pub mod rewrite;
pub mod sched;
mod sync;
pub mod thread;
pub mod trace;
pub mod value;
pub mod verify;
pub mod vm;

pub use analysis::{analyze, ElisionTable};
pub use asm::{assemble, AsmError};
pub use disasm::{disassemble, disassemble_method};
pub use error::VmError;
pub use interp::{ARITH_TAG, NPE_TAG, OOB_TAG, OOM_TAG};
pub use probe::Probe;
pub use rewrite::rewrite_program;
pub use sched::{
    Candidate, DecisionRecord, SchedContext, SchedulePolicy, SchedulerKind, Scripted,
    DEFAULT_CHOICE,
};
pub use trace::{TraceEvent, TraceRecord};
pub use verify::{verify_program, VerifyError};
pub use vm::{MonitorReport, RoundOutcome, RunReport, ThreadReport, Vm, VmConfig};
