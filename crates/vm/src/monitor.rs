//! Per-object monitor state.
//!
//! Every object can act as a monitor (Java semantics). State is created
//! lazily on first synchronization. The holder's priority is *deposited in
//! the monitor header* at acquisition, exactly as in §4 ("A thread
//! acquiring a monitor deposits its priority in the header of the monitor
//! object"), so contenders can detect inversion with one comparison.

use crate::value::ObjRef;
use revmon_core::{PrioritizedQueue, Priority, QueueDiscipline, ThreadId};
use std::collections::BTreeMap;

/// Runtime state of one monitor.
#[derive(Debug)]
pub struct MonitorState {
    /// Current owner.
    pub owner: Option<ThreadId>,
    /// Recursive acquisition depth (Java monitors are reentrant).
    pub recursion: u32,
    /// Priority deposited by the owner at acquisition.
    pub holder_priority: Priority,
    /// Entry queue (contended acquirers and notified waiters).
    pub queue: PrioritizedQueue<ThreadId>,
    /// Wait set (`Object.wait`), FIFO by arrival.
    pub wait_set: Vec<ThreadId>,
    /// Priority ceiling, when the ceiling policy is active for this
    /// monitor.
    pub ceiling: Option<Priority>,
    /// Sticky non-revocability (optional strict mode: once an execution
    /// of this monitor is marked non-revocable, all future executions are
    /// too).
    pub sticky_nonrevocable: bool,
    /// Total acquisitions of this monitor.
    pub acquires: u64,
    /// Acquisitions that found it held (blocking episodes).
    pub contended: u64,
    /// Largest entry-queue length observed.
    pub peak_queue: usize,
}

impl MonitorState {
    fn new(discipline: QueueDiscipline) -> Self {
        MonitorState {
            owner: None,
            recursion: 0,
            holder_priority: Priority::MIN,
            queue: PrioritizedQueue::new(discipline),
            wait_set: Vec::new(),
            ceiling: None,
            sticky_nonrevocable: false,
            acquires: 0,
            contended: 0,
            peak_queue: 0,
        }
    }

    /// Whether `t` owns this monitor.
    pub fn owned_by(&self, t: ThreadId) -> bool {
        self.owner == Some(t)
    }
}

/// Table of all monitors that have ever been synchronized on.
///
/// Backed by an *ordered* map: the background inversion scanner and the
/// state fingerprinter iterate it, and both must see a deterministic
/// order for runs to be bit-exact replayable.
#[derive(Debug)]
pub struct MonitorTable {
    monitors: BTreeMap<ObjRef, MonitorState>,
    discipline: QueueDiscipline,
}

impl MonitorTable {
    /// Empty table; new monitors get entry queues with `discipline`.
    pub fn new(discipline: QueueDiscipline) -> Self {
        MonitorTable { monitors: BTreeMap::new(), discipline }
    }

    /// Monitor state for `obj`, created on first use.
    pub fn get_mut(&mut self, obj: ObjRef) -> &mut MonitorState {
        let d = self.discipline;
        self.monitors.entry(obj).or_insert_with(|| MonitorState::new(d))
    }

    /// Monitor state if it exists.
    pub fn get(&self, obj: ObjRef) -> Option<&MonitorState> {
        self.monitors.get(&obj)
    }

    /// Iterate over all monitors in ascending object order (background
    /// inversion detection, invariant checking).
    pub fn iter(&self) -> impl Iterator<Item = (&ObjRef, &MonitorState)> {
        self.monitors.iter()
    }

    /// Number of monitors ever synchronized on.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// Whether no monitor exists yet.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazily_created_unowned() {
        let mut t = MonitorTable::new(QueueDiscipline::Priority);
        assert!(t.get(ObjRef(1)).is_none());
        let m = t.get_mut(ObjRef(1));
        assert_eq!(m.owner, None);
        assert_eq!(m.recursion, 0);
        assert!(t.get(ObjRef(1)).is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn owned_by_checks_owner() {
        let mut t = MonitorTable::new(QueueDiscipline::Priority);
        let m = t.get_mut(ObjRef(0));
        m.owner = Some(ThreadId(3));
        assert!(m.owned_by(ThreadId(3)));
        assert!(!m.owned_by(ThreadId(4)));
    }

    #[test]
    fn queue_uses_table_discipline() {
        let mut t = MonitorTable::new(QueueDiscipline::Fifo);
        let m = t.get_mut(ObjRef(0));
        m.queue.push(ThreadId(1), Priority::LOW);
        m.queue.push(ThreadId(2), Priority::HIGH);
        assert_eq!(m.queue.pop(), Some(ThreadId(1))); // FIFO ignores priority
    }
}
