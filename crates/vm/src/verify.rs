//! Static program verification — the analogue of the JVM bytecode
//! verifier ([JVMS §4.10]).
//!
//! The paper's transformation operates at the bytecode level and must
//! preserve well-formedness: in particular the injected operand-stack
//! save/restore depends on a *consistent stack height at every pc*
//! ("The contents of the VM's operand stack before executing a
//! monitorenter operation must be the same at the first invocation and
//! at all subsequent invocations", §3.1.1). The verifier checks, by
//! abstract interpretation over stack heights:
//!
//! * every branch / handler target is in range,
//! * the operand stack never underflows and heights merge consistently
//!   at join points,
//! * every local index is within the method's frame,
//! * every `Call` target exists, and methods return consistently
//!   (all `Ret` or all `RetVoid`),
//! * control cannot fall off the end of a method,
//! * synchronized regions are well-formed (`MonitorEnter` at the entry
//!   pc, `MonitorExit` just before the exit pc).
//!
//! `Vm::new` runs the verifier on the final (post-rewrite) code of every
//! program, so a builder or rewrite-pass bug is caught at construction
//! time instead of as a runtime fault.

use crate::bytecode::{CatchKind, Insn, Method, Program};
use std::fmt;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Branch or handler target outside the method's code.
    TargetOutOfRange {
        /// Method name.
        method: String,
        /// Offending pc (or handler index for table entries).
        pc: u32,
        /// The bad target.
        target: u32,
    },
    /// Local-variable index ≥ the method's `locals`.
    LocalOutOfRange {
        /// Method name.
        method: String,
        /// Offending pc.
        pc: u32,
        /// The bad index.
        index: u16,
    },
    /// An instruction needs more operands than the stack holds.
    StackUnderflow {
        /// Method name.
        method: String,
        /// Offending pc.
        pc: u32,
        /// Operands required.
        needs: u16,
        /// Height on entry.
        have: u16,
    },
    /// Two control-flow paths reach the same pc with different stack
    /// heights.
    HeightMismatch {
        /// Method name.
        method: String,
        /// Join pc.
        pc: u32,
        /// Previously recorded height.
        expected: u16,
        /// Newly computed height.
        found: u16,
    },
    /// Control can run past the last instruction.
    FallsOffEnd {
        /// Method name.
        method: String,
        /// The pc that falls off.
        pc: u32,
    },
    /// `Call` names a method id outside the program.
    BadCallTarget {
        /// Method name.
        method: String,
        /// Offending pc.
        pc: u32,
        /// The bad method index.
        target: u32,
    },
    /// A method mixes `Ret` and `RetVoid`.
    InconsistentReturns {
        /// Method name.
        method: String,
    },
    /// A declared sync region is not bracketed by enter/exit.
    MalformedRegion {
        /// Method name.
        method: String,
        /// Region enter pc.
        enter: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::TargetOutOfRange { method, pc, target } => {
                write!(f, "{method}@{pc}: target {target} out of range")
            }
            VerifyError::LocalOutOfRange { method, pc, index } => {
                write!(f, "{method}@{pc}: local {index} out of range")
            }
            VerifyError::StackUnderflow { method, pc, needs, have } => {
                write!(f, "{method}@{pc}: needs {needs} operands, stack holds {have}")
            }
            VerifyError::HeightMismatch { method, pc, expected, found } => {
                write!(f, "{method}@{pc}: stack height {found} joins path with height {expected}")
            }
            VerifyError::FallsOffEnd { method, pc } => {
                write!(f, "{method}@{pc}: control falls off the end")
            }
            VerifyError::BadCallTarget { method, pc, target } => {
                write!(f, "{method}@{pc}: call to nonexistent method {target}")
            }
            VerifyError::InconsistentReturns { method } => {
                write!(f, "{method}: mixes value and void returns")
            }
            VerifyError::MalformedRegion { method, enter } => {
                write!(f, "{method}: sync region at {enter} is not enter/exit bracketed")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Whether each method returns a value (scanned from its returns).
fn return_arities(p: &Program, errors: &mut Vec<VerifyError>) -> Vec<u16> {
    p.methods
        .iter()
        .map(|m| {
            let has_ret = m.code.iter().any(|i| matches!(i, Insn::Ret));
            let has_void = m.code.iter().any(|i| matches!(i, Insn::RetVoid));
            if has_ret && has_void {
                errors.push(VerifyError::InconsistentReturns { method: m.name.clone() });
            }
            u16::from(has_ret)
        })
        .collect()
}

/// (pops, pushes, terminal) effect of an instruction; `Call` handled
/// separately.
fn effect(i: Insn) -> (u16, u16, bool) {
    match i {
        Insn::Const(_) | Insn::Load(_) | Insn::Now => (0, 1, false),
        Insn::Store(_) | Insn::Pop | Insn::IfZero(_) | Insn::IfNonZero(_) | Insn::PutStatic(_) => {
            (1, 0, false)
        }
        Insn::Dup => (1, 2, false),
        Insn::Swap => (2, 2, false),
        Insn::Add | Insn::Sub | Insn::Mul | Insn::Div | Insn::Rem => (2, 1, false),
        Insn::Neg | Insn::NewArray | Insn::GetField(_) | Insn::ArrayLen | Insn::RandInt => {
            (1, 1, false)
        }
        Insn::Goto(_) => (0, 0, false), // successor handled explicitly
        Insn::IfLt(_) | Insn::IfGe(_) | Insn::IfEq(_) | Insn::IfNe(_) => (2, 0, false),
        Insn::New { .. } | Insn::GetStatic(_) => (0, 1, false),
        Insn::PutField(_) => (2, 0, false),
        Insn::ALoad => (2, 1, false),
        Insn::AStore => (3, 0, false),
        Insn::MonitorEnter
        | Insn::MonitorExit
        | Insn::Wait
        | Insn::Notify
        | Insn::NotifyAll
        | Insn::Sleep
        | Insn::Work
        | Insn::Native(_) => (1, 0, false),
        Insn::Call(_) | Insn::Spawn(_) => (0, 0, false), // handled at the call site
        Insn::Join => (1, 0, false),
        Insn::Ret => (1, 0, true),
        Insn::RetVoid => (0, 0, true),
        Insn::Throw => (1, 0, true),
        Insn::Yield | Insn::Nop | Insn::SaveState => (0, 0, false),
        Insn::RollbackHandler => (0, 0, true), // intrinsic; never falls through
    }
}

fn verify_method(p: &Program, m: &Method, arities: &[u16], errors: &mut Vec<VerifyError>) {
    let n = m.code.len() as u32;
    let name = || m.name.clone();

    // Handler table sanity.
    for h in &m.handlers {
        if h.start > n || h.end > n || h.target >= n {
            errors.push(VerifyError::TargetOutOfRange {
                method: name(),
                pc: h.start,
                target: h.target,
            });
        }
    }
    // Region bracketing (post-rewrite, `enter` points at MonitorEnter and
    // `exit - 1` at the matching MonitorExit).
    for r in &m.sync_regions {
        let ok = r.enter < n
            && r.exit >= 1
            && r.exit <= n
            && matches!(m.code[r.enter as usize], Insn::MonitorEnter)
            && matches!(m.code[(r.exit - 1) as usize], Insn::MonitorExit);
        if !ok {
            errors.push(VerifyError::MalformedRegion { method: name(), enter: r.enter });
        }
    }

    // Abstract interpretation over stack heights.
    let mut height: Vec<Option<u16>> = vec![None; m.code.len()];
    let mut work: Vec<(u32, u16)> = vec![(0, 0)];
    for h in &m.handlers {
        if (h.target as usize) < m.code.len() {
            // JVM convention: handler entry sees only the exception on the
            // stack. Rollback handlers are intrinsic (height unused).
            let entry = if h.kind == CatchKind::Rollback { 0 } else { 1 };
            work.push((h.target, entry));
        }
    }

    let push_succ = |work: &mut Vec<(u32, u16)>, height: &mut Vec<Option<u16>>, pc: u32, h: u16| {
        if pc >= n {
            return Some(VerifyError::FallsOffEnd { method: m.name.clone(), pc });
        }
        match height[pc as usize] {
            None => {
                height[pc as usize] = Some(h);
                work.push((pc, h));
                None
            }
            Some(prev) if prev == h => None,
            Some(prev) => Some(VerifyError::HeightMismatch {
                method: m.name.clone(),
                pc,
                expected: prev,
                found: h,
            }),
        }
    };

    // Seed entry heights.
    let mut seeded = std::mem::take(&mut work);
    for (pc, h) in seeded.drain(..) {
        if let Some(e) = push_succ(&mut work, &mut height, pc, h) {
            errors.push(e);
        }
    }

    while let Some((pc, h)) = work.pop() {
        let insn = m.code[pc as usize];
        // Local bounds.
        if let Insn::Load(i) | Insn::Store(i) = insn {
            if i >= m.locals {
                errors.push(VerifyError::LocalOutOfRange { method: name(), pc, index: i });
                continue;
            }
        }
        // Effects.
        let (pops, pushes, terminal) = match insn {
            Insn::Call(callee) => {
                let Some(cm) = p.methods.get(callee.index()) else {
                    errors.push(VerifyError::BadCallTarget {
                        method: name(),
                        pc,
                        target: callee.0,
                    });
                    continue;
                };
                (cm.params, arities[callee.index()], false)
            }
            Insn::Spawn(callee) => {
                let Some(cm) = p.methods.get(callee.index()) else {
                    errors.push(VerifyError::BadCallTarget {
                        method: name(),
                        pc,
                        target: callee.0,
                    });
                    continue;
                };
                // pops: args + priority; pushes: the thread id
                (cm.params + 1, 1, false)
            }
            other => effect(other),
        };
        if h < pops {
            errors.push(VerifyError::StackUnderflow { method: name(), pc, needs: pops, have: h });
            continue;
        }
        let out = h - pops + pushes;
        if terminal {
            continue;
        }
        // Successors.
        let mut add = |target: u32, errors: &mut Vec<VerifyError>| {
            if target >= n {
                // Falling through past the last instruction is a missing
                // return; an explicit branch out of range is a bad target.
                errors.push(if target == pc + 1 {
                    VerifyError::FallsOffEnd { method: name(), pc }
                } else {
                    VerifyError::TargetOutOfRange { method: name(), pc, target }
                });
            } else if let Some(e) = push_succ(&mut work, &mut height, target, out) {
                errors.push(e);
            }
        };
        match insn {
            Insn::Goto(t) => add(t, errors),
            Insn::IfZero(t)
            | Insn::IfNonZero(t)
            | Insn::IfLt(t)
            | Insn::IfGe(t)
            | Insn::IfEq(t)
            | Insn::IfNe(t) => {
                add(t, errors);
                add(pc + 1, errors);
            }
            _ => add(pc + 1, errors),
        }
    }
}

/// Verify a whole program. Returns all failures found (empty = valid).
pub fn verify_program(p: &Program) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    let arities = return_arities(p, &mut errors);
    for m in &p.methods {
        verify_method(p, m, &arities, &mut errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{MethodBuilder, ProgramBuilder};
    use crate::bytecode::MethodId;
    use crate::rewrite::rewrite_program;

    fn ok_program() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let run = pb.declare_method("run", 1);
        let mut b = MethodBuilder::new(1, 2);
        b.sync_on_local(0, |b| {
            b.const_i(0);
            b.store(1);
            let top = b.here();
            b.load(1);
            b.const_i(10);
            let done = b.new_label();
            b.if_ge(done);
            b.get_static(0);
            b.const_i(1);
            b.add();
            b.put_static(0);
            b.load(1);
            b.const_i(1);
            b.add();
            b.store(1);
            b.goto(top);
            b.place(done);
        });
        b.ret_void();
        pb.implement(run, b);
        pb.finish()
    }

    #[test]
    fn builder_output_verifies() {
        assert_eq!(verify_program(&ok_program()), Ok(()));
    }

    #[test]
    fn rewritten_output_verifies() {
        // The rewrite pass must preserve well-formedness: consistent
        // heights across the injected SaveState and remapped branches.
        let r = rewrite_program(&ok_program());
        assert_eq!(verify_program(&r), Ok(()));
    }

    fn raw_method(code: Vec<Insn>, params: u16, locals: u16) -> Program {
        Program {
            methods: vec![Method {
                name: "m".into(),
                params,
                locals,
                code,
                handlers: vec![],
                sync_regions: vec![],
                synchronized: false,
                rollback_scopes: vec![],
            }],
            n_statics: 4,
            volatile_statics: vec![],
            class_names: Default::default(),
        }
    }

    #[test]
    fn detects_stack_underflow() {
        let p = raw_method(vec![Insn::Pop, Insn::RetVoid], 0, 0);
        let errs = verify_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, VerifyError::StackUnderflow { .. })));
    }

    #[test]
    fn detects_branch_out_of_range() {
        let p = raw_method(vec![Insn::Goto(99)], 0, 0);
        let errs = verify_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, VerifyError::TargetOutOfRange { .. })));
    }

    #[test]
    fn detects_falling_off_the_end() {
        let p = raw_method(vec![Insn::Nop], 0, 0);
        let errs = verify_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, VerifyError::FallsOffEnd { .. })));
    }

    #[test]
    fn detects_local_out_of_range() {
        let p = raw_method(vec![Insn::Load(5), Insn::Pop, Insn::RetVoid], 0, 2);
        let errs = verify_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, VerifyError::LocalOutOfRange { .. })));
    }

    #[test]
    fn detects_height_mismatch_at_join() {
        use Insn::*;
        // path A pushes 1 then joins; path B pushes 2 then joins.
        let code = vec![
            Const(crate::value::Value::Int(0)), // 0: push
            IfZero(4),                          // 1: pop, branch
            Const(crate::value::Value::Int(1)), // 2: height 0 -> 1
            Goto(6),                            // 3:
            Const(crate::value::Value::Int(1)), // 4: height 0 -> 1
            Const(crate::value::Value::Int(2)), // 5: height 1 -> 2
            Pop,                                // 6: join: 1 vs 2
            RetVoid,                            // 7
        ];
        let errs = verify_program(&raw_method(code, 0, 0)).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, VerifyError::HeightMismatch { .. })));
    }

    #[test]
    fn detects_inconsistent_returns() {
        use Insn::*;
        let code = vec![
            Const(crate::value::Value::Int(0)),
            IfZero(3),
            RetVoid,
            Const(crate::value::Value::Int(1)),
            Ret,
        ];
        let errs = verify_program(&raw_method(code, 0, 0)).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, VerifyError::InconsistentReturns { .. })));
    }

    #[test]
    fn detects_bad_call_target() {
        let p = raw_method(vec![Insn::Call(MethodId(9)), Insn::RetVoid], 0, 0);
        let errs = verify_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, VerifyError::BadCallTarget { .. })));
    }

    #[test]
    fn detects_malformed_region() {
        let mut p = raw_method(vec![Insn::Nop, Insn::RetVoid], 0, 0);
        p.methods[0].sync_regions = vec![crate::bytecode::SyncRegion { enter: 0, exit: 2 }];
        let errs = verify_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, VerifyError::MalformedRegion { .. })));
    }

    #[test]
    fn synchronized_method_wrappers_verify() {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let get = pb.declare_method("get", 1);
        let mut g = MethodBuilder::new(1, 1);
        g.set_synchronized();
        g.get_static(0);
        g.ret();
        pb.implement(get, g);
        let r = rewrite_program(&pb.finish());
        assert_eq!(verify_program(&r), Ok(()));
    }
}
