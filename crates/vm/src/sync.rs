//! Monitor operations: enter/exit, wait/notify, priority protocols,
//! deadlock detection hooks.
//!
//! Uncontended acquisition deposits the acquirer's priority in the
//! monitor header (§4). Contended acquisition consults the configured
//! [`InversionPolicy`]: blocking does nothing; revocation compares
//! priorities and flags the holder (see `revoke.rs`); priority
//! inheritance boosts the holder chain; the ceiling protocol boosts at
//! acquisition instead. Monitor release hands ownership directly to the
//! next queued waiter (transfer semantics), so a freshly-revoked
//! low-priority thread re-running its `MonitorEnter` necessarily queues
//! *behind* the high-priority thread that evicted it — the behaviour in
//! Fig. 1(d–f).

use crate::error::VmError;
use crate::thread::{Section, Snapshot, ThreadState};
use crate::trace::TraceEvent;
use crate::value::{ObjRef, Value};
use crate::vm::Vm;
use revmon_core::ThreadId;
use revmon_core::{InversionPolicy, MonitorId, Priority};

impl Vm {
    /// `monitorenter` on `obj` by `tid`. Returns whether the monitor was
    /// acquired (false = the thread blocked on the entry queue).
    pub(crate) fn monitor_enter(&mut self, tid: ThreadId, obj: ObjRef) -> Result<bool, VmError> {
        self.charge(self.config.cost.monitor_op);
        let eff = self.thread(tid).effective_priority;
        let owner = self.monitors.get_mut(obj).owner;
        match owner {
            Some(o) if o == tid => {
                // Reentrant acquisition.
                {
                    let m = self.monitors.get_mut(obj);
                    m.recursion += 1;
                    m.acquires += 1;
                }
                self.thread_mut(tid).metrics.monitor_acquires += 1;
                self.push_section(tid, obj);
                self.emit_trace(TraceEvent::Acquire { thread: tid, monitor: obj });
                Ok(true)
            }
            None => {
                {
                    let m = self.monitors.get_mut(obj);
                    m.owner = Some(tid);
                    m.recursion = 1;
                    m.holder_priority = eff;
                    m.acquires += 1;
                }
                self.thread_mut(tid).held.push(obj);
                self.thread_mut(tid).metrics.monitor_acquires += 1;
                self.apply_ceiling(tid);
                self.push_section(tid, obj);
                self.emit_trace(TraceEvent::Acquire { thread: tid, monitor: obj });
                Ok(true)
            }
            Some(owner) => {
                self.thread_mut(tid).metrics.contended_acquires += 1;
                let holder_prio = self.monitors.get(obj).expect("exists").holder_priority;
                // Queue *first*, so that if an immediate revocation below
                // frees the monitor, the release handoff grants it to this
                // (highest-priority-waiting) requester — the paper's
                // sequence in Fig. 1(d–e).
                {
                    let m = self.monitors.get_mut(obj);
                    m.queue.push(tid, eff);
                    m.contended += 1;
                    m.peak_queue = m.peak_queue.max(m.queue.len());
                }
                self.thread_mut(tid).state = ThreadState::BlockedEnter(obj);
                self.graph.add_wait(tid, MonitorId(obj.0), owner);
                self.emit_trace(TraceEvent::Block { thread: tid, monitor: obj });
                match self.config.policy {
                    InversionPolicy::Blocking | InversionPolicy::PriorityCeiling(_) => {}
                    InversionPolicy::Revocation => {
                        // fault_force_inversion (test-only) treats every
                        // contended acquire as an inversion, forcing the
                        // pathological repeat-revocation the governor
                        // exists to bound.
                        if eff > holder_prio || self.config.fault_force_inversion {
                            self.thread_mut(tid).metrics.inversions_detected += 1;
                            if matches!(
                                self.config.detection,
                                revmon_core::DetectionStrategy::AtAcquisition
                            ) {
                                self.request_revocation(tid, owner, obj)?;
                            }
                        }
                    }
                    InversionPolicy::PriorityInheritance => {
                        if eff > holder_prio {
                            self.thread_mut(tid).metrics.inversions_detected += 1;
                        }
                        self.boost_chain(owner, eff);
                    }
                }
                // The immediate-revocation path may already have granted
                // the monitor to this thread (it becomes Ready with the
                // monitor owned); otherwise check for deadlock.
                if self.thread(tid).state == ThreadState::BlockedEnter(obj) {
                    self.deadlock_check_from(tid)?;
                }
                Ok(false)
            }
        }
    }

    /// Record the new active section for an acquisition that just
    /// succeeded (the `MonitorEnter` already advanced the pc).
    pub(crate) fn push_section(&mut self, tid: ThreadId, obj: ObjRef) {
        let (mid, enter_pc, depth) = {
            let t = self.thread(tid);
            let f = t.frame();
            (f.method, f.pc - 1, t.frames.len() - 1)
        };
        let region = self.program.methods[mid.index()]
            .sync_regions
            .iter()
            .find(|r| r.enter == enter_pc)
            .map(|r| (r.enter, r.exit));
        let sticky_blocked = self.config.sticky_nonrevocable
            && self.monitors.get(obj).map(|m| m.sticky_nonrevocable).unwrap_or(false);
        let acq_id = self.next_acq_id;
        self.next_acq_id += 1;
        let entered_at = self.clock;
        let t = self.thread_mut(tid);
        let snapshot = t.pending_snapshot.take();
        let mark = t.undo.mark();
        t.sections.push(Section {
            monitor: obj,
            acq_id,
            mark,
            frame_depth: depth,
            snapshot,
            revocable: !sticky_blocked,
            region,
            entered_at,
        });
        self.with_probe(|p, vm| p.on_section_enter(vm, tid, obj));
    }

    /// Pop the innermost section (must be on `obj`), commit the undo log
    /// if it was the outermost, and release one recursion level. Shared
    /// by `MonitorExit` and user-exception unwinding.
    pub(crate) fn exit_section_common(
        &mut self,
        tid: ThreadId,
        obj: ObjRef,
    ) -> Result<(), VmError> {
        let Some(top) = self.thread(tid).sections.last() else {
            return Err(VmError::IllegalMonitorState("monitorexit without an active section"));
        };
        if top.monitor != obj {
            return Err(VmError::IllegalMonitorState("unstructured monitorexit"));
        }
        let sec = self.thread_mut(tid).sections.pop().expect("checked");
        if self.thread(tid).sections.is_empty() {
            // Outermost exit: updates can no longer be revoked — retire
            // the log and un-speculate the JMM map.
            let mut log = std::mem::take(&mut self.threads[tid.index()].undo);
            if self.config.jmm_guard {
                for e in log.since(sec.mark) {
                    self.jmm.clear(e.loc, tid);
                }
            }
            log.commit_to(sec.mark);
            self.threads[tid.index()].undo = log;
            self.emit_trace(TraceEvent::Commit { thread: tid, monitor: obj });
            self.with_probe(|p, vm| p.on_commit(vm, tid, obj));
            self.governor.record_commit(obj.0 as u64, tid.0 as u64, self.clock);
        }
        let t = self.thread_mut(tid);
        t.metrics.sections_committed += 1;
        t.consecutive_revocations = 0;
        self.release_one_level(tid, obj)
    }

    /// Release one recursion level of `obj`; on full release, hand the
    /// monitor to the next queued waiter.
    pub(crate) fn release_one_level(&mut self, tid: ThreadId, obj: ObjRef) -> Result<(), VmError> {
        {
            let m = self.monitors.get_mut(obj);
            if m.owner != Some(tid) {
                return Err(VmError::IllegalMonitorState("release of an unowned monitor"));
            }
            m.recursion -= 1;
            if m.recursion > 0 {
                return Ok(());
            }
            m.owner = None;
        }
        let t = self.thread_mut(tid);
        if let Some(p) = t.held.iter().position(|&h| h == obj) {
            t.held.remove(p);
        }
        self.recompute_effective(tid);
        self.emit_trace(TraceEvent::Release { thread: tid, monitor: obj });
        let next = self.monitors.get_mut(obj).queue.pop();
        if let Some(next) = next {
            self.grant(next, obj)?;
        }
        Ok(())
    }

    /// Transfer ownership of `obj` to `next`, which is blocked on it.
    pub(crate) fn grant(&mut self, next: ThreadId, obj: ObjRef) -> Result<(), VmError> {
        let state = self.thread(next).state;
        let (recursion, fresh_section) = match state {
            ThreadState::BlockedEnter(o) if o == obj => (1, true),
            ThreadState::BlockedReacquire(o) if o == obj => {
                (self.thread(next).wait_recursion.max(1), false)
            }
            _ => return Err(VmError::Internal("granted monitor to a thread not blocked on it")),
        };
        let eff = self.thread(next).effective_priority;
        {
            let m = self.monitors.get_mut(obj);
            m.owner = Some(next);
            m.recursion = recursion;
            m.holder_priority = eff;
            m.acquires += 1;
        }
        self.thread_mut(next).held.push(obj);
        self.graph.remove_wait(next);
        self.apply_ceiling(next);
        // Refresh waits-for edges of the remaining waiters: they now wait
        // on the new owner.
        let waiters: Vec<ThreadId> =
            self.monitors.get(obj).map(|m| m.queue.iter().copied().collect()).unwrap_or_default();
        for w in waiters {
            self.graph.add_wait(w, MonitorId(obj.0), next);
        }
        if fresh_section {
            self.thread_mut(next).metrics.monitor_acquires += 1;
            self.push_section(next, obj);
        }
        self.emit_trace(TraceEvent::Acquire { thread: next, monitor: obj });
        self.make_ready(next);
        Ok(())
    }

    /// `Object.wait()` (§2.2 and footnote 2).
    ///
    /// The monitor is fully released (all recursion levels) and the
    /// thread parks in the wait set. Revocability treatment:
    ///
    /// * **nested wait** (any other section active): every active section
    ///   becomes non-revocable — a rolled-back `wait` would un-deliver a
    ///   `notify`, violating Java semantics;
    /// * **non-nested wait** (exactly one active section, on this
    ///   monitor): updates made before the `wait` are committed (they
    ///   became visible at the release anyway) and the section's restart
    ///   point moves to just after the `wait` — "a potential rollback
    ///   will therefore not reach beyond the point when wait was called".
    pub(crate) fn do_wait(&mut self, tid: ThreadId, obj: ObjRef) -> Result<(), VmError> {
        if !self.monitors.get(obj).map(|m| m.owned_by(tid)).unwrap_or(false) {
            return Err(VmError::IllegalMonitorState("wait on an unowned monitor"));
        }
        // The precise post-wait restart point (footnote 2) is only
        // representable when the `wait` executes in the *same frame* as
        // the section's `monitorenter`: the snapshot stores exactly one
        // frame, and a wait in a callee could be revoked after that
        // callee returned, when its frame no longer exists. Nested
        // sections, foreign monitors, and callee-frame waits all take the
        // conservative path: every enclosing section becomes
        // non-revocable.
        let nested = {
            let t = self.thread(tid);
            t.sections.len() > 1
                || t.sections.first().map(|s| s.monitor != obj).unwrap_or(true)
                || t.sections.first().map(|s| s.frame_depth != t.frames.len() - 1).unwrap_or(true)
        };
        if nested {
            let flipped = self.thread_mut(tid).mark_all_nonrevocable();
            self.global.monitors_marked_nonrevocable += flipped;
            if flipped > 0 {
                self.emit_trace(TraceEvent::NonRevocable { thread: tid, monitor: obj });
            }
            if self.config.sticky_nonrevocable {
                let monitors: Vec<ObjRef> =
                    self.thread(tid).sections.iter().map(|s| s.monitor).collect();
                for m in monitors {
                    self.monitors.get_mut(m).sticky_nonrevocable = true;
                }
            }
        } else {
            // Single section on `obj`: commit the pre-wait updates and
            // move the restart point past the wait.
            let mark = self.thread(tid).sections[0].mark;
            let mut log = std::mem::take(&mut self.threads[tid.index()].undo);
            if self.config.jmm_guard {
                for e in log.since(mark) {
                    self.jmm.clear(e.loc, tid);
                }
            }
            log.commit_to(mark);
            self.threads[tid.index()].undo = log;
            let t = self.thread_mut(tid);
            let new_mark = t.undo.mark();
            let resume_pc = t.frame().pc; // already advanced past Wait
            let (locals, stack) = {
                let f = t.frame();
                (f.locals.clone(), f.stack.clone())
            };
            let sec = &mut t.sections[0];
            sec.mark = new_mark;
            if sec.snapshot.is_some() {
                sec.snapshot = Some(Snapshot { locals, stack, resume_pc, after_wait: true });
            }
        }
        // Fully release and park.
        let recursion = self.monitors.get(obj).expect("owned").recursion;
        self.thread_mut(tid).wait_recursion = recursion;
        {
            let m = self.monitors.get_mut(obj);
            m.recursion = 1; // release_one_level drops the last level
        }
        self.release_one_level(tid, obj)?;
        self.monitors.get_mut(obj).wait_set.push(tid);
        self.thread_mut(tid).state = ThreadState::Waiting(obj);
        Ok(())
    }

    /// `Object.notify()` / `notifyAll()`. Rolled-back notifications need
    /// no compensation: Java permits spurious wake-ups (§2.2), so a
    /// wake-up whose `notify` was revoked is simply spurious.
    pub(crate) fn do_notify(
        &mut self,
        tid: ThreadId,
        obj: ObjRef,
        all: bool,
    ) -> Result<(), VmError> {
        if !self.monitors.get(obj).map(|m| m.owned_by(tid)).unwrap_or(false) {
            return Err(VmError::IllegalMonitorState("notify on an unowned monitor"));
        }
        loop {
            let woken = {
                let m = self.monitors.get_mut(obj);
                if m.wait_set.is_empty() {
                    break;
                }
                m.wait_set.remove(0)
            };
            let eff = self.thread(woken).effective_priority;
            self.thread_mut(woken).state = ThreadState::BlockedReacquire(obj);
            self.monitors.get_mut(obj).queue.push(woken, eff);
            self.graph.add_wait(woken, MonitorId(obj.0), tid);
            if !all {
                break;
            }
        }
        Ok(())
    }

    /// Apply the priority-ceiling boost after an acquisition.
    pub(crate) fn apply_ceiling(&mut self, tid: ThreadId) {
        if let InversionPolicy::PriorityCeiling(c) = self.config.policy {
            let t = self.thread_mut(tid);
            if t.effective_priority < c {
                t.effective_priority = c;
                t.metrics.priority_boosts += 1;
            }
        }
    }

    /// Recompute a thread's effective priority from its base priority,
    /// remaining inherited waiters, and held ceilings — after a release.
    pub(crate) fn recompute_effective(&mut self, tid: ThreadId) {
        let base = self.thread(tid).base_priority;
        let held = self.thread(tid).held.clone();
        let mut eff = base;
        match self.config.policy {
            InversionPolicy::PriorityInheritance => {
                for &h in &held {
                    if let Some(m) = self.monitors.get(h) {
                        if let Some(p) = m.queue.max_waiting_priority() {
                            eff = eff.max_of(p);
                        }
                    }
                }
            }
            InversionPolicy::PriorityCeiling(c) if !held.is_empty() => {
                eff = eff.max_of(c);
            }
            _ => {}
        }
        self.thread_mut(tid).effective_priority = eff;
        for &h in &held {
            if self.monitors.get(h).map(|m| m.owned_by(tid)).unwrap_or(false) {
                self.monitors.get_mut(h).holder_priority = eff;
            }
        }
    }

    /// Transitive priority-inheritance boost (§5: "it is a transitive
    /// operation"): boost `owner`, and if `owner` is itself blocked,
    /// propagate along the chain.
    pub(crate) fn boost_chain(&mut self, owner: ThreadId, needed: Priority) {
        let mut cur = owner;
        loop {
            if needed <= self.thread(cur).effective_priority {
                break;
            }
            self.thread_mut(cur).effective_priority = needed;
            self.thread_mut(cur).metrics.priority_boosts += 1;
            let held = self.thread(cur).held.clone();
            for h in held {
                if self.monitors.get(h).map(|m| m.owned_by(cur)).unwrap_or(false) {
                    self.monitors.get_mut(h).holder_priority = needed;
                }
            }
            // Re-prioritize `cur` in the queue it waits in (in place —
            // a remove + re-push would assign a fresh arrival sequence
            // and demote the boosted waiter behind later same-priority
            // arrivals), then follow the chain.
            match self.thread(cur).state {
                ThreadState::BlockedEnter(m2) | ThreadState::BlockedReacquire(m2) => {
                    let mon = self.monitors.get_mut(m2);
                    mon.queue.reprioritize(|&t| t == cur, needed);
                    match self.monitors.get(m2).and_then(|m| m.owner) {
                        Some(next_owner) => cur = next_owner,
                        None => break,
                    }
                }
                _ => break,
            }
        }
    }

    /// After `waiter` blocked: look for a deadlock cycle and, under the
    /// revocation policy, break it by revoking a victim (§1.1).
    pub(crate) fn deadlock_check_from(&mut self, waiter: ThreadId) -> Result<(), VmError> {
        let Some(cycle) = self.graph.find_cycle_from(waiter) else {
            return Ok(());
        };
        self.global.deadlocks_detected += 1;
        self.emit_trace(TraceEvent::DeadlockDetected { cycle_len: cycle.len() });
        if !self.config.policy.can_break_deadlock() {
            return Ok(()); // will surface as VmError::Stalled
        }
        // Victim: lowest-priority member (youngest on ties) that holds a
        // revocable section on the monitor its predecessor in the cycle
        // waits for.
        let mut candidates: Vec<(Priority, std::cmp::Reverse<u32>, ThreadId, ObjRef, u64)> =
            Vec::new();
        for &v in &cycle {
            // predecessor = the cycle member whose edge points at v
            let Some(pred) = cycle
                .iter()
                .copied()
                .find(|&p| self.graph.edge_of(p).map(|e| e.owner == v).unwrap_or(false))
            else {
                continue;
            };
            let Some(edge) = self.graph.edge_of(pred) else { continue };
            let held_monitor = ObjRef(edge.monitor.0);
            let t = self.thread(v);
            let Some(idx) = t.outermost_section_on(held_monitor) else { continue };
            if !t.sections[idx].can_revoke() {
                continue;
            }
            candidates.push((
                t.base_priority,
                std::cmp::Reverse(v.0),
                v,
                held_monitor,
                t.sections[idx].acq_id,
            ));
        }
        candidates.sort();
        let Some(&(_, _, victim, _monitor, acq)) = candidates.first() else {
            return Ok(()); // unbreakable: all sections non-revocable
        };
        self.thread_mut(victim).pending_revoke = Some(acq);
        self.global.deadlocks_broken += 1;
        self.emit_trace(TraceEvent::DeadlockBroken { victim });
        // The victim is blocked (it is part of the cycle) — revoke now.
        self.perform_revocation(victim)?;
        Ok(())
    }

    /// Host-side helper for tests: read a static slot after a run.
    pub fn read_static(&self, slot: u32) -> Result<Value, VmError> {
        Ok(self.heap.read(crate::heap::Location::Static(slot))?)
    }
}
