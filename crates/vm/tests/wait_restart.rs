//! The post-`wait` restart point (§2.2, footnote 2): for a *non-nested*
//! monitor, `wait` releases the monitor and commits the pre-wait updates
//! (they became visible at the release); a later revocation of the
//! section therefore "does not reach beyond the point when wait was
//! called" — the section restarts just after the `wait`, re-acquiring the
//! monitor through the queue.

use revmon_core::Priority;
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig};

/// waiter(lock):
/// ```text
/// synchronized (lock) {
///     static0 = 11;            // pre-wait update
///     while (static1 == 0) wait();
///     static2 = 22;            // post-wait update
///     <long loop on static3>   // window for revocation
/// }
/// ```
/// notifier(lock): sleep; synchronized { static1 = 1; notifyAll; }
/// contender(lock): sleep longer; synchronized { read }  (HIGH priority)
fn build() -> (
    revmon_vm::bytecode::Program,
    revmon_vm::bytecode::MethodId,
    revmon_vm::bytecode::MethodId,
    revmon_vm::bytecode::MethodId,
) {
    let mut pb = ProgramBuilder::new();
    pb.statics(4);

    let waiter = pb.declare_method("waiter", 2);
    let mut w = MethodBuilder::new(2, 3);
    w.sync_on_local(0, |b| {
        b.const_i(11);
        b.put_static(0);
        let check = b.here();
        b.get_static(1);
        let go = b.new_label();
        b.if_non_zero(go);
        b.wait_on_local(0);
        b.goto(check);
        b.place(go);
        b.const_i(22);
        b.put_static(2);
        // long loop: revocation window
        b.const_i(0);
        b.store(2);
        let top = b.here();
        b.load(2);
        b.load(1);
        let done = b.new_label();
        b.if_ge(done);
        b.get_static(3);
        b.const_i(1);
        b.add();
        b.put_static(3);
        b.load(2);
        b.const_i(1);
        b.add();
        b.store(2);
        b.goto(top);
        b.place(done);
    });
    w.ret_void();
    pb.implement(waiter, w);

    let notifier = pb.declare_method("notifier", 1);
    let mut n = MethodBuilder::new(1, 1);
    n.const_i(30_000);
    n.sleep();
    n.sync_on_local(0, |b| {
        b.const_i(1);
        b.put_static(1);
        b.notify_all_local(0);
    });
    n.ret_void();
    pb.implement(notifier, n);

    let contender = pb.declare_method("contender", 1);
    let mut c = MethodBuilder::new(1, 1);
    c.const_i(120_000);
    c.sleep();
    c.sync_on_local(0, |b| {
        b.get_static(0);
        b.pop();
    });
    c.ret_void();
    pb.implement(contender, c);

    (pb.finish(), waiter, notifier, contender)
}

#[test]
fn post_wait_section_is_still_revocable() {
    let (p, waiter, notifier, contender) = build();
    let mut vm = Vm::new(p, VmConfig::modified());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("waiter", waiter, vec![Value::Ref(lock), Value::Int(60_000)], Priority::LOW);
    vm.spawn("notifier", notifier, vec![Value::Ref(lock)], Priority::NORM);
    vm.spawn("contender", contender, vec![Value::Ref(lock)], Priority::HIGH);
    let report = vm.run().expect("run completes");
    // The waiter's post-wait work was revoked and re-executed.
    let wt = &report.threads[0];
    assert!(wt.metrics.rollbacks >= 1, "post-wait section must be revocable");
    // Pre-wait update survived the rollback (committed at the wait).
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(11));
    // Post-wait updates were re-executed to completion.
    assert_eq!(vm.read_static(2).unwrap(), Value::Int(22));
    assert_eq!(vm.read_static(3).unwrap(), Value::Int(60_000));
}

#[test]
fn rollback_does_not_reach_beyond_the_wait() {
    // Trace-level check: the number of entries rolled back must only
    // cover post-wait writes (static2 + the loop), never the pre-wait
    // write to static0.
    let (p, waiter, notifier, contender) = build();
    let mut vm = Vm::new(p, VmConfig::modified().with_trace());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("waiter", waiter, vec![Value::Ref(lock), Value::Int(60_000)], Priority::LOW);
    vm.spawn("notifier", notifier, vec![Value::Ref(lock)], Priority::NORM);
    vm.spawn("contender", contender, vec![Value::Ref(lock)], Priority::HIGH);
    vm.run().expect("run");
    let trace = vm.take_trace();
    let rolled: u64 = trace
        .iter()
        .filter_map(|r| match r.event {
            revmon_vm::TraceEvent::Rollback { entries, .. } => Some(entries),
            _ => None,
        })
        .sum();
    // post-wait log: 1 (static2) + up to 60_000 loop writes; pre-wait
    // write would add exactly one more if (wrongly) still logged, but the
    // stronger signal is static0 surviving:
    assert!(rolled >= 1);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(11));
}

#[test]
fn without_contender_wait_handshake_just_completes() {
    let (p, waiter, notifier, _contender) = build();
    let mut vm = Vm::new(p, VmConfig::modified());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("waiter", waiter, vec![Value::Ref(lock), Value::Int(1_000)], Priority::LOW);
    vm.spawn("notifier", notifier, vec![Value::Ref(lock)], Priority::NORM);
    let report = vm.run().expect("run");
    assert_eq!(report.global.rollbacks, 0);
    assert_eq!(vm.read_static(3).unwrap(), Value::Int(1_000));
}

#[test]
fn unmodified_vm_wait_handshake_same_result() {
    let (p, waiter, notifier, contender) = build();
    let mut vm = Vm::new(p, VmConfig::unmodified());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("waiter", waiter, vec![Value::Ref(lock), Value::Int(60_000)], Priority::LOW);
    vm.spawn("notifier", notifier, vec![Value::Ref(lock)], Priority::NORM);
    vm.spawn("contender", contender, vec![Value::Ref(lock)], Priority::HIGH);
    let report = vm.run().expect("run");
    assert_eq!(report.global.rollbacks, 0);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(11));
    assert_eq!(vm.read_static(2).unwrap(), Value::Int(22));
    assert_eq!(vm.read_static(3).unwrap(), Value::Int(60_000));
}

/// A `wait` executed in a *callee* frame of the section cannot use the
/// precise restart point (the callee's frame may be gone by revocation
/// time); it must take the conservative non-revocable path.
#[test]
fn callee_frame_wait_is_conservative() {
    let mut pb = ProgramBuilder::new();
    pb.statics(4);
    // helper(lock): the actual wait happens one frame below the section
    let helper = pb.declare_method("helper", 1);
    let mut hm = MethodBuilder::new(1, 1);
    let check = hm.here();
    hm.get_static(1);
    let go = hm.new_label();
    hm.if_non_zero(go);
    hm.wait_on_local(0);
    hm.goto(check);
    hm.place(go);
    hm.ret_void();
    pb.implement(helper, hm);

    let waiter = pb.declare_method("waiter", 2);
    let mut w = MethodBuilder::new(2, 3);
    w.sync_on_local(0, |b| {
        b.load(0);
        b.call(helper); // wait happens inside the call
        b.repeat(2, 40_000, |b| b.add_static(3, 1));
    });
    w.ret_void();
    pb.implement(waiter, w);

    let notifier = pb.declare_method("notifier", 1);
    let mut n = MethodBuilder::new(1, 1);
    n.const_i(30_000);
    n.sleep();
    n.sync_on_local(0, |b| {
        b.const_i(1);
        b.put_static(1);
        b.notify_all_local(0);
    });
    n.ret_void();
    pb.implement(notifier, n);

    let contender = pb.declare_method("contender", 1);
    let mut c = MethodBuilder::new(1, 1);
    c.const_i(120_000);
    c.sleep();
    c.sync_on_local(0, |b| {
        b.get_static(3);
        b.pop();
    });
    c.ret_void();
    pb.implement(contender, c);

    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("waiter", waiter, vec![Value::Ref(lock), Value::Int(0)], Priority::LOW);
    vm.spawn("notifier", notifier, vec![Value::Ref(lock)], Priority::NORM);
    vm.spawn("contender", contender, vec![Value::Ref(lock)], Priority::HIGH);
    let report = vm.run().expect("run completes without frame corruption");
    // The section was pinned non-revocable at the callee wait: no rollback,
    // the inversion goes unresolved, and the post-wait work completes once.
    assert_eq!(report.threads[0].metrics.rollbacks, 0);
    assert!(report.global.monitors_marked_nonrevocable >= 1);
    assert!(report.global.inversions_unresolved >= 1);
    assert_eq!(vm.read_static(3).unwrap(), Value::Int(40_000));
}
