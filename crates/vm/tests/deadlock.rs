//! Deadlock detection and resolution by victim revocation (§1.1).

use revmon_core::Priority;
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::{MethodId, NativeOp, Program};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig, VmError};

/// `run(a, b, iters)`: `sync(a) { <spin iters> sync(b) { static0++ } }`.
/// Two threads called with swapped (a, b) deadlock with near-certainty
/// once both are inside their outer sections.
fn crossed_locks_program(with_native: bool) -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 3);
    let mut b = MethodBuilder::new(3, 4);
    b.sync_on_local(0, |b| {
        if with_native {
            b.const_i(0);
            b.native(NativeOp::Emit);
        }
        // spin so both threads take their first lock before trying the second
        b.const_i(0);
        b.store(3);
        let top = b.here();
        b.load(3);
        b.load(2);
        let done = b.new_label();
        b.if_ge(done);
        b.load(3);
        b.const_i(1);
        b.add();
        b.store(3);
        b.goto(top);
        b.place(done);
        b.sync_on_local(1, |b| {
            b.get_static(0);
            b.const_i(1);
            b.add();
            b.put_static(0);
        });
    });
    b.ret_void();
    pb.implement(run, b);
    (pb.finish(), run)
}

#[test]
fn two_thread_deadlock_is_broken_under_revocation() {
    let (p, run) = crossed_locks_program(false);
    let mut vm = Vm::new(p, VmConfig::modified().with_trace());
    let a = vm.heap_mut().alloc(0, 0);
    let b = vm.heap_mut().alloc(0, 0);
    vm.spawn("t1", run, vec![Value::Ref(a), Value::Ref(b), Value::Int(30_000)], Priority::NORM);
    vm.spawn("t2", run, vec![Value::Ref(b), Value::Ref(a), Value::Int(30_000)], Priority::NORM);
    let report = vm.run().expect("deadlock resolved, program completes");
    assert!(report.global.deadlocks_detected >= 1);
    assert!(report.global.deadlocks_broken >= 1);
    assert!(report.global.rollbacks >= 1);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(2), "both inner sections ran");
    let trace = vm.take_trace();
    assert!(trace.iter().any(|r| matches!(r.event, revmon_vm::TraceEvent::DeadlockBroken { .. })));
}

#[test]
fn same_deadlock_stalls_a_blocking_vm() {
    let (p, run) = crossed_locks_program(false);
    let mut vm = Vm::new(p, VmConfig::unmodified());
    let a = vm.heap_mut().alloc(0, 0);
    let b = vm.heap_mut().alloc(0, 0);
    vm.spawn("t1", run, vec![Value::Ref(a), Value::Ref(b), Value::Int(30_000)], Priority::NORM);
    vm.spawn("t2", run, vec![Value::Ref(b), Value::Ref(a), Value::Int(30_000)], Priority::NORM);
    match vm.run() {
        Err(VmError::Stalled(blocked)) => assert_eq!(blocked.len(), 2),
        other => panic!("expected stall, got {other:?}"),
    }
}

#[test]
fn three_thread_cycle_is_broken() {
    // t1: A then B; t2: B then C; t3: C then A.
    let (p, run) = crossed_locks_program(false);
    let mut vm = Vm::new(p, VmConfig::modified());
    let a = vm.heap_mut().alloc(0, 0);
    let b = vm.heap_mut().alloc(0, 0);
    let c = vm.heap_mut().alloc(0, 0);
    let spin = Value::Int(30_000);
    vm.spawn("t1", run, vec![Value::Ref(a), Value::Ref(b), spin], Priority::NORM);
    vm.spawn("t2", run, vec![Value::Ref(b), Value::Ref(c), spin], Priority::NORM);
    vm.spawn("t3", run, vec![Value::Ref(c), Value::Ref(a), spin], Priority::NORM);
    let report = vm.run().expect("3-cycle resolved");
    assert!(report.global.deadlocks_broken >= 1);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(3));
}

#[test]
fn inversion_revocation_preempts_deadlock_formation() {
    // With unequal priorities, the high-priority thread's contended
    // acquisition triggers an inversion revocation of the low-priority
    // holder *before* the waits-for cycle can close: the conflict is
    // resolved without ever reaching the deadlock breaker.
    let (p, run) = crossed_locks_program(false);
    let mut vm = Vm::new(p, VmConfig::modified().with_trace());
    let a = vm.heap_mut().alloc(0, 0);
    let b = vm.heap_mut().alloc(0, 0);
    vm.spawn("hi", run, vec![Value::Ref(a), Value::Ref(b), Value::Int(30_000)], Priority::HIGH);
    vm.spawn("lo", run, vec![Value::Ref(b), Value::Ref(a), Value::Int(30_000)], Priority::LOW);
    let report = vm.run().expect("resolved");
    let lo = report.threads.iter().find(|t| t.name == "lo").unwrap();
    let hi = report.threads.iter().find(|t| t.name == "hi").unwrap();
    assert!(lo.metrics.rollbacks >= 1, "low-priority thread took the rollback");
    assert_eq!(hi.metrics.rollbacks, 0);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(2));
}

#[test]
fn equal_priority_victim_tie_breaks_to_youngest() {
    let (p, run) = crossed_locks_program(false);
    let mut vm = Vm::new(p, VmConfig::modified().with_trace());
    let a = vm.heap_mut().alloc(0, 0);
    let b = vm.heap_mut().alloc(0, 0);
    vm.spawn("t1", run, vec![Value::Ref(a), Value::Ref(b), Value::Int(30_000)], Priority::NORM);
    vm.spawn("t2", run, vec![Value::Ref(b), Value::Ref(a), Value::Int(30_000)], Priority::NORM);
    let report = vm.run().expect("resolved");
    assert!(report.global.deadlocks_broken >= 1);
    let trace = vm.take_trace();
    let victim = trace
        .iter()
        .find_map(|r| match r.event {
            revmon_vm::TraceEvent::DeadlockBroken { victim } => Some(victim),
            _ => None,
        })
        .expect("victim recorded");
    assert_eq!(victim, revmon_core::ThreadId(1), "youngest thread revoked on ties");
    assert_eq!(report.threads[0].metrics.rollbacks, 0);
}

#[test]
fn unbreakable_deadlock_when_sections_are_nonrevocable() {
    // A native call inside each outer section makes every member
    // non-revocable: the deadlock cannot be broken even under revocation.
    let (p, run) = crossed_locks_program(true);
    let mut vm = Vm::new(p, VmConfig::modified());
    let a = vm.heap_mut().alloc(0, 0);
    let b = vm.heap_mut().alloc(0, 0);
    vm.spawn("t1", run, vec![Value::Ref(a), Value::Ref(b), Value::Int(30_000)], Priority::NORM);
    vm.spawn("t2", run, vec![Value::Ref(b), Value::Ref(a), Value::Int(30_000)], Priority::NORM);
    match vm.run() {
        Err(VmError::Stalled(blocked)) => assert_eq!(blocked.len(), 2),
        other => panic!("expected stall, got {other:?}"),
    }
}

#[test]
fn no_false_deadlock_on_nested_distinct_locks() {
    // Consistent lock ordering: never a cycle, nothing ever revoked for
    // deadlock reasons.
    let (p, run) = crossed_locks_program(false);
    let mut vm = Vm::new(p, VmConfig::modified());
    let a = vm.heap_mut().alloc(0, 0);
    let b = vm.heap_mut().alloc(0, 0);
    vm.spawn("t1", run, vec![Value::Ref(a), Value::Ref(b), Value::Int(10_000)], Priority::NORM);
    vm.spawn("t2", run, vec![Value::Ref(a), Value::Ref(b), Value::Int(10_000)], Priority::NORM);
    let report = vm.run().expect("no deadlock");
    assert_eq!(report.global.deadlocks_detected, 0);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(2));
}
