//! Policy baselines: priority inheritance, priority ceiling, and the
//! classic unbounded-inversion scenario (Mars-Pathfinder shape) under a
//! priority-preemptive scheduler.

mod common;

use common::counting_section_program;
use revmon_core::{InversionPolicy, Priority};
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::{MethodId, Program};
use revmon_vm::value::Value;
use revmon_vm::{SchedulerKind, Vm, VmConfig};

/// The classic three-thread inversion:
/// * `low` takes the lock and works inside it,
/// * `med` is pure CPU hog (no locks),
/// * `high` arrives shortly after and needs the lock.
///
/// Under a priority-preemptive scheduler with plain blocking, `med`
/// starves `low`, so `high` waits for both; with inheritance, `low` runs
/// at high priority and `high` waits only for the critical section; with
/// revocation, `high` preempts the section outright.
fn pathfinder_program() -> (Program, MethodId, MethodId, MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);

    // low(lock, iters): one long section.
    let low = pb.declare_method("low", 2);
    let mut b = MethodBuilder::new(2, 3);
    b.sync_on_local(0, |b| {
        b.const_i(0);
        b.store(2);
        let top = b.here();
        b.load(2);
        b.load(1);
        let done = b.new_label();
        b.if_ge(done);
        b.get_static(0);
        b.const_i(1);
        b.add();
        b.put_static(0);
        b.load(2);
        b.const_i(1);
        b.add();
        b.store(2);
        b.goto(top);
        b.place(done);
    });
    b.ret_void();
    pb.implement(low, b);

    // med(iters): lock-free spin on static 1.
    let med = pb.declare_method("med", 1);
    let mut m = MethodBuilder::new(1, 2);
    m.const_i(5_000); // let `low` take the lock first
    m.sleep();
    m.const_i(0);
    m.store(1);
    let top = m.here();
    m.load(1);
    m.load(0);
    let done = m.new_label();
    m.if_ge(done);
    m.get_static(1);
    m.const_i(1);
    m.add();
    m.put_static(1);
    m.load(1);
    m.const_i(1);
    m.add();
    m.store(1);
    m.goto(top);
    m.place(done);
    m.ret_void();
    pb.implement(med, m);

    // high(lock): arrives a bit later, needs one tiny section.
    let high = pb.declare_method("high", 1);
    let mut h = MethodBuilder::new(1, 1);
    h.const_i(10_000);
    h.sleep();
    h.sync_on_local(0, |b| {
        b.get_static(0);
        b.const_i(1);
        b.add();
        b.put_static(0);
    });
    h.ret_void();
    pb.implement(high, h);

    (pb.finish(), low, med, high)
}

fn run_pathfinder(policy: InversionPolicy) -> revmon_vm::RunReport {
    let (p, low, med, high) = pathfinder_program();
    let mut cfg = match policy {
        InversionPolicy::Revocation => VmConfig::modified(),
        _ => VmConfig::unmodified(),
    };
    cfg.policy = policy;
    cfg.scheduler = SchedulerKind::PriorityPreemptive;
    let mut vm = Vm::new(p, cfg);
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("low", low, vec![Value::Ref(lock), Value::Int(30_000)], Priority::LOW);
    vm.spawn("med", med, vec![Value::Int(200_000)], Priority::NORM);
    vm.spawn("high", high, vec![Value::Ref(lock)], Priority::HIGH);
    let report = vm.run().expect("run completes");
    // Whatever the policy, the counter is exact.
    assert_eq!(
        report.threads.iter().map(|t| t.metrics.rollbacks).sum::<u64>() >= 1,
        policy == InversionPolicy::Revocation
    );
    report
}

fn high_elapsed(r: &revmon_vm::RunReport) -> u64 {
    r.threads.iter().find(|t| t.name == "high").unwrap().elapsed()
}

#[test]
fn blocking_exhibits_unbounded_inversion() {
    let blocking = run_pathfinder(InversionPolicy::Blocking);
    let pi = run_pathfinder(InversionPolicy::PriorityInheritance);
    // Under blocking, `high` waits for med's entire CPU burst; under PI
    // the wait is only the remainder of low's section.
    assert!(
        high_elapsed(&blocking) > 2 * high_elapsed(&pi),
        "blocking={} pi={}",
        high_elapsed(&blocking),
        high_elapsed(&pi)
    );
}

#[test]
fn priority_inheritance_boosts_the_holder() {
    let pi = run_pathfinder(InversionPolicy::PriorityInheritance);
    let low = pi.threads.iter().find(|t| t.name == "low").unwrap();
    assert!(low.metrics.priority_boosts >= 1, "holder must inherit priority");
}

#[test]
fn revocation_beats_inheritance_for_high_priority_latency() {
    let pi = run_pathfinder(InversionPolicy::PriorityInheritance);
    let rv = run_pathfinder(InversionPolicy::Revocation);
    // Revocation does not wait for the remainder of the section at all.
    assert!(
        high_elapsed(&rv) <= high_elapsed(&pi),
        "revocation={} pi={}",
        high_elapsed(&rv),
        high_elapsed(&pi)
    );
}

#[test]
fn priority_ceiling_prevents_the_inversion_window() {
    let ceil = run_pathfinder(InversionPolicy::PriorityCeiling(Priority::MAX));
    let blocking = run_pathfinder(InversionPolicy::Blocking);
    // With the ceiling at MAX, `low` runs its section above `med`, so
    // `high` never waits behind the CPU hog.
    assert!(high_elapsed(&ceil) < high_elapsed(&blocking));
    let low = ceil.threads.iter().find(|t| t.name == "low").unwrap();
    assert!(low.metrics.priority_boosts >= 1);
}

#[test]
fn all_policies_preserve_atomicity() {
    for policy in [
        InversionPolicy::Blocking,
        InversionPolicy::Revocation,
        InversionPolicy::PriorityInheritance,
        InversionPolicy::PriorityCeiling(Priority::MAX),
    ] {
        let (p, run) = counting_section_program();
        let mut cfg = if policy == InversionPolicy::Revocation {
            VmConfig::modified()
        } else {
            VmConfig::unmodified()
        };
        cfg.policy = policy;
        let mut vm = Vm::new(p, cfg);
        let lock = vm.heap_mut().alloc(0, 0);
        for i in 0..4 {
            vm.spawn(
                &format!("t{i}"),
                run,
                vec![Value::Ref(lock), Value::Int(2_000)],
                if i % 2 == 0 { Priority::LOW } else { Priority::HIGH },
            );
        }
        vm.run().expect("run");
        assert_eq!(vm.read_static(0).unwrap(), Value::Int(8_000), "policy {policy:?} lost updates");
    }
}

#[test]
fn transitive_inheritance_chain() {
    // t0 holds A (LOW). t1 holds B, blocks on A (NORM). t2 (HIGH) blocks
    // on B: the boost must propagate through t1 to t0.
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let hold_then_take = pb.declare_method("hold_then_take", 3);
    let mut b = MethodBuilder::new(3, 4);
    // let t0 take its lock first
    b.const_i(10_000);
    b.sleep();
    b.sync_on_local(0, |b| {
        // spin before taking the second lock
        b.const_i(0);
        b.store(3);
        let top = b.here();
        b.load(3);
        b.load(2);
        let done = b.new_label();
        b.if_ge(done);
        b.load(3);
        b.const_i(1);
        b.add();
        b.store(3);
        b.goto(top);
        b.place(done);
        b.sync_on_local(1, |b| {
            b.get_static(0);
            b.const_i(1);
            b.add();
            b.put_static(0);
        });
    });
    b.ret_void();
    pb.implement(hold_then_take, b);

    let hold_one = pb.declare_method("hold_one", 2);
    let mut h1 = MethodBuilder::new(2, 3);
    h1.sync_on_local(0, |b| {
        b.const_i(0);
        b.store(2);
        let top = b.here();
        b.load(2);
        b.load(1);
        let done = b.new_label();
        b.if_ge(done);
        b.load(2);
        b.const_i(1);
        b.add();
        b.store(2);
        b.goto(top);
        b.place(done);
    });
    h1.ret_void();
    pb.implement(hold_one, h1);

    let taker = pb.declare_method("taker", 1);
    let mut t = MethodBuilder::new(1, 1);
    t.const_i(30_000);
    t.sleep();
    t.sync_on_local(0, |b| {
        b.get_static(0);
        b.pop();
    });
    t.ret_void();
    pb.implement(taker, t);

    let mut cfg = VmConfig::unmodified();
    cfg.policy = InversionPolicy::PriorityInheritance;
    cfg.scheduler = SchedulerKind::PriorityPreemptive;
    let mut vm = Vm::new(pb.finish(), cfg);
    let a = vm.heap_mut().alloc(0, 0);
    let bl = vm.heap_mut().alloc(0, 0);
    vm.spawn("t0", hold_one, vec![Value::Ref(a), Value::Int(100_000)], Priority::LOW);
    vm.spawn(
        "t1",
        hold_then_take,
        vec![Value::Ref(bl), Value::Ref(a), Value::Int(5_000)],
        Priority::NORM,
    );
    vm.spawn("t2", taker, vec![Value::Ref(bl)], Priority::HIGH);
    let report = vm.run().expect("run");
    let t0 = report.threads.iter().find(|t| t.name == "t0").unwrap();
    let t1 = report.threads.iter().find(|t| t.name == "t1").unwrap();
    assert!(t1.metrics.priority_boosts >= 1, "direct boost");
    assert!(t0.metrics.priority_boosts >= 1, "transitive boost through t1");
}
