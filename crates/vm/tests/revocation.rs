//! End-to-end revocation behaviour: the Figure-1 scenario and its
//! variations, atomicity under rollback, and the modified-vs-unmodified
//! performance claim at test scale.

mod common;

use common::{counting_section_program, run_contenders};
use revmon_core::Priority;
use revmon_vm::value::Value;
use revmon_vm::{TraceEvent, Vm, VmConfig};

/// Section long enough (≫ quantum) that a low-priority holder is always
/// caught inside it.
const LONG: i64 = 5_000;
const SHORT: i64 = 100;

#[test]
fn figure1_low_priority_holder_is_revoked() {
    let (vm, report) = {
        let cfg = VmConfig::modified().with_trace();
        let (p, run) = counting_section_program();
        let mut vm = Vm::new(p, cfg);
        let lock = vm.heap_mut().alloc(0, 0);
        vm.spawn("Tl", run, vec![Value::Ref(lock), Value::Int(LONG)], Priority::LOW);
        vm.spawn("Th", run, vec![Value::Ref(lock), Value::Int(SHORT)], Priority::HIGH);
        let report = vm.run().expect("run");
        (vm, report)
    };
    // Counter is exact: rollback never loses or duplicates increments.
    assert_eq!(report.global.rollbacks, 1, "exactly one revocation expected");
    assert!(report.global.revocations_requested >= 1);
    assert!(report.global.entries_rolled_back > 0);
    let mut vm = vm;
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(LONG + SHORT));
    // Trace tells the Figure-1 story: Tl acquires, Th blocks, revoke
    // request, rollback, Th acquires before Tl's section commits.
    let trace = vm.take_trace();
    let pos = |pred: &dyn Fn(&TraceEvent) -> bool| {
        trace.iter().position(|r| pred(&r.event)).expect("event present")
    };
    let tl = revmon_core::ThreadId(0);
    let th = revmon_core::ThreadId(1);
    let tl_acquire = pos(&|e| matches!(e, TraceEvent::Acquire { thread, .. } if *thread == tl));
    let th_block = pos(&|e| matches!(e, TraceEvent::Block { thread, .. } if *thread == th));
    let revoke = pos(
        &|e| matches!(e, TraceEvent::RevokeRequest { by, holder, .. } if *by == th && *holder == tl),
    );
    let rollback = pos(&|e| matches!(e, TraceEvent::Rollback { thread, .. } if *thread == tl));
    let th_acquire = pos(&|e| matches!(e, TraceEvent::Acquire { thread, .. } if *thread == th));
    let tl_commit = pos(&|e| matches!(e, TraceEvent::Commit { thread, .. } if *thread == tl));
    assert!(tl_acquire < th_block);
    assert!(th_block <= revoke);
    assert!(revoke < rollback);
    assert!(rollback < th_acquire);
    assert!(th_acquire < tl_commit, "Th runs its section before Tl finally commits");
}

#[test]
fn rollback_restores_every_intermediate_value() {
    // After the run the counter must be the exact sum — the revoked
    // thread's partial increments were undone and re-done.
    let (vm, report) = run_contenders(VmConfig::modified(), 3, LONG, 2, SHORT);
    assert_eq!(
        vm.read_static(0).unwrap(),
        Value::Int(3 * LONG + 2 * SHORT),
        "atomicity violated by rollback"
    );
    assert!(report.global.rollbacks >= 1);
}

#[test]
fn unmodified_vm_never_rolls_back() {
    let (vm, report) = run_contenders(VmConfig::unmodified(), 2, LONG, 2, SHORT);
    assert_eq!(report.global.rollbacks, 0);
    assert_eq!(report.global.log_entries, 0);
    assert_eq!(report.global.barrier_fast_paths, 0);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(2 * LONG + 2 * SHORT));
}

#[test]
fn high_priority_threads_finish_faster_on_modified_vm() {
    // The paper's headline: throughput of high-priority threads improves
    // under revocation. 2 high + 4 low contending on one lock.
    let (_, modified) = run_contenders(VmConfig::modified(), 4, LONG, 2, SHORT);
    let (_, unmodified) = run_contenders(VmConfig::unmodified(), 4, LONG, 2, SHORT);
    let m = modified.elapsed_for(Priority::HIGH);
    let u = unmodified.elapsed_for(Priority::HIGH);
    assert!(m < u, "modified VM should help high-priority threads: modified={m} unmodified={u}");
}

#[test]
fn overall_time_is_longer_on_modified_vm() {
    // Re-execution makes the *whole* benchmark slower (Figs. 7–8).
    let (_, modified) = run_contenders(VmConfig::modified(), 4, LONG, 2, SHORT);
    let (_, unmodified) = run_contenders(VmConfig::unmodified(), 4, LONG, 2, SHORT);
    assert!(modified.overall_elapsed() > unmodified.overall_elapsed());
}

#[test]
fn runs_are_deterministic() {
    let (_, a) = run_contenders(VmConfig::modified(), 3, LONG, 2, SHORT);
    let (_, b) = run_contenders(VmConfig::modified(), 3, LONG, 2, SHORT);
    assert_eq!(a.clock, b.clock);
    assert_eq!(a.global, b.global);
    for (x, y) in a.threads.iter().zip(&b.threads) {
        assert_eq!(x.start_time, y.start_time);
        assert_eq!(x.end_time, y.end_time);
        assert_eq!(x.metrics, y.metrics);
    }
}

#[test]
fn high_priority_sections_are_never_revoked_in_two_level_workload() {
    // With only HIGH and LOW priorities, a HIGH holder can never be the
    // victim of an inversion-triggered revocation (footnote 7).
    let (_, report) = run_contenders(VmConfig::modified(), 3, LONG, 3, LONG);
    for t in &report.threads {
        if t.priority == Priority::HIGH {
            assert_eq!(t.metrics.rollbacks, 0, "high-priority thread was revoked");
        }
    }
}

#[test]
fn revoked_thread_reexecutes_and_commits() {
    let (_, report) = run_contenders(VmConfig::modified(), 1, LONG, 1, SHORT);
    let low = &report.threads[0];
    assert_eq!(low.priority, Priority::LOW);
    assert!(low.metrics.rollbacks >= 1);
    assert!(low.metrics.sections_committed >= 1, "revoked section finally committed");
    // Rolled-back work shows up as extra instructions for the low thread.
    assert!(low.metrics.instructions > (LONG as u64) * 8);
}

#[test]
fn livelock_guard_caps_consecutive_revocations() {
    let mut cfg = VmConfig::modified();
    cfg.max_consecutive_revocations = 1;
    let (vm, report) = run_contenders(cfg, 1, LONG, 3, SHORT);
    // Counter must still be exact.
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(LONG + 3 * SHORT));
    // With the guard at 1, the second consecutive request must be denied.
    assert!(report.threads[0].metrics.rollbacks <= 1);
}

#[test]
fn background_detection_also_triggers_revocation() {
    let mut cfg = VmConfig::modified();
    cfg.detection = revmon_core::DetectionStrategy::Background { period: 5_000 };
    let (vm, report) = run_contenders(cfg, 2, LONG, 1, SHORT);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(2 * LONG + SHORT));
    assert!(report.global.rollbacks >= 1, "background scanner should find the inversion");
}

#[test]
fn fifo_queue_discipline_still_correct() {
    let mut cfg = VmConfig::modified();
    cfg.queue_discipline = revmon_core::QueueDiscipline::Fifo;
    let (vm, _) = run_contenders(cfg, 2, LONG, 2, SHORT);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(2 * LONG + 2 * SHORT));
}

/// A section whose body catches its own user exception and continues is
/// still revocable, and its handler-modified state rolls back too.
#[test]
fn exception_handled_inside_section_still_rolls_back() {
    use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
    use revmon_vm::bytecode::CatchKind;

    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    let low = pb.declare_method("low", 2);
    let mut b = MethodBuilder::new(2, 3);
    b.sync_on_local(0, |b| {
        // throw + catch inside the section, mutating static 1 in the handler
        b.try_catch(
            CatchKind::Class(9),
            |b| {
                b.add_static(0, 1);
                b.throw_new(9);
            },
            |b| {
                b.pop();
                b.add_static(1, 1);
            },
        );
        // long tail so the contender catches us here
        b.repeat(2, 5_000, |b| b.add_static(0, 1));
    });
    b.ret_void();
    pb.implement(low, b);
    let high = pb.declare_method("high", 1);
    let mut h = MethodBuilder::new(1, 1);
    h.const_i(30_000);
    h.sleep();
    h.sync_on_local(0, |b| {
        b.get_static(0);
        b.pop();
    });
    h.ret_void();
    pb.implement(high, h);
    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("low", low, vec![Value::Ref(lock), Value::Int(0)], Priority::LOW);
    vm.spawn("high", high, vec![Value::Ref(lock)], Priority::HIGH);
    let report = vm.run().expect("run");
    assert!(report.threads[0].metrics.rollbacks >= 1, "section was revoked");
    // After the retry completed: handler ran exactly once in the surviving
    // execution.
    assert_eq!(vm.read_static(1).unwrap(), Value::Int(1));
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(5_001));
}
