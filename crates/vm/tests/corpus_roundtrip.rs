//! The `.rvm` corpus assembles, round-trips through the disassembler,
//! verifies, and — for the adversarial programs added alongside the
//! exploration subsystem — executes to its documented outputs.

use revmon_vm::value::Value;
use revmon_vm::{assemble, disassemble, verify_program, Vm, VmConfig};

const CORPUS: &[&str] = &[
    "counter.rvm",
    "deadlock.rvm",
    "nested_wait_revoke.rvm",
    "priority_inversion.rvm",
    "producer_consumer.rvm",
    "volatile_revoke.rvm",
];

fn read(name: &str) -> String {
    let path = format!("{}/../../programs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

#[test]
fn every_corpus_program_assembles_and_verifies() {
    for name in CORPUS {
        let program = assemble(&read(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        verify_program(&program).unwrap_or_else(|e| panic!("{name}: {e:?}"));
    }
}

#[test]
fn disassembly_is_deterministic_and_complete_for_the_corpus() {
    // The listing is a pure function of the program, and every declared
    // method appears in it — nothing is dropped in transit.
    for name in CORPUS {
        let src = read(name);
        let a = disassemble(&assemble(&src).unwrap_or_else(|e| panic!("{name}: {e}")));
        let b = disassemble(&assemble(&src).unwrap_or_else(|e| panic!("{name}: {e}")));
        assert_eq!(a, b, "{name}: disassembly must be deterministic");
        let program = assemble(&src).unwrap();
        for m in &program.methods {
            assert!(a.contains(&format!("method {}", m.name)), "{name}: `{}` missing", m.name);
        }
    }
}

#[test]
fn adversarial_listings_show_their_distinguishing_instructions() {
    let nested = disassemble(&assemble(&read("nested_wait_revoke.rvm")).expect("assembles"));
    assert!(nested.contains("wait"), "nested wait must survive disassembly");
    assert!(nested.contains("notifyall"), "notify must survive disassembly");

    let volatile = assemble(&read("volatile_revoke.rvm")).expect("assembles");
    assert_eq!(volatile.volatile_statics, vec![1]);
    let listing = disassemble(&volatile);
    assert!(listing.contains("1 volatile"), "volatile marking must appear in the listing");
}

fn run_to_output(name: &str) -> Vec<Value> {
    let program = assemble(&read(name)).expect("assembles");
    let entry = program.method_by_name("main").expect("main exists");
    let mut vm = Vm::new(program, VmConfig::modified());
    vm.spawn("main", entry, vec![], revmon_core::Priority::NORM);
    let report = vm.run().unwrap_or_else(|e| panic!("{name}: VM fault: {e}"));
    report.output
}

#[test]
fn nested_wait_revoke_commits_each_counter_exactly_once() {
    assert_eq!(run_to_output("nested_wait_revoke.rvm"), vec![Value::Int(1), Value::Int(1)]);
}

#[test]
fn volatile_revoke_publishes_the_final_value() {
    // s0 commits at 42 and the lock-free spy's snapshot of the published
    // state must agree — a rolled-back observation would break this.
    assert_eq!(run_to_output("volatile_revoke.rvm"), vec![Value::Int(42), Value::Int(42)]);
}
