//! Differential fuzzing: randomly generated, race-free, commutative
//! programs must produce identical final heap state on
//!
//! * the unmodified VM (blocking monitors, no barriers),
//! * the modified VM (revocable monitors, rollbacks happening freely),
//! * the modified VM with write-barrier elision.
//!
//! This is the §2 compliance requirement ("programmers must perceive all
//! programs executing in our system to behave exactly the same as on all
//! other existing platforms") checked mechanically over a program space.
//!
//! Generated programs constrain themselves to determinism-by-construction:
//! every *shared* location is only updated commutatively (`+= k`) inside
//! a synchronized block on its owning lock, locks nest in a global order
//! (no deadlocks), and *private* locations are only touched by their
//! owning thread. Any divergence between the three configurations is a
//! genuine VM bug.

use proptest::prelude::*;
use revmon_core::Priority;
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig};

const LOCKS: u8 = 3;
/// Shared statics: one per lock (static s is guarded by lock s).
const SHARED: u8 = LOCKS;
/// Private statics: one per thread, placed after the shared ones.
const MAX_THREADS: usize = 4;

/// Commutative primitive operations.
#[derive(Clone, Debug)]
enum Op {
    /// shared[lock] += k (only generated inside a Sync on that lock)
    AddShared(i64),
    /// private[thread] += k (anywhere)
    AddPrivate(i64),
    /// arr[slot] += 1 on the shared array guarded by the innermost lock
    AddArray(u8),
    /// read the shared static (exercise read barriers)
    ReadShared,
    /// call a helper method that does `private[thread] += 1`
    CallHelper,
}

/// Structured statements. `Sync` blocks may only contain locks strictly
/// greater than the enclosing one (global order ⇒ no deadlock).
#[derive(Clone, Debug)]
enum Stmt {
    Ops(Vec<Op>),
    /// repeat body a small number of times (adds loop back-edges = yield
    /// points)
    Loop(u8, Vec<Op>),
    Sync(u8, Vec<Stmt>),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1i64..5).prop_map(Op::AddShared),
            (1i64..5).prop_map(Op::AddPrivate),
            (0u8..8).prop_map(Op::AddArray),
            Just(Op::ReadShared),
            Just(Op::CallHelper),
        ],
        1..6,
    )
}

fn stmt_strategy(min_lock: u8, depth: u8) -> BoxedStrategy<Stmt> {
    if depth == 0 || min_lock >= LOCKS {
        prop_oneof![
            ops_strategy().prop_map(Stmt::Ops),
            (2u8..6, ops_strategy()).prop_map(|(n, o)| Stmt::Loop(n, o)),
        ]
        .boxed()
    } else {
        prop_oneof![
            3 => ops_strategy().prop_map(Stmt::Ops),
            2 => (2u8..6, ops_strategy()).prop_map(|(n, o)| Stmt::Loop(n, o)),
            2 => (min_lock..LOCKS)
                .prop_flat_map(move |l| {
                    proptest::collection::vec(stmt_strategy(l + 1, depth - 1), 1..3)
                        .prop_map(move |body| Stmt::Sync(l, body))
                }),
        ]
        .boxed()
    }
}

fn thread_body() -> impl Strategy<Value = Vec<Stmt>> {
    proptest::collection::vec(stmt_strategy(0, 2), 1..5)
}

/// Compile one thread's statements. Locals: 0..LOCKS = lock refs,
/// LOCKS = array ref, LOCKS+1 = loop counter.
/// `in_lock`: the innermost held lock (for shared targets), or None.
fn emit_ops(
    b: &mut MethodBuilder,
    ops: &[Op],
    in_lock: Option<u8>,
    tid: usize,
    helper: revmon_vm::bytecode::MethodId,
) {
    let arr_local = LOCKS as u16;
    for op in ops {
        match op {
            Op::AddShared(k) => {
                if let Some(l) = in_lock {
                    let s = l as u16;
                    b.get_static(s);
                    b.const_i(*k);
                    b.add();
                    b.put_static(s);
                } else {
                    // outside any lock: touch the private slot instead
                    let s = SHARED as u16 + tid as u16;
                    b.get_static(s);
                    b.const_i(*k);
                    b.add();
                    b.put_static(s);
                }
            }
            Op::AddPrivate(k) => {
                let s = SHARED as u16 + tid as u16;
                b.get_static(s);
                b.const_i(*k);
                b.add();
                b.put_static(s);
            }
            Op::AddArray(slot) => {
                if let Some(l) = in_lock {
                    // arr[slot] += 1, guarded by the innermost lock — use a
                    // per-lock disjoint slot range to stay race-free.
                    let idx = (l as i64) * 8 + (*slot as i64 % 8);
                    b.load(arr_local);
                    b.const_i(idx);
                    b.load(arr_local);
                    b.const_i(idx);
                    b.aload();
                    b.const_i(1);
                    b.add();
                    b.astore();
                }
            }
            Op::ReadShared => {
                let s = in_lock.unwrap_or(0) as u16;
                if in_lock.is_some() {
                    b.get_static(s);
                    b.pop();
                }
            }
            Op::CallHelper => {
                b.const_i(SHARED as i64 + tid as i64);
                b.call(helper);
            }
        }
    }
}

fn emit_stmts(
    b: &mut MethodBuilder,
    stmts: &[Stmt],
    in_lock: Option<u8>,
    tid: usize,
    helper: revmon_vm::bytecode::MethodId,
) {
    for s in stmts {
        match s {
            Stmt::Ops(ops) => emit_ops(b, ops, in_lock, tid, helper),
            Stmt::Loop(n, ops) => {
                let counter = LOCKS as u16 + 1;
                b.const_i(0);
                b.store(counter);
                let top = b.here();
                b.load(counter);
                b.const_i(*n as i64);
                let done = b.new_label();
                b.if_ge(done);
                emit_ops(b, ops, in_lock, tid, helper);
                b.load(counter);
                b.const_i(1);
                b.add();
                b.store(counter);
                b.goto(top);
                b.place(done);
            }
            Stmt::Sync(l, body) => {
                let lock_local = *l as u16;
                b.sync_on_local(lock_local, |b| {
                    emit_stmts(b, body, Some(*l), tid, helper);
                });
            }
        }
    }
}

/// Reference interpretation of the program: compute the expected final
/// statics and array (interleaving-independent because every update is
/// commutative).
#[derive(Default, Clone, PartialEq, Debug)]
struct Expected {
    statics: Vec<i64>,
    array: Vec<i64>,
}

fn eval_ops(e: &mut Expected, ops: &[Op], in_lock: Option<u8>, tid: usize) {
    for op in ops {
        match op {
            Op::AddShared(k) => {
                let s = in_lock.map(|l| l as usize).unwrap_or(SHARED as usize + tid);
                e.statics[s] += k;
            }
            Op::AddPrivate(k) => e.statics[SHARED as usize + tid] += k,
            Op::AddArray(slot) => {
                if let Some(l) = in_lock {
                    e.array[l as usize * 8 + (*slot as usize % 8)] += 1;
                }
            }
            Op::ReadShared => {}
            Op::CallHelper => e.statics[SHARED as usize + tid] += 1,
        }
    }
}

fn eval_stmts(e: &mut Expected, stmts: &[Stmt], in_lock: Option<u8>, tid: usize) {
    for s in stmts {
        match s {
            Stmt::Ops(ops) => eval_ops(e, ops, in_lock, tid),
            Stmt::Loop(n, ops) => {
                for _ in 0..*n {
                    eval_ops(e, ops, in_lock, tid);
                }
            }
            Stmt::Sync(l, body) => eval_stmts(e, body, Some(*l), tid),
        }
    }
}

fn run_config(bodies: &[Vec<Stmt>], cfg: VmConfig) -> (Expected, u64) {
    let n_statics = SHARED as u32 + MAX_THREADS as u32;
    let mut pb = ProgramBuilder::new();
    pb.statics(n_statics);
    // helper(slot): statics[slot] += 1
    let helper = pb.declare_method("helper", 1);
    let mut h = MethodBuilder::new(1, 1);
    // statics are addressed dynamically… our ISA has static-indexed
    // slots only; emit a dispatch chain over the known range instead.
    pb_helper_end(&mut h, n_statics);
    pb.implement(helper, h);
    // one method per thread
    let mut methods = Vec::new();
    for (tid, body) in bodies.iter().enumerate() {
        let id = pb.declare_method(&format!("t{tid}"), LOCKS as u16 + 1);
        let mut b = MethodBuilder::new(LOCKS as u16 + 1, LOCKS as u16 + 2);
        emit_stmts(&mut b, body, None, tid, helper);
        b.ret_void();
        pb.implement(id, b);
        methods.push(id);
    }
    let mut vm = Vm::new(pb.finish(), cfg);
    let locks: Vec<Value> = (0..LOCKS).map(|_| Value::Ref(vm.heap_mut().alloc(0, 0))).collect();
    let arr = vm.heap_mut().alloc_array(LOCKS as u32 * 8);
    for (tid, &m) in methods.iter().enumerate() {
        let mut args = locks.clone();
        args.push(Value::Ref(arr));
        let prio = if tid % 2 == 0 { Priority::HIGH } else { Priority::LOW };
        vm.spawn(&format!("t{tid}"), m, args, prio);
    }
    let report = vm.run().expect("generated program runs");
    let statics = (0..n_statics)
        .map(|s| match vm.read_static(s).unwrap() {
            Value::Int(i) => i,
            Value::Null => 0,
            v => panic!("{v:?}"),
        })
        .collect();
    let array = (0..LOCKS as u32 * 8)
        .map(|i| match vm.heap().read(revmon_vm::heap::Location::Obj(arr, i)).unwrap() {
            Value::Int(v) => v,
            v => panic!("{v:?}"),
        })
        .collect();
    (Expected { statics, array }, report.global.rollbacks)
}

/// helper body: chain of compares `if slot == s { statics[s] += 1 }`.
fn pb_helper_end(h: &mut MethodBuilder, n_statics: u32) {
    let end = h.new_label();
    for s in 0..n_statics {
        h.load(0);
        h.const_i(s as i64);
        let next = h.new_label();
        h.if_ne(next);
        h.get_static(s as u16);
        h.const_i(1);
        h.add();
        h.put_static(s as u16);
        h.goto(end);
        h.place(next);
    }
    h.place(end);
    h.ret_void();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_vm_configurations_agree(
        bodies in proptest::collection::vec(thread_body(), 2..=MAX_THREADS),
    ) {
        // Reference result.
        let n_statics = SHARED as usize + MAX_THREADS;
        let mut expect = Expected {
            statics: vec![0; n_statics],
            array: vec![0; LOCKS as usize * 8],
        };
        for (tid, b) in bodies.iter().enumerate() {
            eval_stmts(&mut expect, b, None, tid);
        }
        // Three configurations.
        let (unmod, rb_u) = run_config(&bodies, VmConfig::unmodified());
        let (modif, _rb_m) = run_config(&bodies, VmConfig::modified());
        let (elide, _rb_e) = run_config(&bodies, VmConfig::modified().with_elision());
        prop_assert_eq!(rb_u, 0, "unmodified VM must never roll back");
        prop_assert_eq!(&unmod, &expect, "unmodified VM diverged from reference");
        prop_assert_eq!(&modif, &expect, "modified VM diverged from reference");
        prop_assert_eq!(&elide, &expect, "elision diverged from reference");
    }
}
