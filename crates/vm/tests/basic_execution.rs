//! Interpreter fundamentals: arithmetic, control flow, calls, arrays,
//! exceptions — everything the benchmark programs rely on.

use revmon_core::Priority;
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::CatchKind;
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig, ARITH_TAG, NPE_TAG, OOB_TAG};

fn run_single(pb: ProgramBuilder, entry: revmon_vm::bytecode::MethodId) -> Vm {
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    vm.spawn("main", entry, vec![], Priority::NORM);
    vm.run().expect("run");
    vm
}

#[test]
fn arithmetic_chain() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 0);
    // ((7 + 3) * 5 - 2) / 4 % 5 = 12 % 5 ... compute: 10*5=50-2=48/4=12%5=2
    b.const_i(7);
    b.const_i(3);
    b.add();
    b.const_i(5);
    b.mul();
    b.const_i(2);
    b.sub();
    b.const_i(4);
    b.div();
    b.const_i(5);
    b.rem();
    b.put_static(0);
    b.ret_void();
    pb.implement(m, b);
    let vm = run_single(pb, m);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(2));
}

#[test]
fn loop_sums_first_n_integers() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 2);
    b.const_i(0);
    b.store(0); // i
    b.const_i(0);
    b.store(1); // sum
    let top = b.here();
    b.load(0);
    b.const_i(101);
    let done = b.new_label();
    b.if_ge(done);
    b.load(1);
    b.load(0);
    b.add();
    b.store(1);
    b.load(0);
    b.const_i(1);
    b.add();
    b.store(0);
    b.goto(top);
    b.place(done);
    b.load(1);
    b.put_static(0);
    b.ret_void();
    pb.implement(m, b);
    let vm = run_single(pb, m);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(5050));
}

#[test]
fn method_call_and_return_value() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let double = pb.declare_method("double", 1);
    let mut d = MethodBuilder::new(1, 1);
    d.load(0);
    d.const_i(2);
    d.mul();
    d.ret();
    pb.implement(double, d);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 0);
    b.const_i(21);
    b.call(double);
    b.put_static(0);
    b.ret_void();
    pb.implement(m, b);
    let vm = run_single(pb, m);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(42));
}

#[test]
fn recursion_factorial() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let fact = pb.declare_method("fact", 1);
    let mut f = MethodBuilder::new(1, 1);
    f.load(0);
    f.const_i(2);
    let recurse = f.new_label();
    f.if_ge(recurse);
    f.const_i(1);
    f.ret();
    f.place(recurse);
    f.load(0);
    f.load(0);
    f.const_i(1);
    f.sub();
    f.call(fact);
    f.mul();
    f.ret();
    pb.implement(fact, f);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 0);
    b.const_i(10);
    b.call(fact);
    b.put_static(0);
    b.ret_void();
    pb.implement(m, b);
    let vm = run_single(pb, m);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(3_628_800));
}

#[test]
fn arrays_store_and_sum() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 3);
    b.const_i(10);
    b.new_array();
    b.store(0); // arr
    b.const_i(0);
    b.store(1); // i
    let fill = b.here();
    b.load(1);
    b.const_i(10);
    let filled = b.new_label();
    b.if_ge(filled);
    b.load(0);
    b.load(1);
    b.load(1); // arr[i] = i
    b.astore();
    b.load(1);
    b.const_i(1);
    b.add();
    b.store(1);
    b.goto(fill);
    b.place(filled);
    // sum
    b.const_i(0);
    b.store(2);
    b.const_i(0);
    b.store(1);
    let sum = b.here();
    b.load(1);
    b.load(0);
    b.array_len();
    let done = b.new_label();
    b.if_ge(done);
    b.load(2);
    b.load(0);
    b.load(1);
    b.aload();
    b.add();
    b.store(2);
    b.load(1);
    b.const_i(1);
    b.add();
    b.store(1);
    b.goto(sum);
    b.place(done);
    b.load(2);
    b.put_static(0);
    b.ret_void();
    pb.implement(m, b);
    let vm = run_single(pb, m);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(45));
}

#[test]
fn object_fields_roundtrip() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 1);
    b.new_object(7, 2);
    b.store(0);
    b.load(0);
    b.const_i(11);
    b.put_field(0);
    b.load(0);
    b.const_i(31);
    b.put_field(1);
    b.load(0);
    b.get_field(0);
    b.load(0);
    b.get_field(1);
    b.add();
    b.put_static(0);
    b.ret_void();
    pb.implement(m, b);
    let vm = run_single(pb, m);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(42));
}

#[test]
fn try_catch_catches_matching_class() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 0);
    b.try_catch(
        CatchKind::Class(9),
        |b| {
            b.throw_new(9);
        },
        |b| {
            b.pop();
            b.const_i(1);
            b.put_static(0);
        },
    );
    b.ret_void();
    pb.implement(m, b);
    let vm = run_single(pb, m);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(1));
}

#[test]
fn uncaught_exception_terminates_thread() {
    let mut pb = ProgramBuilder::new();
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 0);
    b.throw_new(123);
    b.ret_void();
    pb.implement(m, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    vm.spawn("main", m, vec![], Priority::NORM);
    let report = vm.run().expect("vm itself survives");
    assert_eq!(report.threads[0].uncaught, Some(123));
}

#[test]
fn exception_propagates_through_frames() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let thrower = pb.declare_method("thrower", 0);
    let mut t = MethodBuilder::new(0, 0);
    t.throw_new(5);
    t.ret_void();
    pb.implement(thrower, t);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 0);
    b.try_catch(
        CatchKind::Class(5),
        |b| {
            b.call(thrower);
        },
        |b| {
            b.pop();
            b.const_i(99);
            b.put_static(0);
        },
    );
    b.ret_void();
    pb.implement(m, b);
    let vm = run_single(pb, m);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(99));
}

#[test]
fn finally_runs_on_both_paths() {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 1);
    // normal path
    b.try_finally(
        0,
        |b| {
            b.const_i(1);
            b.put_static(0);
        },
        |b| {
            b.get_static(1);
            b.const_i(1);
            b.add();
            b.put_static(1);
        },
    );
    // exceptional path, caught outside
    b.try_catch(
        CatchKind::Class(3),
        |b| {
            b.try_finally(
                0,
                |b| {
                    b.throw_new(3);
                },
                |b| {
                    b.get_static(1);
                    b.const_i(1);
                    b.add();
                    b.put_static(1);
                },
            );
        },
        |b| {
            b.pop();
        },
    );
    b.ret_void();
    pb.implement(m, b);
    let vm = run_single(pb, m);
    assert_eq!(vm.read_static(1).unwrap(), Value::Int(2), "finally ran twice");
}

#[test]
fn builtin_npe_is_catchable() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 0);
    b.try_catch(
        CatchKind::Class(NPE_TAG),
        |b| {
            b.const_null();
            b.get_field(0);
            b.pop();
        },
        |b| {
            b.pop();
            b.const_i(1);
            b.put_static(0);
        },
    );
    b.ret_void();
    pb.implement(m, b);
    let vm = run_single(pb, m);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(1));
}

#[test]
fn builtin_oob_is_catchable() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 1);
    b.const_i(3);
    b.new_array();
    b.store(0);
    b.try_catch(
        CatchKind::Class(OOB_TAG),
        |b| {
            b.load(0);
            b.const_i(7);
            b.aload();
            b.pop();
        },
        |b| {
            b.pop();
            b.const_i(1);
            b.put_static(0);
        },
    );
    b.ret_void();
    pb.implement(m, b);
    let vm = run_single(pb, m);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(1));
}

#[test]
fn division_by_zero_throws_arith() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 0);
    b.try_catch(
        CatchKind::Class(ARITH_TAG),
        |b| {
            b.const_i(1);
            b.const_i(0);
            b.div();
            b.pop();
        },
        |b| {
            b.pop();
            b.const_i(1);
            b.put_static(0);
        },
    );
    b.ret_void();
    pb.implement(m, b);
    let vm = run_single(pb, m);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(1));
}

#[test]
fn native_emit_reaches_output() {
    let mut pb = ProgramBuilder::new();
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 0);
    b.const_i(42);
    b.native(revmon_vm::bytecode::NativeOp::Emit);
    b.ret_void();
    pb.implement(m, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    vm.spawn("main", m, vec![], Priority::NORM);
    let report = vm.run().unwrap();
    assert_eq!(report.output, vec![Value::Int(42)]);
}

#[test]
fn sleep_advances_virtual_clock() {
    let mut pb = ProgramBuilder::new();
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 0);
    b.const_i(1_000_000);
    b.sleep();
    b.ret_void();
    pb.implement(m, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    vm.spawn("main", m, vec![], Priority::NORM);
    let report = vm.run().unwrap();
    assert!(report.clock >= 1_000_000);
}

#[test]
fn rand_int_is_seed_deterministic_and_bounded() {
    let build = || {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let m = pb.declare_method("main", 0);
        let mut b = MethodBuilder::new(0, 0);
        b.const_i(1000);
        b.rand_int();
        b.put_static(0);
        b.ret_void();
        pb.implement(m, b);
        (pb, m)
    };
    let run = |seed: u64| {
        let (pb, m) = build();
        let mut vm = Vm::new(pb.finish(), VmConfig::unmodified().with_seed(seed));
        vm.spawn("main", m, vec![], Priority::NORM);
        vm.run().unwrap();
        match vm.read_static(0).unwrap() {
            Value::Int(i) => i,
            v => panic!("unexpected {v:?}"),
        }
    };
    let a = run(1);
    let b = run(1);
    let c = run(2);
    assert_eq!(a, b);
    assert!((0..1000).contains(&a));
    assert!((0..1000).contains(&c));
}

#[test]
fn step_limit_guards_infinite_loops() {
    let mut pb = ProgramBuilder::new();
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 0);
    let top = b.here();
    b.goto(top);
    pb.implement(m, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified().with_max_steps(10_000));
    vm.spawn("main", m, vec![], Priority::NORM);
    assert!(matches!(vm.run(), Err(revmon_vm::VmError::StepLimit(_))));
}

#[test]
fn thread_timestamps_cover_run() {
    let mut pb = ProgramBuilder::new();
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 0);
    b.const_i(100);
    b.work();
    b.ret_void();
    pb.implement(m, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    vm.spawn("main", m, vec![], Priority::NORM);
    let report = vm.run().unwrap();
    let t = &report.threads[0];
    assert!(t.end_time > t.start_time);
    assert!(t.elapsed() >= 100);
}

#[test]
fn heap_object_limit_throws_catchable_oom() {
    use revmon_vm::OOM_TAG;
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 1);
    b.try_catch(
        CatchKind::Class(OOM_TAG),
        |b| {
            // allocate until the budget trips
            let top = b.here();
            b.new_object(0, 1);
            b.store(0);
            b.get_static(0);
            b.const_i(1);
            b.add();
            b.put_static(0);
            b.goto(top);
        },
        |b| {
            b.pop();
        },
    );
    b.ret_void();
    pb.implement(m, b);
    let mut cfg = VmConfig::unmodified();
    cfg.max_heap_objects = 100;
    let mut vm = Vm::new(pb.finish(), cfg);
    vm.spawn("main", m, vec![], Priority::NORM);
    let report = vm.run().expect("OOM is a program exception, not a fault");
    assert_eq!(report.threads[0].uncaught, None, "OOM was caught");
    // 100 successful allocations (the OOM object itself is exempt — it is
    // allocated by the VM for the throw).
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(100));
}

#[test]
fn try_new_surfaces_verification_errors() {
    // A method that falls off the end fails verification at Vm::try_new.
    let p = revmon_vm::bytecode::Program {
        methods: vec![revmon_vm::bytecode::Method {
            name: "bad".into(),
            params: 0,
            locals: 0,
            code: vec![revmon_vm::bytecode::Insn::Nop],
            handlers: vec![],
            sync_regions: vec![],
            synchronized: false,
            rollback_scopes: vec![],
        }],
        n_statics: 0,
        volatile_statics: vec![],
        class_names: Default::default(),
    };
    let errs = Vm::try_new(p, VmConfig::unmodified()).err().expect("must fail");
    assert!(!errs.is_empty());
    assert!(errs[0].to_string().contains("falls off the end"));
}

#[test]
fn run_report_summary_mentions_key_counters() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let m = pb.declare_method("main", 0);
    let mut b = MethodBuilder::new(0, 0);
    b.const_i(1);
    b.put_static(0);
    b.ret_void();
    pb.implement(m, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    vm.spawn("main", m, vec![], Priority::NORM);
    let report = vm.run().unwrap();
    let s = report.summary();
    for key in ["virtual clock", "rollbacks", "deadlocks", "barriers", "instructions"] {
        assert!(s.contains(key), "summary missing `{key}`:\n{s}");
    }
}
