//! The JMM-consistency guard scenarios of §2.1–2.2: Figures 2, 3 and 4,
//! plus native calls and nested waits forcing non-revocability.

use revmon_core::Priority;
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::{MethodId, NativeOp, Program};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig};

/// Statics: 0 = v (the leaked variable), 1 = scratch workload counter.
///
/// `writer(outer, inner, iters)`: `sync(outer) { sync(inner) { v = 1 }
/// <long loop on static 1> }`.
/// `reader(inner)`: `sync(inner) { read v }` (Figure 2's T′).
fn figure2_program() -> (Program, MethodId, MethodId, MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);

    let writer = pb.declare_method("writer", 3);
    let mut w = MethodBuilder::new(3, 4);
    w.sync_on_local(0, |b| {
        b.sync_on_local(1, |b| {
            b.const_i(1);
            b.put_static(0);
        });
        // long monitored loop so T' can read while outer is active
        b.const_i(0);
        b.store(3);
        let top = b.here();
        b.load(3);
        b.load(2);
        let done = b.new_label();
        b.if_ge(done);
        b.get_static(1);
        b.const_i(1);
        b.add();
        b.put_static(1);
        b.load(3);
        b.const_i(1);
        b.add();
        b.store(3);
        b.goto(top);
        b.place(done);
    });
    w.ret_void();
    pb.implement(writer, w);

    let reader = pb.declare_method("reader", 1);
    let mut r = MethodBuilder::new(1, 1);
    // arrive while the writer sits in `outer` but after `inner` released
    r.const_i(30_000);
    r.sleep();
    r.sync_on_local(0, |b| {
        b.get_static(0);
        b.pop();
    });
    r.ret_void();
    pb.implement(reader, r);

    // A high-priority thread that tries to take `outer` late.
    let contender = pb.declare_method("contender", 1);
    let mut c = MethodBuilder::new(1, 1);
    c.const_i(60_000);
    c.sleep();
    c.sync_on_local(0, |b| {
        b.get_static(1);
        b.pop();
    });
    c.ret_void();
    pb.implement(contender, c);

    (pb.finish(), writer, reader, contender)
}

#[test]
fn figure2_nested_publication_blocks_revocation_of_outer() {
    let (p, writer, reader, contender) = figure2_program();
    let mut vm = Vm::new(p, VmConfig::modified().with_trace());
    let outer = vm.heap_mut().alloc(0, 0);
    let inner = vm.heap_mut().alloc(0, 0);
    vm.spawn(
        "T",
        writer,
        vec![Value::Ref(outer), Value::Ref(inner), Value::Int(50_000)],
        Priority::LOW,
    );
    vm.spawn("T'", reader, vec![Value::Ref(inner)], Priority::LOW);
    vm.spawn("Th", contender, vec![Value::Ref(outer)], Priority::HIGH);
    let report = vm.run().expect("run");
    // T' observed the speculative write → outer became non-revocable.
    assert!(
        report.global.monitors_marked_nonrevocable >= 1,
        "the cross-thread read must flag the outer monitor"
    );
    // The high-priority contender found the inversion unresolvable.
    assert!(report.global.inversions_unresolved >= 1);
    // And the writer was never rolled back.
    assert_eq!(report.threads[0].metrics.rollbacks, 0);
}

#[test]
fn figure2_without_the_leak_revocation_still_works() {
    // Same shape but the reader never runs: outer stays revocable and the
    // high-priority contender evicts the writer.
    let (p, writer, _reader, contender) = figure2_program();
    let mut vm = Vm::new(p, VmConfig::modified());
    let outer = vm.heap_mut().alloc(0, 0);
    let inner = vm.heap_mut().alloc(0, 0);
    vm.spawn(
        "T",
        writer,
        vec![Value::Ref(outer), Value::Ref(inner), Value::Int(50_000)],
        Priority::LOW,
    );
    vm.spawn("Th", contender, vec![Value::Ref(outer)], Priority::HIGH);
    let report = vm.run().expect("run");
    assert_eq!(report.global.monitors_marked_nonrevocable, 0);
    assert!(report.threads[0].metrics.rollbacks >= 1, "writer revoked normally");
}

/// Figure 3: a volatile write inside a monitor read by an unmonitored
/// thread.
#[test]
fn figure3_volatile_read_blocks_revocation() {
    let mut pb = ProgramBuilder::new();
    pb.statics(3);
    pb.volatile_static(0); // vol
    let writer = pb.declare_method("writer", 2);
    let mut w = MethodBuilder::new(2, 3);
    w.sync_on_local(0, |b| {
        b.const_i(1);
        b.put_static(0); // vol = 1 (volatile write inside M)
        b.const_i(0);
        b.store(2);
        let top = b.here();
        b.load(2);
        b.load(1);
        let done = b.new_label();
        b.if_ge(done);
        b.get_static(1);
        b.const_i(1);
        b.add();
        b.put_static(1);
        b.load(2);
        b.const_i(1);
        b.add();
        b.store(2);
        b.goto(top);
        b.place(done);
    });
    w.ret_void();
    pb.implement(writer, w);

    // T': spin on the volatile with no monitor at all.
    let reader = pb.declare_method("reader", 0);
    let mut r = MethodBuilder::new(0, 0);
    let spin = r.here();
    r.get_static(0);
    let seen = r.new_label();
    r.if_non_zero(seen);
    r.goto(spin);
    r.place(seen);
    r.const_i(1);
    r.put_static(2);
    r.ret_void();
    pb.implement(reader, r);

    let contender = pb.declare_method("contender", 1);
    let mut c = MethodBuilder::new(1, 1);
    c.const_i(60_000);
    c.sleep();
    c.sync_on_local(0, |b| {
        b.get_static(1);
        b.pop();
    });
    c.ret_void();
    pb.implement(contender, c);

    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let m = vm.heap_mut().alloc(0, 0);
    vm.spawn("T", writer, vec![Value::Ref(m), Value::Int(50_000)], Priority::LOW);
    vm.spawn("T'", reader, vec![], Priority::LOW);
    vm.spawn("Th", contender, vec![Value::Ref(m)], Priority::HIGH);
    let report = vm.run().expect("run");
    assert_eq!(vm.read_static(2).unwrap(), Value::Int(1), "reader saw the volatile");
    assert!(report.global.monitors_marked_nonrevocable >= 1);
    assert_eq!(report.threads[0].metrics.rollbacks, 0, "M must not be revoked");
    assert!(report.global.inversions_unresolved >= 1);
}

/// Figure 4: T′ loops on `sync(inner){ if (v) break }` while T publishes
/// `v` from `sync(outer){ sync(inner){ v = true } … }`. Re-scheduling T′
/// fully before T is semantically impossible; our guard instead lets T′
/// observe the value and pins `outer` non-revocable. Both terminate.
#[test]
fn figure4_semantic_dependency_terminates() {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    let t = pb.declare_method("T", 3);
    let mut w = MethodBuilder::new(3, 4);
    w.sync_on_local(0, |b| {
        b.sync_on_local(1, |b| {
            b.const_i(1);
            b.put_static(0); // v = true
        });
        // keep outer busy for a while
        b.const_i(0);
        b.store(3);
        let top = b.here();
        b.load(3);
        b.load(2);
        let done = b.new_label();
        b.if_ge(done);
        b.get_static(1);
        b.const_i(1);
        b.add();
        b.put_static(1);
        b.load(3);
        b.const_i(1);
        b.add();
        b.store(3);
        b.goto(top);
        b.place(done);
    });
    w.ret_void();
    pb.implement(t, w);

    let tprime = pb.declare_method("Tprime", 1);
    let mut r = MethodBuilder::new(1, 2);
    let top = r.here();
    r.const_i(0);
    r.store(1);
    r.sync_on_local(0, |b| {
        b.get_static(0);
        b.store(1);
    });
    r.load(1);
    let brk = r.new_label();
    r.if_non_zero(brk);
    r.goto(top);
    r.place(brk);
    r.ret_void();
    pb.implement(tprime, r);

    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let outer = vm.heap_mut().alloc(0, 0);
    let inner = vm.heap_mut().alloc(0, 0);
    vm.spawn("T", t, vec![Value::Ref(outer), Value::Ref(inner), Value::Int(30_000)], Priority::LOW);
    vm.spawn("T'", tprime, vec![Value::Ref(inner)], Priority::LOW);
    let report = vm.run().expect("terminates — T' saw v");
    assert!(report.global.monitors_marked_nonrevocable >= 1);
    assert!(report.threads.iter().all(|t| t.uncaught.is_none()));
}

/// §2.2: a native call inside a monitor forces non-revocability of the
/// monitor and all enclosing ones.
#[test]
fn native_call_forces_nonrevocability() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let low = pb.declare_method("low", 2);
    let mut b = MethodBuilder::new(2, 3);
    b.sync_on_local(0, |b| {
        b.const_i(7);
        b.native(NativeOp::Emit); // irrevocable effect
        b.const_i(0);
        b.store(2);
        let top = b.here();
        b.load(2);
        b.load(1);
        let done = b.new_label();
        b.if_ge(done);
        b.get_static(0);
        b.const_i(1);
        b.add();
        b.put_static(0);
        b.load(2);
        b.const_i(1);
        b.add();
        b.store(2);
        b.goto(top);
        b.place(done);
    });
    b.ret_void();
    pb.implement(low, b);
    let high = pb.declare_method("high", 1);
    let mut h = MethodBuilder::new(1, 1);
    h.const_i(40_000);
    h.sleep();
    h.sync_on_local(0, |b| {
        b.get_static(0);
        b.pop();
    });
    h.ret_void();
    pb.implement(high, h);
    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let m = vm.heap_mut().alloc(0, 0);
    vm.spawn("low", low, vec![Value::Ref(m), Value::Int(50_000)], Priority::LOW);
    vm.spawn("high", high, vec![Value::Ref(m)], Priority::HIGH);
    let report = vm.run().expect("run");
    assert!(report.global.monitors_marked_nonrevocable >= 1);
    assert_eq!(report.threads[0].metrics.rollbacks, 0);
    assert!(report.global.inversions_unresolved >= 1);
    assert_eq!(report.output, vec![Value::Int(7)], "native effect happened once");
}

/// §2.2: `wait` inside a *nested* monitor forces non-revocability of the
/// enclosing monitors (a revoked wait would un-deliver a notify).
#[test]
fn nested_wait_forces_nonrevocability() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let waiter = pb.declare_method("waiter", 2);
    let mut w = MethodBuilder::new(2, 2);
    w.sync_on_local(0, |b| {
        b.sync_on_local(1, |b| {
            b.wait_on_local(1);
        });
    });
    w.ret_void();
    pb.implement(waiter, w);
    let notifier = pb.declare_method("notifier", 1);
    let mut n = MethodBuilder::new(1, 1);
    n.const_i(50_000);
    n.sleep();
    n.sync_on_local(0, |b| {
        b.notify_all_local(0);
    });
    n.ret_void();
    pb.implement(notifier, n);
    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let outer = vm.heap_mut().alloc(0, 0);
    let inner = vm.heap_mut().alloc(0, 0);
    vm.spawn("waiter", waiter, vec![Value::Ref(outer), Value::Ref(inner)], Priority::LOW);
    vm.spawn("notifier", notifier, vec![Value::Ref(inner)], Priority::NORM);
    let report = vm.run().expect("run");
    assert!(report.global.monitors_marked_nonrevocable >= 2, "both enclosing sections flagged");
}

/// Sticky mode: once flagged, the monitor stays non-revocable for future
/// executions too.
#[test]
fn sticky_nonrevocable_extends_to_future_executions() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let low = pb.declare_method("low", 2);
    let mut b = MethodBuilder::new(2, 3);
    // two sections in a row; the first contains a native call
    for with_native in [true, false] {
        b.sync_on_local(0, |bb| {
            if with_native {
                bb.const_i(1);
                bb.native(NativeOp::Emit);
            }
            bb.const_i(0);
            bb.store(2);
            let top = bb.here();
            bb.load(2);
            bb.load(1);
            let done = bb.new_label();
            bb.if_ge(done);
            bb.get_static(0);
            bb.const_i(1);
            bb.add();
            bb.put_static(0);
            bb.load(2);
            bb.const_i(1);
            bb.add();
            bb.store(2);
            bb.goto(top);
            bb.place(done);
        });
    }
    b.ret_void();
    pb.implement(low, b);
    let high = pb.declare_method("high", 1);
    let mut h = MethodBuilder::new(1, 1);
    h.const_i(100_000);
    h.sleep();
    h.sync_on_local(0, |bb| {
        bb.get_static(0);
        bb.pop();
    });
    h.ret_void();
    pb.implement(high, h);
    let mut cfg = VmConfig::modified();
    cfg.sticky_nonrevocable = true;
    let mut vm = Vm::new(pb.finish(), cfg);
    let m = vm.heap_mut().alloc(0, 0);
    vm.spawn("low", low, vec![Value::Ref(m), Value::Int(40_000)], Priority::LOW);
    vm.spawn("high", high, vec![Value::Ref(m)], Priority::HIGH);
    let report = vm.run().expect("run");
    // The second section (no native call) must also be immune under sticky.
    assert_eq!(report.threads[0].metrics.rollbacks, 0);
}

/// Figure 3 variant with *object-field* volatiles (declared via the
/// allocation-time volatile mask) instead of volatile statics.
#[test]
fn volatile_object_field_blocks_revocation() {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    // writer(lock, obj, iters): sync(lock){ obj.vol = 1; <loop> }
    let writer = pb.declare_method("writer", 3);
    let mut w = MethodBuilder::new(3, 4);
    w.sync_on_local(0, |b| {
        b.load(1);
        b.const_i(1);
        b.put_field(0); // volatile field write inside the monitor
        b.repeat(3, 50_000, |b| {
            b.get_static(1);
            b.const_i(1);
            b.add();
            b.put_static(1);
        });
    });
    w.ret_void();
    pb.implement(writer, w);
    // reader(obj): spin on the volatile field with no monitor
    let reader = pb.declare_method("reader", 1);
    let mut r = MethodBuilder::new(1, 1);
    let spin = r.here();
    r.load(0);
    r.get_field(0);
    let seen = r.new_label();
    r.if_non_zero(seen);
    r.goto(spin);
    r.place(seen);
    r.ret_void();
    pb.implement(reader, r);
    let contender = pb.declare_method("contender", 1);
    let mut c = MethodBuilder::new(1, 1);
    c.const_i(60_000);
    c.sleep();
    c.sync_on_local(0, |b| {
        b.get_static(1);
        b.pop();
    });
    c.ret_void();
    pb.implement(contender, c);

    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let lock = vm.heap_mut().alloc(0, 0);
    let obj = vm.heap_mut().alloc_with_volatile(0, 1, 0b1); // field 0 volatile
    vm.spawn("T", writer, vec![Value::Ref(lock), Value::Ref(obj), Value::Int(0)], Priority::LOW);
    vm.spawn("T'", reader, vec![Value::Ref(obj)], Priority::LOW);
    vm.spawn("Th", contender, vec![Value::Ref(lock)], Priority::HIGH);
    let report = vm.run().expect("run terminates");
    assert!(report.global.monitors_marked_nonrevocable >= 1);
    assert_eq!(report.threads[0].metrics.rollbacks, 0, "pinned by the volatile read");
    assert!(report.global.inversions_unresolved >= 1);
}
