//! Episode reconstruction over deterministic VM traces: the corpus
//! scenarios must analyze into exact, byte-stable reports — the paper's
//! Figure-1 inversion resolves by revocation with measurable wasted
//! work, and the philosophers' deadlock classifies as a deadlock-break.

use revmon_core::Priority;
use revmon_obs::{reconstruct_episodes, write_report, Analysis, EventSink, Resolution, TsUnit};
use revmon_vm::{assemble, Vm, VmConfig};
use std::sync::Arc;

/// Assemble and run a corpus program on the modified VM with a sink
/// attached; return the VM (for names) and the drained events.
fn traced_run(name: &str) -> (Vm, Vec<revmon_obs::Event>) {
    let path = format!("{}/../../programs/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let program = assemble(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
    let entry = program.method_by_name("main").expect("corpus program has a main");
    let mut vm = Vm::new(program, VmConfig::modified());
    let sink = Arc::new(EventSink::new(TsUnit::VirtualTicks));
    vm.attach_sink(Arc::clone(&sink));
    vm.spawn("main", entry, vec![], Priority::NORM);
    vm.run().unwrap_or_else(|e| panic!("{name}: {e}"));
    let events = sink.drain();
    (vm, events)
}

#[test]
fn priority_inversion_episode_report_is_byte_stable() {
    let (vm, events) = traced_run("priority_inversion.rvm");
    let a = Analysis::from_events(&events);

    // Structured expectations first, so a failure names the field.
    assert_eq!(a.episodes.len(), 1);
    let e = &a.episodes[0];
    assert_eq!(e.resolution, Resolution::Revocation);
    assert_eq!(e.holder, 1, "low-priority thread holds");
    assert_eq!(e.requester, 2, "high-priority thread requests");
    assert!(e.wasted_entries > 0, "revocation must roll back undo entries");
    assert!(e.wasted_time > 0, "discarded section time must be accounted");
    assert_eq!(e.latency(), Some(6868), "inversion latency in virtual ticks");
    assert_eq!(e.wasted_entries, 3334);

    // Then the whole report, byte for byte: virtual-tick determinism
    // means re-running the scenario can never change this text without
    // a deliberate VM or cost-model change (update the golden file).
    let names = vm.monitor_names();
    assert_eq!(names.get(&0).map(String::as_str), Some("lock"));
    let mut buf = Vec::new();
    write_report(&mut buf, &a, &names, TsUnit::VirtualTicks).unwrap();
    let report = String::from_utf8(buf).unwrap();
    let golden = include_str!("golden/priority_inversion_report.txt");
    assert_eq!(report, golden, "episode report drifted from golden file");
}

#[test]
fn priority_inversion_trace_is_deterministic_across_runs() {
    let (_, a) = traced_run("priority_inversion.rvm");
    let (_, b) = traced_run("priority_inversion.rvm");
    assert_eq!(a, b, "same program, same config, different trace");
}

#[test]
fn deadlock_classifies_as_deadlock_break() {
    let (vm, events) = traced_run("deadlock.rvm");
    let episodes = reconstruct_episodes(&events);
    assert_eq!(episodes.len(), 1, "episodes: {episodes:?}");
    let e = &episodes[0];
    assert_eq!(e.resolution, Resolution::DeadlockBreak);
    assert_eq!(e.rollbacks, 1, "breaking the cycle rolls the victim back");
    assert!(e.end.is_some(), "the broken deadlock must resolve");

    // Two chopsticks, one class name: instances disambiguate by
    // allocation order.
    let names = vm.monitor_names();
    assert_eq!(names.get(&0).map(String::as_str), Some("chopstick#0"));
    assert_eq!(names.get(&1).map(String::as_str), Some("chopstick#1"));
}

#[test]
fn blocking_policy_yields_natural_release_episodes_not_revocations() {
    // Under the unmodified (blocking) VM the same scenario still shows
    // the inversion — but it resolves by the holder finishing, and no
    // work is wasted. The analyzer must tell these apart.
    let path = format!("{}/../../programs/priority_inversion.rvm", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap();
    let program = assemble(&src).unwrap();
    let entry = program.method_by_name("main").unwrap();
    let mut vm = Vm::new(program, VmConfig::unmodified());
    let sink = Arc::new(EventSink::new(TsUnit::VirtualTicks));
    vm.attach_sink(Arc::clone(&sink));
    vm.spawn("main", entry, vec![], Priority::NORM);
    vm.run().unwrap();
    let events = sink.drain();

    let a = Analysis::from_events(&events);
    assert_eq!(a.revocation_episodes(), 0, "blocking VM cannot revoke");
    assert_eq!(a.wasted_entries, 0);
    for e in &a.episodes {
        assert_ne!(e.resolution, Resolution::Revocation, "episode: {e:?}");
    }
}
