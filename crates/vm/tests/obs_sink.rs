//! The VM trace hook forwards into a `revmon-obs` sink: the Figure-1
//! inversion scenario must produce the same runtime-agnostic event
//! stream the locks runtime emits, with virtual-clock timestamps, and
//! the derived latency histograms must see the episode.

mod common;

use common::counting_section_program;
use revmon_core::Priority;
use revmon_obs::{Event, EventKind, EventSink, TsUnit};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig};
use std::sync::Arc;

const LONG: i64 = 5_000;
const SHORT: i64 = 100;

fn run_figure1(cfg: VmConfig) -> (Arc<EventSink>, revmon_vm::RunReport) {
    let sink = Arc::new(EventSink::new(TsUnit::VirtualTicks));
    let (p, run) = counting_section_program();
    let mut vm = Vm::new(p, cfg);
    vm.attach_sink(Arc::clone(&sink));
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("Tl", run, vec![Value::Ref(lock), Value::Int(LONG)], Priority::LOW);
    vm.spawn("Th", run, vec![Value::Ref(lock), Value::Int(SHORT)], Priority::HIGH);
    let report = vm.run().expect("run");
    (sink, report)
}

#[test]
fn figure1_events_reach_the_sink() {
    let (sink, report) = run_figure1(VmConfig::modified());
    assert_eq!(report.global.rollbacks, 1);

    let events = sink.drain();
    let tl = 0u64;
    let th = 1u64;
    let pos = |pred: &dyn Fn(&Event) -> bool| events.iter().position(pred).expect("event present");
    let tl_acquire = pos(&|e| e.thread == tl && e.kind == EventKind::Acquire);
    let th_block = pos(&|e| e.thread == th && e.kind == EventKind::Block);
    let revoke =
        pos(&|e| e.thread == tl && matches!(e.kind, EventKind::RevokeRequest { by } if by == th));
    let rollback = pos(&|e| e.thread == tl && matches!(e.kind, EventKind::Rollback { .. }));
    let th_acquire = pos(&|e| e.thread == th && e.kind == EventKind::Acquire);
    assert!(tl_acquire < th_block);
    assert!(th_block <= revoke);
    assert!(revoke < rollback);
    assert!(rollback < th_acquire);

    // Rollback duration is the virtual-clock charge of restoring the log.
    let EventKind::Rollback { entries, duration } = events[rollback].kind else { unreachable!() };
    assert!(entries > 0);
    assert!(duration > 0, "rollback cost model charges per entry");

    // Timestamps are the virtual clock: monotone over the drain order and
    // bounded by the final clock value.
    assert!(events.windows(2).all(|w| w[0].ts <= w[1].ts));
    assert!(events.iter().all(|e| e.ts <= report.clock));

    // Derived latencies: Th's blocking episode and Tl's rollback landed
    // in the histograms, and the inversion round-trip (RevokeRequest →
    // Th's Acquire) was measured.
    let h = sink.histograms();
    assert!(h.entry_blocking.count() >= 1);
    assert!(h.section_length.count() >= 2, "both sections measured");
    assert_eq!(h.rollback_duration.count(), 1);
    assert!(h.inversion_resolution.count() >= 1);
}

#[test]
fn sink_works_without_config_trace() {
    // The sink is independent of `config.trace` (no TraceRecord buffer).
    let (sink, _) = run_figure1(VmConfig::modified());
    assert!(sink.recorded() > 0);
}

#[test]
fn unmodified_vm_emits_no_revocation_events() {
    let (sink, report) = run_figure1(VmConfig::unmodified());
    assert_eq!(report.global.rollbacks, 0);
    let events = sink.drain();
    assert!(events.iter().any(|e| e.kind == EventKind::Acquire));
    assert!(events
        .iter()
        .all(|e| !matches!(e.kind, EventKind::Rollback { .. } | EventKind::RevokeRequest { .. })));
}
