//! Configuration-matrix conformance: a battery of small deterministic
//! programs, each with a statically known expected result, executed under
//! *every* supported VM configuration. The §2 compliance requirement says
//! program-observable behaviour must not depend on the mechanism — so the
//! expected values must hold under every policy, scheduler, queue
//! discipline, detection strategy, elision setting, and strictness mode.

use revmon_core::{DetectionStrategy, InversionPolicy, Priority, QueueDiscipline};
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::{CatchKind, MethodId, NativeOp, Program};
use revmon_vm::value::Value;
use revmon_vm::{SchedulerKind, Vm, VmConfig};

/// All configurations worth sweeping.
fn configs() -> Vec<(String, VmConfig)> {
    let mut out = Vec::new();
    for (vm_name, base) in
        [("unmodified", VmConfig::unmodified()), ("modified", VmConfig::modified())]
    {
        for (sched_name, sched) in
            [("rr", SchedulerKind::RoundRobin), ("prio", SchedulerKind::PriorityPreemptive)]
        {
            for (q_name, q) in [("pq", QueueDiscipline::Priority), ("fifo", QueueDiscipline::Fifo)]
            {
                let mut c = base;
                c.scheduler = sched;
                c.queue_discipline = q;
                out.push((format!("{vm_name}/{sched_name}/{q_name}"), c));
            }
        }
    }
    // Extra modified-VM variants.
    let mut bg = VmConfig::modified();
    bg.detection = DetectionStrategy::Background { period: 10_000 };
    out.push(("modified/background-detect".into(), bg));
    out.push(("modified/elision".into(), VmConfig::modified().with_elision()));
    let mut sticky = VmConfig::modified();
    sticky.sticky_nonrevocable = true;
    out.push(("modified/sticky".into(), sticky));
    let mut guard = VmConfig::modified();
    guard.max_consecutive_revocations = 2;
    out.push(("modified/livelock-guard".into(), guard));
    let mut pi = VmConfig::unmodified();
    pi.policy = InversionPolicy::PriorityInheritance;
    pi.scheduler = SchedulerKind::PriorityPreemptive;
    out.push(("pi/preemptive".into(), pi));
    let mut ceil = VmConfig::unmodified();
    ceil.policy = InversionPolicy::PriorityCeiling(Priority::MAX);
    out.push(("ceiling/rr".into(), ceil));
    out
}

struct Case {
    name: &'static str,
    program: Program,
    entry: MethodId,
    threads: usize,
    args: fn(usize, &mut Vm) -> Vec<Value>,
    expected_static0: i64,
}

/// Shared monitor counter: N threads × K increments each.
fn case_counter() -> Case {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 1);
    let mut b = MethodBuilder::new(1, 2);
    b.const_i(0);
    b.store(1);
    let top = b.here();
    b.load(1);
    b.const_i(400);
    let done = b.new_label();
    b.if_ge(done);
    b.sync_on_local(0, |b| {
        b.get_static(0);
        b.const_i(1);
        b.add();
        b.put_static(0);
    });
    b.load(1);
    b.const_i(1);
    b.add();
    b.store(1);
    b.goto(top);
    b.place(done);
    b.ret_void();
    pb.implement(run, b);
    Case {
        name: "counter",
        program: pb.finish(),
        entry: run,
        threads: 4,
        args: |_, vm| {
            // all threads share lock object 0 (allocated by the harness)
            vec![Value::Ref(first_lock(vm))]
        },
        expected_static0: 4 * 400,
    }
}

/// Nested monitors, consistent order.
fn case_nested() -> Case {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 2);
    let mut b = MethodBuilder::new(2, 3);
    b.const_i(0);
    b.store(2);
    let top = b.here();
    b.load(2);
    b.const_i(100);
    let done = b.new_label();
    b.if_ge(done);
    b.sync_on_local(0, |b| {
        b.sync_on_local(1, |b| {
            b.get_static(0);
            b.const_i(3);
            b.add();
            b.put_static(0);
        });
    });
    b.load(2);
    b.const_i(1);
    b.add();
    b.store(2);
    b.goto(top);
    b.place(done);
    b.ret_void();
    pb.implement(run, b);
    Case {
        name: "nested",
        program: pb.finish(),
        entry: run,
        threads: 3,
        args: |_, vm| vec![Value::Ref(first_lock(vm)), Value::Ref(second_lock(vm))],
        expected_static0: 3 * 100 * 3,
    }
}

/// Exceptions inside sections: each iteration throws, catches outside,
/// keeps the pre-throw update (Java semantics).
fn case_exceptions() -> Case {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 1);
    let mut b = MethodBuilder::new(1, 2);
    b.const_i(0);
    b.store(1);
    let top = b.here();
    b.load(1);
    b.const_i(50);
    let done = b.new_label();
    b.if_ge(done);
    b.try_catch(
        CatchKind::Class(7),
        |b| {
            b.sync_on_local(0, |b| {
                b.get_static(0);
                b.const_i(1);
                b.add();
                b.put_static(0);
                b.throw_new(7);
            });
        },
        |b| {
            b.pop();
        },
    );
    b.load(1);
    b.const_i(1);
    b.add();
    b.store(1);
    b.goto(top);
    b.place(done);
    b.ret_void();
    pb.implement(run, b);
    Case {
        name: "exceptions",
        program: pb.finish(),
        entry: run,
        threads: 3,
        args: |_, vm| vec![Value::Ref(first_lock(vm))],
        expected_static0: 3 * 50,
    }
}

/// Synchronized method with a native call (irrevocable path).
fn case_native() -> Case {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let bump = pb.declare_method("bump", 1);
    let mut m = MethodBuilder::new(1, 1);
    m.set_synchronized();
    m.get_static(0);
    m.const_i(1);
    m.add();
    m.put_static(0);
    m.const_i(0);
    m.native(NativeOp::Emit);
    m.ret_void();
    pb.implement(bump, m);
    let run = pb.declare_method("run", 1);
    let mut b = MethodBuilder::new(1, 2);
    b.const_i(0);
    b.store(1);
    let top = b.here();
    b.load(1);
    b.const_i(60);
    let done = b.new_label();
    b.if_ge(done);
    b.load(0);
    b.call(bump);
    b.load(1);
    b.const_i(1);
    b.add();
    b.store(1);
    b.goto(top);
    b.place(done);
    b.ret_void();
    pb.implement(run, b);
    Case {
        name: "native-in-sync-method",
        program: pb.finish(),
        entry: run,
        threads: 3,
        args: |_, vm| vec![Value::Ref(first_lock(vm))],
        expected_static0: 3 * 60,
    }
}

// The harness pre-allocates two lock objects before spawning; these
// helpers fetch them (objects 0 and 1).
fn first_lock(_vm: &mut Vm) -> revmon_vm::value::ObjRef {
    revmon_vm::value::ObjRef(0)
}
fn second_lock(_vm: &mut Vm) -> revmon_vm::value::ObjRef {
    revmon_vm::value::ObjRef(1)
}

fn run_case(case: &Case, cfg: VmConfig) -> i64 {
    let mut vm = Vm::new(case.program.clone(), cfg);
    vm.heap_mut().alloc(0, 0); // lock 0
    vm.heap_mut().alloc(0, 0); // lock 1
    for t in 0..case.threads {
        let prio = if t == 0 { Priority::HIGH } else { Priority::LOW };
        let args = (case.args)(t, &mut vm);
        vm.spawn(&format!("t{t}"), case.entry, args, prio);
    }
    let report = vm.run().unwrap_or_else(|e| panic!("case {} faulted: {e}", case.name));
    for t in &report.threads {
        assert_eq!(t.uncaught, None, "case {}: uncaught exception", case.name);
    }
    match vm.read_static(0).unwrap() {
        Value::Int(i) => i,
        v => panic!("{v:?}"),
    }
}

#[test]
fn every_configuration_preserves_program_semantics() {
    let cases = vec![case_counter(), case_nested(), case_exceptions(), case_native()];
    for case in &cases {
        for (cfg_name, cfg) in configs() {
            let got = run_case(case, cfg);
            assert_eq!(
                got, case.expected_static0,
                "case `{}` diverged under config `{}`",
                case.name, cfg_name
            );
        }
    }
}
