//! End-to-end behaviour of the adaptive revocation governor.
//!
//! The forced repeat-revocation workload (`fault_force_inversion`) makes
//! every contended acquire revoke the holder, so two symmetric threads
//! revoke each other forever: the ungoverned VM livelocks (step-limit),
//! while a governed VM denies the K+1st revocation, falls back to
//! blocking, and completes with an exact counter.

mod common;

use common::counting_section_program;
use revmon_core::{GovernorConfig, Priority};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig, VmError};

const LONG: i64 = 2_000;

fn forced_inversion_cfg() -> VmConfig {
    let mut cfg = VmConfig::modified();
    cfg.fault_force_inversion = true;
    cfg
}

/// Two same-priority threads hammering one lock: with forced inversion
/// each contender revokes the current holder.
fn spawn_pair(cfg: VmConfig) -> Vm {
    let (p, run) = counting_section_program();
    let mut vm = Vm::new(p, cfg);
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("a", run, vec![Value::Ref(lock), Value::Int(LONG)], Priority::NORM);
    vm.spawn("b", run, vec![Value::Ref(lock), Value::Int(LONG)], Priority::NORM);
    vm
}

#[test]
fn forced_repeat_revocation_livelocks_without_governor() {
    let mut cfg = forced_inversion_cfg();
    cfg.max_steps = 2_000_000;
    let mut vm = spawn_pair(cfg);
    let err = vm.run().expect_err("mutual revocation must never finish");
    assert!(matches!(err, VmError::StepLimit(_)), "expected livelock, got: {err}");
    // The livelock signal: the step budget was burnt on repeated
    // rollbacks, and neither thread ever committed its section.
    let report = vm.report();
    assert!(
        report.global.rollbacks > 4,
        "expected a revocation storm, saw {} rollbacks",
        report.global.rollbacks
    );
    assert_eq!(report.global.sections_committed, 0, "livelock should commit nothing");
}

#[test]
fn governed_run_completes_with_bounded_streaks() {
    const K: u32 = 2;
    let mut cfg = forced_inversion_cfg();
    cfg.governor = GovernorConfig { k: K, backoff: 64, decay: 0 };
    cfg.max_steps = 2_000_000;
    let mut vm = spawn_pair(cfg);
    let report = vm.run().expect("governed run must complete");
    // Atomicity still holds through rollback + fallback.
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(2 * LONG));
    // The bounded-revocation guarantee: no (monitor, holder) pair was
    // revoked more than K times in a row.
    assert!(
        vm.governor().max_streak() <= K,
        "streak {} exceeded budget {K}",
        vm.governor().max_streak()
    );
    assert!(report.global.governor_throttles >= 1, "governor never intervened");
    assert!(report.global.policy_fallbacks >= 1, "no fallback window opened");
    assert!(report.global.rollbacks >= 1, "workload should still revoke before throttling");
}

#[test]
fn governed_runs_are_deterministic() {
    let run_once = || {
        let mut cfg = forced_inversion_cfg();
        cfg.governor = GovernorConfig { k: 1, backoff: 32, decay: 0 };
        cfg.max_steps = 2_000_000;
        let mut vm = spawn_pair(cfg);
        let report = vm.run().expect("governed run completes");
        (report.clock, report.global)
    };
    let (clock_a, global_a) = run_once();
    let (clock_b, global_b) = run_once();
    assert_eq!(clock_a, clock_b);
    assert_eq!(global_a, global_b);
}

#[test]
fn decay_reopens_revocation_after_quiet_period() {
    // With a decay window shorter than the inter-contention gap, the
    // governor forgives history and the workload still completes.
    let mut cfg = forced_inversion_cfg();
    cfg.governor = GovernorConfig { k: 1, backoff: 16, decay: 512 };
    cfg.max_steps = 4_000_000;
    let mut vm = spawn_pair(cfg);
    let report = vm.run().expect("governed run with decay completes");
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(2 * LONG));
    assert!(report.global.governor_throttles >= 1);
}

#[test]
fn governor_emits_throttle_and_fallback_trace_events() {
    use revmon_vm::TraceEvent;
    let mut cfg = forced_inversion_cfg().with_trace();
    cfg.governor = GovernorConfig { k: 1, backoff: 64, decay: 0 };
    cfg.max_steps = 2_000_000;
    let mut vm = spawn_pair(cfg);
    vm.run().expect("governed run completes");
    let trace = vm.take_trace();
    let throttles =
        trace.iter().filter(|r| matches!(r.event, TraceEvent::GovernorThrottle { .. })).count();
    let fallbacks =
        trace.iter().filter(|r| matches!(r.event, TraceEvent::PolicyFallback { .. })).count();
    assert!(throttles >= 1, "no GovernorThrottle in trace");
    assert!(fallbacks >= 1, "no PolicyFallback in trace");
    assert!(throttles >= fallbacks, "every fresh window implies a throttle");
    // A throttle must precede the throttled contender's next Acquire on
    // the governed monitor: the fallback really did turn into blocking.
    let first_throttle = trace
        .iter()
        .position(|r| matches!(r.event, TraceEvent::GovernorThrottle { .. }))
        .expect("throttle position");
    let holder_commit_after =
        trace[first_throttle..].iter().any(|r| matches!(r.event, TraceEvent::Commit { .. }));
    assert!(holder_commit_after, "the throttled holder never committed after the throttle");
}
