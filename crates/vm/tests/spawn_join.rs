//! Bytecode-level thread creation: `Spawn` / `Join` make programs fully
//! self-contained (a `main` that forks workers and awaits them).

use revmon_core::Priority;
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig, VmError};

/// main: allocates the lock, spawns `n` workers (each increments static 0
/// `iters` times under the lock), joins them all, then checks the total
/// into static 1.
fn fork_join_program(
    n: i64,
    iters: i64,
) -> (revmon_vm::bytecode::Program, revmon_vm::bytecode::MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    let worker = pb.declare_method("worker", 1);
    let mut w = MethodBuilder::new(1, 2);
    w.sync_on_local(0, |b| {
        b.repeat(1, iters, |b| b.add_static(0, 1));
    });
    w.ret_void();
    pb.implement(worker, w);

    let main = pb.declare_method("main", 0);
    // locals: 0 lock, 1 i, 2 tids array
    let mut m = MethodBuilder::new(0, 3);
    m.new_object(0, 0);
    m.store(0);
    m.const_i(n);
    m.new_array();
    m.store(2);
    // spawn loop
    m.repeat(1, n, |b| {
        b.load(2);
        b.load(1);
        // worker arg (lock), then priority (alternate low/high)
        b.load(0);
        b.load(1);
        b.const_i(2);
        b.rem();
        b.if_else(
            |b| b.dup(), // cond consumes the dup'd parity... simpler below
            |b| {
                b.pop();
                b.const_i(8);
            },
            |b| {
                b.pop();
                b.const_i(2);
            },
        );
        b.spawn(worker);
        b.astore(); // tids[i] = spawned id
    });
    // join loop
    m.repeat(1, n, |b| {
        b.load(2);
        b.load(1);
        b.aload();
        b.join();
    });
    // record the observed total
    m.get_static(0);
    m.put_static(1);
    m.ret_void();
    pb.implement(main, m);
    (pb.finish(), main)
}

#[test]
fn fork_join_totals_are_exact_on_both_vms() {
    for cfg in [VmConfig::unmodified(), VmConfig::modified()] {
        let (p, main) = fork_join_program(6, 500);
        let mut vm = Vm::new(p, cfg);
        vm.spawn("main", main, vec![], Priority::NORM);
        let report = vm.run().expect("run");
        // main observed the full total *after* joins — joins really waited.
        assert_eq!(vm.read_static(1).unwrap(), Value::Int(3_000));
        assert_eq!(report.threads.len(), 7, "main + 6 spawned workers");
        assert!(report.threads.iter().all(|t| t.uncaught.is_none()));
    }
}

#[test]
fn spawned_thread_priorities_take_effect() {
    // Workers alternate LOW/HIGH; with revocation the HIGH ones must be
    // able to preempt LOW holders (rollbacks > 0 under contention).
    let (p, main) = fork_join_program(6, 3_000);
    let mut vm = Vm::new(p, VmConfig::modified());
    vm.spawn("main", main, vec![], Priority::NORM);
    let report = vm.run().expect("run");
    assert_eq!(vm.read_static(1).unwrap(), Value::Int(18_000));
    assert!(
        report.global.rollbacks >= 1,
        "high-priority spawned workers should revoke low holders"
    );
}

#[test]
fn join_on_finished_or_self_is_noop() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let quick = pb.declare_method("quick", 0);
    let mut q = MethodBuilder::new(0, 0);
    q.add_static(0, 1);
    q.ret_void();
    pb.implement(quick, q);
    let main = pb.declare_method("main", 0);
    let mut m = MethodBuilder::new(0, 1);
    m.const_i(5); // priority
    m.spawn(quick);
    m.store(0);
    // let it finish
    m.const_i(200_000);
    m.sleep();
    m.load(0);
    m.join(); // already terminated
    m.const_i(0); // join self (main is thread 0)
    m.join();
    m.ret_void();
    pb.implement(main, m);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    vm.spawn("main", main, vec![], Priority::NORM);
    vm.run().expect("no hang");
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(1));
}

#[test]
fn join_out_of_range_throws_catchable_exception() {
    use revmon_vm::bytecode::CatchKind;
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let main = pb.declare_method("main", 0);
    let mut m = MethodBuilder::new(0, 0);
    m.try_catch(
        CatchKind::Class(revmon_vm::OOB_TAG),
        |b| {
            b.const_i(99);
            b.join();
        },
        |b| {
            b.pop();
            b.add_static(0, 1);
        },
    );
    m.ret_void();
    pb.implement(main, m);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    vm.spawn("main", main, vec![], Priority::NORM);
    vm.run().expect("run");
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(1));
}

#[test]
fn join_cycle_is_reported_as_stall() {
    // Two threads joining each other can never finish.
    let mut pb = ProgramBuilder::new();
    let waiter = pb.declare_method("waiter", 1);
    let mut w = MethodBuilder::new(1, 1);
    w.load(0);
    w.join();
    w.ret_void();
    pb.implement(waiter, w);
    let main = pb.declare_method("main", 0);
    let mut m = MethodBuilder::new(0, 1);
    // spawn a waiter that joins main (thread 0)
    m.const_i(0);
    m.const_i(5);
    m.spawn(waiter);
    m.store(0);
    m.load(0);
    m.join(); // main joins the waiter; waiter joins main
    m.ret_void();
    pb.implement(main, m);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    vm.spawn("main", main, vec![], Priority::NORM);
    assert!(matches!(vm.run(), Err(VmError::Stalled(_))));
}

#[test]
fn spawn_inside_section_pins_it_nonrevocable() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let noop = pb.declare_method("noop", 0);
    let mut n = MethodBuilder::new(0, 0);
    n.ret_void();
    pb.implement(noop, n);
    let low = pb.declare_method("low", 2);
    let mut b = MethodBuilder::new(2, 3);
    b.sync_on_local(0, |b| {
        b.const_i(5);
        b.spawn(noop); // irrevocable effect
        b.pop();
        b.repeat(2, 40_000, |b| b.add_static(0, 1));
    });
    b.ret_void();
    pb.implement(low, b);
    let high = pb.declare_method("high", 1);
    let mut h = MethodBuilder::new(1, 1);
    h.const_i(60_000);
    h.sleep();
    h.sync_on_local(0, |b| {
        b.get_static(0);
        b.pop();
    });
    h.ret_void();
    pb.implement(high, h);
    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("low", low, vec![Value::Ref(lock), Value::Int(0)], Priority::LOW);
    vm.spawn("high", high, vec![Value::Ref(lock)], Priority::HIGH);
    let report = vm.run().expect("run");
    assert_eq!(report.threads[0].metrics.rollbacks, 0, "spawn made the section irrevocable");
    assert!(report.global.monitors_marked_nonrevocable >= 1);
    assert!(report.global.inversions_unresolved >= 1);
    // exactly one spawned thread exists (never duplicated by a rollback)
    assert_eq!(report.threads.len(), 3);
}
