//! Property-based whole-VM tests: atomicity, equivalence of the modified
//! and unmodified VMs on race-free programs, and determinism — across
//! randomized workload shapes.

mod common;

use common::{counting_section_program, repeated_sections_program};
use proptest::prelude::*;
use revmon_core::Priority;
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig};

fn total_counter(vm: &mut Vm) -> i64 {
    match vm.read_static(0).unwrap() {
        Value::Int(i) => i,
        v => panic!("unexpected {v:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Monitor atomicity holds for arbitrary thread mixes and section
    /// lengths under the revocation-enabled VM: the shared counter ends
    /// exactly at the sum of all increments, despite rollbacks.
    #[test]
    fn counter_is_exact_under_revocation(
        lows in 1usize..5,
        highs in 1usize..4,
        iters_low in 200i64..4_000,
        iters_high in 50i64..2_000,
        seed in any::<u64>(),
    ) {
        let (p, run) = counting_section_program();
        let mut vm = Vm::new(p, VmConfig::modified().with_seed(seed));
        let lock = vm.heap_mut().alloc(0, 0);
        for i in 0..lows {
            vm.spawn(&format!("l{i}"), run,
                vec![Value::Ref(lock), Value::Int(iters_low)], Priority::LOW);
        }
        for i in 0..highs {
            vm.spawn(&format!("h{i}"), run,
                vec![Value::Ref(lock), Value::Int(iters_high)], Priority::HIGH);
        }
        vm.run().expect("run");
        prop_assert_eq!(
            total_counter(&mut vm),
            lows as i64 * iters_low + highs as i64 * iters_high
        );
    }

    /// The modified VM computes the same final state as the unmodified VM
    /// for monitor-disciplined programs (compliance requirement, §2).
    #[test]
    fn modified_vm_is_observationally_equivalent(
        lows in 1usize..4,
        highs in 1usize..3,
        iters in 100i64..2_000,
        sections in 1i64..4,
    ) {
        let results: Vec<i64> = [VmConfig::unmodified(), VmConfig::modified()]
            .into_iter()
            .map(|cfg| {
                let (p, run) = repeated_sections_program();
                let mut vm = Vm::new(p, cfg);
                let lock = vm.heap_mut().alloc(0, 0);
                for i in 0..lows {
                    vm.spawn(&format!("l{i}"), run,
                        vec![Value::Ref(lock), Value::Int(iters), Value::Int(sections)],
                        Priority::LOW);
                }
                for i in 0..highs {
                    vm.spawn(&format!("h{i}"), run,
                        vec![Value::Ref(lock), Value::Int(iters / 2), Value::Int(sections)],
                        Priority::HIGH);
                }
                vm.run().expect("run");
                total_counter(&mut vm)
            })
            .collect();
        prop_assert_eq!(results[0], results[1]);
        prop_assert_eq!(
            results[0],
            (lows as i64 * iters + highs as i64 * (iters / 2)) * sections
        );
    }

    /// Same seed ⇒ identical run; different behaviourally-relevant seed
    /// only matters if the program consults the RNG (these don't, so all
    /// seeds agree — full determinism).
    #[test]
    fn determinism_across_seeds_without_rng(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let run_once = |seed: u64| {
            let (p, run) = counting_section_program();
            let mut vm = Vm::new(p, VmConfig::modified().with_seed(seed));
            let lock = vm.heap_mut().alloc(0, 0);
            vm.spawn("l", run, vec![Value::Ref(lock), Value::Int(3_000)], Priority::LOW);
            vm.spawn("h", run, vec![Value::Ref(lock), Value::Int(500)], Priority::HIGH);
            let r = vm.run().expect("run");
            (r.clock, r.global)
        };
        prop_assert_eq!(run_once(seed_a), run_once(seed_b));
    }

    /// Rollback counters are internally consistent: entries rolled back
    /// never exceed entries logged, and every rollback implies a request.
    #[test]
    fn metric_invariants(
        lows in 1usize..4,
        iters_low in 1_000i64..5_000,
    ) {
        let (p, run) = counting_section_program();
        let mut vm = Vm::new(p, VmConfig::modified());
        let lock = vm.heap_mut().alloc(0, 0);
        for i in 0..lows {
            vm.spawn(&format!("l{i}"), run,
                vec![Value::Ref(lock), Value::Int(iters_low)], Priority::LOW);
        }
        vm.spawn("h", run, vec![Value::Ref(lock), Value::Int(100)], Priority::HIGH);
        let r = vm.run().expect("run");
        prop_assert!(r.global.entries_rolled_back <= r.global.log_entries);
        prop_assert!(r.global.rollbacks <= r.global.revocations_requested);
        prop_assert!(r.global.contended_acquires <= r.global.monitor_acquires + r.global.contended_acquires);
        // every section that ran eventually committed
        let expected_sections = (lows + 1) as u64;
        prop_assert!(r.global.sections_committed >= expected_sections);
    }
}
