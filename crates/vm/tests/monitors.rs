//! Monitor semantics: mutual exclusion, reentrancy, wait/notify,
//! exceptional exits, and synchronized methods.

mod common;

use common::counting_section_program;
use revmon_core::Priority;
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::CatchKind;
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig};

/// Mutual exclusion: interleaved read-modify-write under one monitor is
/// exact for any thread count, on both VM flavours.
#[test]
fn mutual_exclusion_is_exact() {
    for cfg in [VmConfig::unmodified(), VmConfig::modified()] {
        let (p, run) = counting_section_program();
        let mut vm = Vm::new(p, cfg);
        let lock = vm.heap_mut().alloc(0, 0);
        for i in 0..6 {
            vm.spawn(
                &format!("t{i}"),
                run,
                vec![Value::Ref(lock), Value::Int(2_000)],
                if i % 2 == 0 { Priority::LOW } else { Priority::HIGH },
            );
        }
        vm.run().expect("run");
        assert_eq!(vm.read_static(0).unwrap(), Value::Int(12_000));
    }
}

/// Without synchronization the same workload loses updates when a yield
/// point splits the read-modify-write (threads are pseudo-preemptive, so
/// the race needs a yield point between the read and the write — exactly
/// the Jikes RVM model).
#[test]
fn unsynchronized_counter_races() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 1);
    let mut b = MethodBuilder::new(1, 2);
    b.const_i(0);
    b.store(1);
    let top = b.here();
    b.load(1);
    b.load(0);
    let done = b.new_label();
    b.if_ge(done);
    b.get_static(0);
    b.yield_point(); // split the read-modify-write across a context switch
    b.const_i(1);
    b.add();
    b.put_static(0);
    b.load(1);
    b.const_i(1);
    b.add();
    b.store(1);
    b.goto(top);
    b.place(done);
    b.ret_void();
    pb.implement(run, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    for i in 0..4 {
        vm.spawn(&format!("t{i}"), run, vec![Value::Int(30_000)], Priority::NORM);
    }
    vm.run().unwrap();
    let total = match vm.read_static(0).unwrap() {
        Value::Int(i) => i,
        v => panic!("{v:?}"),
    };
    assert!(total < 120_000, "expected lost updates, got {total}");
}

fn triple_reentrant_program() -> (revmon_vm::bytecode::Program, revmon_vm::bytecode::MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 1);
    let mut b = MethodBuilder::new(1, 1);
    b.sync_on_local(0, |b| {
        b.sync_on_local(0, |b| {
            b.sync_on_local(0, |b| {
                b.const_i(7);
                b.put_static(0);
            });
        });
    });
    b.ret_void();
    pb.implement(run, b);
    (pb.finish(), run)
}

#[test]
fn reentrant_acquisition_same_monitor() {
    for cfg in [VmConfig::unmodified(), VmConfig::modified()] {
        let (p, run) = triple_reentrant_program();
        let mut vm = Vm::new(p, cfg);
        let lock = vm.heap_mut().alloc(0, 0);
        vm.spawn("t", run, vec![Value::Ref(lock)], Priority::NORM);
        vm.run().expect("reentrancy works");
        assert_eq!(vm.read_static(0).unwrap(), Value::Int(7));
    }
}

#[test]
fn reentrant_acquisition_modified_vm() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 1);
    let mut b = MethodBuilder::new(1, 1);
    b.sync_on_local(0, |b| {
        b.sync_on_local(0, |b| {
            b.const_i(7);
            b.put_static(0);
        });
    });
    b.ret_void();
    pb.implement(run, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("t", run, vec![Value::Ref(lock)], Priority::NORM);
    vm.run().expect("reentrancy works");
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(7));
}

/// A user exception thrown inside a synchronized block releases the
/// monitor (javac's synthetic handler semantics) and keeps the updates.
fn throwing_section_program() -> (revmon_vm::bytecode::Program, revmon_vm::bytecode::MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    let run = pb.declare_method("run", 1);
    let mut b = MethodBuilder::new(1, 1);
    b.try_catch(
        CatchKind::Class(5),
        |b| {
            b.sync_on_local(0, |b| {
                b.const_i(1);
                b.put_static(0);
                b.throw_new(5);
            });
        },
        |b| {
            b.pop();
        },
    );
    // re-acquire to prove the monitor is free
    b.sync_on_local(0, |b| {
        b.const_i(2);
        b.put_static(1);
    });
    b.ret_void();
    pb.implement(run, b);
    (pb.finish(), run)
}

#[test]
fn exception_inside_section_releases_monitor() {
    for cfg in [VmConfig::unmodified(), VmConfig::modified()] {
        let (p, run) = throwing_section_program();
        let mut vm = Vm::new(p, cfg);
        let lock = vm.heap_mut().alloc(0, 0);
        vm.spawn("t", run, vec![Value::Ref(lock)], Priority::NORM);
        let report = vm.run().expect("no fault");
        assert_eq!(report.threads[0].uncaught, None);
        assert_eq!(vm.read_static(0).unwrap(), Value::Int(1), "updates kept");
        assert_eq!(vm.read_static(1).unwrap(), Value::Int(2), "monitor was released");
    }
}

/// Producer/consumer via wait/notify.
#[test]
fn wait_notify_handshake() {
    let mut pb = ProgramBuilder::new();
    pb.statics(2); // 0: flag, 1: result
    let consumer = pb.declare_method("consumer", 1);
    let mut c = MethodBuilder::new(1, 1);
    c.sync_on_local(0, |b| {
        let check = b.here();
        b.get_static(0);
        let go = b.new_label();
        b.if_non_zero(go);
        b.wait_on_local(0);
        b.goto(check);
        b.place(go);
        b.const_i(42);
        b.put_static(1);
    });
    c.ret_void();
    pb.implement(consumer, c);
    let producer = pb.declare_method("producer", 1);
    let mut p = MethodBuilder::new(1, 1);
    // give the consumer time to park first
    p.const_i(100_000);
    p.sleep();
    p.sync_on_local(0, |b| {
        b.const_i(1);
        b.put_static(0);
        b.notify_all_local(0);
    });
    p.ret_void();
    pb.implement(producer, p);
    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("consumer", consumer, vec![Value::Ref(lock)], Priority::NORM);
    vm.spawn("producer", producer, vec![Value::Ref(lock)], Priority::NORM);
    vm.run().expect("handshake completes");
    assert_eq!(vm.read_static(1).unwrap(), Value::Int(42));
}

/// `synchronized` methods (wrapped by the rewrite pass) provide mutual
/// exclusion just like synchronized blocks.
#[test]
fn synchronized_methods_are_exclusive() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let inc = pb.declare_method("inc", 2); // this, iters
    let mut b = MethodBuilder::new(2, 3);
    b.set_synchronized();
    b.const_i(0);
    b.store(2);
    let top = b.here();
    b.load(2);
    b.load(1);
    let done = b.new_label();
    b.if_ge(done);
    b.get_static(0);
    b.const_i(1);
    b.add();
    b.put_static(0);
    b.load(2);
    b.const_i(1);
    b.add();
    b.store(2);
    b.goto(top);
    b.place(done);
    b.ret_void();
    pb.implement(inc, b);
    let run = pb.declare_method("run", 2);
    let mut r = MethodBuilder::new(2, 2);
    r.load(0);
    r.load(1);
    r.call(inc);
    r.ret_void();
    pb.implement(run, r);
    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let this = vm.heap_mut().alloc(0, 0);
    for i in 0..4 {
        vm.spawn(
            &format!("t{i}"),
            run,
            vec![Value::Ref(this), Value::Int(3_000)],
            if i == 0 { Priority::HIGH } else { Priority::LOW },
        );
    }
    let report = vm.run().expect("run");
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(12_000));
    // Synchronized methods go through the same revocation machinery.
    assert!(report.global.monitor_acquires >= 4);
}

/// `synchronized` methods returning values keep their return value across
/// the wrapper.
#[test]
fn synchronized_method_return_value() {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let get = pb.declare_method("get", 1);
    let mut g = MethodBuilder::new(1, 1);
    g.set_synchronized();
    g.const_i(123);
    g.ret();
    pb.implement(get, g);
    let run = pb.declare_method("run", 1);
    let mut r = MethodBuilder::new(1, 1);
    r.load(0);
    r.call(get);
    r.put_static(0);
    r.ret_void();
    pb.implement(run, r);
    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let this = vm.heap_mut().alloc(0, 0);
    vm.spawn("t", run, vec![Value::Ref(this)], Priority::NORM);
    vm.run().expect("run");
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(123));
}

/// Distinct monitors do not exclude each other: threads on different
/// locks interleave freely and both finish.
#[test]
fn independent_monitors_do_not_contend() {
    let (p, run) = counting_section_program();
    let mut vm = Vm::new(p, VmConfig::modified());
    let lock_a = vm.heap_mut().alloc(0, 0);
    let lock_b = vm.heap_mut().alloc(0, 0);
    vm.spawn("a", run, vec![Value::Ref(lock_a), Value::Int(5_000)], Priority::LOW);
    vm.spawn("b", run, vec![Value::Ref(lock_b), Value::Int(5_000)], Priority::HIGH);
    let report = vm.run().expect("run");
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(10_000));
    assert_eq!(report.global.contended_acquires, 0);
    assert_eq!(report.global.rollbacks, 0);
}

/// Exiting a monitor you do not own is an error.
#[test]
fn unbalanced_monitorexit_is_detected() {
    let mut pb = ProgramBuilder::new();
    let run = pb.declare_method("run", 1);
    let mut b = MethodBuilder::new(1, 1);
    b.load(0);
    b.monitor_exit_raw();
    b.ret_void();
    pb.implement(run, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("t", run, vec![Value::Ref(lock)], Priority::NORM);
    assert!(matches!(vm.run(), Err(revmon_vm::VmError::IllegalMonitorState(_))));
}

/// `wait` without owning the monitor is an error.
#[test]
fn wait_without_ownership_is_detected() {
    let mut pb = ProgramBuilder::new();
    let run = pb.declare_method("run", 1);
    let mut b = MethodBuilder::new(1, 1);
    b.wait_on_local(0);
    b.ret_void();
    pb.implement(run, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("t", run, vec![Value::Ref(lock)], Priority::NORM);
    assert!(matches!(vm.run(), Err(revmon_vm::VmError::IllegalMonitorState(_))));
}

/// A waiting thread with nobody to notify stalls the VM (lost wakeup is
/// reported, not silently hung).
#[test]
fn lost_wakeup_reports_stall() {
    let mut pb = ProgramBuilder::new();
    let run = pb.declare_method("run", 1);
    let mut b = MethodBuilder::new(1, 1);
    b.sync_on_local(0, |b| {
        b.wait_on_local(0);
    });
    b.ret_void();
    pb.implement(run, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("t", run, vec![Value::Ref(lock)], Priority::NORM);
    assert!(matches!(vm.run(), Err(revmon_vm::VmError::Stalled(_))));
}

/// The per-monitor contention profile in the run report.
#[test]
fn monitor_reports_profile_contention() {
    let (p, run) = counting_section_program();
    let mut vm = Vm::new(p, VmConfig::modified());
    let hot = vm.heap_mut().alloc(0, 0);
    for i in 0..4 {
        vm.spawn(
            &format!("t{i}"),
            run,
            vec![Value::Ref(hot), Value::Int(2_000)],
            if i == 0 { Priority::HIGH } else { Priority::LOW },
        );
    }
    let report = vm.run().expect("run");
    assert_eq!(report.monitors.len(), 1);
    let m = &report.monitors[0];
    assert_eq!(m.object, hot);
    assert!(m.acquires >= 4, "each thread acquired at least once");
    assert!(m.contended >= 1);
    assert!(m.peak_queue >= 1 && m.peak_queue <= 3);
    // consistency with the global counters
    assert!(m.acquires >= report.global.monitor_acquires.min(4));
}
