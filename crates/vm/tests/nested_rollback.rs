//! Regression tests for nested and recursive synchronized sections
//! under revocation: rolling back an *inner* section must restore the
//! undo log to the inner mark only — outer-section writes survive and
//! are not lost when the inner section re-executes.

mod common;

use revmon_core::Priority;
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig};

const INNER_ITERS: i64 = 5_000;

/// low(lockA, lockB): syncA { s0 += 1; syncB { s1 += 1 × INNER_ITERS } }
/// high(lockB): sleep; syncB { read }
///
/// The high thread revokes low's *inner* section (on lockB). If the
/// rollback restored to the outer mark instead of the inner one, the
/// `s0 += 1` would be undone — and never redone, because only the inner
/// section re-executes — leaving s0 == 0.
#[test]
fn inner_rollback_preserves_outer_section_writes() {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    let low = pb.declare_method("low", 2);
    let mut b = MethodBuilder::new(2, 4);
    b.sync_on_local(0, |b| {
        b.add_static(0, 1);
        b.sync_on_local(1, |b| {
            b.repeat(2, INNER_ITERS, |b| b.add_static(1, 1));
        });
    });
    b.ret_void();
    pb.implement(low, b);

    let high = pb.declare_method("high", 1);
    let mut h = MethodBuilder::new(1, 2);
    h.const_i(30_000);
    h.sleep();
    h.sync_on_local(0, |b| {
        b.get_static(1);
        b.pop();
    });
    h.ret_void();
    pb.implement(high, h);

    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let lock_a = vm.heap_mut().alloc(0, 0);
    let lock_b = vm.heap_mut().alloc(0, 0);
    vm.spawn("low", low, vec![Value::Ref(lock_a), Value::Ref(lock_b)], Priority::LOW);
    vm.spawn("high", high, vec![Value::Ref(lock_b)], Priority::HIGH);
    let report = vm.run().expect("run");

    assert!(report.threads[0].metrics.rollbacks >= 1, "inner section was never revoked");
    assert_eq!(
        vm.read_static(0).unwrap(),
        Value::Int(1),
        "outer-section write lost: inner rollback used the wrong undo mark"
    );
    assert_eq!(vm.read_static(1).unwrap(), Value::Int(INNER_ITERS));
}

/// Recursive enter on the same lock: low holds `lock` twice, the high
/// contender revokes it. The rollback must unwind the recursion
/// coherently and re-execution must produce exactly one increment.
#[test]
fn recursive_section_revocation_is_exact() {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    let low = pb.declare_method("low", 1);
    let mut b = MethodBuilder::new(1, 3);
    b.sync_on_local(0, |b| {
        b.add_static(0, 1);
        b.sync_on_local(0, |b| {
            b.repeat(1, INNER_ITERS, |b| b.add_static(1, 1));
        });
    });
    b.ret_void();
    pb.implement(low, b);

    let high = pb.declare_method("high", 1);
    let mut h = MethodBuilder::new(1, 2);
    h.const_i(30_000);
    h.sleep();
    h.sync_on_local(0, |b| {
        b.get_static(1);
        b.pop();
    });
    h.ret_void();
    pb.implement(high, h);

    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("low", low, vec![Value::Ref(lock)], Priority::LOW);
    vm.spawn("high", high, vec![Value::Ref(lock)], Priority::HIGH);
    let report = vm.run().expect("run");

    assert!(report.threads[0].metrics.rollbacks >= 1, "recursive section was never revoked");
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(1), "outer increment not exactly-once");
    assert_eq!(vm.read_static(1).unwrap(), Value::Int(INNER_ITERS));
}

/// Nested sections with no contention commit innermost-first and retire
/// marks correctly (the non-revocation half of the invariant).
#[test]
fn nested_commit_without_contention_is_exact() {
    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    let only = pb.declare_method("only", 2);
    let mut b = MethodBuilder::new(2, 4);
    b.sync_on_local(0, |b| {
        b.add_static(0, 1);
        b.sync_on_local(1, |b| {
            b.repeat(2, 100, |b| b.add_static(1, 1));
        });
        b.add_static(0, 1);
    });
    b.ret_void();
    pb.implement(only, b);

    let mut vm = Vm::new(pb.finish(), VmConfig::modified());
    let lock_a = vm.heap_mut().alloc(0, 0);
    let lock_b = vm.heap_mut().alloc(0, 0);
    vm.spawn("only", only, vec![Value::Ref(lock_a), Value::Ref(lock_b)], Priority::NORM);
    let report = vm.run().expect("run");
    assert_eq!(report.global.rollbacks, 0);
    assert_eq!(vm.read_static(0).unwrap(), Value::Int(2));
    assert_eq!(vm.read_static(1).unwrap(), Value::Int(100));
}
