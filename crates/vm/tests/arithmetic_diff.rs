//! Differential testing of the interpreter's arithmetic against Rust's
//! own (wrapping) semantics: random expression trees are compiled through
//! the builder and evaluated by the VM; results must agree bit-for-bit.

use proptest::prelude::*;
use revmon_core::Priority;
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig};

#[derive(Clone, Debug)]
enum Expr {
    Lit(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    Rem(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = (-1_000_000i64..1_000_000).prop_map(Expr::Lit);
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Div(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Rem(a.into(), b.into())),
            inner.clone().prop_map(|a| Expr::Neg(a.into())),
        ]
    })
}

/// Rust-side evaluation with the VM's semantics: wrapping arithmetic,
/// `None` = the VM would throw ArithmeticException (division by zero).
fn eval(e: &Expr) -> Option<i64> {
    Some(match e {
        Expr::Lit(v) => *v,
        Expr::Add(a, b) => eval(a)?.wrapping_add(eval(b)?),
        Expr::Sub(a, b) => eval(a)?.wrapping_sub(eval(b)?),
        Expr::Mul(a, b) => eval(a)?.wrapping_mul(eval(b)?),
        Expr::Div(a, b) => eval(a)?.checked_div(eval(b)?)?,
        Expr::Rem(a, b) => eval(a)?.checked_rem(eval(b)?)?,
        Expr::Neg(a) => eval(a)?.wrapping_neg(),
    })
}

fn emit(b: &mut MethodBuilder, e: &Expr) {
    match e {
        Expr::Lit(v) => b.const_i(*v),
        Expr::Add(x, y) => {
            emit(b, x);
            emit(b, y);
            b.add();
        }
        Expr::Sub(x, y) => {
            emit(b, x);
            emit(b, y);
            b.sub();
        }
        Expr::Mul(x, y) => {
            emit(b, x);
            emit(b, y);
            b.mul();
        }
        Expr::Div(x, y) => {
            emit(b, x);
            emit(b, y);
            b.div();
        }
        Expr::Rem(x, y) => {
            emit(b, x);
            emit(b, y);
            b.rem();
        }
        Expr::Neg(x) => {
            emit(b, x);
            b.neg();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn vm_arithmetic_matches_rust(e in expr_strategy()) {
        let mut pb = ProgramBuilder::new();
        pb.statics(1);
        let m = pb.declare_method("main", 0);
        let mut b = MethodBuilder::new(0, 0);
        emit(&mut b, &e);
        b.put_static(0);
        b.ret_void();
        pb.implement(m, b);
        let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
        vm.spawn("main", m, vec![], Priority::NORM);
        let report = vm.run().expect("vm never faults on arithmetic");
        match eval(&e) {
            Some(expected) => {
                prop_assert_eq!(report.threads[0].uncaught, None);
                prop_assert_eq!(vm.read_static(0).unwrap(), Value::Int(expected));
            }
            None => {
                // Division by zero: the VM throws ArithmeticException,
                // which (uncaught) terminates the thread.
                prop_assert_eq!(report.threads[0].uncaught, Some(revmon_vm::ARITH_TAG));
            }
        }
    }
}
