//! Golden-trace pinning for the scheduler extraction.
//!
//! These tests freeze the *observable* behaviour of the round-robin and
//! priority-preemptive schedulers — trace-event sequences, final clock,
//! output order, and context-switch counts — as captured on the code
//! before the dispatch logic moved into `sched.rs`. Any behavioural
//! drift introduced by a scheduling refactor fails here first.
//!
//! To re-capture the goldens after an *intentional* semantic change:
//!
//! ```text
//! cargo test -p revmon-vm --test sched_pinning -- --ignored --nocapture
//! ```
//!
//! and paste the printed blocks over the `GOLDEN_*` constants.

use revmon_core::Priority;
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::{MethodId, Program};
use revmon_vm::value::Value;
use revmon_vm::{SchedulerKind, Vm, VmConfig};

/// Three threads of distinct priorities bump a shared static inside a
/// synchronized block, with enough spinning per iteration to force
/// quantum expiries while a monitor is held — exercising contention,
/// hand-off, and (under the modified config) revocation.
fn contended_counter() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 2); // arg0 = lock, arg1 = ordinal
    let mut b = MethodBuilder::new(2, 3);
    b.const_i(0);
    b.store(2);
    let top = b.here();
    b.load(2);
    b.const_i(6);
    let done = b.new_label();
    b.if_ge(done);
    b.sync_on_local(0, |b| {
        b.get_static(0);
        b.const_i(1);
        b.add();
        b.put_static(0);
        b.const_i(5_000);
        b.work();
    });
    b.load(2);
    b.const_i(1);
    b.add();
    b.store(2);
    b.goto(top);
    b.place(done);
    b.load(1);
    b.native(revmon_vm::bytecode::NativeOp::Emit);
    b.ret_void();
    pb.implement(run, b);
    (pb.finish(), run)
}

/// One run summarized as printable, comparable lines.
fn digest(vm: &mut Vm) -> Vec<String> {
    let r = vm.run().expect("run completes");
    let mut lines = Vec::new();
    lines.push(format!("clock={}", r.clock));
    lines.push(format!(
        "output={:?}",
        r.output
            .iter()
            .map(|v| match v {
                Value::Int(i) => *i,
                _ => i64::MIN,
            })
            .collect::<Vec<_>>()
    ));
    lines.push(format!(
        "switches={} rollbacks={} acquires={} contended={}",
        r.global.context_switches,
        r.global.rollbacks,
        r.global.monitor_acquires,
        r.global.contended_acquires
    ));
    for rec in vm.take_trace() {
        lines.push(format!("{}:{:?}", rec.at, rec.event));
    }
    lines
}

fn run_counter(kind: SchedulerKind) -> Vec<String> {
    let (p, run) = contended_counter();
    let mut cfg = VmConfig::modified().with_trace();
    cfg.scheduler = kind;
    let mut vm = Vm::new(p, cfg);
    let lock = vm.heap_mut().alloc(0, 0);
    let prios = [Priority::HIGH, Priority::LOW, Priority::NORM];
    for (i, &prio) in prios.iter().enumerate() {
        vm.spawn(&format!("t{i}"), run, vec![Value::Ref(lock), Value::Int(i as i64)], prio);
    }
    digest(&mut vm)
}

fn run_corpus(name: &str, kind: SchedulerKind) -> Vec<String> {
    let path = format!("{}/../../programs/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("corpus program exists");
    let program = revmon_vm::assemble(&src).expect("assembles");
    let mut cfg = VmConfig::modified().with_trace();
    cfg.scheduler = kind;
    let mut vm = Vm::new(program.clone(), cfg);
    let entry = program.method_by_name("main").expect("has main");
    vm.spawn("main", entry, vec![], Priority::NORM);
    digest(&mut vm)
}

fn assert_matches_golden(actual: &[String], golden: &str, what: &str) {
    let expect: Vec<&str> = golden.trim().lines().map(|l| l.trim()).collect();
    let got: Vec<&str> = actual.iter().map(|s| s.as_str()).collect();
    assert_eq!(got, expect, "{what}: scheduler behaviour drifted from the pinned golden");
}

/// Prints the goldens in paste-ready form. Run with `--ignored`.
#[test]
#[ignore = "capture helper, not a check"]
fn print_goldens() {
    for (label, lines) in [
        ("COUNTER_RR", run_counter(SchedulerKind::RoundRobin)),
        ("COUNTER_PRIO", run_counter(SchedulerKind::PriorityPreemptive)),
        ("INVERSION_RR", run_corpus("priority_inversion.rvm", SchedulerKind::RoundRobin)),
        ("DEADLOCK_RR", run_corpus("deadlock.rvm", SchedulerKind::RoundRobin)),
    ] {
        println!("const GOLDEN_{label}: &str = r#\"");
        for l in lines {
            println!("{l}");
        }
        println!("\"#;");
    }
}

const GOLDEN_COUNTER_RR: &str = r#"
clock=94748
output=[0, 2, 1]
switches=20 rollbacks=7 acquires=25 contended=16
128:Acquire { thread: ThreadId(0), monitor: ObjRef(0) }
5162:Commit { thread: ThreadId(0), monitor: ObjRef(0) }
5162:Release { thread: ThreadId(0), monitor: ObjRef(0) }
5193:Acquire { thread: ThreadId(0), monitor: ObjRef(0) }
10227:Commit { thread: ThreadId(0), monitor: ObjRef(0) }
10227:Release { thread: ThreadId(0), monitor: ObjRef(0) }
10258:Acquire { thread: ThreadId(0), monitor: ObjRef(0) }
15292:Commit { thread: ThreadId(0), monitor: ObjRef(0) }
15292:Release { thread: ThreadId(0), monitor: ObjRef(0) }
15323:Acquire { thread: ThreadId(0), monitor: ObjRef(0) }
20463:Block { thread: ThreadId(1), monitor: ObjRef(0) }
20591:Block { thread: ThreadId(2), monitor: ObjRef(0) }
20713:Commit { thread: ThreadId(0), monitor: ObjRef(0) }
20713:Release { thread: ThreadId(0), monitor: ObjRef(0) }
20713:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
20744:Block { thread: ThreadId(0), monitor: ObjRef(0) }
20744:RevokeRequest { by: ThreadId(0), holder: ThreadId(2), monitor: ObjRef(0) }
20944:Rollback { thread: ThreadId(2), monitor: ObjRef(0), entries: 0 }
20944:Release { thread: ThreadId(2), monitor: ObjRef(0) }
20944:Acquire { thread: ThreadId(0), monitor: ObjRef(0) }
21066:Block { thread: ThreadId(2), monitor: ObjRef(0) }
26200:Commit { thread: ThreadId(0), monitor: ObjRef(0) }
26200:Release { thread: ThreadId(0), monitor: ObjRef(0) }
26200:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
26231:Block { thread: ThreadId(0), monitor: ObjRef(0) }
26231:RevokeRequest { by: ThreadId(0), holder: ThreadId(2), monitor: ObjRef(0) }
26431:Rollback { thread: ThreadId(2), monitor: ObjRef(0), entries: 0 }
26431:Release { thread: ThreadId(2), monitor: ObjRef(0) }
26431:Acquire { thread: ThreadId(0), monitor: ObjRef(0) }
26553:Block { thread: ThreadId(2), monitor: ObjRef(0) }
31687:Commit { thread: ThreadId(0), monitor: ObjRef(0) }
31687:Release { thread: ThreadId(0), monitor: ObjRef(0) }
31687:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
36832:Commit { thread: ThreadId(2), monitor: ObjRef(0) }
36832:Release { thread: ThreadId(2), monitor: ObjRef(0) }
36832:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
36863:Block { thread: ThreadId(2), monitor: ObjRef(0) }
36863:RevokeRequest { by: ThreadId(2), holder: ThreadId(1), monitor: ObjRef(0) }
37063:Rollback { thread: ThreadId(1), monitor: ObjRef(0), entries: 0 }
37063:Release { thread: ThreadId(1), monitor: ObjRef(0) }
37063:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
37185:Block { thread: ThreadId(1), monitor: ObjRef(0) }
42319:Commit { thread: ThreadId(2), monitor: ObjRef(0) }
42319:Release { thread: ThreadId(2), monitor: ObjRef(0) }
42319:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
42350:Block { thread: ThreadId(2), monitor: ObjRef(0) }
42350:RevokeRequest { by: ThreadId(2), holder: ThreadId(1), monitor: ObjRef(0) }
42550:Rollback { thread: ThreadId(1), monitor: ObjRef(0), entries: 0 }
42550:Release { thread: ThreadId(1), monitor: ObjRef(0) }
42550:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
42672:Block { thread: ThreadId(1), monitor: ObjRef(0) }
47806:Commit { thread: ThreadId(2), monitor: ObjRef(0) }
47806:Release { thread: ThreadId(2), monitor: ObjRef(0) }
47806:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
47837:Block { thread: ThreadId(2), monitor: ObjRef(0) }
47837:RevokeRequest { by: ThreadId(2), holder: ThreadId(1), monitor: ObjRef(0) }
48037:Rollback { thread: ThreadId(1), monitor: ObjRef(0), entries: 0 }
48037:Release { thread: ThreadId(1), monitor: ObjRef(0) }
48037:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
48159:Block { thread: ThreadId(1), monitor: ObjRef(0) }
53293:Commit { thread: ThreadId(2), monitor: ObjRef(0) }
53293:Release { thread: ThreadId(2), monitor: ObjRef(0) }
53293:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
53324:Block { thread: ThreadId(2), monitor: ObjRef(0) }
53324:RevokeRequest { by: ThreadId(2), holder: ThreadId(1), monitor: ObjRef(0) }
53524:Rollback { thread: ThreadId(1), monitor: ObjRef(0), entries: 0 }
53524:Release { thread: ThreadId(1), monitor: ObjRef(0) }
53524:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
53646:Block { thread: ThreadId(1), monitor: ObjRef(0) }
58780:Commit { thread: ThreadId(2), monitor: ObjRef(0) }
58780:Release { thread: ThreadId(2), monitor: ObjRef(0) }
58780:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
58811:Block { thread: ThreadId(2), monitor: ObjRef(0) }
58811:RevokeRequest { by: ThreadId(2), holder: ThreadId(1), monitor: ObjRef(0) }
59011:Rollback { thread: ThreadId(1), monitor: ObjRef(0), entries: 0 }
59011:Release { thread: ThreadId(1), monitor: ObjRef(0) }
59011:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
59133:Block { thread: ThreadId(1), monitor: ObjRef(0) }
64267:Commit { thread: ThreadId(2), monitor: ObjRef(0) }
64267:Release { thread: ThreadId(2), monitor: ObjRef(0) }
64267:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
69412:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
69412:Release { thread: ThreadId(1), monitor: ObjRef(0) }
69443:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
74477:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
74477:Release { thread: ThreadId(1), monitor: ObjRef(0) }
74508:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
79542:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
79542:Release { thread: ThreadId(1), monitor: ObjRef(0) }
79573:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
84607:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
84607:Release { thread: ThreadId(1), monitor: ObjRef(0) }
84638:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
89672:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
89672:Release { thread: ThreadId(1), monitor: ObjRef(0) }
89703:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
94737:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
94737:Release { thread: ThreadId(1), monitor: ObjRef(0) }
"#;

const GOLDEN_COUNTER_PRIO: &str = r#"
clock=91494
output=[0, 2, 1]
switches=3 rollbacks=0 acquires=18 contended=0
128:Acquire { thread: ThreadId(0), monitor: ObjRef(0) }
5162:Commit { thread: ThreadId(0), monitor: ObjRef(0) }
5162:Release { thread: ThreadId(0), monitor: ObjRef(0) }
5193:Acquire { thread: ThreadId(0), monitor: ObjRef(0) }
10227:Commit { thread: ThreadId(0), monitor: ObjRef(0) }
10227:Release { thread: ThreadId(0), monitor: ObjRef(0) }
10258:Acquire { thread: ThreadId(0), monitor: ObjRef(0) }
15292:Commit { thread: ThreadId(0), monitor: ObjRef(0) }
15292:Release { thread: ThreadId(0), monitor: ObjRef(0) }
15323:Acquire { thread: ThreadId(0), monitor: ObjRef(0) }
20357:Commit { thread: ThreadId(0), monitor: ObjRef(0) }
20357:Release { thread: ThreadId(0), monitor: ObjRef(0) }
20388:Acquire { thread: ThreadId(0), monitor: ObjRef(0) }
25422:Commit { thread: ThreadId(0), monitor: ObjRef(0) }
25422:Release { thread: ThreadId(0), monitor: ObjRef(0) }
25453:Acquire { thread: ThreadId(0), monitor: ObjRef(0) }
30487:Commit { thread: ThreadId(0), monitor: ObjRef(0) }
30487:Release { thread: ThreadId(0), monitor: ObjRef(0) }
30626:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
35660:Commit { thread: ThreadId(2), monitor: ObjRef(0) }
35660:Release { thread: ThreadId(2), monitor: ObjRef(0) }
35691:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
40725:Commit { thread: ThreadId(2), monitor: ObjRef(0) }
40725:Release { thread: ThreadId(2), monitor: ObjRef(0) }
40756:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
45790:Commit { thread: ThreadId(2), monitor: ObjRef(0) }
45790:Release { thread: ThreadId(2), monitor: ObjRef(0) }
45821:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
50855:Commit { thread: ThreadId(2), monitor: ObjRef(0) }
50855:Release { thread: ThreadId(2), monitor: ObjRef(0) }
50886:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
55920:Commit { thread: ThreadId(2), monitor: ObjRef(0) }
55920:Release { thread: ThreadId(2), monitor: ObjRef(0) }
55951:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
60985:Commit { thread: ThreadId(2), monitor: ObjRef(0) }
60985:Release { thread: ThreadId(2), monitor: ObjRef(0) }
61124:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
66158:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
66158:Release { thread: ThreadId(1), monitor: ObjRef(0) }
66189:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
71223:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
71223:Release { thread: ThreadId(1), monitor: ObjRef(0) }
71254:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
76288:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
76288:Release { thread: ThreadId(1), monitor: ObjRef(0) }
76319:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
81353:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
81353:Release { thread: ThreadId(1), monitor: ObjRef(0) }
81384:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
86418:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
86418:Release { thread: ThreadId(1), monitor: ObjRef(0) }
86449:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
91483:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
91483:Release { thread: ThreadId(1), monitor: ObjRef(0) }
"#;

const GOLDEN_INVERSION_RR: &str = r#"
clock=968123
output=[7140]
switches=11 rollbacks=1 acquires=3 contended=2
232:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
60573:Block { thread: ThreadId(2), monitor: ObjRef(0) }
60573:RevokeRequest { by: ThreadId(2), holder: ThreadId(1), monitor: ObjRef(0) }
67441:Rollback { thread: ThreadId(1), monitor: ObjRef(0), entries: 3334 }
67441:Release { thread: ThreadId(1), monitor: ObjRef(0) }
67441:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
67563:Block { thread: ThreadId(1), monitor: ObjRef(0) }
67688:Commit { thread: ThreadId(2), monitor: ObjRef(0) }
67688:Release { thread: ThreadId(2), monitor: ObjRef(0) }
67688:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
968021:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
968021:Release { thread: ThreadId(1), monitor: ObjRef(0) }
"#;

const GOLDEN_DEADLOCK_RR: &str = r#"
clock=723480
output=[2]
switches=30 rollbacks=1 acquires=5 contended=2
236:Acquire { thread: ThreadId(1), monitor: ObjRef(0) }
20337:Acquire { thread: ThreadId(2), monitor: ObjRef(1) }
482665:Block { thread: ThreadId(1), monitor: ObjRef(1) }
482815:Block { thread: ThreadId(2), monitor: ObjRef(0) }
482815:DeadlockDetected { cycle_len: 2 }
482815:DeadlockBroken { victim: ThreadId(2) }
483015:Rollback { thread: ThreadId(2), monitor: ObjRef(1), entries: 0 }
483015:Release { thread: ThreadId(2), monitor: ObjRef(1) }
483015:Acquire { thread: ThreadId(1), monitor: ObjRef(1) }
483147:Release { thread: ThreadId(1), monitor: ObjRef(1) }
483169:Commit { thread: ThreadId(1), monitor: ObjRef(0) }
483169:Release { thread: ThreadId(1), monitor: ObjRef(0) }
483292:Acquire { thread: ThreadId(2), monitor: ObjRef(1) }
723320:Acquire { thread: ThreadId(2), monitor: ObjRef(0) }
723352:Release { thread: ThreadId(2), monitor: ObjRef(0) }
723374:Commit { thread: ThreadId(2), monitor: ObjRef(1) }
723374:Release { thread: ThreadId(2), monitor: ObjRef(1) }
"#;

#[test]
fn round_robin_counter_trace_is_pinned() {
    assert_matches_golden(
        &run_counter(SchedulerKind::RoundRobin),
        GOLDEN_COUNTER_RR,
        "round-robin contended counter",
    );
}

#[test]
fn priority_preemptive_counter_trace_is_pinned() {
    assert_matches_golden(
        &run_counter(SchedulerKind::PriorityPreemptive),
        GOLDEN_COUNTER_PRIO,
        "priority-preemptive contended counter",
    );
}

#[test]
fn priority_inversion_corpus_trace_is_pinned() {
    assert_matches_golden(
        &run_corpus("priority_inversion.rvm", SchedulerKind::RoundRobin),
        GOLDEN_INVERSION_RR,
        "priority_inversion.rvm",
    );
}

#[test]
fn deadlock_corpus_trace_is_pinned() {
    assert_matches_golden(
        &run_corpus("deadlock.rvm", SchedulerKind::RoundRobin),
        GOLDEN_DEADLOCK_RR,
        "deadlock.rvm",
    );
}
