//! Shared program builders for the VM integration tests.
//!
//! Not every test binary uses every helper; silence per-binary dead-code
//! analysis.
#![allow(dead_code)]

use revmon_core::Priority;
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::{MethodId, Program};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig};

/// Build the canonical contention workload: `run(lock, iters)` executes
/// one synchronized section on `lock` whose body increments `static 0`
/// `iters` times.
///
/// Locals: 0 = lock, 1 = iters, 2 = i.
pub fn counting_section_program() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 2);
    let mut b = MethodBuilder::new(2, 3);
    b.sync_on_local(0, |b| {
        b.const_i(0);
        b.store(2);
        let top = b.here();
        b.load(2);
        b.load(1);
        let done = b.new_label();
        b.if_ge(done);
        b.get_static(0);
        b.const_i(1);
        b.add();
        b.put_static(0);
        b.load(2);
        b.const_i(1);
        b.add();
        b.store(2);
        b.goto(top);
        b.place(done);
    });
    b.ret_void();
    pb.implement(run, b);
    (pb.finish(), run)
}

/// Like [`counting_section_program`] but the whole body repeats the
/// section `sections` times: `run(lock, iters, sections)`.
///
/// Locals: 0 = lock, 1 = iters, 2 = sections, 3 = s, 4 = i.
pub fn repeated_sections_program() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let run = pb.declare_method("run", 3);
    let mut b = MethodBuilder::new(3, 5);
    b.const_i(0);
    b.store(3);
    let outer = b.here();
    b.load(3);
    b.load(2);
    let done = b.new_label();
    b.if_ge(done);
    b.sync_on_local(0, |b| {
        b.const_i(0);
        b.store(4);
        let top = b.here();
        b.load(4);
        b.load(1);
        let sec_done = b.new_label();
        b.if_ge(sec_done);
        b.get_static(0);
        b.const_i(1);
        b.add();
        b.put_static(0);
        b.load(4);
        b.const_i(1);
        b.add();
        b.store(4);
        b.goto(top);
        b.place(sec_done);
    });
    b.load(3);
    b.const_i(1);
    b.add();
    b.store(3);
    b.goto(outer);
    b.place(done);
    b.ret_void();
    pb.implement(run, b);
    (pb.finish(), run)
}

/// Spawn `lows` low-priority and `highs` high-priority threads all
/// running `run(lock, iters_low/iters_high)` and return the finished VM
/// plus its report.
pub fn run_contenders(
    cfg: VmConfig,
    lows: usize,
    iters_low: i64,
    highs: usize,
    iters_high: i64,
) -> (Vm, revmon_vm::RunReport) {
    let (p, run) = counting_section_program();
    let mut vm = Vm::new(p, cfg);
    let lock = vm.heap_mut().alloc(0, 0);
    for i in 0..lows {
        vm.spawn(
            &format!("low{i}"),
            run,
            vec![Value::Ref(lock), Value::Int(iters_low)],
            Priority::LOW,
        );
    }
    for i in 0..highs {
        vm.spawn(
            &format!("high{i}"),
            run,
            vec![Value::Ref(lock), Value::Int(iters_high)],
            Priority::HIGH,
        );
    }
    let report = vm.run().expect("run succeeds");
    (vm, report)
}
