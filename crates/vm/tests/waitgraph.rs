//! Live wait-for-graph snapshots ([`Vm::wait_graph_snapshot`]): DOT
//! output stays well-formed at every scheduling round and the graph is
//! acyclic (in fact empty) once the deadlock breaker has resolved
//! `programs/deadlock.rvm`.
//!
//! The cycle itself is never observable *between* rounds: on this
//! uniprocessor VM the victim always sits at a yield point, so the
//! breaker revokes it synchronously inside the round that closes the
//! cycle (cycle rendering is covered by `revmon-obs`'s own unit tests
//! on synthetic edges).

mod common;

use revmon_core::Priority;
use revmon_vm::{assemble, RoundOutcome, Vm, VmConfig};
use std::path::PathBuf;

fn load(name: &str) -> revmon_vm::bytecode::Program {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../programs").join(name);
    let src = std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
    assemble(&src).expect("assemble")
}

/// Check the invariants any DOT consumer relies on: one digraph, one
/// closing brace, every line inside indented.
fn assert_well_formed_dot(dot: &str) {
    assert!(dot.starts_with("digraph waits_for {\n"), "bad preamble:\n{dot}");
    assert!(dot.ends_with("}\n"), "unterminated digraph:\n{dot}");
    assert_eq!(dot.matches('{').count(), 1, "nested braces:\n{dot}");
    for line in dot.lines().skip(1) {
        assert!(line == "}" || line.starts_with("  "), "stray line {line:?} in:\n{dot}");
    }
}

#[test]
fn deadlock_cycle_appears_in_dot_and_clears_after_the_break() {
    let program = load("deadlock.rvm");
    let entry = program.method_by_name("main").expect("main");
    let mut vm = Vm::try_new(program, VmConfig::modified()).expect("verified");
    vm.spawn("main", entry, vec![], Priority::NORM);

    let mut saw_edges = false;
    loop {
        let outcome = vm.run_round().expect("deadlock must be broken, not stall");
        let snap = vm.wait_graph_snapshot();
        let names = vm.monitor_names();
        assert_well_formed_dot(&snap.to_dot(&names));
        // The break is synchronous with cycle formation, so every
        // between-rounds snapshot must already be acyclic again.
        assert!(snap.is_acyclic(), "unbroken cycle leaked out of a round");
        assert!(snap.to_json(&names).contains("\"deadlock_cycle\": null"));
        if !snap.is_empty() {
            saw_edges = true;
            // Blocked philosophers wait on the named chopstick monitors.
            let dot = snap.to_dot(&names);
            assert!(dot.contains("chopstick"), "unlabeled monitor in:\n{dot}");
        }
        if outcome == RoundOutcome::Done {
            break;
        }
    }
    assert!(saw_edges, "philosophers never blocked");

    let report = vm.report();
    assert!(report.global.deadlocks_broken >= 1, "breaker did not fire");
    let last = vm.wait_graph_snapshot();
    assert!(last.is_acyclic(), "cycle survived the break");
    assert!(last.is_empty(), "threads still blocked after completion");
    assert!(last.to_json(&vm.monitor_names()).contains("\"deadlock_cycle\": null"));
}

#[test]
fn snapshot_edges_carry_the_inversion_priorities() {
    // Figure-1 shape: a LOW holder inside a long section, a HIGH waiter
    // blocked behind it. Under the blocking policy the inversion
    // persists across rounds, so the snapshot edge must show the
    // priority gap. (Under revocation the block resolves inside one
    // round and is invisible here — that is the point of the policy.)
    let (p, run) = common::counting_section_program();
    let mut vm = Vm::new(p, VmConfig::unmodified());
    let lock = vm.heap_mut().alloc(0, 0);
    use revmon_vm::value::Value;
    vm.spawn("Tl", run, vec![Value::Ref(lock), Value::Int(5_000)], Priority::LOW);
    vm.spawn("Th", run, vec![Value::Ref(lock), Value::Int(100)], Priority::HIGH);

    let mut saw_inverted_edge = false;
    loop {
        let outcome = vm.run_round().expect("run");
        let snap = vm.wait_graph_snapshot();
        for e in &snap.edges {
            if e.waiter_priority > e.holder_priority {
                saw_inverted_edge = true;
            }
        }
        if outcome == RoundOutcome::Done {
            break;
        }
    }
    assert!(saw_inverted_edge, "high-priority waiter never visible behind the low holder");
}
