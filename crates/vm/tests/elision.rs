//! End-to-end write-barrier elision (§1.1's compiler optimization):
//! observational equivalence, cheaper stores, and soundness under
//! cross-monitor calls.

use revmon_core::Priority;
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::{MethodId, Program};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig};

/// `run(lock, iters)`: an *unmonitored* store loop on static 1, then a
/// synchronized counting section on static 0, then `helper()` (which
/// stores to static 2) called outside the monitor.
fn mixed_program() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.statics(3);
    let helper = pb.declare_method("helper", 0);
    let mut h = MethodBuilder::new(0, 0);
    h.get_static(2);
    h.const_i(1);
    h.add();
    h.put_static(2);
    h.ret_void();
    pb.implement(helper, h);
    let run = pb.declare_method("run", 2);
    let mut b = MethodBuilder::new(2, 3);
    // unmonitored store loop
    b.const_i(0);
    b.store(2);
    let top = b.here();
    b.load(2);
    b.load(1);
    let done = b.new_label();
    b.if_ge(done);
    b.get_static(1);
    b.const_i(1);
    b.add();
    b.put_static(1);
    b.load(2);
    b.const_i(1);
    b.add();
    b.store(2);
    b.goto(top);
    b.place(done);
    // monitored section
    b.sync_on_local(0, |b| {
        b.const_i(0);
        b.store(2);
        let t2 = b.here();
        b.load(2);
        b.load(1);
        let d2 = b.new_label();
        b.if_ge(d2);
        b.get_static(0);
        b.const_i(1);
        b.add();
        b.put_static(0);
        b.load(2);
        b.const_i(1);
        b.add();
        b.store(2);
        b.goto(t2);
        b.place(d2);
    });
    b.call(helper);
    b.ret_void();
    pb.implement(run, b);
    (pb.finish(), run)
}

fn run_mixed(elide: bool) -> (Vm, revmon_vm::RunReport) {
    let (p, run) = mixed_program();
    let cfg = if elide { VmConfig::modified().with_elision() } else { VmConfig::modified() };
    let mut vm = Vm::new(p, cfg);
    let lock = vm.heap_mut().alloc(0, 0);
    for i in 0..3 {
        let prio = if i == 0 { Priority::HIGH } else { Priority::LOW };
        vm.spawn(&format!("t{i}"), run, vec![Value::Ref(lock), Value::Int(2_000)], prio);
    }
    let r = vm.run().expect("run");
    (vm, r)
}

#[test]
fn elision_preserves_results() {
    let (a, ra) = run_mixed(false);
    let (b, rb) = run_mixed(true);
    for s in 0..3 {
        assert_eq!(a.read_static(s).unwrap(), b.read_static(s).unwrap(), "static {s} differs");
    }
    // Rollback behaviour unchanged — elided stores were never logged
    // anyway (they are outside every section).
    assert_eq!(ra.global.rollbacks, rb.global.rollbacks);
    assert_eq!(ra.global.log_entries, rb.global.log_entries);
}

#[test]
fn elision_reduces_barrier_fast_paths() {
    let (_, full) = run_mixed(false);
    let (_, elided) = run_mixed(true);
    assert!(
        elided.global.barrier_fast_paths < full.global.barrier_fast_paths,
        "elided {} vs full {}",
        elided.global.barrier_fast_paths,
        full.global.barrier_fast_paths
    );
    assert!(elided.global.barriers_elided > 0);
    // Every store either took the barrier or was elided.
    assert_eq!(
        elided.global.barrier_fast_paths + elided.global.barriers_elided,
        full.global.barrier_fast_paths
    );
    // Slow paths are exactly the in-section stores, i.e. the logged ones
    // — elision (outside-section stores only) cannot change that count.
    assert_eq!(full.global.barrier_slow_paths, full.global.log_entries);
    assert_eq!(elided.global.barrier_slow_paths, full.global.barrier_slow_paths);
}

#[test]
fn elision_reduces_virtual_time() {
    let (_, full) = run_mixed(false);
    let (_, elided) = run_mixed(true);
    assert!(elided.clock < full.clock, "elided {} vs full {}", elided.clock, full.clock);
}

#[test]
fn elision_table_statistics_exposed() {
    let (p, _) = mixed_program();
    let vm = Vm::new(p, VmConfig::modified().with_elision());
    let t = vm.elision_table().expect("analysis ran");
    assert!(t.store_sites >= 3);
    assert!(t.elided_sites >= 2, "unmonitored loop + helper stores elide");
    assert!(t.elided_sites < t.store_sites, "in-section store kept");
}

#[test]
fn monitored_helper_is_not_elided() {
    // helper() called from INSIDE the monitor keeps its barrier: its
    // stores must be logged for rollback.
    let mut pb = ProgramBuilder::new();
    pb.statics(2);
    let helper = pb.declare_method("helper", 0);
    let mut h = MethodBuilder::new(0, 0);
    h.get_static(1);
    h.const_i(1);
    h.add();
    h.put_static(1);
    h.ret_void();
    pb.implement(helper, h);
    let run = pb.declare_method("run", 2);
    let mut b = MethodBuilder::new(2, 3);
    b.sync_on_local(0, |b| {
        b.const_i(0);
        b.store(2);
        let t = b.here();
        b.load(2);
        b.load(1);
        let d = b.new_label();
        b.if_ge(d);
        b.call(helper);
        b.load(2);
        b.const_i(1);
        b.add();
        b.store(2);
        b.goto(t);
        b.place(d);
    });
    b.ret_void();
    pb.implement(run, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::modified().with_elision());
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("low", run, vec![Value::Ref(lock), Value::Int(3_000)], Priority::LOW);
    vm.spawn("high", run, vec![Value::Ref(lock), Value::Int(300)], Priority::HIGH);
    let r = vm.run().expect("run");
    // helper's stores were logged (they're in-section via the call chain)…
    assert!(r.global.log_entries > 0);
    // …and the rollback machinery still restores them exactly.
    assert!(r.global.rollbacks >= 1);
    assert_eq!(vm.read_static(1).unwrap(), Value::Int(3_300));
}
