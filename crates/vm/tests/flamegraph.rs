//! Contention flamegraphs from the Figure-1 inversion scenario: the
//! folded-stack export must attribute the episode's critical path to the
//! contended monitor, and the brendangregg-format text must round-trip
//! byte-stable (so diffing two exports is meaningful).

mod common;

use revmon_core::Priority;
use revmon_obs::{EventSink, FoldedStacks, TsUnit};
use revmon_vm::{assemble, Vm, VmConfig};
use std::path::PathBuf;
use std::sync::Arc;

#[test]
fn folded_stacks_round_trip_byte_stable_on_priority_inversion() {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../programs/priority_inversion.rvm");
    let src = std::fs::read_to_string(&p).expect("read priority_inversion.rvm");
    let program = assemble(&src).expect("assemble");
    let entry = program.method_by_name("main").expect("main");

    let sink = Arc::new(EventSink::new(TsUnit::VirtualTicks));
    let mut vm = Vm::try_new(program, VmConfig::modified()).expect("verified");
    vm.attach_sink(Arc::clone(&sink));
    vm.spawn("main", entry, vec![], Priority::NORM);
    vm.run().expect("run");

    let events = sink.drain();
    let names = vm.monitor_names();
    let episodes = revmon_obs::reconstruct_episodes(&events);
    assert!(!episodes.is_empty(), "the scenario must produce an inversion episode");

    let stacks = FoldedStacks::from_episodes(&episodes, &names);
    assert!(!stacks.is_empty(), "no stacks from {} episode(s)", episodes.len());

    let folded = stacks.folded();
    // Every line is `frame;frame;frame weight` over the named monitor.
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("weight column");
        assert_eq!(stack.split(';').count(), 3, "frames: {line}");
        weight.parse::<u64>().unwrap_or_else(|_| panic!("weight not integral: {line}"));
    }
    assert!(folded.contains("lock;"), "monitor frame missing:\n{folded}");
    assert!(folded.contains(";revocation;"), "resolution frame missing:\n{folded}");
    assert!(folded.contains(";undo-walk "), "critical-path phase missing:\n{folded}");

    // Byte-stable round trip: parse and re-emit reproduces the text.
    let reparsed = FoldedStacks::parse_folded(&folded);
    assert_eq!(reparsed, stacks);
    assert_eq!(reparsed.folded(), folded, "re-emission must be byte-identical");
}
