//! Scheduler semantics: round-robin fairness, quantum preemption at
//! yield points only, explicit yields, sleep ordering, and the
//! priority-preemptive variant used by the ablations.

use revmon_core::{CostModel, Priority};
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::{MethodId, Program};
use revmon_vm::value::Value;
use revmon_vm::{SchedulerKind, Vm, VmConfig};

/// `spin(iters)`: a compute loop with a yield point per iteration; when
/// done, appends its thread ordinal (arg 1) to the output via Emit.
fn spin_then_emit() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    let run = pb.declare_method("run", 2);
    let mut b = MethodBuilder::new(2, 3);
    b.const_i(0);
    b.store(2);
    let top = b.here();
    b.load(2);
    b.load(0);
    let done = b.new_label();
    b.if_ge(done);
    b.load(2);
    b.const_i(1);
    b.add();
    b.store(2);
    b.goto(top);
    b.place(done);
    b.load(1);
    b.native(revmon_vm::bytecode::NativeOp::Emit);
    b.ret_void();
    pb.implement(run, b);
    (pb.finish(), run)
}

#[test]
fn round_robin_interleaves_equal_threads() {
    // Equal spins: under round-robin all finish within ~one quantum of
    // each other, in spawn order.
    let (p, run) = spin_then_emit();
    let mut vm = Vm::new(p, VmConfig::unmodified());
    for i in 0..4 {
        vm.spawn(&format!("t{i}"), run, vec![Value::Int(50_000), Value::Int(i)], Priority::NORM);
    }
    let r = vm.run().unwrap();
    assert_eq!(
        r.output,
        vec![Value::Int(0), Value::Int(1), Value::Int(2), Value::Int(3)],
        "equal round-robin threads finish in spawn order"
    );
    let spans: Vec<u64> = r.threads.iter().map(|t| t.elapsed()).collect();
    let (min, max) = (spans.iter().min().unwrap(), spans.iter().max().unwrap());
    // Start/end staggering across n threads is bounded by ~n quanta.
    assert!(
        max - min <= 5 * vm_quantum(),
        "fairness: spans differ by more than the stagger bound: {spans:?}"
    );
}

fn vm_quantum() -> u64 {
    CostModel::default().quantum
}

#[test]
fn round_robin_ignores_priorities() {
    // A HIGH spinner does not finish faster than LOW spinners under
    // round-robin (the paper's Jikes has no priority scheduler).
    let (p, run) = spin_then_emit();
    let mut vm = Vm::new(p, VmConfig::unmodified());
    vm.spawn("low", run, vec![Value::Int(50_000), Value::Int(0)], Priority::LOW);
    vm.spawn("high", run, vec![Value::Int(50_000), Value::Int(1)], Priority::HIGH);
    let r = vm.run().unwrap();
    assert_eq!(r.output, vec![Value::Int(0), Value::Int(1)], "spawn order, not priority");
}

#[test]
fn priority_preemptive_runs_high_first() {
    let (p, run) = spin_then_emit();
    let mut cfg = VmConfig::unmodified();
    cfg.scheduler = SchedulerKind::PriorityPreemptive;
    let mut vm = Vm::new(p, cfg);
    vm.spawn("low", run, vec![Value::Int(50_000), Value::Int(0)], Priority::LOW);
    vm.spawn("high", run, vec![Value::Int(50_000), Value::Int(1)], Priority::HIGH);
    let r = vm.run().unwrap();
    assert_eq!(
        r.output,
        vec![Value::Int(1), Value::Int(0)],
        "the high-priority thread runs to completion first"
    );
    // And the low thread barely starts before the high one ends.
    let high = r.threads.iter().find(|t| t.name == "high").unwrap();
    let low = r.threads.iter().find(|t| t.name == "low").unwrap();
    assert!(high.end_time <= low.end_time);
}

#[test]
fn quantum_bounds_time_slices() {
    // With 2 equal spinners, context switches happen roughly every
    // quantum: total switches ≈ total_time / quantum (±margin).
    let (p, run) = spin_then_emit();
    let mut vm = Vm::new(p, VmConfig::unmodified());
    for i in 0..2 {
        vm.spawn(&format!("t{i}"), run, vec![Value::Int(100_000), Value::Int(i)], Priority::NORM);
    }
    let r = vm.run().unwrap();
    let switches = r.global.context_switches;
    let expect = r.clock / vm_quantum();
    assert!(
        switches >= expect / 2 && switches <= expect * 2 + 4,
        "switches {switches} vs expected ~{expect}"
    );
}

#[test]
fn long_work_instruction_does_not_deadlock_the_quantum() {
    // Work charges atomically; quantum accounting must still rotate at
    // the next yield point.
    let mut pb = ProgramBuilder::new();
    let run = pb.declare_method("run", 1);
    let mut b = MethodBuilder::new(1, 2);
    b.const_i(0);
    b.store(1);
    let top = b.here();
    b.load(1);
    b.const_i(5);
    let done = b.new_label();
    b.if_ge(done);
    b.const_i(100_000); // 5 quanta of atomic work
    b.work();
    b.load(1);
    b.const_i(1);
    b.add();
    b.store(1);
    b.goto(top);
    b.place(done);
    b.load(0);
    b.native(revmon_vm::bytecode::NativeOp::Emit);
    b.ret_void();
    pb.implement(run, b);
    let p = pb.finish();
    let mut vm = Vm::new(p, VmConfig::unmodified());
    vm.spawn("a", run, vec![Value::Int(0)], Priority::NORM);
    vm.spawn("b", run, vec![Value::Int(1)], Priority::NORM);
    let r = vm.run().unwrap();
    assert_eq!(r.output.len(), 2);
    assert!(r.global.context_switches >= 2, "the two hogs still alternate");
}

#[test]
fn explicit_yield_rotates_immediately() {
    // Thread a yields every iteration; with tiny loops both threads'
    // emissions interleave perfectly — a finishes no earlier than b
    // despite being spawned first, because it gives up its slice.
    let mut pb = ProgramBuilder::new();
    let yielder = pb.declare_method("yielder", 1);
    let mut y = MethodBuilder::new(1, 2);
    y.const_i(0);
    y.store(1);
    let top = y.here();
    y.load(1);
    y.const_i(1_000);
    let done = y.new_label();
    y.if_ge(done);
    y.yield_point();
    y.load(1);
    y.const_i(1);
    y.add();
    y.store(1);
    y.goto(top);
    y.place(done);
    y.load(0);
    y.native(revmon_vm::bytecode::NativeOp::Emit);
    y.ret_void();
    pb.implement(yielder, y);
    let spinner = pb.declare_method("spinner", 1);
    let mut s = MethodBuilder::new(1, 2);
    s.const_i(0);
    s.store(1);
    let t2 = s.here();
    s.load(1);
    s.const_i(100_000);
    let d2 = s.new_label();
    s.if_ge(d2);
    s.load(1);
    s.const_i(1);
    s.add();
    s.store(1);
    s.goto(t2);
    s.place(d2);
    s.load(0);
    s.native(revmon_vm::bytecode::NativeOp::Emit);
    s.ret_void();
    pb.implement(spinner, s);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    vm.spawn("yielder", yielder, vec![Value::Int(7)], Priority::NORM);
    vm.spawn("spinner", spinner, vec![Value::Int(8)], Priority::NORM);
    let r = vm.run().unwrap();
    // The spinner (which never yields) finishes first even though it was
    // spawned second.
    assert_eq!(r.output, vec![Value::Int(8), Value::Int(7)]);
    // Each yield hands the spinner a fresh quantum: the yielder pays a
    // context switch per alternation until the spinner finishes
    // (~spinner_work / quantum alternations).
    let yt = r.threads.iter().find(|t| t.name == "yielder").unwrap();
    assert!(yt.metrics.context_switches >= 20, "got {}", yt.metrics.context_switches);
}

#[test]
fn sleepers_wake_in_deadline_order() {
    let mut pb = ProgramBuilder::new();
    let run = pb.declare_method("run", 2);
    let mut b = MethodBuilder::new(2, 2);
    b.load(1);
    b.sleep();
    b.load(0);
    b.native(revmon_vm::bytecode::NativeOp::Emit);
    b.ret_void();
    pb.implement(run, b);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    // Spawn in reverse deadline order.
    vm.spawn("c", run, vec![Value::Int(3), Value::Int(300_000)], Priority::NORM);
    vm.spawn("b", run, vec![Value::Int(2), Value::Int(200_000)], Priority::NORM);
    vm.spawn("a", run, vec![Value::Int(1), Value::Int(100_000)], Priority::NORM);
    let r = vm.run().unwrap();
    assert_eq!(r.output, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    assert!(r.clock >= 300_000);
}

#[test]
fn sleeping_threads_do_not_burn_cpu() {
    // One sleeper + one spinner: the sleeper's wake time is unaffected by
    // the spinner's work (clock advances during the spin).
    let mut pb = ProgramBuilder::new();
    let sleeper = pb.declare_method("sleeper", 0);
    let mut s = MethodBuilder::new(0, 0);
    s.const_i(50_000);
    s.sleep();
    s.const_i(1);
    s.native(revmon_vm::bytecode::NativeOp::Emit);
    s.ret_void();
    pb.implement(sleeper, s);
    let (p2, _) = spin_then_emit();
    let _ = p2;
    let spinner = pb.declare_method("spinner", 0);
    let mut sp = MethodBuilder::new(0, 1);
    sp.const_i(0);
    sp.store(0);
    let top = sp.here();
    sp.load(0);
    sp.const_i(30_000);
    let done = sp.new_label();
    sp.if_ge(done);
    sp.load(0);
    sp.const_i(1);
    sp.add();
    sp.store(0);
    sp.goto(top);
    sp.place(done);
    sp.const_i(2);
    sp.native(revmon_vm::bytecode::NativeOp::Emit);
    sp.ret_void();
    pb.implement(spinner, sp);
    let mut vm = Vm::new(pb.finish(), VmConfig::unmodified());
    vm.spawn("sleeper", sleeper, vec![], Priority::NORM);
    vm.spawn("spinner", spinner, vec![], Priority::NORM);
    let r = vm.run().unwrap();
    let st = r.threads.iter().find(|t| t.name == "sleeper").unwrap();
    // The sleeper used almost no instructions.
    assert!(st.metrics.instructions < 20);
    assert!(r.output.contains(&Value::Int(1)) && r.output.contains(&Value::Int(2)));
}
