//! `revmon serve`: a dependency-free HTTP observability endpoint over
//! the locks runtime, built on nothing but `std::net::TcpListener`.
//!
//! Routes:
//!
//! * `GET /metrics`  — Prometheus text exposition: the episode/contention
//!   series of [`revmon_obs::write_prometheus`] computed over every event
//!   recorded so far, the revocation phase timers, and the event-sink
//!   recorded/dropped counters.
//! * `GET /healthz`  — liveness probe, always `ok`.
//! * `GET /graph`    — live wait-for graph as JSON
//!   ([`revmon_obs::GraphSnapshot::to_json`]).
//! * `GET /graph.dot` — the same snapshot in Graphviz DOT.
//!
//! Unless `--no-workload` is given, serve also runs the `demo`
//! priority-inversion scenario in the background (forever) so the
//! endpoint has live contention to report; tune it with `--low N` and
//! `--high N`. `--max-requests N` exits after N requests (tests).

use revmon_core::Priority;
use revmon_obs::{EventSink, TsUnit};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

/// Everything a request handler needs: the live sink, the events drained
/// from it so far (analysis wants the whole history), and monitor names.
struct ServeState {
    sink: Arc<EventSink>,
    events: Mutex<Vec<revmon_obs::Event>>,
}

impl ServeState {
    /// Drain new events out of the sink and run analysis over the
    /// accumulated history.
    fn analysis(&self) -> revmon_obs::Analysis {
        let mut events = self.events.lock().expect("events mutex");
        events.extend(self.sink.drain());
        revmon_obs::Analysis::from_events(&events)
    }
}

pub(crate) fn run_serve(opts: &[String]) -> Result<(), String> {
    let addr = crate::get_opt(opts, "--addr")?.unwrap_or_else(|| "127.0.0.1:9494".into());
    let max_requests: u64 = crate::parse_opt(opts, "--max-requests")?.unwrap_or(0);
    let listener = TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;

    let sink = Arc::new(EventSink::new(TsUnit::WallNanos));
    revmon_locks::obs::install(Arc::clone(&sink));
    if !crate::has_flag(opts, "--no-workload") {
        spawn_workload(
            crate::parse_opt(opts, "--low")?.unwrap_or(3),
            crate::parse_opt(opts, "--high")?.unwrap_or(1),
        );
    }

    // The test harness parses this line to find the bound port, so keep
    // the `serving on <addr>` shape stable.
    println!("revmon: serving on {local} (/metrics /healthz /graph /graph.dot)");
    let state = ServeState { sink, events: Mutex::new(Vec::new()) };
    let mut served = 0u64;
    for stream in listener.incoming() {
        match stream {
            Ok(s) => {
                if let Err(e) = handle(s, &state) {
                    eprintln!("revmon: serve: {e}");
                }
            }
            Err(e) => eprintln!("revmon: serve: accept: {e}"),
        }
        served += 1;
        if max_requests > 0 && served >= max_requests {
            break;
        }
    }
    Ok(())
}

/// Run the `demo` scenario forever in detached threads: low-priority
/// aggregators holding long revocable sections, a high-priority thread
/// barging in — live inversion traffic for the endpoint to report.
fn spawn_workload(low_n: usize, high_n: usize) {
    use revmon_locks::{RevocableMonitor, TCell};

    let monitor = Arc::new(RevocableMonitor::named("served"));
    let counter = TCell::new(0i64);
    for _ in 0..low_n.max(1) {
        let m = Arc::clone(&monitor);
        let c = counter.clone();
        std::thread::spawn(move || loop {
            m.enter(Priority::LOW, |tx| {
                for _ in 0..200 {
                    tx.update(&c, |v| v + 1);
                    tx.checkpoint();
                }
            });
            std::thread::yield_now();
        });
    }
    for _ in 0..high_n.max(1) {
        let m = Arc::clone(&monitor);
        let c = counter.clone();
        std::thread::spawn(move || loop {
            std::thread::sleep(std::time::Duration::from_millis(5));
            m.enter(Priority::HIGH, |tx| {
                tx.update(&c, |v| v + 1);
            });
        });
    }
}

/// Parse one request, route it, write one response, close.
fn handle(stream: TcpStream, state: &ServeState) -> Result<(), String> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line).map_err(|e| e.to_string())?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Drain headers so well-behaved clients see a clean close.
    let mut line = String::new();
    while reader.read_line(&mut line).map_err(|e| e.to_string())? > 2 {
        line.clear();
    }

    let (status, ctype, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "only GET is served\n".into())
    } else {
        route(path, state)?
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .and_then(|()| stream.write_all(body.as_bytes()))
    .and_then(|()| stream.flush())
    .map_err(|e| e.to_string())
}

fn route(path: &str, state: &ServeState) -> Result<(&'static str, &'static str, String), String> {
    let names = revmon_locks::obs::monitor_names();
    match path {
        "/healthz" => Ok(("200 OK", "text/plain", "ok\n".into())),
        "/metrics" => {
            let analysis = state.analysis();
            let mut out = Vec::new();
            revmon_obs::write_prometheus(&mut out, &analysis, &names, state.sink.ts_unit())
                .and_then(|()| revmon_obs::prof::timers().write_prometheus(&mut out))
                .map_err(|e| e.to_string())?;
            use std::fmt::Write as _;
            let mut tail = String::new();
            let _ =
                writeln!(tail, "# HELP revmon_events_recorded_total Events accepted by the sink.");
            let _ = writeln!(tail, "# TYPE revmon_events_recorded_total counter");
            let _ = writeln!(tail, "revmon_events_recorded_total {}", state.sink.recorded());
            let _ =
                writeln!(tail, "# HELP revmon_events_dropped_total Events lost to ring overflow.");
            let _ = writeln!(tail, "# TYPE revmon_events_dropped_total counter");
            let _ = writeln!(tail, "revmon_events_dropped_total {}", state.sink.dropped());
            let mut body = String::from_utf8(out).map_err(|e| e.to_string())?;
            body.push_str(&tail);
            Ok(("200 OK", "text/plain; version=0.0.4", body))
        }
        "/graph" => {
            let snap = revmon_locks::wait_graph_snapshot();
            Ok(("200 OK", "application/json", snap.to_json(&names)))
        }
        "/graph.dot" => {
            let snap = revmon_locks::wait_graph_snapshot();
            Ok(("200 OK", "text/vnd.graphviz", snap.to_dot(&names)))
        }
        _ => Ok((
            "404 Not Found",
            "text/plain",
            "try /metrics, /healthz, /graph, /graph.dot\n".into(),
        )),
    }
}
