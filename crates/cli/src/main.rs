//! `revmon` — run, disassemble and verify `.rvm` assembly programs on the
//! revocable-monitor VM, and demo the real-thread locks runtime.
//!
//! ```text
//! revmon run program.rvm [--entry main] [--config modified|unmodified]
//!        [--policy blocking|revocation|inherit|ceiling=N]
//!        [--sched rr|prio] [--queue pq|fifo] [--detect acq|bg=N]
//!        [--seed N] [--quantum N] [--max-steps N]
//!        [--governor k=K,backoff=TICKS[,decay=TICKS]]
//!        [--elide] [--sticky] [--trace] [--stats]
//!        [--trace-out events.jsonl] [--chrome-trace out.json]
//!        [--metrics-json metrics.json] [--prometheus out.prom]
//! revmon explore program.rvm [--entry main] [--max-preemptions N]
//!        [--max-schedules N] [--all-failures] [--max-rounds N]
//!        [--fuzz-iters N] [--fuzz-seed N] [--fuzz-len N]
//!        [--replay file.schedule.json] [--minimize]
//!        [--save-failure out.schedule.json] [--fault-skip-undo N]
//!        [--policy ...] [--seed N] [--quantum N] [--max-steps N]
//!        [--governor k=K,backoff=TICKS[,decay=TICKS]]
//!        [--stats] [--metrics-json metrics.json]
//! revmon demo [--low N] [--high N] [--sections N] [--stats] [--watch]
//!        [--trace-out events.jsonl] [--chrome-trace out.json]
//!        [--metrics-json metrics.json] [--prometheus out.prom]
//! revmon analyze trace.jsonl [--json] [--prometheus out.prom]
//!        [--flame out.folded]
//! revmon serve [--addr HOST:PORT] [--low N] [--high N]
//!        [--no-workload] [--max-requests N]
//! revmon dis program.rvm [--rewrite]
//! revmon verify program.rvm [--rewrite]
//! ```
//!
//! The observability flags work on both runtimes: `run` records the VM's
//! virtual-clock event stream, `demo` records wall-clock events from the
//! locks runtime's priority-inversion scenario. See `docs/observability.md`.
//!
//! `analyze` imports a `--trace-out` JSONL file and reconstructs
//! priority-inversion episodes and per-monitor contention profiles from
//! it; `demo --watch` runs the same analysis live while the scenario
//! executes. See `docs/analysis.md`.
//!
//! `serve` exposes the same analysis live over HTTP — Prometheus
//! `/metrics`, a `/healthz` probe, and the wait-for graph as JSON or DOT
//! — with a demo-style background workload unless `--no-workload`. The
//! revocation slow path is phase-timed on both runtimes (always on; see
//! `docs/profiling.md`); `--stats` prints the per-phase table and
//! `--flame` exports episode critical paths as folded stacks.
//!
//! `explore` enumerates schedules of a program exhaustively under a
//! preemption bound (or samples them with `--fuzz-iters`), checking the
//! revocation protocol's invariants on every run; failing schedules can
//! be minimized and saved as replayable `.schedule.json` artifacts. See
//! `docs/exploration.md`.

use revmon_core::{DetectionStrategy, GovernorConfig, InversionPolicy, Priority, QueueDiscipline};
use revmon_obs::{EventSink, TsUnit};
use revmon_vm::{
    assemble, disassemble, rewrite_program, verify_program, SchedulerKind, Vm, VmConfig,
};
use std::process::ExitCode;
use std::sync::Arc;

mod serve;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("revmon: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: revmon <run|explore|dis|verify> <file.rvm> [options]\n       revmon analyze <trace.jsonl> [--json] [--prometheus out.prom] [--flame out.folded]\n       revmon demo [options]\n       revmon serve [--addr HOST:PORT] [options]\n       see crate docs for the option list".into()
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or_else(usage)?;
    if cmd == "demo" {
        return run_demo(&args[1..]);
    }
    if cmd == "serve" {
        return serve::run_serve(&args[1..]);
    }
    let file = args.get(1).ok_or_else(usage)?;
    if cmd == "analyze" {
        return run_analyze(file, &args[2..]);
    }
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let program = assemble(&src).map_err(|e| format!("{file}: {e}"))?;
    let opts = &args[2..];

    match cmd.as_str() {
        "dis" => {
            let p = if has_flag(opts, "--rewrite") { rewrite_program(&program) } else { program };
            print!("{}", disassemble(&p));
            Ok(())
        }
        "verify" => {
            let p = if has_flag(opts, "--rewrite") { rewrite_program(&program) } else { program };
            match verify_program(&p) {
                Ok(()) => {
                    println!("{file}: OK ({} methods)", p.methods.len());
                    Ok(())
                }
                Err(errors) => {
                    for e in &errors {
                        eprintln!("{file}: {e}");
                    }
                    Err(format!("{} verification error(s)", errors.len()))
                }
            }
        }
        "run" => run_program(file, program, opts),
        "explore" => run_explore(file, program, &src, opts),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// The observability output paths shared by `run` and `demo`.
struct ObsOuts {
    trace_out: Option<String>,
    chrome: Option<String>,
    metrics: Option<String>,
    prometheus: Option<String>,
    flame: Option<String>,
}

impl ObsOuts {
    fn parse(opts: &[String]) -> Result<Self, String> {
        Ok(ObsOuts {
            trace_out: get_opt(opts, "--trace-out")?,
            chrome: get_opt(opts, "--chrome-trace")?,
            metrics: get_opt(opts, "--metrics-json")?,
            prometheus: get_opt(opts, "--prometheus")?,
            flame: get_opt(opts, "--flame")?,
        })
    }

    fn wanted(&self) -> bool {
        self.trace_out.is_some()
            || self.chrome.is_some()
            || self.metrics.is_some()
            || self.prometheus.is_some()
            || self.flame.is_some()
    }

    /// Write every requested artifact from the run's drained `events`.
    /// `counters` is the run's counter set for `--metrics-json`; `names`
    /// labels monitors in the trace and Prometheus outputs; `meta` is the
    /// run context stamped into the trace header so `analyze` can label
    /// governed runs and account for ring-buffer drops.
    fn export(
        &self,
        events: &[revmon_obs::Event],
        sink: &EventSink,
        counters: &[(&str, u64)],
        names: &std::collections::BTreeMap<u64, String>,
        meta: &revmon_obs::RunMeta,
    ) -> Result<(), String> {
        if let Some(path) = &self.trace_out {
            let mut f = create(path)?;
            revmon_obs::write_trace_jsonl_with(&mut f, events, sink.ts_unit(), names, meta)
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("revmon: wrote {} events to {path}", events.len());
        }
        if let Some(path) = &self.chrome {
            let mut f = create(path)?;
            let repairs = revmon_obs::write_chrome_trace(&mut f, events, sink.ts_unit())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "revmon: wrote Chrome trace to {path} (open in Perfetto or chrome://tracing)"
            );
            if repairs > 0 {
                eprintln!(
                    "revmon: repaired {repairs} span(s) torn by ring-buffer overflow in {path}"
                );
            }
        }
        if let Some(path) = &self.metrics {
            let json = revmon_obs::metrics_json_with(
                counters,
                sink.histograms(),
                sink.ts_unit(),
                Some(revmon_obs::prof::timers()),
            );
            std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("revmon: wrote metrics to {path}");
        }
        if self.prometheus.is_some() || self.flame.is_some() {
            let analysis = revmon_obs::Analysis::from_events(events);
            if let Some(path) = &self.prometheus {
                let mut f = create(path)?;
                revmon_obs::write_prometheus(&mut f, &analysis, names, sink.ts_unit())
                    .and_then(|()| revmon_obs::prof::timers().write_prometheus(&mut f))
                    .map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("revmon: wrote Prometheus metrics to {path}");
            }
            if let Some(path) = &self.flame {
                let stacks = revmon_obs::FoldedStacks::from_episodes(&analysis.episodes, names);
                let mut f = create(path)?;
                stacks.write_folded(&mut f).map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("revmon: wrote {} folded stacks to {path}", stacks.len());
            }
        }
        Ok(())
    }
}

fn create(path: &str) -> Result<std::io::BufWriter<std::fs::File>, String> {
    std::fs::File::create(path)
        .map(std::io::BufWriter::new)
        .map_err(|e| format!("cannot create {path}: {e}"))
}

/// Build a [`VmConfig`] from the common command-line knobs shared by
/// `run` and `explore`.
fn parse_vm_config(opts: &[String]) -> Result<VmConfig, String> {
    let mut cfg = match get_opt(opts, "--config")?.as_deref() {
        None | Some("modified") => VmConfig::modified(),
        Some("unmodified") => VmConfig::unmodified(),
        Some(o) => return Err(format!("--config must be modified|unmodified, got {o}")),
    };
    if let Some(p) = get_opt(opts, "--policy")? {
        cfg.policy = match p.as_str() {
            "blocking" => InversionPolicy::Blocking,
            "revocation" => InversionPolicy::Revocation,
            "inherit" => InversionPolicy::PriorityInheritance,
            s if s.starts_with("ceiling=") => {
                let n: u8 = s[8..].parse().map_err(|_| "bad ceiling level".to_string())?;
                InversionPolicy::PriorityCeiling(Priority::new(n))
            }
            o => return Err(format!("unknown policy `{o}`")),
        };
    }
    if let Some(s) = get_opt(opts, "--sched")? {
        cfg.scheduler = match s.as_str() {
            "rr" => SchedulerKind::RoundRobin,
            "prio" => SchedulerKind::PriorityPreemptive,
            o => return Err(format!("--sched must be rr|prio, got {o}")),
        };
    }
    if let Some(q) = get_opt(opts, "--queue")? {
        cfg.queue_discipline = match q.as_str() {
            "pq" => QueueDiscipline::Priority,
            "fifo" => QueueDiscipline::Fifo,
            o => return Err(format!("--queue must be pq|fifo, got {o}")),
        };
    }
    if let Some(d) = get_opt(opts, "--detect")? {
        cfg.detection = match d.as_str() {
            "acq" => DetectionStrategy::AtAcquisition,
            s if s.starts_with("bg=") => DetectionStrategy::Background {
                period: s[3..].parse().map_err(|_| "bad bg period".to_string())?,
            },
            o => return Err(format!("--detect must be acq|bg=N, got {o}")),
        };
    }
    if let Some(s) = get_opt(opts, "--seed")? {
        cfg.seed = s.parse().map_err(|_| "bad seed".to_string())?;
    }
    if let Some(q) = get_opt(opts, "--quantum")? {
        cfg.cost.quantum = q.parse().map_err(|_| "bad quantum".to_string())?;
    }
    if let Some(m) = get_opt(opts, "--max-steps")? {
        cfg.max_steps = m.parse().map_err(|_| "bad max-steps".to_string())?;
    }
    if let Some(g) = get_opt(opts, "--governor")? {
        cfg.governor = parse_governor(&g)?;
    }
    cfg.elide_barriers = has_flag(opts, "--elide");
    cfg.sticky_nonrevocable = has_flag(opts, "--sticky");
    cfg.trace = has_flag(opts, "--trace");
    Ok(cfg)
}

/// Parse `--governor k=K,backoff=TICKS[,decay=TICKS]` into a
/// [`GovernorConfig`]. `k` is required and must be positive (a disabled
/// governor is the default; asking for one explicitly is a mistake).
fn parse_governor(spec: &str) -> Result<GovernorConfig, String> {
    let mut cfg = GovernorConfig::disabled();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (key, value) =
            part.split_once('=').ok_or_else(|| format!("--governor: `{part}` is not key=value"))?;
        let parse = |what: &str| -> Result<u64, String> {
            value.parse().map_err(|_| format!("--governor: bad {what} `{value}`"))
        };
        match key {
            "k" => {
                cfg.k = u32::try_from(parse("retry budget")?)
                    .map_err(|_| format!("--governor: k `{value}` out of range"))?
            }
            "backoff" => cfg.backoff = parse("backoff window")?,
            "decay" => cfg.decay = parse("decay window")?,
            o => return Err(format!("--governor: unknown key `{o}` (expected k, backoff, decay)")),
        }
    }
    if !cfg.enabled() {
        return Err("--governor needs k=<positive retry budget>".into());
    }
    Ok(cfg)
}

fn run_program(
    file: &str,
    program: revmon_vm::bytecode::Program,
    opts: &[String],
) -> Result<(), String> {
    let cfg = parse_vm_config(opts)?;
    let outs = ObsOuts::parse(opts)?;
    let entry_name = get_opt(opts, "--entry")?.unwrap_or_else(|| "main".into());
    let entry = program
        .method_by_name(&entry_name)
        .ok_or_else(|| format!("{file}: no method named `{entry_name}`"))?;
    if program.method(entry).params != 0 {
        return Err(format!("entry method `{entry_name}` must take no parameters"));
    }

    let mut vm = Vm::try_new(program, cfg).map_err(|errs| {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        format!("{file}: verification failed:\n  {}", msgs.join("\n  "))
    })?;
    let sink = outs.wanted().then(|| Arc::new(EventSink::new(TsUnit::VirtualTicks)));
    if let Some(sink) = &sink {
        vm.attach_sink(Arc::clone(sink));
    }
    vm.spawn(&entry_name, entry, vec![], Priority::NORM);
    let report = vm.run().map_err(|e| format!("{file}: VM fault: {e}"))?;

    if cfg.trace {
        println!("--- trace ---");
        for rec in vm.take_trace() {
            println!("[{:>10}] {:?}", rec.at, rec.event);
        }
    }
    if !report.output.is_empty() {
        println!("--- output ---");
        for v in &report.output {
            println!("{v}");
        }
    }
    for t in &report.threads {
        if let Some(tag) = t.uncaught {
            eprintln!("warning: thread {} died with uncaught exception (class {tag})", t.name);
        }
    }
    if has_flag(opts, "--stats") {
        println!("--- stats ---");
        print!("{}", report.summary());
        if !report.monitors.is_empty() {
            println!("--- monitors (by contention) ---");
            for m in report.monitors.iter().take(8) {
                println!(
                    "{}: {} acquires, {} contended, peak queue {}",
                    m.object, m.acquires, m.contended, m.peak_queue
                );
            }
        }
        if let Some(sink) = &sink {
            println!("--- latency histograms ---");
            let mut out = std::io::stdout().lock();
            revmon_obs::write_summary(
                &mut out,
                sink.histograms(),
                sink.ts_unit(),
                sink.recorded(),
                sink.dropped(),
            )
            .map_err(|e| format!("writing summary: {e}"))?;
        }
        println!("--- revocation phases (host-clock) ---");
        let mut out = std::io::stdout().lock();
        revmon_obs::prof::timers()
            .write_table(&mut out)
            .map_err(|e| format!("writing phase table: {e}"))?;
    }
    if let Some(sink) = &sink {
        let mut counters = Vec::new();
        report.global.for_each_field(|name, v| counters.push((name, v)));
        let events = sink.drain();
        let meta = revmon_obs::RunMeta {
            recorded: Some(sink.recorded()),
            dropped: Some(sink.dropped()),
            governor: cfg.governor.enabled().then_some((
                cfg.governor.k,
                cfg.governor.backoff,
                cfg.governor.decay,
            )),
            scheduler: Some(
                match cfg.scheduler {
                    SchedulerKind::RoundRobin => "rr",
                    SchedulerKind::PriorityPreemptive => "prio",
                }
                .into(),
            ),
        };
        outs.export(&events, sink, &counters, &vm.monitor_names(), &meta)?;
    }
    Ok(())
}

/// `revmon analyze`: import a JSONL trace (`run`/`demo --trace-out`)
/// and report priority-inversion episodes and per-monitor contention.
fn run_analyze(file: &str, opts: &[String]) -> Result<(), String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let imp = revmon_obs::import_trace_jsonl(&text);
    if imp.warnings.total() > 0 {
        let w = &imp.warnings;
        eprintln!(
            "revmon: {file}: skipped {} damaged line(s) ({} malformed, {} unknown kind, {} out of order)",
            w.total(),
            w.malformed_lines,
            w.unknown_kinds,
            w.out_of_order
        );
    }
    if imp.events.is_empty() {
        return Err(format!("{file}: no importable events"));
    }
    let mut analysis = revmon_obs::Analysis::from_events(&imp.events);
    // Damaged (thread, monitor) pairs cannot be classified honestly —
    // their resolution events may be among the skipped lines — so their
    // unresolved verdicts are reported as `truncated`, not as real
    // inversions the runtime failed to resolve.
    analysis.mark_truncated(&imp.damaged, imp.warnings.total());
    let unit = imp.unit();
    let meta = &imp.run_meta;
    if let Some(dropped) = meta.dropped.filter(|&d| d > 0) {
        eprintln!(
            "revmon: {file}: the recording run dropped {dropped} event(s) to ring-buffer \
             overflow ({} recorded) — episodes touching the gap may be truncated",
            meta.recorded.map_or_else(|| "?".into(), |r| r.to_string()),
        );
    }
    if has_flag(opts, "--json") {
        print!("{}", revmon_obs::analysis_json(&analysis, &imp.names, unit));
    } else {
        // Label the run from its trace-header context so governed runs
        // are not mistaken for baseline ones.
        let mut context = Vec::new();
        if let Some(s) = &meta.scheduler {
            context.push(format!("scheduler={s}"));
        }
        if let Some((k, b, d)) = meta.governor {
            context.push(format!("governor k={k} backoff={b} decay={d}"));
        }
        if !context.is_empty() {
            println!("run context: {}", context.join(", "));
        }
        let mut out = std::io::stdout().lock();
        revmon_obs::write_report(&mut out, &analysis, &imp.names, unit)
            .map_err(|e| format!("writing report: {e}"))?;
    }
    if let Some(path) = get_opt(opts, "--flame")? {
        let stacks = revmon_obs::FoldedStacks::from_episodes(&analysis.episodes, &imp.names);
        let mut f = create(&path)?;
        stacks.write_folded(&mut f).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("revmon: wrote {} folded stacks to {path}", stacks.len());
    }
    if let Some(path) = get_opt(opts, "--prometheus")? {
        let mut f = create(&path)?;
        revmon_obs::write_prometheus(&mut f, &analysis, &imp.names, unit)
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("revmon: wrote Prometheus metrics to {path}");
    }
    Ok(())
}

/// `revmon explore`: enumerate (or fuzz) the schedules of a program,
/// checking the revocation protocol's invariants on every run.
fn run_explore(
    file: &str,
    program: revmon_vm::bytecode::Program,
    src: &str,
    opts: &[String],
) -> Result<(), String> {
    use revmon_explore::{explore, fuzz, minimize, Bounds, FuzzPlan, Runner, ScheduleFile};

    if let Err(errors) = verify_program(&program) {
        let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        return Err(format!("{file}: verification failed:\n  {}", msgs.join("\n  ")));
    }
    let mut cfg = parse_vm_config(opts)?;
    if let Some(n) = parse_opt(opts, "--fault-skip-undo")? {
        cfg.fault_skip_undo = n; // test-only: sabotage rollback to prove detection
    }
    let entry_name = get_opt(opts, "--entry")?.unwrap_or_else(|| "main".into());
    let do_minimize = has_flag(opts, "--minimize");
    let save_failure = get_opt(opts, "--save-failure")?;
    let metrics = get_opt(opts, "--metrics-json")?;

    // Replay mode: re-execute a saved schedule bit-for-bit.
    if let Some(path) = get_opt(opts, "--replay")? {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let sched = ScheduleFile::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        if !sched.matches_program(src) {
            return Err(format!(
                "{path}: schedule was recorded against a different program (hash {}, expected {})",
                sched.program_fnv,
                format_args!("{:016x}", revmon_explore::fnv1a(src)),
            ));
        }
        sched.apply_to(&mut cfg)?;
        let runner = Runner::new(program, &sched.entry, cfg)?;
        let out = runner.run(&sched.decisions);
        println!(
            "replayed {} decisions: terminal {:?}, {} rounds, clock {}, fingerprint {:016x}",
            out.decisions.len(),
            out.terminal,
            out.rounds,
            out.clock,
            out.fingerprint
        );
        for v in &out.violations {
            println!("violation: {v}");
        }
        return match &sched.expect_invariant {
            Some(inv) if out.violates(inv) => {
                println!("reproduced expected violation `{inv}`");
                Ok(())
            }
            Some(inv) => Err(format!("expected violation `{inv}` did not reproduce")),
            None if out.violations.is_empty() => Ok(()),
            None => Err(format!("{} invariant violation(s)", out.violations.len())),
        };
    }

    let mut runner = Runner::new(program, &entry_name, cfg)?;
    if let Some(r) = parse_opt(opts, "--max-rounds")? {
        runner.max_rounds = r;
    }

    // Shared failure handling: print, optionally minimize, optionally save.
    let handle_failure = |runner: &Runner,
                          schedule: Vec<u32>,
                          invariant: &str,
                          detail: &str|
     -> Result<(), String> {
        println!("FAILURE: {invariant} — {detail}");
        println!("schedule ({} decisions): {schedule:?}", schedule.len());
        let mut final_schedule = schedule;
        if do_minimize {
            let min = minimize(runner, &final_schedule, invariant, 0);
            println!(
                "minimized to {} decisions in {} runs: {:?}",
                min.schedule.len(),
                min.runs,
                min.schedule
            );
            final_schedule = min.schedule;
        }
        if let Some(path) = &save_failure {
            let artifact = ScheduleFile::new(
                file,
                src,
                runner.entry_name(),
                runner.config(),
                final_schedule,
                Some(invariant.to_string()),
            );
            std::fs::write(path, artifact.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
            println!("saved failing schedule to {path}");
        }
        Ok(())
    };

    // Fuzzing mode: sample the schedule space instead of enumerating it.
    if let Some(iters) = parse_opt(opts, "--fuzz-iters")? {
        let plan = FuzzPlan {
            iters,
            seed: parse_opt(opts, "--fuzz-seed")?.unwrap_or(FuzzPlan::default().seed),
            script_len: parse_opt(opts, "--fuzz-len")?.unwrap_or(FuzzPlan::default().script_len),
            ..FuzzPlan::default()
        };
        let report = fuzz(&runner, plan);
        println!(
            "fuzzed {} schedules: {} completed, {} stalled, {} rollbacks verified",
            report.iters, report.completed, report.stalls, report.rollbacks
        );
        if let Some(path) = &metrics {
            let counters = [
                ("fuzz_iters", report.iters),
                ("fuzz_completed", report.completed),
                ("fuzz_stalls", report.stalls),
                ("fuzz_rollbacks", report.rollbacks),
                ("fuzz_failures", report.failure.is_some() as u64),
            ];
            write_metrics(path, &counters)?;
        }
        return match report.failure {
            None => {
                println!("invariants: all passed");
                Ok(())
            }
            Some((schedule, invariant)) => {
                handle_failure(&runner, schedule, &invariant, "found by fuzzing")?;
                Err(format!("invariant `{invariant}` violated"))
            }
        };
    }

    // Exhaustive mode.
    let bounds = Bounds {
        max_preemptions: parse_opt(opts, "--max-preemptions")?.unwrap_or(2),
        max_schedules: parse_opt(opts, "--max-schedules")?.unwrap_or(0),
        stop_on_first_failure: !has_flag(opts, "--all-failures"),
    };
    let report = explore(&runner, bounds);
    let s = &report.stats;
    println!(
        "explored {} schedules ({} decision points) under preemption bound {}",
        s.schedules, s.decision_points, bounds.max_preemptions
    );
    println!(
        "pruned: {} visited-state, {} preemption-bound",
        s.pruned_visited, s.pruned_preemption
    );
    println!(
        "terminals: {} distinct final states, {} stalled, {} budget-exhausted; {} rollbacks verified",
        report.terminal_states.len(),
        s.stalls,
        s.budget_exhausted,
        s.rollbacks
    );
    if s.capped {
        println!(
            "NOTE: schedule cap ({}) stopped the search early — this is a sample, not a proof",
            bounds.max_schedules
        );
    }
    if has_flag(opts, "--stats") {
        println!("--- stats ---");
        println!("{s:#?}");
    }
    if let Some(path) = &metrics {
        let counters = [
            ("explore_schedules", s.schedules),
            ("explore_decision_points", s.decision_points),
            ("explore_pruned_visited", s.pruned_visited),
            ("explore_pruned_preemption", s.pruned_preemption),
            ("explore_stalls", s.stalls),
            ("explore_budget_exhausted", s.budget_exhausted),
            ("explore_rollbacks", s.rollbacks),
            ("explore_terminal_states", report.terminal_states.len() as u64),
            ("explore_failures", report.failures.len() as u64),
            ("explore_capped", s.capped as u64),
        ];
        write_metrics(path, &counters)?;
    }
    if report.clean() {
        println!("invariants: all passed");
        Ok(())
    } else {
        let n = report.failures.len();
        for f in report.failures {
            let v = &f.outcome.violations[0];
            handle_failure(&runner, f.schedule.clone(), v.invariant, &v.detail)?;
        }
        Err(format!("{n} invariant-violating schedule(s)"))
    }
}

/// Write explore/fuzz counters as a metrics JSON document (same format
/// as `run --metrics-json`, with empty histograms).
fn write_metrics(path: &str, counters: &[(&str, u64)]) -> Result<(), String> {
    let json = revmon_obs::metrics_json(
        counters,
        &revmon_obs::Histograms::default(),
        TsUnit::VirtualTicks,
    );
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("revmon: wrote metrics to {path}");
    Ok(())
}

/// `revmon demo`: a Figure-1 priority-inversion scenario on the
/// real-thread locks runtime — low-priority threads hold a revocable
/// monitor for long sections while a high-priority thread barges in —
/// exporting the same observability artifacts as `run`, with wall-clock
/// timestamps.
fn run_demo(opts: &[String]) -> Result<(), String> {
    use revmon_locks::{RevocableMonitor, TCell};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let low_n: usize = parse_opt(opts, "--low")?.unwrap_or(3);
    let high_sections: u64 = parse_opt(opts, "--sections")?.unwrap_or(20);
    let high_n: usize = parse_opt(opts, "--high")?.unwrap_or(1);
    if low_n == 0 || high_n == 0 || high_sections == 0 {
        return Err("--low, --high and --sections must be positive".into());
    }

    let outs = ObsOuts::parse(opts)?;
    let watch = has_flag(opts, "--watch");
    let sink = (outs.wanted() || watch).then(|| Arc::new(EventSink::new(TsUnit::WallNanos)));
    if let Some(sink) = &sink {
        revmon_locks::obs::install(Arc::clone(sink));
    }

    let monitor = Arc::new(RevocableMonitor::named("aggregate"));
    let counter = TCell::new(0i64);
    let stop = Arc::new(AtomicBool::new(false));
    let low_commits = Arc::new(AtomicU64::new(0));

    // Live reporting: periodically drain the sink, fold the events into
    // a running analysis, and print a one-line status. The drained
    // events are accumulated so the final export still sees everything.
    let watch_done = Arc::new(AtomicBool::new(false));
    let watcher = watch.then(|| {
        let sink = Arc::clone(sink.as_ref().expect("watch implies a sink"));
        let done = Arc::clone(&watch_done);
        std::thread::spawn(move || -> Vec<revmon_obs::Event> {
            let mut events: Vec<revmon_obs::Event> = Vec::new();
            let names = revmon_locks::obs::monitor_names();
            loop {
                let finished = done.load(Ordering::Acquire);
                events.extend(sink.drain());
                let a = revmon_obs::Analysis::from_events(&events);
                eprintln!(
                    "watch: {} events | {} episodes ({} revocation, {} unresolved) | \
                     {} undo entries wasted | hottest {}",
                    a.events,
                    a.episodes.len(),
                    a.revocation_episodes(),
                    a.episodes
                        .iter()
                        .filter(|e| e.resolution == revmon_obs::Resolution::Unresolved)
                        .count(),
                    a.wasted_entries,
                    a.profiles
                        .first()
                        .map(|p| revmon_obs::monitor_label(&names, p.monitor))
                        .unwrap_or_else(|| "-".into()),
                );
                if finished {
                    return events;
                }
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
        })
    });

    // Low-priority aggregators: long revocable sections with yield
    // points, the "batch update" side of the paper's motivating scenario.
    let lows: Vec<_> = (0..low_n)
        .map(|_| {
            let m = Arc::clone(&monitor);
            let c = counter.clone();
            let stop = Arc::clone(&stop);
            let commits = Arc::clone(&low_commits);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    m.enter(Priority::LOW, |tx| {
                        for _ in 0..200 {
                            tx.update(&c, |v| v + 1);
                            tx.checkpoint();
                        }
                    });
                    commits.fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    // High-priority alarms: short sections that should preempt the
    // aggregators via revocation rather than wait them out.
    let highs: Vec<_> = (0..high_n)
        .map(|_| {
            let m = Arc::clone(&monitor);
            let c = counter.clone();
            std::thread::spawn(move || {
                for _ in 0..high_sections {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    m.enter(Priority::HIGH, |tx| {
                        tx.update(&c, |v| v + 1);
                    });
                }
            })
        })
        .collect();

    for h in highs {
        h.join().map_err(|_| "high-priority thread panicked".to_string())?;
    }
    stop.store(true, Ordering::Release);
    for l in lows {
        l.join().map_err(|_| "low-priority thread panicked".to_string())?;
    }

    println!(
        "demo: {low_n} low + {high_n} high threads, {} high sections, {} low sections, counter {}",
        high_sections * high_n as u64,
        low_commits.load(Ordering::Relaxed),
        counter.read_unsynchronized()
    );

    // Aggregate over every monitor in the process (here: the one), the
    // library-wide view the per-monitor snapshots can't give.
    if has_flag(opts, "--stats") {
        println!("--- stats (all monitors) ---");
        let total = revmon_locks::aggregate_snapshot();
        total.for_each_field(|name, v| println!("{name:<24}: {v}"));
        if let Some(sink) = &sink {
            println!("--- latency histograms ---");
            let mut out = std::io::stdout().lock();
            revmon_obs::write_summary(
                &mut out,
                sink.histograms(),
                sink.ts_unit(),
                sink.recorded(),
                sink.dropped(),
            )
            .map_err(|e| format!("writing summary: {e}"))?;
        }
        println!("--- revocation phases ---");
        let mut out = std::io::stdout().lock();
        revmon_obs::prof::timers()
            .write_table(&mut out)
            .map_err(|e| format!("writing phase table: {e}"))?;
    }

    // Stop the live reporter and take the events it already drained.
    let mut events = Vec::new();
    if let Some(watcher) = watcher {
        watch_done.store(true, Ordering::Release);
        events = watcher.join().map_err(|_| "watch reporter panicked".to_string())?;
    }

    if let Some(sink) = &sink {
        revmon_locks::obs::uninstall();
        events.extend(sink.drain());
        let mut counters = Vec::new();
        let total = revmon_locks::aggregate_snapshot();
        total.for_each_field(|name, v| counters.push((name, v)));
        let meta = revmon_obs::RunMeta {
            recorded: Some(sink.recorded()),
            dropped: Some(sink.dropped()),
            governor: None, // locks governors are per-monitor, not a run-wide config
            scheduler: Some("os".into()),
        };
        outs.export(&events, sink, &counters, &revmon_locks::obs::monitor_names(), &meta)?;
        if watch {
            let a = revmon_obs::Analysis::from_events(&events);
            let mut out = std::io::stdout().lock();
            revmon_obs::write_report(
                &mut out,
                &a,
                &revmon_locks::obs::monitor_names(),
                sink.ts_unit(),
            )
            .map_err(|e| format!("writing report: {e}"))?;
        }
    }
    Ok(())
}

fn has_flag(opts: &[String], flag: &str) -> bool {
    opts.iter().any(|o| o == flag)
}

/// `--key value` style option.
fn get_opt(opts: &[String], key: &str) -> Result<Option<String>, String> {
    for (i, o) in opts.iter().enumerate() {
        if o == key {
            return opts
                .get(i + 1)
                .cloned()
                .map(Some)
                .ok_or_else(|| format!("{key} needs a value"));
        }
    }
    Ok(None)
}

/// `--key value` parsed into any `FromStr` number.
fn parse_opt<T: std::str::FromStr>(opts: &[String], key: &str) -> Result<Option<T>, String> {
    match get_opt(opts, key)? {
        None => Ok(None),
        Some(s) => s.parse().map(Some).map_err(|_| format!("bad value for {key}: {s}")),
    }
}
