//! `revmon` — run, disassemble and verify `.rvm` assembly programs on the
//! revocable-monitor VM.
//!
//! ```text
//! revmon run program.rvm [--entry main] [--config modified|unmodified]
//!        [--policy blocking|revocation|inherit|ceiling=N]
//!        [--sched rr|prio] [--queue pq|fifo] [--detect acq|bg=N]
//!        [--seed N] [--quantum N] [--max-steps N]
//!        [--elide] [--sticky] [--trace] [--stats]
//! revmon dis program.rvm [--rewrite]
//! revmon verify program.rvm [--rewrite]
//! ```

use revmon_core::{DetectionStrategy, InversionPolicy, Priority, QueueDiscipline};
use revmon_vm::{
    assemble, disassemble, rewrite_program, verify_program, SchedulerKind, Vm, VmConfig,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("revmon: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: revmon <run|dis|verify> <file.rvm> [options]\n       see crate docs for the option list".into()
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or_else(usage)?;
    let file = args.get(1).ok_or_else(usage)?;
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let program = assemble(&src).map_err(|e| format!("{file}: {e}"))?;
    let opts = &args[2..];

    match cmd.as_str() {
        "dis" => {
            let p = if has_flag(opts, "--rewrite") { rewrite_program(&program) } else { program };
            print!("{}", disassemble(&p));
            Ok(())
        }
        "verify" => {
            let p = if has_flag(opts, "--rewrite") { rewrite_program(&program) } else { program };
            match verify_program(&p) {
                Ok(()) => {
                    println!("{file}: OK ({} methods)", p.methods.len());
                    Ok(())
                }
                Err(errors) => {
                    for e in &errors {
                        eprintln!("{file}: {e}");
                    }
                    Err(format!("{} verification error(s)", errors.len()))
                }
            }
        }
        "run" => run_program(file, program, opts),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn run_program(
    file: &str,
    program: revmon_vm::bytecode::Program,
    opts: &[String],
) -> Result<(), String> {
    let mut cfg = match get_opt(opts, "--config")?.as_deref() {
        None | Some("modified") => VmConfig::modified(),
        Some("unmodified") => VmConfig::unmodified(),
        Some(o) => return Err(format!("--config must be modified|unmodified, got {o}")),
    };
    if let Some(p) = get_opt(opts, "--policy")? {
        cfg.policy = match p.as_str() {
            "blocking" => InversionPolicy::Blocking,
            "revocation" => InversionPolicy::Revocation,
            "inherit" => InversionPolicy::PriorityInheritance,
            s if s.starts_with("ceiling=") => {
                let n: u8 = s[8..].parse().map_err(|_| "bad ceiling level".to_string())?;
                InversionPolicy::PriorityCeiling(Priority::new(n))
            }
            o => return Err(format!("unknown policy `{o}`")),
        };
    }
    if let Some(s) = get_opt(opts, "--sched")? {
        cfg.scheduler = match s.as_str() {
            "rr" => SchedulerKind::RoundRobin,
            "prio" => SchedulerKind::PriorityPreemptive,
            o => return Err(format!("--sched must be rr|prio, got {o}")),
        };
    }
    if let Some(q) = get_opt(opts, "--queue")? {
        cfg.queue_discipline = match q.as_str() {
            "pq" => QueueDiscipline::Priority,
            "fifo" => QueueDiscipline::Fifo,
            o => return Err(format!("--queue must be pq|fifo, got {o}")),
        };
    }
    if let Some(d) = get_opt(opts, "--detect")? {
        cfg.detection = match d.as_str() {
            "acq" => DetectionStrategy::AtAcquisition,
            s if s.starts_with("bg=") => DetectionStrategy::Background {
                period: s[3..].parse().map_err(|_| "bad bg period".to_string())?,
            },
            o => return Err(format!("--detect must be acq|bg=N, got {o}")),
        };
    }
    if let Some(s) = get_opt(opts, "--seed")? {
        cfg.seed = s.parse().map_err(|_| "bad seed".to_string())?;
    }
    if let Some(q) = get_opt(opts, "--quantum")? {
        cfg.cost.quantum = q.parse().map_err(|_| "bad quantum".to_string())?;
    }
    if let Some(m) = get_opt(opts, "--max-steps")? {
        cfg.max_steps = m.parse().map_err(|_| "bad max-steps".to_string())?;
    }
    cfg.elide_barriers = has_flag(opts, "--elide");
    cfg.sticky_nonrevocable = has_flag(opts, "--sticky");
    cfg.trace = has_flag(opts, "--trace");

    let entry_name = get_opt(opts, "--entry")?.unwrap_or_else(|| "main".into());
    let entry = program
        .method_by_name(&entry_name)
        .ok_or_else(|| format!("{file}: no method named `{entry_name}`"))?;
    if program.method(entry).params != 0 {
        return Err(format!("entry method `{entry_name}` must take no parameters"));
    }

    let mut vm = Vm::try_new(program, cfg).map_err(|errs| {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        format!("{file}: verification failed:\n  {}", msgs.join("\n  "))
    })?;
    vm.spawn(&entry_name, entry, vec![], Priority::NORM);
    let report = vm.run().map_err(|e| format!("{file}: VM fault: {e}"))?;

    if cfg.trace {
        println!("--- trace ---");
        for rec in vm.take_trace() {
            println!("[{:>10}] {:?}", rec.at, rec.event);
        }
    }
    if !report.output.is_empty() {
        println!("--- output ---");
        for v in &report.output {
            println!("{v}");
        }
    }
    for t in &report.threads {
        if let Some(tag) = t.uncaught {
            eprintln!("warning: thread {} died with uncaught exception (class {tag})", t.name);
        }
    }
    if has_flag(opts, "--stats") {
        println!("--- stats ---");
        print!("{}", report.summary());
        if !report.monitors.is_empty() {
            println!("--- monitors (by contention) ---");
            for m in report.monitors.iter().take(8) {
                println!(
                    "{}: {} acquires, {} contended, peak queue {}",
                    m.object, m.acquires, m.contended, m.peak_queue
                );
            }
        }
    }
    Ok(())
}

fn has_flag(opts: &[String], flag: &str) -> bool {
    opts.iter().any(|o| o == flag)
}

/// `--key value` style option.
fn get_opt(opts: &[String], key: &str) -> Result<Option<String>, String> {
    for (i, o) in opts.iter().enumerate() {
        if o == key {
            return opts
                .get(i + 1)
                .cloned()
                .map(Some)
                .ok_or_else(|| format!("{key} needs a value"));
        }
    }
    Ok(None)
}
