//! `revmon` — run, disassemble and verify `.rvm` assembly programs on the
//! revocable-monitor VM, and demo the real-thread locks runtime.
//!
//! ```text
//! revmon run program.rvm [--entry main] [--config modified|unmodified]
//!        [--policy blocking|revocation|inherit|ceiling=N]
//!        [--sched rr|prio] [--queue pq|fifo] [--detect acq|bg=N]
//!        [--seed N] [--quantum N] [--max-steps N]
//!        [--elide] [--sticky] [--trace] [--stats]
//!        [--trace-out events.jsonl] [--chrome-trace out.json]
//!        [--metrics-json metrics.json]
//! revmon demo [--low N] [--high N] [--sections N] [--stats]
//!        [--trace-out events.jsonl] [--chrome-trace out.json]
//!        [--metrics-json metrics.json]
//! revmon dis program.rvm [--rewrite]
//! revmon verify program.rvm [--rewrite]
//! ```
//!
//! The observability flags work on both runtimes: `run` records the VM's
//! virtual-clock event stream, `demo` records wall-clock events from the
//! locks runtime's priority-inversion scenario. See `docs/observability.md`.

use revmon_core::{DetectionStrategy, InversionPolicy, Priority, QueueDiscipline};
use revmon_obs::{EventSink, TsUnit};
use revmon_vm::{
    assemble, disassemble, rewrite_program, verify_program, SchedulerKind, Vm, VmConfig,
};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("revmon: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: revmon <run|dis|verify> <file.rvm> [options]\n       revmon demo [options]\n       see crate docs for the option list".into()
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or_else(usage)?;
    if cmd == "demo" {
        return run_demo(&args[1..]);
    }
    let file = args.get(1).ok_or_else(usage)?;
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let program = assemble(&src).map_err(|e| format!("{file}: {e}"))?;
    let opts = &args[2..];

    match cmd.as_str() {
        "dis" => {
            let p = if has_flag(opts, "--rewrite") { rewrite_program(&program) } else { program };
            print!("{}", disassemble(&p));
            Ok(())
        }
        "verify" => {
            let p = if has_flag(opts, "--rewrite") { rewrite_program(&program) } else { program };
            match verify_program(&p) {
                Ok(()) => {
                    println!("{file}: OK ({} methods)", p.methods.len());
                    Ok(())
                }
                Err(errors) => {
                    for e in &errors {
                        eprintln!("{file}: {e}");
                    }
                    Err(format!("{} verification error(s)", errors.len()))
                }
            }
        }
        "run" => run_program(file, program, opts),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// The three observability output paths shared by `run` and `demo`.
struct ObsOuts {
    trace_out: Option<String>,
    chrome: Option<String>,
    metrics: Option<String>,
}

impl ObsOuts {
    fn parse(opts: &[String]) -> Result<Self, String> {
        Ok(ObsOuts {
            trace_out: get_opt(opts, "--trace-out")?,
            chrome: get_opt(opts, "--chrome-trace")?,
            metrics: get_opt(opts, "--metrics-json")?,
        })
    }

    fn wanted(&self) -> bool {
        self.trace_out.is_some() || self.chrome.is_some() || self.metrics.is_some()
    }

    /// Drain `sink` and write every requested artifact. `counters` is the
    /// run's counter set for `--metrics-json`.
    fn export(&self, sink: &EventSink, counters: &[(&str, u64)]) -> Result<(), String> {
        let events = sink.drain();
        if let Some(path) = &self.trace_out {
            let mut f = create(path)?;
            revmon_obs::write_events_jsonl(&mut f, &events)
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("revmon: wrote {} events to {path}", events.len());
        }
        if let Some(path) = &self.chrome {
            let mut f = create(path)?;
            revmon_obs::write_chrome_trace(&mut f, &events, sink.ts_unit())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "revmon: wrote Chrome trace to {path} (open in Perfetto or chrome://tracing)"
            );
        }
        if let Some(path) = &self.metrics {
            let json = revmon_obs::metrics_json(counters, sink.histograms(), sink.ts_unit());
            std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("revmon: wrote metrics to {path}");
        }
        Ok(())
    }
}

fn create(path: &str) -> Result<std::io::BufWriter<std::fs::File>, String> {
    std::fs::File::create(path)
        .map(std::io::BufWriter::new)
        .map_err(|e| format!("cannot create {path}: {e}"))
}

fn run_program(
    file: &str,
    program: revmon_vm::bytecode::Program,
    opts: &[String],
) -> Result<(), String> {
    let mut cfg = match get_opt(opts, "--config")?.as_deref() {
        None | Some("modified") => VmConfig::modified(),
        Some("unmodified") => VmConfig::unmodified(),
        Some(o) => return Err(format!("--config must be modified|unmodified, got {o}")),
    };
    if let Some(p) = get_opt(opts, "--policy")? {
        cfg.policy = match p.as_str() {
            "blocking" => InversionPolicy::Blocking,
            "revocation" => InversionPolicy::Revocation,
            "inherit" => InversionPolicy::PriorityInheritance,
            s if s.starts_with("ceiling=") => {
                let n: u8 = s[8..].parse().map_err(|_| "bad ceiling level".to_string())?;
                InversionPolicy::PriorityCeiling(Priority::new(n))
            }
            o => return Err(format!("unknown policy `{o}`")),
        };
    }
    if let Some(s) = get_opt(opts, "--sched")? {
        cfg.scheduler = match s.as_str() {
            "rr" => SchedulerKind::RoundRobin,
            "prio" => SchedulerKind::PriorityPreemptive,
            o => return Err(format!("--sched must be rr|prio, got {o}")),
        };
    }
    if let Some(q) = get_opt(opts, "--queue")? {
        cfg.queue_discipline = match q.as_str() {
            "pq" => QueueDiscipline::Priority,
            "fifo" => QueueDiscipline::Fifo,
            o => return Err(format!("--queue must be pq|fifo, got {o}")),
        };
    }
    if let Some(d) = get_opt(opts, "--detect")? {
        cfg.detection = match d.as_str() {
            "acq" => DetectionStrategy::AtAcquisition,
            s if s.starts_with("bg=") => DetectionStrategy::Background {
                period: s[3..].parse().map_err(|_| "bad bg period".to_string())?,
            },
            o => return Err(format!("--detect must be acq|bg=N, got {o}")),
        };
    }
    if let Some(s) = get_opt(opts, "--seed")? {
        cfg.seed = s.parse().map_err(|_| "bad seed".to_string())?;
    }
    if let Some(q) = get_opt(opts, "--quantum")? {
        cfg.cost.quantum = q.parse().map_err(|_| "bad quantum".to_string())?;
    }
    if let Some(m) = get_opt(opts, "--max-steps")? {
        cfg.max_steps = m.parse().map_err(|_| "bad max-steps".to_string())?;
    }
    cfg.elide_barriers = has_flag(opts, "--elide");
    cfg.sticky_nonrevocable = has_flag(opts, "--sticky");
    cfg.trace = has_flag(opts, "--trace");

    let outs = ObsOuts::parse(opts)?;
    let entry_name = get_opt(opts, "--entry")?.unwrap_or_else(|| "main".into());
    let entry = program
        .method_by_name(&entry_name)
        .ok_or_else(|| format!("{file}: no method named `{entry_name}`"))?;
    if program.method(entry).params != 0 {
        return Err(format!("entry method `{entry_name}` must take no parameters"));
    }

    let mut vm = Vm::try_new(program, cfg).map_err(|errs| {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        format!("{file}: verification failed:\n  {}", msgs.join("\n  "))
    })?;
    let sink = outs.wanted().then(|| Arc::new(EventSink::new(TsUnit::VirtualTicks)));
    if let Some(sink) = &sink {
        vm.attach_sink(Arc::clone(sink));
    }
    vm.spawn(&entry_name, entry, vec![], Priority::NORM);
    let report = vm.run().map_err(|e| format!("{file}: VM fault: {e}"))?;

    if cfg.trace {
        println!("--- trace ---");
        for rec in vm.take_trace() {
            println!("[{:>10}] {:?}", rec.at, rec.event);
        }
    }
    if !report.output.is_empty() {
        println!("--- output ---");
        for v in &report.output {
            println!("{v}");
        }
    }
    for t in &report.threads {
        if let Some(tag) = t.uncaught {
            eprintln!("warning: thread {} died with uncaught exception (class {tag})", t.name);
        }
    }
    if has_flag(opts, "--stats") {
        println!("--- stats ---");
        print!("{}", report.summary());
        if !report.monitors.is_empty() {
            println!("--- monitors (by contention) ---");
            for m in report.monitors.iter().take(8) {
                println!(
                    "{}: {} acquires, {} contended, peak queue {}",
                    m.object, m.acquires, m.contended, m.peak_queue
                );
            }
        }
        if let Some(sink) = &sink {
            println!("--- latency histograms ---");
            let mut out = std::io::stdout().lock();
            revmon_obs::write_summary(
                &mut out,
                sink.histograms(),
                sink.ts_unit(),
                sink.recorded(),
                sink.dropped(),
            )
            .map_err(|e| format!("writing summary: {e}"))?;
        }
    }
    if let Some(sink) = &sink {
        let mut counters = Vec::new();
        report.global.for_each_field(|name, v| counters.push((name, v)));
        outs.export(sink, &counters)?;
    }
    Ok(())
}

/// `revmon demo`: a Figure-1 priority-inversion scenario on the
/// real-thread locks runtime — low-priority threads hold a revocable
/// monitor for long sections while a high-priority thread barges in —
/// exporting the same observability artifacts as `run`, with wall-clock
/// timestamps.
fn run_demo(opts: &[String]) -> Result<(), String> {
    use revmon_locks::{RevocableMonitor, TCell};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let low_n: usize = parse_opt(opts, "--low")?.unwrap_or(3);
    let high_sections: u64 = parse_opt(opts, "--sections")?.unwrap_or(20);
    let high_n: usize = parse_opt(opts, "--high")?.unwrap_or(1);
    if low_n == 0 || high_n == 0 || high_sections == 0 {
        return Err("--low, --high and --sections must be positive".into());
    }

    let outs = ObsOuts::parse(opts)?;
    let sink = outs.wanted().then(|| Arc::new(EventSink::new(TsUnit::WallNanos)));
    if let Some(sink) = &sink {
        revmon_locks::obs::install(Arc::clone(sink));
    }

    let monitor = Arc::new(RevocableMonitor::new());
    let counter = TCell::new(0i64);
    let stop = Arc::new(AtomicBool::new(false));
    let low_commits = Arc::new(AtomicU64::new(0));

    // Low-priority aggregators: long revocable sections with yield
    // points, the "batch update" side of the paper's motivating scenario.
    let lows: Vec<_> = (0..low_n)
        .map(|_| {
            let m = Arc::clone(&monitor);
            let c = counter.clone();
            let stop = Arc::clone(&stop);
            let commits = Arc::clone(&low_commits);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    m.enter(Priority::LOW, |tx| {
                        for _ in 0..200 {
                            tx.update(&c, |v| v + 1);
                            tx.checkpoint();
                        }
                    });
                    commits.fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    // High-priority alarms: short sections that should preempt the
    // aggregators via revocation rather than wait them out.
    let highs: Vec<_> = (0..high_n)
        .map(|_| {
            let m = Arc::clone(&monitor);
            let c = counter.clone();
            std::thread::spawn(move || {
                for _ in 0..high_sections {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    m.enter(Priority::HIGH, |tx| {
                        tx.update(&c, |v| v + 1);
                    });
                }
            })
        })
        .collect();

    for h in highs {
        h.join().map_err(|_| "high-priority thread panicked".to_string())?;
    }
    stop.store(true, Ordering::Release);
    for l in lows {
        l.join().map_err(|_| "low-priority thread panicked".to_string())?;
    }

    println!(
        "demo: {low_n} low + {high_n} high threads, {} high sections, {} low sections, counter {}",
        high_sections * high_n as u64,
        low_commits.load(Ordering::Relaxed),
        counter.read_unsynchronized()
    );

    // Aggregate over every monitor in the process (here: the one), the
    // library-wide view the per-monitor snapshots can't give.
    if has_flag(opts, "--stats") {
        println!("--- stats (all monitors) ---");
        let total = revmon_locks::aggregate_snapshot();
        total.for_each_field(|name, v| println!("{name:<24}: {v}"));
        if let Some(sink) = &sink {
            println!("--- latency histograms ---");
            let mut out = std::io::stdout().lock();
            revmon_obs::write_summary(
                &mut out,
                sink.histograms(),
                sink.ts_unit(),
                sink.recorded(),
                sink.dropped(),
            )
            .map_err(|e| format!("writing summary: {e}"))?;
        }
    }

    if let Some(sink) = &sink {
        revmon_locks::obs::uninstall();
        let mut counters = Vec::new();
        let total = revmon_locks::aggregate_snapshot();
        total.for_each_field(|name, v| counters.push((name, v)));
        outs.export(sink, &counters)?;
    }
    Ok(())
}

fn has_flag(opts: &[String], flag: &str) -> bool {
    opts.iter().any(|o| o == flag)
}

/// `--key value` style option.
fn get_opt(opts: &[String], key: &str) -> Result<Option<String>, String> {
    for (i, o) in opts.iter().enumerate() {
        if o == key {
            return opts
                .get(i + 1)
                .cloned()
                .map(Some)
                .ok_or_else(|| format!("{key} needs a value"));
        }
    }
    Ok(None)
}

/// `--key value` parsed into any `FromStr` number.
fn parse_opt<T: std::str::FromStr>(opts: &[String], key: &str) -> Result<Option<T>, String> {
    match get_opt(opts, key)? {
        None => Ok(None),
        Some(s) => s.parse().map(Some).map_err(|_| format!("bad value for {key}: {s}")),
    }
}
