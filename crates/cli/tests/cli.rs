//! End-to-end CLI tests over the sample `.rvm` programs.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_revmon"))
}

fn program(name: &str) -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../programs").join(name);
    p.to_string_lossy().into_owned()
}

#[test]
fn run_counter_emits_total() {
    let out = bin().args(["run", &program("counter.rvm"), "--stats"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("4000"), "expected the counter total, got:\n{stdout}");
    assert!(stdout.contains("rollbacks"), "stats block missing");
}

#[test]
fn priority_inversion_waits_less_on_modified_vm() {
    let wait_of = |config: &str| -> i64 {
        let out = bin()
            .args(["run", &program("priority_inversion.rvm"), "--config", config])
            .output()
            .unwrap();
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout);
        stdout
            .lines()
            .filter_map(|l| l.trim().parse::<i64>().ok())
            .next()
            .unwrap_or_else(|| panic!("no emitted wait time in:\n{stdout}"))
    };
    let modified = wait_of("modified");
    let unmodified = wait_of("unmodified");
    assert!(
        modified < unmodified / 2,
        "revocation should slash the high-priority wait: modified={modified} unmodified={unmodified}"
    );
}

#[test]
fn deadlock_breaks_on_modified_vm_and_stalls_on_unmodified() {
    let ok = bin().args(["run", &program("deadlock.rvm")]).output().unwrap();
    assert!(ok.status.success());
    assert!(String::from_utf8_lossy(&ok.stdout).contains('2'));

    let stalled =
        bin().args(["run", &program("deadlock.rvm"), "--config", "unmodified"]).output().unwrap();
    assert!(!stalled.status.success(), "blocking VM must report the deadlock");
    assert!(String::from_utf8_lossy(&stalled.stderr).contains("no runnable threads"));
}

#[test]
fn dis_shows_injected_scopes_after_rewrite() {
    let plain = bin().args(["dis", &program("counter.rvm")]).output().unwrap();
    assert!(plain.status.success());
    let plain = String::from_utf8_lossy(&plain.stdout).into_owned();
    assert!(plain.contains("monitorenter"));
    assert!(!plain.contains("savestate"));

    let rewritten = bin().args(["dis", &program("counter.rvm"), "--rewrite"]).output().unwrap();
    let rewritten = String::from_utf8_lossy(&rewritten.stdout).into_owned();
    assert!(rewritten.contains("savestate"));
    assert!(rewritten.contains("rollbackhandler"));
}

#[test]
fn verify_accepts_samples_and_rejects_garbage() {
    for f in ["counter.rvm", "priority_inversion.rvm", "deadlock.rvm"] {
        let out = bin().args(["verify", &program(f), "--rewrite"]).output().unwrap();
        assert!(out.status.success(), "{f} failed verify");
    }
    let tmp = std::env::temp_dir().join("revmon-bad.rvm");
    std::fs::write(&tmp, ".method m params=0 locals=0\n    pop\n    retvoid\n.end\n").unwrap();
    let out = bin().args(["verify", tmp.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("stack"));
}

#[test]
fn unknown_flags_and_files_fail_cleanly() {
    let out = bin().args(["run", "/nonexistent.rvm"]).output().unwrap();
    assert!(!out.status.success());
    let out = bin().args(["frobnicate", &program("counter.rvm")]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn trace_flag_prints_monitor_events() {
    let out = bin().args(["run", &program("priority_inversion.rvm"), "--trace"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Acquire"), "trace missing:\n{stdout}");
}

#[test]
fn run_trace_out_then_analyze_reports_the_revocation_episode() {
    let trace = std::env::temp_dir().join("revmon-cli-pi.jsonl");
    let out = bin()
        .args(["run", &program("priority_inversion.rvm"), "--trace-out", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Text report: named monitor, revocation resolution, wasted work.
    let out = bin().args(["analyze", trace.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("inversion episodes: 1"), "report:\n{stdout}");
    assert!(stdout.contains("monitor \"lock\""), "monitor name missing:\n{stdout}");
    assert!(stdout.contains("revocation"), "resolution missing:\n{stdout}");
    assert!(stdout.contains("undo entries rolled back"), "wasted work missing:\n{stdout}");

    // JSON report + Prometheus export.
    let prom = std::env::temp_dir().join("revmon-cli-pi.prom");
    let out = bin()
        .args([
            "analyze",
            trace.to_str().unwrap(),
            "--json",
            "--prometheus",
            prom.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"resolutions\": {\"revocation\": 1"), "json:\n{json}");
    assert!(json.contains("\"monitor_name\": \"lock\""), "json:\n{json}");
    let prom_text = std::fs::read_to_string(&prom).unwrap();
    assert!(prom_text.contains("revmon_episodes_total{resolution=\"revocation\"} 1"));
    assert!(prom_text.contains("revmon_monitor_acquires_total{monitor=\"lock\"}"));
}

#[test]
fn analyze_tolerates_damage_and_rejects_empty_input() {
    let dir = std::env::temp_dir();
    let damaged = dir.join("revmon-cli-damaged.jsonl");
    std::fs::write(
        &damaged,
        "{\"ts\":10,\"thread\":1,\"monitor\":3,\"kind\":\"Acquire\"}\nnot json\n",
    )
    .unwrap();
    let out = bin().args(["analyze", damaged.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "damage must degrade, not fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("skipped 1 damaged line"));

    let empty = dir.join("revmon-cli-empty.jsonl");
    std::fs::write(&empty, "").unwrap();
    let out = bin().args(["analyze", empty.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success(), "no events must be an error");
}

#[test]
fn producer_consumer_handshake_works() {
    for config in ["modified", "unmodified"] {
        let out = bin()
            .args(["run", &program("producer_consumer.rvm"), "--config", config])
            .output()
            .unwrap();
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout);
        let values: Vec<i64> =
            stdout.lines().filter_map(|l| l.trim().parse::<i64>().ok()).collect();
        assert_eq!(values, vec![10, 20, 30, 40, 50, 5], "config {config}: {stdout}");
    }
}
