//! End-to-end smoke test for `revmon serve`: bind an ephemeral port,
//! scrape every route with a raw TCP client, and check the server exits
//! on its own at `--max-requests`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};

fn get(addr: &str, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("response");
    out
}

#[test]
fn serve_exposes_metrics_health_and_graph() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_revmon"))
        .args(["serve", "--addr", "127.0.0.1:0", "--max-requests", "3"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn revmon serve");

    // The first stdout line is `revmon: serving on HOST:PORT (...)` —
    // parse the bound address out of it (port 0 means the OS picked one).
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("banner line");
    let addr = line
        .split_whitespace()
        .nth(3)
        .unwrap_or_else(|| panic!("no address in banner {line:?}"))
        .to_string();

    let health = get(&addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "healthz: {health}");
    assert!(health.ends_with("ok\n"), "healthz body: {health}");

    let metrics = get(&addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200"), "metrics: {metrics}");
    assert!(metrics.contains("revmon_episodes_total"), "analysis series missing:\n{metrics}");
    assert!(metrics.contains("revmon_revocation_phase_ns"), "phase timers missing:\n{metrics}");
    assert!(metrics.contains("revmon_events_recorded_total"), "sink counters missing:\n{metrics}");

    let graph = get(&addr, "/graph");
    assert!(graph.starts_with("HTTP/1.1 200"), "graph: {graph}");
    assert!(graph.contains("application/json"), "graph content type: {graph}");
    assert!(graph.contains("\"edges\""), "graph body: {graph}");

    // That was request 3 of 3: the server must exit by itself.
    let status = child.wait().expect("wait");
    assert!(status.success(), "serve exited with {status}");
}
