//! Thread priorities and identifier newtypes.
//!
//! The paper's evaluation uses a two-level scheme ("a thread can have
//! either high or low priority", §4) but the mechanism is defined for
//! arbitrary priorities, so we model the full Java range 1..=10 with the
//! usual `MIN`/`NORM`/`MAX` constants and expose `HIGH`/`LOW` shorthands
//! matching the benchmark.

use std::fmt;

/// A scheduling priority. Higher numeric value means more urgent, matching
/// `java.lang.Thread` (1 = `MIN_PRIORITY`, 5 = `NORM_PRIORITY`,
/// 10 = `MAX_PRIORITY`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Priority(pub u8);

impl Priority {
    /// Minimum priority (Java `Thread.MIN_PRIORITY`).
    pub const MIN: Priority = Priority(1);
    /// Default priority (Java `Thread.NORM_PRIORITY`).
    pub const NORM: Priority = Priority(5);
    /// Maximum priority (Java `Thread.MAX_PRIORITY`).
    pub const MAX: Priority = Priority(10);
    /// The benchmark's "low-priority" class.
    pub const LOW: Priority = Priority(2);
    /// The benchmark's "high-priority" class.
    pub const HIGH: Priority = Priority(8);

    /// Create a priority, clamping into the valid Java range 1..=10.
    pub fn new(level: u8) -> Priority {
        Priority(level.clamp(1, 10))
    }

    /// The raw level.
    pub fn level(self) -> u8 {
        self.0
    }

    /// The higher of two priorities (used by priority inheritance).
    pub fn max_of(self, other: Priority) -> Priority {
        if other > self {
            other
        } else {
            self
        }
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::NORM
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a thread in either runtime. Dense indices: both the VM and
/// the real-thread registry hand these out sequentially from 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifies a monitor (the lock word of an object in the VM, or a
/// `RevocableMonitor` instance in the real-thread library).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MonitorId(pub u32);

impl MonitorId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MonitorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering_follows_level() {
        assert!(Priority::HIGH > Priority::LOW);
        assert!(Priority::MAX > Priority::NORM);
        assert!(Priority::NORM > Priority::MIN);
        assert_eq!(Priority::new(7), Priority(7));
    }

    #[test]
    fn new_clamps_to_java_range() {
        assert_eq!(Priority::new(0), Priority::MIN);
        assert_eq!(Priority::new(200), Priority::MAX);
        assert_eq!(Priority::new(10), Priority::MAX);
    }

    #[test]
    fn max_of_picks_higher() {
        assert_eq!(Priority::LOW.max_of(Priority::HIGH), Priority::HIGH);
        assert_eq!(Priority::HIGH.max_of(Priority::LOW), Priority::HIGH);
        assert_eq!(Priority::NORM.max_of(Priority::NORM), Priority::NORM);
    }

    #[test]
    fn ids_display_compactly() {
        assert_eq!(ThreadId(3).to_string(), "T3");
        assert_eq!(MonitorId(9).to_string(), "M9");
        assert_eq!(Priority::HIGH.to_string(), "P8");
    }
}
