//! Virtual-clock cost model for the simulator.
//!
//! The paper measured wall-clock time on an 800 MHz Pentium III running
//! Jikes RVM 2.2.1. Our substrate executes a mini-bytecode interpreter and
//! charges each operation a configurable number of *ticks* to a virtual
//! clock. Only *ratios* matter for reproducing the figures (they are
//! normalized); the defaults below are calibrated so that:
//!
//! * reads and writes cost the same on the unmodified VM (its curves are
//!   flat versus write ratio, as in Figs. 5–8 dotted lines);
//! * the barrier fast path ("am I in a monitor?") is cheap and charged on
//!   every store in the modified VM;
//! * the slow path (logging) adds a few ticks per logged word, so at 100 %
//!   writes the modified VM's overhead becomes visible (Fig. 6(c));
//! * context switches are ~two orders of magnitude above an instruction,
//!   and the scheduling quantum is large relative to a single instruction
//!   (Jikes used ~20 ms time slices).

/// Tick costs for every chargeable event in the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Base cost of executing one bytecode instruction.
    pub instruction: u64,
    /// Extra cost of the write-barrier fast path (the in-monitor test),
    /// charged on every store when barriers are compiled in.
    pub barrier_fast: u64,
    /// Extra cost of the write-barrier slow path (appending one log
    /// entry), charged on stores executed inside a synchronized section.
    pub barrier_slow: u64,
    /// Cost of restoring one log entry during rollback.
    pub rollback_per_entry: u64,
    /// Fixed cost of initiating a rollback (throwing the rollback
    /// exception, unwinding, restoring frame state).
    pub rollback_fixed: u64,
    /// Cost of a context switch between green threads.
    pub context_switch: u64,
    /// Cost of a monitor acquire/release pair's bookkeeping.
    pub monitor_op: u64,
    /// Scheduling quantum in ticks (time slice between forced yields).
    pub quantum: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            instruction: 1,
            barrier_fast: 1,
            barrier_slow: 4,
            rollback_per_entry: 2,
            rollback_fixed: 200,
            context_switch: 100,
            monitor_op: 20,
            quantum: 20_000,
        }
    }
}

impl CostModel {
    /// Cost model with *all* mechanism overheads zeroed — for tests that
    /// check pure scheduling behaviour.
    pub fn free_mechanism() -> Self {
        CostModel {
            instruction: 1,
            barrier_fast: 0,
            barrier_slow: 0,
            rollback_per_entry: 0,
            rollback_fixed: 0,
            context_switch: 0,
            monitor_op: 0,
            quantum: 20_000,
        }
    }

    /// Total charge for one store on the *modified* VM while inside a
    /// synchronized section.
    pub fn store_logged(&self) -> u64 {
        self.instruction + self.barrier_fast + self.barrier_slow
    }

    /// Total charge for one store on the *modified* VM outside any
    /// synchronized section (fast path only).
    pub fn store_unlogged(&self) -> u64 {
        self.instruction + self.barrier_fast
    }

    /// Cost of rolling back a log of `entries` entries.
    pub fn rollback(&self, entries: usize) -> u64 {
        self.rollback_fixed + self.rollback_per_entry * entries as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_keep_reads_and_writes_equal_without_barriers() {
        let c = CostModel::default();
        // On the unmodified VM a store costs `instruction`, same as a load.
        assert_eq!(c.instruction, 1);
    }

    #[test]
    fn logged_store_costs_more_than_unlogged() {
        let c = CostModel::default();
        assert!(c.store_logged() > c.store_unlogged());
        assert!(c.store_unlogged() > c.instruction);
    }

    #[test]
    fn rollback_cost_scales_with_log_length() {
        let c = CostModel::default();
        assert_eq!(c.rollback(0), c.rollback_fixed);
        assert_eq!(c.rollback(10) - c.rollback(0), 10 * c.rollback_per_entry);
    }

    #[test]
    fn free_mechanism_only_charges_instructions() {
        let c = CostModel::free_mechanism();
        assert_eq!(c.store_logged(), c.instruction);
        assert_eq!(c.rollback(1000), 0);
        assert_eq!(c.context_switch, 0);
    }

    #[test]
    fn quantum_dwarfs_instruction_cost() {
        let c = CostModel::default();
        assert!(c.quantum >= 1000 * c.instruction);
    }
}
