//! Priority-inversion policies and detection strategies.
//!
//! The paper evaluates **revocation** against an unmodified VM
//! (**blocking**); its related-work section discusses **priority
//! inheritance** and **priority ceiling**, which we implement as ablation
//! baselines (experiment A1 in DESIGN.md).

use crate::priority::Priority;

/// What a runtime does when a high-priority thread finds the monitor it
/// wants held by a lower-priority thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum InversionPolicy {
    /// The unmodified VM: the requester simply blocks until the holder
    /// leaves the synchronized section. Priority inversion is unaddressed.
    #[default]
    Blocking,
    /// The paper's contribution: the holder is flagged and, at its next
    /// yield point, rolls back the synchronized section (restoring all
    /// logged updates), releases the monitor, and retries after the
    /// high-priority thread has run.
    Revocation,
    /// Classical priority inheritance: the holder temporarily inherits the
    /// requester's priority until it releases the monitor. Transitive.
    PriorityInheritance,
    /// Priority ceiling emulation: every thread that acquires the monitor
    /// runs at the monitor's programmer-declared ceiling priority while
    /// holding it.
    PriorityCeiling(Priority),
}

impl InversionPolicy {
    /// Whether this policy ever requires write barriers / undo logging.
    ///
    /// Only revocation does; this mirrors the paper's "unmodified VM"
    /// compiling the benchmark without barriers.
    pub fn needs_logging(self) -> bool {
        matches!(self, InversionPolicy::Revocation)
    }

    /// Whether this policy can resolve deadlocks by revoking a victim.
    pub fn can_break_deadlock(self) -> bool {
        matches!(self, InversionPolicy::Revocation)
    }
}

/// How priority inversion is detected (§1.1: "either at lock acquisition,
/// or periodically in the background").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DetectionStrategy {
    /// Check at every contended acquisition: the acquiring thread compares
    /// its priority against the priority deposited in the monitor header.
    #[default]
    AtAcquisition,
    /// A background scan every `period` virtual-clock ticks walks all
    /// contended monitors looking for inversions.
    Background {
        /// Scan period in virtual-clock ticks.
        period: u64,
    },
}

/// Ordering discipline for a monitor's entry queue.
///
/// The paper implements *prioritized monitor queues* so results do not
/// depend on random arrival order: on release, waiting high-priority
/// threads always beat waiting low-priority threads.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueDiscipline {
    /// Strict FIFO (Jikes RVM default).
    Fifo,
    /// Highest priority first; FIFO within a priority class (the paper's
    /// addition, used in all measurements).
    #[default]
    Priority,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_revocation_needs_logging() {
        assert!(!InversionPolicy::Blocking.needs_logging());
        assert!(InversionPolicy::Revocation.needs_logging());
        assert!(!InversionPolicy::PriorityInheritance.needs_logging());
        assert!(!InversionPolicy::PriorityCeiling(Priority::MAX).needs_logging());
    }

    #[test]
    fn only_revocation_breaks_deadlock() {
        assert!(InversionPolicy::Revocation.can_break_deadlock());
        assert!(!InversionPolicy::PriorityInheritance.can_break_deadlock());
    }

    #[test]
    fn defaults_match_paper_setup() {
        assert_eq!(InversionPolicy::default(), InversionPolicy::Blocking);
        assert_eq!(DetectionStrategy::default(), DetectionStrategy::AtAcquisition);
        assert_eq!(QueueDiscipline::default(), QueueDiscipline::Priority);
    }
}
