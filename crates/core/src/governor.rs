//! Adaptive revocation governor: bounded retries, exponential backoff,
//! and per-monitor fallback to the blocking baseline.
//!
//! The paper's revocable monitors can livelock: a low-priority holder
//! that is repeatedly revoked re-executes its synchronized section
//! forever while high-priority contenders keep preempting it. The
//! governor bounds that behaviour. It tracks, per `(monitor, holder)`
//! pair, the streak of consecutive revocations together with the undo
//! entries and section ticks they discarded. Once the streak reaches
//! the retry budget `k`, the next contender is told to *block on the
//! prioritized entry queue* instead of revoking — a per-monitor,
//! reversible degradation to the paper's blocking baseline. Each
//! fallback window lasts `backoff << level` ticks (exponential in the
//! number of windows already served), and a quiet period of `decay`
//! ticks forgives the history entirely.
//!
//! The governor is runtime-agnostic: the VM drives it with its virtual
//! clock and the locks runtime with wall-clock nanoseconds. Both call
//! the same three entry points:
//!
//! - [`Governor::consult`] before acting on a detected inversion;
//! - [`Governor::record_revocation`] after a rollback completes;
//! - [`Governor::record_commit`] when the holder finally commits.

use std::collections::BTreeMap;

/// Tuning knobs for the revocation governor.
///
/// `k == 0` disables the governor entirely: every consult answers
/// [`GovernorVerdict::Allow`] and no state is tracked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Retry budget: consecutive revocations of the same holder on the
    /// same monitor tolerated before contenders are made to block.
    /// `0` disables the governor.
    pub k: u32,
    /// Base fallback-window length in runtime ticks. Each successive
    /// window on the same pair doubles (`backoff << level`, capped).
    pub backoff: u64,
    /// Quiet period in ticks after which a pair's streak and backoff
    /// level are forgiven. `0` means never decay.
    pub decay: u64,
}

impl GovernorConfig {
    /// A disabled governor: all revocations allowed, nothing tracked.
    pub const fn disabled() -> Self {
        GovernorConfig { k: 0, backoff: 0, decay: 0 }
    }

    /// Whether this configuration actually governs anything.
    pub const fn enabled(&self) -> bool {
        self.k != 0
    }
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Answer from [`Governor::consult`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GovernorVerdict {
    /// Revocation is within budget; proceed.
    Allow,
    /// The retry budget is exhausted: the contender must block on the
    /// prioritized entry queue instead of revoking. `fresh` is true
    /// exactly when this consult *opened* a new fallback window (the
    /// caller should emit a `PolicyFallback` event); repeat denials
    /// inside an open window report `fresh: false`.
    Fallback {
        /// True when this denial opened a new backoff window.
        fresh: bool,
    },
}

/// Per-`(monitor, holder)` revocation history.
#[derive(Clone, Copy, Debug, Default)]
struct PairState {
    /// Consecutive revocations since the holder last committed (or the
    /// history decayed).
    streak: u32,
    /// Number of fallback windows served; the next window lasts
    /// `backoff << level` ticks.
    level: u32,
    /// Tick until which contenders must block (exclusive). 0 = open.
    fallback_until: u64,
    /// Undo entries discarded by this pair's revocations.
    entries_rolled_back: u64,
    /// Section ticks discarded by this pair's revocations.
    ticks_discarded: u64,
    /// Tick of the last revocation or commit (not of consult denials,
    /// so an idle governed pair can still decay).
    last_event: u64,
}

/// Runtime revocation governor. See the module docs for the protocol.
///
/// Keyed by `(monitor, holder)` in a `BTreeMap` so that iteration — and
/// therefore every introspection result — is deterministic, which the
/// schedule explorer relies on.
#[derive(Debug, Default)]
pub struct Governor {
    pairs: BTreeMap<(u64, u64), PairState>,
    throttles: u64,
    fallbacks: u64,
}

/// Cap on the exponential shift so `backoff << level` cannot overflow.
const MAX_LEVEL_SHIFT: u32 = 16;

impl Governor {
    /// Fresh governor with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decide whether a contender may revoke `holder`'s section on
    /// `monitor` at time `now`. Does not itself count a revocation;
    /// call [`record_revocation`](Self::record_revocation) once the
    /// rollback actually happens.
    pub fn consult(
        &mut self,
        cfg: GovernorConfig,
        monitor: u64,
        holder: u64,
        now: u64,
    ) -> GovernorVerdict {
        if !cfg.enabled() {
            return GovernorVerdict::Allow;
        }
        let st = self.pairs.entry((monitor, holder)).or_default();
        // Forgive a pair that has been quiet for a full decay window.
        if cfg.decay != 0
            && (st.streak > 0 || st.level > 0)
            && now.saturating_sub(st.last_event) >= cfg.decay
        {
            st.streak = 0;
            st.level = 0;
            st.fallback_until = 0;
        }
        if now < st.fallback_until {
            self.throttles += 1;
            return GovernorVerdict::Fallback { fresh: false };
        }
        if st.streak >= cfg.k {
            let shift = st.level.min(MAX_LEVEL_SHIFT);
            let window = cfg.backoff.saturating_shl(shift);
            st.fallback_until = now.saturating_add(window.max(1));
            st.level = st.level.saturating_add(1);
            self.throttles += 1;
            self.fallbacks += 1;
            return GovernorVerdict::Fallback { fresh: true };
        }
        GovernorVerdict::Allow
    }

    /// Record a completed revocation of `holder` on `monitor`:
    /// `entries` undo entries were rolled back and `ticks` of section
    /// work were discarded.
    pub fn record_revocation(
        &mut self,
        cfg: GovernorConfig,
        monitor: u64,
        holder: u64,
        now: u64,
        entries: u64,
        ticks: u64,
    ) {
        if !cfg.enabled() {
            return;
        }
        let st = self.pairs.entry((monitor, holder)).or_default();
        st.streak = st.streak.saturating_add(1);
        st.entries_rolled_back += entries;
        st.ticks_discarded += ticks;
        st.last_event = now;
    }

    /// Record that `holder` committed a section of `monitor`: the
    /// revocation streak resets (the backoff level survives, so a pair
    /// that keeps re-entering pathological behaviour escalates).
    pub fn record_commit(&mut self, monitor: u64, holder: u64, now: u64) {
        if let Some(st) = self.pairs.get_mut(&(monitor, holder)) {
            st.streak = 0;
            st.fallback_until = 0;
            st.last_event = now;
        }
    }

    /// Largest consecutive-revocation streak ever tolerated on any
    /// pair's *current* history. Under a governor with budget `k` this
    /// never exceeds `k` — the bounded-revocation explore invariant.
    pub fn max_streak(&self) -> u32 {
        self.pairs.values().map(|s| s.streak).max().unwrap_or(0)
    }

    /// The current consecutive-revocation streak of one `(monitor,
    /// holder)` pair (0 for pairs the governor has never seen). Feeds
    /// the wait-for graph snapshots, which annotate each held edge with
    /// how close its pair is to a fallback window.
    pub fn streak(&self, monitor: u64, holder: u64) -> u32 {
        self.pairs.get(&(monitor, holder)).map(|s| s.streak).unwrap_or(0)
    }

    /// Total consult denials (throttled revocation attempts).
    pub fn throttles(&self) -> u64 {
        self.throttles
    }

    /// Total fresh fallback windows opened.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Total undo entries discarded across all governed pairs.
    pub fn entries_rolled_back(&self) -> u64 {
        self.pairs.values().map(|s| s.entries_rolled_back).sum()
    }

    /// Total section ticks discarded across all governed pairs.
    pub fn ticks_discarded(&self) -> u64 {
        self.pairs.values().map(|s| s.ticks_discarded).sum()
    }
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(k: u32, backoff: u64, decay: u64) -> GovernorConfig {
        GovernorConfig { k, backoff, decay }
    }

    #[test]
    fn disabled_governor_always_allows() {
        let mut g = Governor::new();
        for now in 0..100 {
            assert_eq!(g.consult(GovernorConfig::disabled(), 1, 2, now), GovernorVerdict::Allow);
            g.record_revocation(GovernorConfig::disabled(), 1, 2, now, 5, 5);
        }
        assert_eq!(g.max_streak(), 0);
        assert_eq!(g.throttles(), 0);
    }

    #[test]
    fn streak_below_budget_allows() {
        let c = cfg(3, 100, 0);
        let mut g = Governor::new();
        for i in 0..3u64 {
            assert_eq!(g.consult(c, 1, 2, i), GovernorVerdict::Allow);
            g.record_revocation(c, 1, 2, i, 1, 1);
        }
        assert_eq!(g.max_streak(), 3);
    }

    #[test]
    fn budget_exhaustion_opens_fallback_window() {
        let c = cfg(2, 10, 0);
        let mut g = Governor::new();
        for i in 0..2u64 {
            assert_eq!(g.consult(c, 1, 2, i), GovernorVerdict::Allow);
            g.record_revocation(c, 1, 2, i, 1, 1);
        }
        // Budget spent: the next consult opens a window...
        assert_eq!(g.consult(c, 1, 2, 2), GovernorVerdict::Fallback { fresh: true });
        // ...and repeat consults inside it are stale denials.
        assert_eq!(g.consult(c, 1, 2, 5), GovernorVerdict::Fallback { fresh: false });
        assert_eq!(g.throttles(), 2);
        assert_eq!(g.fallbacks(), 1);
    }

    #[test]
    fn windows_escalate_exponentially() {
        let c = cfg(1, 10, 0);
        let mut g = Governor::new();
        g.record_revocation(c, 1, 2, 0, 1, 1);
        // Window 1: [0, 10).
        assert_eq!(g.consult(c, 1, 2, 0), GovernorVerdict::Fallback { fresh: true });
        assert_eq!(g.consult(c, 1, 2, 9), GovernorVerdict::Fallback { fresh: false });
        // Window 2 opens at 10 and lasts 20 ticks.
        assert_eq!(g.consult(c, 1, 2, 10), GovernorVerdict::Fallback { fresh: true });
        assert_eq!(g.consult(c, 1, 2, 29), GovernorVerdict::Fallback { fresh: false });
        assert_eq!(g.consult(c, 1, 2, 30), GovernorVerdict::Fallback { fresh: true });
    }

    #[test]
    fn commit_resets_streak_but_not_level() {
        let c = cfg(1, 10, 0);
        let mut g = Governor::new();
        g.record_revocation(c, 1, 2, 0, 1, 1);
        assert_eq!(g.consult(c, 1, 2, 0), GovernorVerdict::Fallback { fresh: true });
        g.record_commit(1, 2, 12);
        // Streak forgiven: revocation allowed again.
        assert_eq!(g.consult(c, 1, 2, 13), GovernorVerdict::Allow);
        g.record_revocation(c, 1, 2, 13, 1, 1);
        // But the level survived, so the next window is the escalated one.
        assert_eq!(g.consult(c, 1, 2, 14), GovernorVerdict::Fallback { fresh: true });
        assert_eq!(g.consult(c, 1, 2, 14 + 19), GovernorVerdict::Fallback { fresh: false });
    }

    #[test]
    fn decay_forgives_history() {
        let c = cfg(1, 10, 50);
        let mut g = Governor::new();
        g.record_revocation(c, 1, 2, 0, 1, 1);
        assert_eq!(g.consult(c, 1, 2, 1), GovernorVerdict::Fallback { fresh: true });
        // Quiet for >= decay ticks since the last revocation/commit:
        // streak and level both reset, revocation allowed again.
        assert_eq!(g.consult(c, 1, 2, 55), GovernorVerdict::Allow);
        assert_eq!(g.max_streak(), 0);
    }

    #[test]
    fn pairs_are_independent() {
        let c = cfg(1, 10, 0);
        let mut g = Governor::new();
        g.record_revocation(c, 1, 2, 0, 1, 1);
        assert_eq!(g.consult(c, 1, 2, 1), GovernorVerdict::Fallback { fresh: true });
        // Different holder on the same monitor: untouched budget.
        assert_eq!(g.consult(c, 1, 3, 1), GovernorVerdict::Allow);
        // Same holder on a different monitor: untouched budget.
        assert_eq!(g.consult(c, 2, 2, 1), GovernorVerdict::Allow);
    }

    #[test]
    fn accumulators_track_waste() {
        let c = cfg(5, 10, 0);
        let mut g = Governor::new();
        g.record_revocation(c, 1, 2, 0, 7, 100);
        g.record_revocation(c, 1, 2, 1, 3, 50);
        g.record_revocation(c, 2, 9, 2, 1, 5);
        assert_eq!(g.entries_rolled_back(), 11);
        assert_eq!(g.ticks_discarded(), 155);
    }

    #[test]
    fn zero_backoff_still_denies_once_per_tick_boundary() {
        // A degenerate backoff of 0 must still produce a non-empty
        // window so `fresh` denials cannot fire unboundedly per tick.
        let c = cfg(1, 0, 0);
        let mut g = Governor::new();
        g.record_revocation(c, 1, 2, 0, 1, 1);
        assert_eq!(g.consult(c, 1, 2, 5), GovernorVerdict::Fallback { fresh: true });
        assert_eq!(g.consult(c, 1, 2, 5), GovernorVerdict::Fallback { fresh: false });
    }
}
