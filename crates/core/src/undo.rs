//! The sequential undo log.
//!
//! §3.1.2: *"We implemented the log as a sequential buffer. […] If the
//! execution of a synchronized section is interrupted and needs to be
//! re-executed then the log is processed in reverse to restore modified
//! locations to their original values."*
//!
//! The log is generic over the entry type: the VM logs
//! `(location, old word)` pairs, the real-thread library logs boxed
//! restore closures. Marks ([`LogMark`]) are taken at `monitorenter` so a
//! rollback of a (possibly nested) section can truncate exactly the
//! entries made since that section began — entries of sections nested
//! *inside* the rolled-back one are naturally included, which is required
//! because the rollback re-executes the inner sections too.

/// A position in an [`UndoLog`], taken at `monitorenter`.
///
/// Ordering follows log positions: a mark taken earlier is `<` a mark
/// taken later, so nested-section marks compare greater than their
/// enclosing section's mark.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct LogMark(usize);

impl LogMark {
    /// Log position of this mark (number of entries preceding it).
    pub fn position(self) -> usize {
        self.0
    }
}

/// A sequential undo buffer with O(1) append and reverse drain.
///
/// ```
/// use revmon_core::UndoLog;
///
/// let mut log = UndoLog::new();
/// let section = log.mark();            // taken at monitorenter
/// log.push(("x", 1));                  // write barrier logs old values
/// log.push(("y", 2));
/// let mut restored = Vec::new();
/// log.rollback_to(section, |e| restored.push(e));
/// assert_eq!(restored, vec![("y", 2), ("x", 1)]); // newest first
/// ```
#[derive(Debug)]
pub struct UndoLog<E> {
    entries: Vec<E>,
    /// High-water mark, for metrics.
    peak: usize,
}

impl<E> Default for UndoLog<E> {
    fn default() -> Self {
        UndoLog { entries: Vec::new(), peak: 0 }
    }
}

impl<E> UndoLog<E> {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one update. Called from the write-barrier slow path.
    #[inline]
    pub fn push(&mut self, entry: E) {
        self.entries.push(entry);
        if self.entries.len() > self.peak {
            self.peak = self.entries.len();
        }
    }

    /// Take a mark at the current position (at `monitorenter`).
    pub fn mark(&self) -> LogMark {
        LogMark(self.entries.len())
    }

    /// Number of entries currently in the log.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Largest size the log ever reached.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Entries recorded since `mark`, in log order.
    pub fn since(&self, mark: LogMark) -> &[E] {
        &self.entries[mark.0.min(self.entries.len())..]
    }

    /// Roll back to `mark`: invoke `restore` on each entry **newest
    /// first** (the paper processes the log in reverse), removing them.
    pub fn rollback_to(&mut self, mark: LogMark, mut restore: impl FnMut(E)) {
        let cut = mark.0.min(self.entries.len());
        while self.entries.len() > cut {
            let e = self.entries.pop().expect("len > cut implies non-empty");
            restore(e);
        }
    }

    /// Commit (discard) entries since `mark` without restoring — called at
    /// a successful `monitorexit` of an *outermost* section. Nested
    /// sections keep their entries: only when the outermost monitor exits
    /// can the updates no longer be revoked.
    pub fn commit_to(&mut self, mark: LogMark) {
        let cut = mark.0.min(self.entries.len());
        self.entries.truncate(cut);
    }

    /// Drop everything (thread termination).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollback_restores_in_reverse_order() {
        let mut log = UndoLog::new();
        let m = log.mark();
        log.push(1);
        log.push(2);
        log.push(3);
        let mut seen = Vec::new();
        log.rollback_to(m, |e| seen.push(e));
        assert_eq!(seen, vec![3, 2, 1]);
        assert!(log.is_empty());
    }

    #[test]
    fn nested_marks_rollback_only_inner() {
        let mut log = UndoLog::new();
        let outer = log.mark();
        log.push("a");
        let inner = log.mark();
        log.push("b");
        log.push("c");
        let mut seen = Vec::new();
        log.rollback_to(inner, |e| seen.push(e));
        assert_eq!(seen, vec!["c", "b"]);
        assert_eq!(log.len(), 1);
        // Rolling back the outer section also covers what inner re-added.
        log.push("d");
        seen.clear();
        log.rollback_to(outer, |e| seen.push(e));
        assert_eq!(seen, vec!["d", "a"]);
    }

    #[test]
    fn outer_rollback_covers_committed_inner_sections() {
        // An inner section that exited successfully commits nothing until
        // the outermost exit; its entries must still be present for an
        // outer rollback.
        let mut log = UndoLog::new();
        let outer = log.mark();
        log.push(10);
        let inner = log.mark();
        log.push(20);
        // inner exits while outer is still active: no commit of a nested
        // section — caller only calls commit_to at outermost exit.
        let _ = inner;
        let mut seen = Vec::new();
        log.rollback_to(outer, |e| seen.push(e));
        assert_eq!(seen, vec![20, 10]);
    }

    #[test]
    fn commit_discards_without_restoring() {
        let mut log = UndoLog::new();
        let m = log.mark();
        log.push(5);
        log.push(6);
        log.commit_to(m);
        assert!(log.is_empty());
        assert_eq!(log.peak(), 2);
    }

    #[test]
    fn since_exposes_entries_in_log_order() {
        let mut log = UndoLog::new();
        log.push(1);
        let m = log.mark();
        log.push(2);
        log.push(3);
        assert_eq!(log.since(m), &[2, 3]);
    }

    #[test]
    fn rollback_to_stale_mark_beyond_len_is_noop() {
        let mut log: UndoLog<u32> = UndoLog::new();
        log.push(1);
        let m = log.mark(); // position 1
        log.commit_to(LogMark(0));
        // mark now exceeds len; rollback must not panic or restore anything
        let mut seen = Vec::new();
        log.rollback_to(m, |e| seen.push(e));
        assert!(seen.is_empty());
    }
}
