//! Execution counters and small statistics helpers.
//!
//! [`Metrics`] is filled by both runtimes; the benchmark harness reads it
//! to report the paper's figures. The statistics helpers implement the
//! mean and the 90 % confidence interval the paper reports ("we show 90 %
//! confidence intervals in our results", §4.1).

/// Counters describing one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Bytecode instructions executed (VM) / data operations (locks).
    pub instructions: u64,
    /// Monitor acquisitions that succeeded immediately.
    pub monitor_acquires: u64,
    /// Monitor acquisitions that found the monitor held.
    pub contended_acquires: u64,
    /// Context switches between green threads.
    pub context_switches: u64,
    /// Undo-log entries written (write-barrier slow path executions).
    pub log_entries: u64,
    /// Write-barrier fast-path executions (every store on modified VM).
    pub barrier_fast_paths: u64,
    /// Stores that skipped the barrier thanks to static elision.
    pub barriers_elided: u64,
    /// Revocations requested (holder flagged by a higher-priority thread).
    pub revocations_requested: u64,
    /// Rollbacks actually performed.
    pub rollbacks: u64,
    /// Undo-log entries restored by rollbacks.
    pub entries_rolled_back: u64,
    /// Synchronized-section executions that committed.
    pub sections_committed: u64,
    /// Priority-inversion events detected.
    pub inversions_detected: u64,
    /// Inversions left unresolved because the monitor was non-revocable.
    pub inversions_unresolved: u64,
    /// Monitors marked non-revocable by the JMM-consistency guard.
    pub monitors_marked_nonrevocable: u64,
    /// Deadlock cycles detected.
    pub deadlocks_detected: u64,
    /// Deadlocks broken by revoking a victim.
    pub deadlocks_broken: u64,
    /// Priority boosts applied (priority-inheritance baseline).
    pub priority_boosts: u64,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Component-wise sum, for aggregating per-thread metrics.
    pub fn merge(&mut self, other: &Metrics) {
        self.instructions += other.instructions;
        self.monitor_acquires += other.monitor_acquires;
        self.contended_acquires += other.contended_acquires;
        self.context_switches += other.context_switches;
        self.log_entries += other.log_entries;
        self.barrier_fast_paths += other.barrier_fast_paths;
        self.barriers_elided += other.barriers_elided;
        self.revocations_requested += other.revocations_requested;
        self.rollbacks += other.rollbacks;
        self.entries_rolled_back += other.entries_rolled_back;
        self.sections_committed += other.sections_committed;
        self.inversions_detected += other.inversions_detected;
        self.inversions_unresolved += other.inversions_unresolved;
        self.monitors_marked_nonrevocable += other.monitors_marked_nonrevocable;
        self.deadlocks_detected += other.deadlocks_detected;
        self.deadlocks_broken += other.deadlocks_broken;
        self.priority_boosts += other.priority_boosts;
    }
}

/// Arithmetic mean of `xs`. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator). 0.0 for n < 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of the 90 % confidence interval around the mean, using
/// Student-t critical values for small n (the paper runs 5 iterations).
pub fn ci90_half_width(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    // Two-sided 90% t critical values for df = n-1.
    const T90: [f64; 30] = [
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
        1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
        1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
    ];
    let df = n - 1;
    let t = if df <= T90.len() { T90[df - 1] } else { 1.645 };
    t * std_dev(xs) / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_all_fields() {
        let mut a = Metrics { instructions: 1, rollbacks: 2, ..Metrics::new() };
        let b = Metrics { instructions: 10, rollbacks: 20, log_entries: 5, ..Metrics::new() };
        a.merge(&b);
        assert_eq!(a.instructions, 11);
        assert_eq!(a.rollbacks, 22);
        assert_eq!(a.log_entries, 5);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_and_std_dev_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn ci90_zero_for_constant_samples() {
        assert_eq!(ci90_half_width(&[3.0, 3.0, 3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn ci90_five_samples_uses_t_2_132() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let expected = 2.132 * std_dev(&xs) / (5.0f64).sqrt();
        assert!((ci90_half_width(&xs) - expected).abs() < 1e-12);
    }

    #[test]
    fn ci90_single_sample_is_zero() {
        assert_eq!(ci90_half_width(&[42.0]), 0.0);
    }
}
