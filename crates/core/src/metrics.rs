//! Execution counters and small statistics helpers.
//!
//! [`Metrics`] is filled by both runtimes; the benchmark harness reads it
//! to report the paper's figures. The statistics helpers implement the
//! mean and the 90 % confidence interval the paper reports ("we show 90 %
//! confidence intervals in our results", §4.1).

/// Define [`Metrics`] from a single field list so the struct, `merge`,
/// `FIELD_NAMES`, and the by-name accessors can never drift apart: a
/// field added here is automatically summed by `merge`, visited by
/// `for_each_field`, and exported by name.
macro_rules! define_metrics {
    ($( $(#[$doc:meta])* $field:ident ),+ $(,)?) => {
        /// Counters describing one run.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct Metrics {
            $( $(#[$doc])* pub $field: u64, )+
        }

        impl Metrics {
            /// Every counter's name, in declaration order.
            pub const FIELD_NAMES: &'static [&'static str] = &[
                $( stringify!($field), )+
            ];

            /// Fresh, zeroed metrics.
            pub fn new() -> Self {
                Self::default()
            }

            /// Component-wise sum, for aggregating per-thread metrics.
            /// Generated from the field list, so it cannot drop a field.
            pub fn merge(&mut self, other: &Metrics) {
                $( self.$field += other.$field; )+
            }

            /// Visit every counter as `(name, value)`, in declaration
            /// order.
            pub fn for_each_field(&self, mut f: impl FnMut(&'static str, u64)) {
                $( f(stringify!($field), self.$field); )+
            }

            /// Value of the counter called `name`, if any.
            pub fn field(&self, name: &str) -> Option<u64> {
                match name {
                    $( stringify!($field) => Some(self.$field), )+
                    _ => None,
                }
            }

            /// Metrics with every counter set to `v` (test helper for
            /// exhaustiveness checks).
            pub fn uniform(v: u64) -> Self {
                Metrics { $( $field: v, )+ }
            }
        }
    };
}

define_metrics! {
    /// Bytecode instructions executed (VM) / data operations (locks).
    instructions,
    /// Monitor acquisitions that succeeded immediately.
    monitor_acquires,
    /// Monitor acquisitions that found the monitor held.
    contended_acquires,
    /// Context switches between green threads.
    context_switches,
    /// Undo-log entries written (write-barrier slow path executions).
    log_entries,
    /// Write-barrier fast-path executions (every store on modified VM).
    barrier_fast_paths,
    /// Write-barrier slow-path executions (in-section stores that logged
    /// an undo entry and went through the JMM guard).
    barrier_slow_paths,
    /// Stores that skipped the barrier thanks to static elision.
    barriers_elided,
    /// Revocations requested (holder flagged by a higher-priority thread).
    revocations_requested,
    /// Rollbacks actually performed.
    rollbacks,
    /// Undo-log entries restored by rollbacks.
    entries_rolled_back,
    /// Synchronized-section executions that committed.
    sections_committed,
    /// Priority-inversion events detected.
    inversions_detected,
    /// Inversions left unresolved because the monitor was non-revocable.
    inversions_unresolved,
    /// Monitors marked non-revocable by the JMM-consistency guard.
    monitors_marked_nonrevocable,
    /// Deadlock cycles detected.
    deadlocks_detected,
    /// Deadlocks broken by revoking a victim.
    deadlocks_broken,
    /// Priority boosts applied (priority-inheritance baseline).
    priority_boosts,
    /// Revocations denied by the governor's retry budget.
    governor_throttles,
    /// Fresh fallback-to-blocking windows opened by the governor.
    policy_fallbacks,
}

/// Arithmetic mean of `xs`. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator). 0.0 for n < 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Half-width of the 90 % confidence interval around the mean, using
/// Student-t critical values for small n (the paper runs 5 iterations).
pub fn ci90_half_width(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    // Two-sided 90% t critical values for df = n-1.
    const T90: [f64; 30] = [
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
        1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
        1.703, 1.701, 1.699, 1.697,
    ];
    let df = n - 1;
    let t = if df <= T90.len() { T90[df - 1] } else { 1.645 };
    t * std_dev(xs) / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_all_fields() {
        let mut a = Metrics { instructions: 1, rollbacks: 2, ..Metrics::new() };
        let b = Metrics { instructions: 10, rollbacks: 20, log_entries: 5, ..Metrics::new() };
        a.merge(&b);
        assert_eq!(a.instructions, 11);
        assert_eq!(a.rollbacks, 22);
        assert_eq!(a.log_entries, 5);
    }

    #[test]
    fn merge_cannot_drop_a_field() {
        // Every field of the merge result must change when merging a
        // uniform delta — a field silently skipped by `merge` would stay
        // at its old value and fail here.
        let mut a = Metrics::uniform(1);
        a.merge(&Metrics::uniform(10));
        a.for_each_field(|name, v| assert_eq!(v, 11, "field {name} dropped by merge"));
    }

    #[test]
    fn field_names_cover_every_field() {
        let m = Metrics::uniform(7);
        assert!(!Metrics::FIELD_NAMES.is_empty());
        let mut visited = 0;
        m.for_each_field(|name, v| {
            assert_eq!(m.field(name), Some(v));
            visited += 1;
        });
        assert_eq!(visited, Metrics::FIELD_NAMES.len());
        assert_eq!(m.field("no_such_counter"), None);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_and_std_dev_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn ci90_zero_for_constant_samples() {
        assert_eq!(ci90_half_width(&[3.0, 3.0, 3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn ci90_five_samples_uses_t_2_132() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let expected = 2.132 * std_dev(&xs) / (5.0f64).sqrt();
        assert!((ci90_half_width(&xs) - expected).abs() < 1e-12);
    }

    #[test]
    fn ci90_single_sample_is_zero() {
        assert_eq!(ci90_half_width(&[42.0]), 0.0);
    }
}
