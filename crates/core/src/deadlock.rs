//! Waits-for graph: deadlock detection and victim selection.
//!
//! §1.1: *"the same technique can also be used to detect and resolve
//! deadlock. […] Using our techniques, such deadlocks can be detected and
//! resolved automatically, permitting the application to make progress."*
//!
//! The graph records, for each blocked thread, the monitor it waits on and
//! that monitor's owner. A cycle in the thread→thread relation is a
//! deadlock. Resolution revokes a *victim*: the lowest-priority thread in
//! the cycle (ties broken by highest thread id, i.e. youngest), provided
//! its blocking section is revocable. The paper notes that repeated
//! revocation can livelock; callers guard against that by rotating victims
//! or bounding revocations (see `revmon-vm::deadlock`).

use crate::priority::{MonitorId, Priority, ThreadId};
use std::collections::HashMap;

/// One waits-for edge: `waiter` is blocked acquiring `monitor`, currently
/// owned by `owner`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// The blocked thread.
    pub waiter: ThreadId,
    /// The monitor it is trying to acquire.
    pub monitor: MonitorId,
    /// The thread currently holding `monitor`.
    pub owner: ThreadId,
}

/// A deadlock victim: which thread to revoke and the monitor whose
/// acquisition it is blocked on (its revocation target is the section in
/// which it blocked).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim {
    /// Thread chosen for revocation.
    pub thread: ThreadId,
    /// Monitor the victim is blocked on (edge that closes the cycle).
    pub blocked_on: MonitorId,
    /// All threads participating in the detected cycle, in cycle order
    /// starting at `thread`. Bounded copy for diagnostics.
    pub cycle_len: usize,
}

/// Waits-for graph over blocked threads.
///
/// ```
/// use revmon_core::{MonitorId, ThreadId, WaitsForGraph};
///
/// let mut g = WaitsForGraph::new();
/// g.add_wait(ThreadId(1), MonitorId(2), ThreadId(2)); // T1 waits on T2
/// g.add_wait(ThreadId(2), MonitorId(1), ThreadId(1)); // T2 waits on T1
/// let cycle = g.find_any_cycle().expect("deadlock");
/// assert_eq!(cycle.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct WaitsForGraph {
    /// waiter -> (monitor, owner)
    edges: HashMap<ThreadId, (MonitorId, ThreadId)>,
}

impl WaitsForGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `waiter` blocked acquiring `monitor` held by `owner`.
    /// A thread can wait on at most one monitor, so this replaces any
    /// previous edge for `waiter`.
    pub fn add_wait(&mut self, waiter: ThreadId, monitor: MonitorId, owner: ThreadId) {
        self.edges.insert(waiter, (monitor, owner));
    }

    /// Remove `waiter`'s edge (it acquired the monitor, was revoked, or
    /// stopped waiting).
    pub fn remove_wait(&mut self, waiter: ThreadId) {
        self.edges.remove(&waiter);
    }

    /// Current number of blocked threads.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no thread is blocked.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The monitor `waiter` is blocked on, if any.
    pub fn waiting_on(&self, waiter: ThreadId) -> Option<MonitorId> {
        self.edges.get(&waiter).map(|&(m, _)| m)
    }

    /// The full edge for `waiter`, if blocked.
    pub fn edge_of(&self, waiter: ThreadId) -> Option<Edge> {
        self.edges.get(&waiter).map(|&(monitor, owner)| Edge { waiter, monitor, owner })
    }

    /// Every blocking edge, in unspecified order (observability
    /// snapshots sort on their side).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().map(|(&waiter, &(monitor, owner))| Edge { waiter, monitor, owner })
    }

    /// Re-point every edge on `monitor` at a new owner — called when
    /// monitor ownership transfers while other threads stay queued, so
    /// cycle detection never follows a stale owner.
    pub fn retarget_monitor(&mut self, monitor: MonitorId, new_owner: ThreadId) {
        for (waiter, (m, owner)) in self.edges.iter_mut() {
            if *m == monitor && *waiter != new_owner {
                *owner = new_owner;
            }
        }
        // The new owner itself no longer waits on this monitor.
        if self.edges.get(&new_owner).map(|&(m, _)| m) == Some(monitor) {
            self.edges.remove(&new_owner);
        }
    }

    /// Find the cycle (if any) reachable from `start` by following
    /// waiter→owner edges. Returns the threads in the cycle, in order.
    ///
    /// Since each thread has at most one outgoing edge the walk is a
    /// simple chase: O(n) with a visited set.
    pub fn find_cycle_from(&self, start: ThreadId) -> Option<Vec<ThreadId>> {
        let mut path: Vec<ThreadId> = Vec::new();
        let mut cur = start;
        loop {
            if let Some(pos) = path.iter().position(|&t| t == cur) {
                return Some(path[pos..].to_vec());
            }
            path.push(cur);
            match self.edges.get(&cur) {
                Some(&(_, owner)) => cur = owner,
                None => return None, // chain ends at a runnable thread
            }
        }
    }

    /// Detect any deadlock cycle in the whole graph.
    pub fn find_any_cycle(&self) -> Option<Vec<ThreadId>> {
        let mut keys: Vec<ThreadId> = self.edges.keys().copied().collect();
        keys.sort_unstable(); // deterministic iteration
        for &t in &keys {
            if let Some(c) = self.find_cycle_from(t) {
                return Some(c);
            }
        }
        None
    }

    /// Choose a victim for a detected cycle: the lowest-priority member
    /// whose section is revocable (per `revocable`), ties broken by the
    /// *highest* thread id (youngest thread has done the least work).
    /// Returns `None` if no member is revocable — the deadlock cannot be
    /// broken (all sections non-revocable), matching the paper's fallback
    /// to unresolvable cases.
    pub fn choose_victim(
        &self,
        cycle: &[ThreadId],
        priority_of: impl Fn(ThreadId) -> Priority,
        revocable: impl Fn(ThreadId) -> bool,
    ) -> Option<Victim> {
        let mut best: Option<(Priority, ThreadId)> = None;
        for &t in cycle {
            if !revocable(t) {
                continue;
            }
            let p = priority_of(t);
            best = match best {
                None => Some((p, t)),
                Some((bp, bt)) => {
                    if p < bp || (p == bp && t > bt) {
                        Some((p, t))
                    } else {
                        Some((bp, bt))
                    }
                }
            };
        }
        best.map(|(_, t)| Victim {
            thread: t,
            blocked_on: self.edges[&t].0,
            cycle_len: cycle.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId(i)
    }
    fn m(i: u32) -> MonitorId {
        MonitorId(i)
    }

    #[test]
    fn two_thread_cycle_detected() {
        // T1 holds M1 waits M2; T2 holds M2 waits M1.
        let mut g = WaitsForGraph::new();
        g.add_wait(t(1), m(2), t(2));
        g.add_wait(t(2), m(1), t(1));
        let c = g.find_cycle_from(t(1)).expect("cycle");
        assert_eq!(c.len(), 2);
        assert!(c.contains(&t(1)) && c.contains(&t(2)));
    }

    #[test]
    fn chain_without_cycle_is_clean() {
        // T1 waits on T2; T2 runnable.
        let mut g = WaitsForGraph::new();
        g.add_wait(t(1), m(9), t(2));
        assert!(g.find_cycle_from(t(1)).is_none());
        assert!(g.find_any_cycle().is_none());
    }

    #[test]
    fn three_thread_cycle_detected_from_any_entry() {
        let mut g = WaitsForGraph::new();
        g.add_wait(t(1), m(2), t(2));
        g.add_wait(t(2), m(3), t(3));
        g.add_wait(t(3), m(1), t(1));
        for start in [1, 2, 3] {
            let c = g.find_cycle_from(t(start)).expect("cycle");
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn tail_leading_into_cycle_excluded_from_cycle() {
        // T0 -> T1 -> T2 -> T1 : cycle is {T1, T2}.
        let mut g = WaitsForGraph::new();
        g.add_wait(t(0), m(1), t(1));
        g.add_wait(t(1), m(2), t(2));
        g.add_wait(t(2), m(3), t(1));
        let c = g.find_cycle_from(t(0)).expect("cycle");
        assert_eq!(c.len(), 2);
        assert!(!c.contains(&t(0)));
    }

    #[test]
    fn victim_is_lowest_priority_revocable() {
        let mut g = WaitsForGraph::new();
        g.add_wait(t(1), m(2), t(2));
        g.add_wait(t(2), m(1), t(1));
        let cycle = g.find_any_cycle().unwrap();
        let v = g
            .choose_victim(
                &cycle,
                |th| if th == t(1) { Priority::HIGH } else { Priority::LOW },
                |_| true,
            )
            .unwrap();
        assert_eq!(v.thread, t(2));
        assert_eq!(v.blocked_on, m(1));
        assert_eq!(v.cycle_len, 2);
    }

    #[test]
    fn victim_skips_non_revocable_members() {
        let mut g = WaitsForGraph::new();
        g.add_wait(t(1), m(2), t(2));
        g.add_wait(t(2), m(1), t(1));
        let cycle = g.find_any_cycle().unwrap();
        let v = g.choose_victim(&cycle, |_| Priority::LOW, |th| th == t(1)).unwrap();
        assert_eq!(v.thread, t(1));
    }

    #[test]
    fn no_victim_when_all_non_revocable() {
        let mut g = WaitsForGraph::new();
        g.add_wait(t(1), m(2), t(2));
        g.add_wait(t(2), m(1), t(1));
        let cycle = g.find_any_cycle().unwrap();
        assert!(g.choose_victim(&cycle, |_| Priority::LOW, |_| false).is_none());
    }

    #[test]
    fn equal_priority_tie_breaks_to_youngest() {
        let mut g = WaitsForGraph::new();
        g.add_wait(t(1), m(2), t(2));
        g.add_wait(t(2), m(1), t(1));
        let cycle = g.find_any_cycle().unwrap();
        let v = g.choose_victim(&cycle, |_| Priority::NORM, |_| true).unwrap();
        assert_eq!(v.thread, t(2));
    }

    #[test]
    fn retarget_monitor_follows_ownership_transfer() {
        let mut g = WaitsForGraph::new();
        // T1 and T2 wait on M5 owned by T3.
        g.add_wait(t(1), m(5), t(3));
        g.add_wait(t(2), m(5), t(3));
        // T3 releases; M5 transfers to T1.
        g.retarget_monitor(m(5), t(1));
        // T1 no longer waits; T2 now waits on T1.
        assert_eq!(g.waiting_on(t(1)), None);
        assert_eq!(g.edge_of(t(2)).unwrap().owner, t(1));
        // A fresh cycle through the new owner is detectable.
        g.add_wait(t(1), m(9), t(2));
        assert!(g.find_cycle_from(t(1)).is_some());
    }

    #[test]
    fn retarget_leaves_other_monitors_alone() {
        let mut g = WaitsForGraph::new();
        g.add_wait(t(1), m(5), t(3));
        g.add_wait(t(2), m(6), t(3));
        g.retarget_monitor(m(5), t(7));
        assert_eq!(g.edge_of(t(1)).unwrap().owner, t(7));
        assert_eq!(g.edge_of(t(2)).unwrap().owner, t(3), "edge on m6 untouched");
    }

    #[test]
    fn remove_wait_clears_edge() {
        let mut g = WaitsForGraph::new();
        g.add_wait(t(1), m(2), t(2));
        assert_eq!(g.waiting_on(t(1)), Some(m(2)));
        g.remove_wait(t(1));
        assert!(g.is_empty());
        assert_eq!(g.waiting_on(t(1)), None);
    }
}
