//! # revmon-core — shared vocabulary for revocable monitors
//!
//! This crate holds the pieces shared between the deterministic VM
//! substrate (`revmon-vm`) and the real-OS-thread library
//! (`revmon-locks`) of the *revmon* reproduction of:
//!
//! > Adam Welc, Antony L. Hosking, Suresh Jagannathan.
//! > *Preemption-Based Avoidance of Priority Inversion for Java.*
//! > ICPP 2004.
//!
//! The paper's mechanism — **revocable monitors** — resolves priority
//! inversion by preempting a low-priority lock holder, rolling back the
//! shared-state updates it made inside the synchronized section (via a
//! sequential undo log filled by compiler-injected write barriers), and
//! re-executing the section after the high-priority thread has run.
//!
//! The shared pieces are:
//!
//! * [`priority`] — thread priorities and identifier newtypes,
//! * [`policy`]   — which priority-inversion strategy a monitor runs under
//!   (blocking, revocation, priority inheritance, priority ceiling) and how
//!   inversion is detected,
//! * [`undo`]     — the sequential undo log with per-section marks,
//! * [`queue`]    — prioritized monitor entry queues (FIFO within a
//!   priority class),
//! * [`deadlock`] — a waits-for graph with cycle detection and victim
//!   selection,
//! * [`cost`]     — the virtual-clock cost model used by the simulator,
//! * [`metrics`]  — counters and small statistics helpers (means,
//!   confidence intervals) used by the benchmark harness,
//! * [`governor`] — the adaptive revocation governor (bounded retries,
//!   exponential backoff, per-monitor fallback to blocking).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cost;
pub mod deadlock;
pub mod governor;
pub mod metrics;
pub mod policy;
pub mod priority;
pub mod queue;
pub mod undo;

pub use cost::CostModel;
pub use deadlock::{Victim, WaitsForGraph};
pub use governor::{Governor, GovernorConfig, GovernorVerdict};
pub use metrics::Metrics;
pub use policy::{DetectionStrategy, InversionPolicy, QueueDiscipline};
pub use priority::{MonitorId, Priority, ThreadId};
pub use queue::PrioritizedQueue;
pub use undo::{LogMark, UndoLog};
