//! Prioritized monitor entry queues.
//!
//! §4: *"we implemented prioritized monitor queues. […] When a thread
//! releases a monitor, another thread is scheduled from the queue. If it
//! is a high-priority thread, it is allowed to acquire the monitor. If it
//! is a low-priority thread, it is allowed to run only if there are no
//! other waiting high-priority threads."*
//!
//! [`PrioritizedQueue`] generalizes this to the full priority range:
//! highest priority class first, FIFO within a class. A [`QueueDiscipline`]
//! switch turns it into a plain FIFO for the ablation benches.

use crate::policy::QueueDiscipline;
use crate::priority::Priority;
use std::collections::VecDeque;

/// A waiting entry: the queued item plus the priority it queued at and an
/// arrival sequence number used for FIFO-within-class and stable FIFO.
#[derive(Debug, Clone)]
struct Waiter<T> {
    item: T,
    priority: Priority,
    seq: u64,
}

/// A monitor entry queue honouring a [`QueueDiscipline`].
///
/// ```
/// use revmon_core::{PrioritizedQueue, Priority, QueueDiscipline};
///
/// let mut q = PrioritizedQueue::new(QueueDiscipline::Priority);
/// q.push("low", Priority::LOW);
/// q.push("high", Priority::HIGH);
/// assert_eq!(q.pop(), Some("high")); // high-priority waiters first
/// assert_eq!(q.pop(), Some("low"));
/// ```
#[derive(Debug)]
pub struct PrioritizedQueue<T> {
    waiters: VecDeque<Waiter<T>>,
    discipline: QueueDiscipline,
    next_seq: u64,
}

impl<T> PrioritizedQueue<T> {
    /// An empty queue under the given discipline.
    pub fn new(discipline: QueueDiscipline) -> Self {
        PrioritizedQueue { waiters: VecDeque::new(), discipline, next_seq: 0 }
    }

    /// Enqueue `item` waiting at `priority`.
    pub fn push(&mut self, item: T, priority: Priority) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.waiters.push_back(Waiter { item, priority, seq });
    }

    /// Dequeue the next waiter according to the discipline: under
    /// [`QueueDiscipline::Priority`], the earliest-arrived waiter of the
    /// highest waiting priority; under [`QueueDiscipline::Fifo`], the
    /// earliest-arrived waiter outright.
    pub fn pop(&mut self) -> Option<T> {
        if self.waiters.is_empty() {
            return None;
        }
        let idx = match self.discipline {
            QueueDiscipline::Fifo => 0,
            QueueDiscipline::Priority => {
                let mut best = 0usize;
                for i in 1..self.waiters.len() {
                    let (w, b) = (&self.waiters[i], &self.waiters[best]);
                    if w.priority > b.priority || (w.priority == b.priority && w.seq < b.seq) {
                        best = i;
                    }
                }
                best
            }
        };
        self.waiters.remove(idx).map(|w| w.item)
    }

    /// Peek at the priority of the waiter [`pop`](Self::pop) would return.
    pub fn next_priority(&self) -> Option<Priority> {
        match self.discipline {
            QueueDiscipline::Fifo => self.waiters.front().map(|w| w.priority),
            QueueDiscipline::Priority => self.waiters.iter().map(|w| w.priority).max(),
        }
    }

    /// Highest priority currently waiting (regardless of discipline).
    /// Used by priority inheritance to compute the boost.
    pub fn max_waiting_priority(&self) -> Option<Priority> {
        self.waiters.iter().map(|w| w.priority).max()
    }

    /// Remove a specific waiter (e.g. a thread killed while queued).
    /// Returns true if it was present.
    pub fn remove_where(&mut self, mut pred: impl FnMut(&T) -> bool) -> bool {
        if let Some(pos) = self.waiters.iter().position(|w| pred(&w.item)) {
            self.waiters.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of waiters.
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }

    /// Iterate over queued items in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.waiters.iter().map(|w| &w.item)
    }

    /// Iterate over `(item, queued-at priority)` pairs in arrival order
    /// (invariant checking and state fingerprinting).
    pub fn iter_entries(&self) -> impl Iterator<Item = (&T, Priority)> {
        self.waiters.iter().map(|w| (&w.item, w.priority))
    }

    /// The discipline this queue dequeues under.
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// Internal-consistency check: arrival sequence numbers must be
    /// strictly increasing front-to-back (re-prioritization re-pushes,
    /// so this holds for every reachable queue state).
    pub fn is_well_formed(&self) -> bool {
        self.waiters.iter().zip(self.waiters.iter().skip(1)).all(|(a, b)| a.seq < b.seq)
            && self.waiters.iter().all(|w| w.seq < self.next_seq)
    }
}

impl<T> Default for PrioritizedQueue<T> {
    fn default() -> Self {
        Self::new(QueueDiscipline::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_discipline_pops_high_first() {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Priority);
        q.push("low1", Priority::LOW);
        q.push("high1", Priority::HIGH);
        q.push("low2", Priority::LOW);
        q.push("high2", Priority::HIGH);
        assert_eq!(q.pop(), Some("high1"));
        assert_eq!(q.pop(), Some("high2"));
        assert_eq!(q.pop(), Some("low1"));
        assert_eq!(q.pop(), Some("low2"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_discipline_ignores_priority() {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Fifo);
        q.push("low", Priority::LOW);
        q.push("high", Priority::HIGH);
        assert_eq!(q.pop(), Some("low"));
        assert_eq!(q.pop(), Some("high"));
    }

    #[test]
    fn next_priority_matches_pop_order() {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Priority);
        q.push(1, Priority::LOW);
        assert_eq!(q.next_priority(), Some(Priority::LOW));
        q.push(2, Priority::HIGH);
        assert_eq!(q.next_priority(), Some(Priority::HIGH));
    }

    #[test]
    fn max_waiting_priority_independent_of_discipline() {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Fifo);
        q.push(1, Priority::LOW);
        q.push(2, Priority::MAX);
        q.push(3, Priority::NORM);
        assert_eq!(q.max_waiting_priority(), Some(Priority::MAX));
    }

    #[test]
    fn remove_where_extracts_matching_waiter() {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Priority);
        q.push(1, Priority::LOW);
        q.push(2, Priority::HIGH);
        assert!(q.remove_where(|&x| x == 2));
        assert!(!q.remove_where(|&x| x == 2));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn three_priority_classes_ordered() {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Priority);
        q.push("n", Priority::NORM);
        q.push("l", Priority::MIN);
        q.push("h", Priority::MAX);
        assert_eq!(q.pop(), Some("h"));
        assert_eq!(q.pop(), Some("n"));
        assert_eq!(q.pop(), Some("l"));
    }
}
