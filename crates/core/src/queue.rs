//! Prioritized monitor entry queues.
//!
//! §4: *"we implemented prioritized monitor queues. […] When a thread
//! releases a monitor, another thread is scheduled from the queue. If it
//! is a high-priority thread, it is allowed to acquire the monitor. If it
//! is a low-priority thread, it is allowed to run only if there are no
//! other waiting high-priority threads."*
//!
//! [`PrioritizedQueue`] generalizes this to the full priority range:
//! highest priority class first, FIFO within a class. A [`QueueDiscipline`]
//! switch turns it into a plain FIFO for the ablation benches.

use crate::policy::QueueDiscipline;
use crate::priority::Priority;
use std::collections::VecDeque;

/// A waiting entry: the queued item plus the priority it queued at and an
/// arrival sequence number used for FIFO-within-class and stable FIFO.
#[derive(Debug, Clone)]
struct Waiter<T> {
    item: T,
    priority: Priority,
    seq: u64,
}

/// A monitor entry queue honouring a [`QueueDiscipline`].
///
/// ```
/// use revmon_core::{PrioritizedQueue, Priority, QueueDiscipline};
///
/// let mut q = PrioritizedQueue::new(QueueDiscipline::Priority);
/// q.push("low", Priority::LOW);
/// q.push("high", Priority::HIGH);
/// assert_eq!(q.pop(), Some("high")); // high-priority waiters first
/// assert_eq!(q.pop(), Some("low"));
/// ```
#[derive(Debug)]
pub struct PrioritizedQueue<T> {
    waiters: VecDeque<Waiter<T>>,
    discipline: QueueDiscipline,
    next_seq: u64,
}

impl<T> PrioritizedQueue<T> {
    /// An empty queue under the given discipline.
    pub fn new(discipline: QueueDiscipline) -> Self {
        PrioritizedQueue { waiters: VecDeque::new(), discipline, next_seq: 0 }
    }

    /// Enqueue `item` waiting at `priority`.
    pub fn push(&mut self, item: T, priority: Priority) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.waiters.push_back(Waiter { item, priority, seq });
    }

    /// Dequeue the next waiter according to the discipline: under
    /// [`QueueDiscipline::Priority`], the earliest-arrived waiter of the
    /// highest waiting priority; under [`QueueDiscipline::Fifo`], the
    /// earliest-arrived waiter outright.
    pub fn pop(&mut self) -> Option<T> {
        if self.waiters.is_empty() {
            return None;
        }
        let idx = match self.discipline {
            QueueDiscipline::Fifo => 0,
            QueueDiscipline::Priority => {
                let mut best = 0usize;
                for i in 1..self.waiters.len() {
                    let (w, b) = (&self.waiters[i], &self.waiters[best]);
                    if w.priority > b.priority || (w.priority == b.priority && w.seq < b.seq) {
                        best = i;
                    }
                }
                best
            }
        };
        self.waiters.remove(idx).map(|w| w.item)
    }

    /// Peek at the priority of the waiter [`pop`](Self::pop) would return.
    pub fn next_priority(&self) -> Option<Priority> {
        match self.discipline {
            QueueDiscipline::Fifo => self.waiters.front().map(|w| w.priority),
            QueueDiscipline::Priority => self.waiters.iter().map(|w| w.priority).max(),
        }
    }

    /// Highest priority currently waiting (regardless of discipline).
    /// Used by priority inheritance to compute the boost.
    pub fn max_waiting_priority(&self) -> Option<Priority> {
        self.waiters.iter().map(|w| w.priority).max()
    }

    /// Remove a specific waiter (e.g. a thread killed while queued).
    /// Returns true if it was present.
    pub fn remove_where(&mut self, mut pred: impl FnMut(&T) -> bool) -> bool {
        if let Some(pos) = self.waiters.iter().position(|w| pred(&w.item)) {
            self.waiters.remove(pos);
            true
        } else {
            false
        }
    }

    /// Change the queued-at priority of an already-waiting item *in
    /// place*, preserving its arrival order. Priority inheritance must
    /// use this rather than remove + re-push: a re-push assigns a fresh
    /// arrival sequence, which silently demotes the boosted waiter
    /// behind later arrivals of the same priority class. Returns true
    /// if a matching waiter was found.
    pub fn reprioritize(&mut self, mut pred: impl FnMut(&T) -> bool, priority: Priority) -> bool {
        if let Some(w) = self.waiters.iter_mut().find(|w| pred(&w.item)) {
            w.priority = priority;
            true
        } else {
            false
        }
    }

    /// Number of waiters.
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }

    /// Iterate over queued items in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.waiters.iter().map(|w| &w.item)
    }

    /// Iterate over `(item, queued-at priority)` pairs in arrival order
    /// (invariant checking and state fingerprinting).
    pub fn iter_entries(&self) -> impl Iterator<Item = (&T, Priority)> {
        self.waiters.iter().map(|w| (&w.item, w.priority))
    }

    /// The discipline this queue dequeues under.
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// Internal-consistency check: arrival sequence numbers must be
    /// strictly increasing front-to-back
    /// ([`reprioritize`](Self::reprioritize) mutates priority in place
    /// and never reorders, so this holds for every reachable queue
    /// state).
    pub fn is_well_formed(&self) -> bool {
        self.waiters.iter().zip(self.waiters.iter().skip(1)).all(|(a, b)| a.seq < b.seq)
            && self.waiters.iter().all(|w| w.seq < self.next_seq)
    }
}

impl<T> Default for PrioritizedQueue<T> {
    fn default() -> Self {
        Self::new(QueueDiscipline::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_discipline_pops_high_first() {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Priority);
        q.push("low1", Priority::LOW);
        q.push("high1", Priority::HIGH);
        q.push("low2", Priority::LOW);
        q.push("high2", Priority::HIGH);
        assert_eq!(q.pop(), Some("high1"));
        assert_eq!(q.pop(), Some("high2"));
        assert_eq!(q.pop(), Some("low1"));
        assert_eq!(q.pop(), Some("low2"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_discipline_ignores_priority() {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Fifo);
        q.push("low", Priority::LOW);
        q.push("high", Priority::HIGH);
        assert_eq!(q.pop(), Some("low"));
        assert_eq!(q.pop(), Some("high"));
    }

    #[test]
    fn next_priority_matches_pop_order() {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Priority);
        q.push(1, Priority::LOW);
        assert_eq!(q.next_priority(), Some(Priority::LOW));
        q.push(2, Priority::HIGH);
        assert_eq!(q.next_priority(), Some(Priority::HIGH));
    }

    #[test]
    fn max_waiting_priority_independent_of_discipline() {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Fifo);
        q.push(1, Priority::LOW);
        q.push(2, Priority::MAX);
        q.push(3, Priority::NORM);
        assert_eq!(q.max_waiting_priority(), Some(Priority::MAX));
    }

    #[test]
    fn remove_where_extracts_matching_waiter() {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Priority);
        q.push(1, Priority::LOW);
        q.push(2, Priority::HIGH);
        assert!(q.remove_where(|&x| x == 2));
        assert!(!q.remove_where(|&x| x == 2));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn three_priority_classes_ordered() {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Priority);
        q.push("n", Priority::NORM);
        q.push("l", Priority::MIN);
        q.push("h", Priority::MAX);
        assert_eq!(q.pop(), Some("h"));
        assert_eq!(q.pop(), Some("n"));
        assert_eq!(q.pop(), Some("l"));
    }

    #[test]
    fn reprioritize_preserves_arrival_order_within_class() {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Priority);
        q.push("a", Priority::LOW);
        q.push("b", Priority::HIGH);
        q.push("c", Priority::HIGH);
        // Boost "a" to HIGH in place: it arrived first, so it must now
        // be served before both b and c. A remove + re-push would have
        // pushed it behind c.
        assert!(q.reprioritize(|&x| x == "a", Priority::HIGH));
        assert!(q.is_well_formed());
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("c"));
        // Missing items report false without disturbing the queue.
        assert!(!q.reprioritize(|&x| x == "zzz", Priority::MAX));
    }

    /// Property test: over randomized interleavings of push / pop /
    /// reprioritize, same-priority waiters always come out in arrival
    /// order. Uses a deterministic LCG so failures are reproducible.
    #[test]
    fn fifo_within_class_holds_under_random_operations() {
        let mut rng: u64 = 0x9e3779b97f4a7c15;
        let mut next = |bound: u64| {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) % bound
        };
        for _round in 0..200 {
            let mut q: PrioritizedQueue<u64> = PrioritizedQueue::new(QueueDiscipline::Priority);
            // Model: per item, (priority, arrival stamp).
            let mut model: Vec<(u64, Priority, u64)> = Vec::new();
            let mut stamp = 0u64;
            let mut next_item = 0u64;
            for _op in 0..64 {
                match next(4) {
                    0 | 1 => {
                        let p = Priority::new(1 + next(3) as u8);
                        let item = next_item;
                        next_item += 1;
                        q.push(item, p);
                        model.push((item, p, stamp));
                        stamp += 1;
                    }
                    2 if !model.is_empty() => {
                        // Reprioritize a random queued item in place:
                        // priority changes, arrival stamp must not.
                        let i = next(model.len() as u64) as usize;
                        let p = Priority::new(1 + next(3) as u8);
                        let (item, _, s) = model[i];
                        assert!(q.reprioritize(|&x| x == item, p));
                        model[i] = (item, p, s);
                    }
                    _ => {
                        let expect = model
                            .iter()
                            .enumerate()
                            .max_by_key(|(_, &(_, p, s))| (p, std::cmp::Reverse(s)))
                            .map(|(i, _)| i);
                        let got = q.pop();
                        match expect {
                            Some(i) => {
                                let (item, _, _) = model.remove(i);
                                assert_eq!(got, Some(item), "pop violated FIFO-within-class");
                            }
                            None => assert_eq!(got, None),
                        }
                    }
                }
                assert!(q.is_well_formed());
            }
            // Drain: remaining items must come out priority-major,
            // arrival-minor.
            while let Some(got) = q.pop() {
                let i = model
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &(_, p, s))| (p, std::cmp::Reverse(s)))
                    .map(|(i, _)| i)
                    .expect("queue had more items than the model");
                let (item, _, _) = model.remove(i);
                assert_eq!(got, item, "drain violated FIFO-within-class");
            }
            assert!(model.is_empty());
        }
    }
}
