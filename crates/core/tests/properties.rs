//! Property-based tests for the core data structures, checked against
//! straightforward reference models.

use proptest::prelude::*;
use revmon_core::{PrioritizedQueue, Priority, QueueDiscipline, ThreadId, UndoLog, WaitsForGraph};
use std::collections::HashMap;

// ---------------------------------------------------------------- UndoLog

proptest! {
    /// Rolling back to a mark restores exactly the suffix, newest first.
    #[test]
    fn undo_rollback_is_reverse_suffix(
        prefix in proptest::collection::vec(any::<u32>(), 0..50),
        suffix in proptest::collection::vec(any::<u32>(), 0..50),
    ) {
        let mut log = UndoLog::new();
        for &e in &prefix { log.push(e); }
        let mark = log.mark();
        for &e in &suffix { log.push(e); }
        let mut restored = Vec::new();
        log.rollback_to(mark, |e| restored.push(e));
        let mut expect = suffix.clone();
        expect.reverse();
        prop_assert_eq!(restored, expect);
        prop_assert_eq!(log.len(), prefix.len());
    }

    /// Applying logged old-values in reverse restores an array to its
    /// initial state no matter the write sequence — the paper's §3.1.2
    /// invariant.
    #[test]
    fn logged_writes_invert_exactly(
        initial in proptest::collection::vec(-100i64..100, 1..20),
        writes in proptest::collection::vec((0usize..20, -100i64..100), 0..200),
    ) {
        let mut state = initial.clone();
        let mut log = UndoLog::new();
        let mark = log.mark();
        for &(i, v) in &writes {
            let i = i % state.len();
            log.push((i, state[i])); // log the OLD value
            state[i] = v;
        }
        log.rollback_to(mark, |(i, old)| state[i] = old);
        prop_assert_eq!(state, initial);
    }

    /// Nested marks compose: rolling back inner then outer equals rolling
    /// back outer directly.
    #[test]
    fn nested_rollback_composes(
        a in proptest::collection::vec((0usize..8, -50i64..50), 0..40),
        b in proptest::collection::vec((0usize..8, -50i64..50), 0..40),
    ) {
        let initial = vec![0i64; 8];
        // Path 1: rollback inner then outer.
        let mut s1 = initial.clone();
        let mut l1 = UndoLog::new();
        let outer = l1.mark();
        for &(i, v) in &a { l1.push((i, s1[i])); s1[i] = v; }
        let inner = l1.mark();
        for &(i, v) in &b { l1.push((i, s1[i])); s1[i] = v; }
        l1.rollback_to(inner, |(i, old)| s1[i] = old);
        l1.rollback_to(outer, |(i, old)| s1[i] = old);
        // Path 2: rollback outer directly.
        let mut s2 = initial.clone();
        let mut l2 = UndoLog::new();
        let outer2 = l2.mark();
        for &(i, v) in &a { l2.push((i, s2[i])); s2[i] = v; }
        for &(i, v) in &b { l2.push((i, s2[i])); s2[i] = v; }
        l2.rollback_to(outer2, |(i, old)| s2[i] = old);
        prop_assert_eq!(&s1, &initial);
        prop_assert_eq!(&s2, &initial);
    }
}

// ---------------------------------------------------- PrioritizedQueue

proptest! {
    /// Under the priority discipline, pops are sorted by (priority desc,
    /// arrival asc).
    #[test]
    fn priority_queue_pop_order(
        items in proptest::collection::vec(1u8..=10, 1..60),
    ) {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Priority);
        for (i, &p) in items.iter().enumerate() {
            q.push(i, Priority::new(p));
        }
        let mut popped = Vec::new();
        while let Some(x) = q.pop() { popped.push(x); }
        // reference: stable sort by priority desc
        let mut expect: Vec<usize> = (0..items.len()).collect();
        expect.sort_by_key(|&i| std::cmp::Reverse(items[i]));
        // stable sort keeps arrival order within a class
        prop_assert_eq!(popped, expect);
    }

    /// FIFO discipline ignores priorities entirely.
    #[test]
    fn fifo_queue_pop_order(items in proptest::collection::vec(1u8..=10, 0..40)) {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Fifo);
        for (i, &p) in items.iter().enumerate() {
            q.push(i, Priority::new(p));
        }
        let mut popped = Vec::new();
        while let Some(x) = q.pop() { popped.push(x); }
        let expect: Vec<usize> = (0..items.len()).collect();
        prop_assert_eq!(popped, expect);
    }

    /// next_priority always agrees with what pop would deliver.
    #[test]
    fn next_priority_matches_pop(
        items in proptest::collection::vec(1u8..=10, 1..40),
    ) {
        let mut q = PrioritizedQueue::new(QueueDiscipline::Priority);
        for (i, &p) in items.iter().enumerate() {
            q.push(i, Priority::new(p));
        }
        while !q.is_empty() {
            let announced = q.next_priority().unwrap();
            let popped = q.pop().unwrap();
            prop_assert_eq!(announced, Priority::new(items[popped]));
        }
    }
}

// ---------------------------------------------------- WaitsForGraph

/// Reference cycle detector: brute-force walk from every node.
fn has_cycle_reference(edges: &HashMap<u32, u32>) -> bool {
    for &start in edges.keys() {
        let mut seen = vec![start];
        let mut cur = start;
        while let Some(&next) = edges.get(&cur) {
            if seen.contains(&next) {
                return true;
            }
            seen.push(next);
            cur = next;
        }
    }
    false
}

proptest! {
    /// Graph cycle detection agrees with the brute-force reference on
    /// random functional graphs (each waiter has one outgoing edge).
    #[test]
    fn cycle_detection_matches_reference(
        raw_edges in proptest::collection::vec((0u32..12, 0u32..12), 0..12),
    ) {
        let mut g = WaitsForGraph::new();
        let mut edges: HashMap<u32, u32> = HashMap::new();
        for &(w, o) in &raw_edges {
            if w == o { continue; } // a thread cannot wait on itself here
            edges.insert(w, o);
            g.add_wait(ThreadId(w), revmon_core::MonitorId(w), ThreadId(o));
        }
        let expect = has_cycle_reference(&edges);
        prop_assert_eq!(g.find_any_cycle().is_some(), expect);
    }

    /// Every reported cycle is a real cycle: following edges from any
    /// member returns to it.
    #[test]
    fn reported_cycles_are_genuine(
        raw_edges in proptest::collection::vec((0u32..10, 0u32..10), 0..10),
    ) {
        let mut g = WaitsForGraph::new();
        let mut edges: HashMap<u32, u32> = HashMap::new();
        for &(w, o) in &raw_edges {
            if w == o { continue; }
            edges.insert(w, o);
            g.add_wait(ThreadId(w), revmon_core::MonitorId(w), ThreadId(o));
        }
        if let Some(cycle) = g.find_any_cycle() {
            prop_assert!(cycle.len() >= 2);
            // each member's edge points at the next member (cyclically)
            for (i, &t) in cycle.iter().enumerate() {
                let next = cycle[(i + 1) % cycle.len()];
                prop_assert_eq!(edges.get(&t.0).copied(), Some(next.0));
            }
        }
    }
}

// ---------------------------------------------------- statistics helpers

proptest! {
    /// CI half-width is nonnegative and zero for constant samples.
    #[test]
    fn ci_halfwidth_sane(xs in proptest::collection::vec(-1e6f64..1e6, 2..30)) {
        let hw = revmon_core::metrics::ci90_half_width(&xs);
        prop_assert!(hw >= 0.0);
    }

    /// Mean lies within [min, max].
    #[test]
    fn mean_bounded(xs in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let m = revmon_core::metrics::mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }
}
