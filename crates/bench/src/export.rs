//! JSON export of benchmark results: per-figure summaries
//! (`bench_results/BENCH_fig5.json` and friends, mean + 90 % CI per
//! configuration) and per-run metrics dumps built on `revmon-obs`.
//!
//! The summaries give future PRs a machine-readable perf trajectory: a
//! change can re-run a figure and diff the JSON instead of eyeballing
//! console tables. JSON is emitted by hand, matching `revmon-obs` (no
//! serde in the build environment).

use crate::{run_cell_sink, BenchParams, CellResult, FigureRow};
use revmon_vm::VmConfig;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One figure's summary — every mix's rows — as a JSON document:
///
/// ```json
/// {"figure":"fig5","series":"high_priority","mixes":[
///   {"high":2,"low":8,"rows":[
///     {"write_pct":0,
///      "modified":{"mean":0.9,"ci90":0.01},
///      "unmodified":{"mean":1.0,"ci90":0.02}}]}]}
/// ```
///
/// Values are the normalized elapsed times straight from
/// [`FigureRow`]; `ci90` is the 90 % confidence-interval half-width
/// (`revmon_core::metrics::ci90_half_width`) in the same units.
pub fn figure_summary_json(
    figure: &str,
    series: &str,
    figs: &[((usize, usize), Vec<FigureRow>)],
) -> String {
    figure_summary_json_with(figure, series, figs, None)
}

/// [`figure_summary_json`] plus an optional `episodes` block summarizing
/// one representative observed run's priority-inversion episodes: count,
/// per-resolution counts, mean/p99 inversion latency (virtual ticks) and
/// wasted undo entries — the run-quality context behind the mean+ci90
/// timing rows.
pub fn figure_summary_json_with(
    figure: &str,
    series: &str,
    figs: &[((usize, usize), Vec<FigureRow>)],
    episodes: Option<&revmon_obs::Analysis>,
) -> String {
    let mut out =
        format!("{{\n  \"figure\": \"{figure}\",\n  \"series\": \"{series}\",\n  \"mixes\": [\n");
    let mixes: Vec<String> = figs
        .iter()
        .map(|((high, low), rows)| {
            let rows_json: Vec<String> = rows
                .iter()
                .map(|r| {
                    format!(
                        "        {{\"write_pct\": {}, \
                         \"modified\": {{\"mean\": {:.6}, \"ci90\": {:.6}}}, \
                         \"unmodified\": {{\"mean\": {:.6}, \"ci90\": {:.6}}}}}",
                        r.write_pct, r.modified, r.modified_ci, r.unmodified, r.unmodified_ci
                    )
                })
                .collect();
            format!(
                "    {{\"high\": {high}, \"low\": {low}, \"rows\": [\n{}\n      ]}}",
                rows_json.join(",\n")
            )
        })
        .collect();
    out.push_str(&mixes.join(",\n"));
    out.push_str("\n  ]");
    if let Some(a) = episodes {
        let res: Vec<String> =
            a.resolution_counts().iter().map(|(r, n)| format!("\"{}\": {n}", r.name())).collect();
        out.push_str(&format!(
            ",\n  \"episodes\": {{\n    \"count\": {},\n    \"resolutions\": {{{}}},\n    \
             \"latency_mean\": {:.3},\n    \"latency_p99\": {},\n    \
             \"wasted_undo_entries\": {},\n    \"wasted_section_ticks\": {}\n  }}",
            a.episodes.len(),
            res.join(", "),
            a.inversion_latency.mean(),
            a.inversion_latency.percentile(99.0),
            a.wasted_entries,
            a.wasted_time,
        ));
    }
    out.push_str("\n}\n");
    out
}

/// `bench_results/` at the **workspace** root. Cargo runs bench binaries
/// with the package root (`crates/bench`) as their working directory, so
/// a relative `bench_results/` would land next to this crate instead of
/// beside `figures.txt`; anchor on the manifest dir instead.
pub fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results")
}

/// Write a figure's summary to `dir/BENCH_<figure>.json`, creating `dir`
/// if needed. Returns the path written.
pub fn write_figure_summary(
    dir: impl AsRef<Path>,
    figure: &str,
    series: &str,
    figs: &[((usize, usize), Vec<FigureRow>)],
) -> io::Result<PathBuf> {
    write_figure_summary_with(dir, figure, series, figs, None)
}

/// [`write_figure_summary`] with an episode summary block (see
/// [`figure_summary_json_with`]).
pub fn write_figure_summary_with(
    dir: impl AsRef<Path>,
    figure: &str,
    series: &str,
    figs: &[((usize, usize), Vec<FigureRow>)],
    episodes: Option<&revmon_obs::Analysis>,
) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{figure}.json"));
    std::fs::write(&path, figure_summary_json_with(figure, series, figs, episodes))?;
    Ok(path.canonicalize().unwrap_or(path))
}

/// Execute one cell with a sink attached and analyze its event stream:
/// the [`CellResult`] plus the reconstructed episode/contention
/// [`revmon_obs::Analysis`] for that run.
pub fn run_cell_analyzed(p: &BenchParams) -> (CellResult, revmon_obs::Analysis) {
    let cfg = if p.modified { VmConfig::modified() } else { VmConfig::unmodified() };
    let sink = Arc::new(revmon_obs::EventSink::new(revmon_obs::TsUnit::VirtualTicks));
    let cell = run_cell_sink(p, cfg, Some(Arc::clone(&sink)));
    let analysis = revmon_obs::Analysis::from_events(&sink.drain());
    (cell, analysis)
}

/// Execute one cell with a `revmon-obs` sink attached and return the run
/// result plus its metrics JSON (all `Metrics` counters + latency
/// percentiles), the same payload the CLI's `--metrics-json` emits.
pub fn run_cell_observed(p: &BenchParams) -> (CellResult, String) {
    let cfg = if p.modified { VmConfig::modified() } else { VmConfig::unmodified() };
    let sink = Arc::new(revmon_obs::EventSink::new(revmon_obs::TsUnit::VirtualTicks));
    let cell = run_cell_sink(p, cfg, Some(Arc::clone(&sink)));
    let mut counters = Vec::new();
    cell.metrics.for_each_field(|name, v| counters.push((name, v)));
    let json = revmon_obs::metrics_json(&counters, sink.histograms(), sink.ts_unit());
    (cell, json)
}

/// Run one cell observed and write its metrics JSON to
/// `dir/BENCH_<tag>_run_metrics.json`. Returns the path written.
pub fn write_run_metrics(dir: impl AsRef<Path>, tag: &str, p: &BenchParams) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let (_, json) = run_cell_observed(p);
    let path = dir.join(format!("BENCH_{tag}_run_metrics.json"));
    std::fs::write(&path, json)?;
    Ok(path.canonicalize().unwrap_or(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn rows() -> Vec<FigureRow> {
        vec![
            FigureRow {
                write_pct: 0,
                modified: 0.91,
                modified_ci: 0.012,
                unmodified: 1.0,
                unmodified_ci: 0.02,
            },
            FigureRow {
                write_pct: 100,
                modified: 0.75,
                modified_ci: 0.03,
                unmodified: 1.4,
                unmodified_ci: 0.05,
            },
        ]
    }

    #[test]
    fn summary_json_is_balanced_and_complete() {
        let figs = vec![((2, 8), rows()), ((8, 2), rows())];
        let json = figure_summary_json("fig5", "high_priority", &figs);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"figure\": \"fig5\""));
        assert!(json.contains("\"series\": \"high_priority\""));
        assert!(json.contains("\"high\": 2, \"low\": 8"));
        assert!(json.contains("\"write_pct\": 100"));
        assert_eq!(json.matches("\"ci90\"").count(), 8); // 2 mixes × 2 rows × 2 VMs
    }

    #[test]
    fn summary_json_episode_block_rides_alongside_timing_rows() {
        let scale = Scale::smoke();
        let p = BenchParams {
            high_threads: 1,
            low_threads: 2,
            high_iters: scale.high_iters_small,
            low_iters: scale.low_iters,
            sections: scale.sections,
            write_pct: 40,
            modified: true,
            seed: 11,
            quantum: scale.quantum,
        };
        let (_, analysis) = run_cell_analyzed(&p);
        let figs = vec![((2, 8), rows())];
        let json = figure_summary_json_with("fig5", "high_priority", &figs, Some(&analysis));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"episodes\": {"));
        assert!(json.contains("\"resolutions\": {\"revocation\":"));
        assert!(json.contains("\"latency_p99\":"));
        assert!(json.contains("\"wasted_undo_entries\":"));
        // The timing rows are untouched by the new block.
        assert!(json.contains("\"write_pct\": 100"));
        // Without an analysis the block is absent (other figures).
        assert!(!figure_summary_json("fig5", "high_priority", &figs).contains("episodes"));
    }

    #[test]
    fn observed_run_reports_counters_and_histograms() {
        let scale = Scale::smoke();
        let p = BenchParams {
            high_threads: 1,
            low_threads: 2,
            high_iters: scale.high_iters_small,
            low_iters: scale.low_iters,
            sections: scale.sections,
            write_pct: 40,
            modified: true,
            seed: 11,
            quantum: scale.quantum,
        };
        let (cell, json) = run_cell_observed(&p);
        assert!(cell.metrics.monitor_acquires > 0);
        assert!(json.contains("\"monitor_acquires\""));
        assert!(json.contains("\"section_length\""));
        assert!(json.contains("\"p99\""));
        assert!(json.contains("\"ts_unit\": \"ticks\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
