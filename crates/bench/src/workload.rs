//! The paper's microbenchmark (§4.1), generated as a VM program.
//!
//! Every thread executes `sections` synchronized sections on one shared
//! lock. Each section is an inner loop of `iters` interleaved shared-data
//! operations on a 64-element shared array; operation `i` is a write when
//! `i % 100 < write_pct`, otherwise a read — giving exactly the paper's
//! write-ratio sweep, with *identical instruction counts on the read and
//! write paths* so that the unmodified VM's cost is flat versus write
//! ratio (as in the paper's dotted curves).
//!
//! Before each section the thread sleeps a random duration, uniform in
//! `[0, 2·quantum)` — "a short random pause time (on average equal to a
//! single thread quantum) right before an entry to the synchronized
//! section, to ensure random arrival of threads at the monitors".

use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::{MethodId, Program};

/// Shared-array length (power of two; indexed by `i % 64`).
pub const ARRAY_LEN: u32 = 64;

/// Build the benchmark program. The single method is
/// `run(lock, arr, iters, write_pct, sections, pause_bound)`.
pub fn benchmark_program() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    let run = pb.declare_method("run", 6);
    // locals: 0 lock, 1 arr, 2 iters, 3 write_pct, 4 sections,
    //         5 pause_bound, 6 s, 7 i
    let mut b = MethodBuilder::new(6, 8);
    b.const_i(0);
    b.store(6);
    let outer = b.here();
    b.load(6);
    b.load(4);
    let done = b.new_label();
    b.if_ge(done);
    // random arrival pause
    b.load(5);
    b.rand_int();
    b.sleep();
    // the synchronized section
    b.sync_on_local(0, |b| {
        b.const_i(0);
        b.store(7);
        let inner = b.here();
        b.load(7);
        b.load(2);
        let inner_done = b.new_label();
        b.if_ge(inner_done);
        // write if (i % 100) < write_pct
        b.load(7);
        b.const_i(100);
        b.rem();
        b.load(3);
        let write_op = b.new_label();
        b.if_lt(write_op);
        // read path: arr[i % 64]
        b.load(1);
        b.load(7);
        b.const_i(ARRAY_LEN as i64);
        b.rem();
        b.aload();
        b.pop();
        let next = b.new_label();
        b.goto(next);
        // write path: arr[i % 64] = i
        b.place(write_op);
        b.load(1);
        b.load(7);
        b.const_i(ARRAY_LEN as i64);
        b.rem();
        b.load(7);
        b.astore();
        b.place(next);
        b.load(7);
        b.const_i(1);
        b.add();
        b.store(7);
        b.goto(inner);
        b.place(inner_done);
    });
    b.load(6);
    b.const_i(1);
    b.add();
    b.store(6);
    b.goto(outer);
    b.place(done);
    b.ret_void();
    pb.implement(run, b);
    (pb.finish(), run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revmon_core::Priority;
    use revmon_vm::value::Value;
    use revmon_vm::{Vm, VmConfig};

    fn run_small(cfg: VmConfig, write_pct: i64) -> revmon_vm::RunReport {
        let (p, run) = benchmark_program();
        let mut vm = Vm::new(p, cfg);
        let lock = vm.heap_mut().alloc(0, 0);
        let arr = vm.heap_mut().alloc_array(ARRAY_LEN);
        let args = |iters: i64| {
            vec![
                Value::Ref(lock),
                Value::Ref(arr),
                Value::Int(iters),
                Value::Int(write_pct),
                Value::Int(3),
                Value::Int(1_000),
            ]
        };
        vm.spawn("low", run, args(400), Priority::LOW);
        vm.spawn("high", run, args(100), Priority::HIGH);
        vm.run().expect("benchmark program runs")
    }

    #[test]
    fn program_completes_on_both_vms() {
        for cfg in [VmConfig::unmodified(), VmConfig::modified()] {
            let r = run_small(cfg, 40);
            assert!(r.threads.iter().all(|t| t.uncaught.is_none()));
            assert!(r.clock > 0);
        }
    }

    #[test]
    fn write_ratio_controls_log_volume() {
        let zero = run_small(VmConfig::modified(), 0);
        let half = run_small(VmConfig::modified(), 50);
        let full = run_small(VmConfig::modified(), 100);
        assert_eq!(zero.global.log_entries, 0);
        assert!(half.global.log_entries > 0);
        assert!(full.global.log_entries > half.global.log_entries);
    }

    #[test]
    fn read_and_write_paths_cost_the_same_unmodified() {
        // On the unmodified VM (no barriers) the benchmark's elapsed time
        // is flat versus write ratio.
        let a = run_small(VmConfig::unmodified(), 0);
        let b = run_small(VmConfig::unmodified(), 100);
        let (ea, eb) = (a.overall_elapsed() as f64, b.overall_elapsed() as f64);
        let ratio = eb / ea;
        assert!((0.95..1.05).contains(&ratio), "write-ratio changed unmodified cost: {ratio}");
    }
}
