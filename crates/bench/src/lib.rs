//! # revmon-bench — regenerating the evaluation of Welc et al., ICPP 2004
//!
//! The paper's evaluation artifacts are Figures 5–8 (normalized elapsed
//! times of high-priority threads and of the whole benchmark, for
//! thread mixes 2+8 / 5+5 / 8+2, high-priority inner-loop sizes 100K /
//! 500K, write ratios 0–100 %) plus in-text headline statistics. This
//! crate provides:
//!
//! * [`workload`] — the §4.1 microbenchmark as a VM program,
//! * [`BenchParams`] / [`run_cell`] — one grid cell (one thread mix ×
//!   write ratio × VM flavour), repeated over seeds with mean and 90 %
//!   confidence interval, matching the paper's 5-iteration averaging,
//! * [`figure_series`] — a full figure's normalized series,
//! * the `benches/` harnesses (`cargo bench -p revmon-bench`) printing
//!   each figure's rows and checking its qualitative shape.
//!
//! ## Scaling
//!
//! Paper-scale inner loops (100K/500K operations, 100 sections, ~10¹¹
//! simulated instructions for the full grid) are infeasible in an
//! interpreter; the default [`Scale`] divides the inner-loop and section
//! counts by 100 and 5 respectively, and scales the scheduling quantum
//! with them, preserving every ratio the figures depend on (high:low
//! section length, write fraction, thread mix, section:pause:quantum
//! proportions). Normalization (to the unmodified VM at 0 % writes)
//! makes the reported curves scale-invariant. `Scale::paper()` restores
//! the original parameters for a long run (`REVMON_FULL=1`).

#![deny(missing_docs)]

pub mod export;
pub mod workload;

use revmon_core::metrics::{ci90_half_width, mean};
use revmon_core::{Metrics, Priority};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig};
use workload::{benchmark_program, ARRAY_LEN};

/// The paper's write-ratio sweep.
pub const WRITE_PCTS: [i64; 6] = [0, 20, 40, 60, 80, 100];

/// The paper's thread mixes: (high, low).
pub const MIXES: [(usize, usize); 3] = [(2, 8), (5, 5), (8, 2)];

/// Workload scaling relative to the paper.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Inner-loop operations for the low-priority threads (paper: 500K).
    pub low_iters: i64,
    /// Inner-loop operations for "100K" high-priority threads.
    pub high_iters_small: i64,
    /// Inner-loop operations for "500K" high-priority threads.
    pub high_iters_large: i64,
    /// Synchronized sections per thread (paper: 100).
    pub sections: i64,
    /// Seeds averaged per cell (paper: 5 measured iterations).
    pub repetitions: u64,
    /// Scheduling quantum in ticks, scaled with the workload so that the
    /// paper's proportions hold: pause ≈ quantum, low-priority section ≈
    /// 2 quanta, "100K" high-priority section ≈ 0.4 quanta.
    pub quantum: u64,
}

impl Scale {
    /// The default 1:100 iteration / 1:5 section scaling.
    pub fn default_scale() -> Self {
        Scale {
            low_iters: 5_000,
            high_iters_small: 1_000,
            high_iters_large: 5_000,
            sections: 20,
            repetitions: 5,
            quantum: 60_000,
        }
    }

    /// Quick smoke scaling for tests.
    pub fn smoke() -> Self {
        Scale {
            low_iters: 500,
            high_iters_small: 100,
            high_iters_large: 500,
            sections: 5,
            repetitions: 2,
            quantum: 6_000,
        }
    }

    /// The paper's exact parameters (very long run).
    pub fn paper() -> Self {
        Scale {
            low_iters: 500_000,
            high_iters_small: 100_000,
            high_iters_large: 500_000,
            sections: 100,
            repetitions: 5,
            quantum: 6_000_000,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::default_scale()
    }
}

/// One grid cell's parameters.
#[derive(Clone, Copy, Debug)]
pub struct BenchParams {
    /// Number of high-priority threads.
    pub high_threads: usize,
    /// Number of low-priority threads.
    pub low_threads: usize,
    /// Inner-loop operations per high-priority section.
    pub high_iters: i64,
    /// Inner-loop operations per low-priority section.
    pub low_iters: i64,
    /// Sections per thread.
    pub sections: i64,
    /// Percentage of writes in the inner loop (0–100).
    pub write_pct: i64,
    /// Run on the modified (revocable) VM?
    pub modified: bool,
    /// RNG seed for arrival pauses.
    pub seed: u64,
    /// Scheduling quantum in ticks (see [`Scale::quantum`]).
    pub quantum: u64,
}

/// Measured outputs of one run.
#[derive(Clone, Copy, Debug)]
pub struct CellResult {
    /// Elapsed virtual time over the high-priority threads (earliest
    /// start to latest end), the paper's primary metric.
    pub high_elapsed: u64,
    /// Overall elapsed time of the whole benchmark.
    pub overall_elapsed: u64,
    /// Aggregated counters.
    pub metrics: Metrics,
}

/// Execute one benchmark run.
pub fn run_cell(p: &BenchParams) -> CellResult {
    let cfg = if p.modified { VmConfig::modified() } else { VmConfig::unmodified() };
    run_cell_with_config(p, cfg)
}

/// Execute one benchmark run under an explicit VM configuration (used by
/// the policy-ablation bench).
pub fn run_cell_with_config(p: &BenchParams, cfg: VmConfig) -> CellResult {
    run_cell_sink(p, cfg, None)
}

/// Execute one benchmark run with an optional `revmon-obs` sink attached,
/// so a run can dump its event stream and latency histograms (see
/// [`export::run_cell_observed`]).
pub fn run_cell_sink(
    p: &BenchParams,
    cfg: VmConfig,
    sink: Option<std::sync::Arc<revmon_obs::EventSink>>,
) -> CellResult {
    let (program, run) = benchmark_program();
    let mut cfg = cfg.with_seed(p.seed);
    cfg.cost.quantum = p.quantum;
    // "a short random pause time (on average equal to a single thread
    // quantum) right before an entry to the synchronized section"
    let pause_bound = 2 * cfg.cost.quantum as i64;
    let mut vm = Vm::new(program, cfg);
    if let Some(sink) = sink {
        vm.attach_sink(sink);
    }
    let lock = vm.heap_mut().alloc(0, 0);
    let arr = vm.heap_mut().alloc_array(ARRAY_LEN);
    let args = |iters: i64| {
        vec![
            Value::Ref(lock),
            Value::Ref(arr),
            Value::Int(iters),
            Value::Int(p.write_pct),
            Value::Int(p.sections),
            Value::Int(pause_bound),
        ]
    };
    // Spawn order interleaves priorities so round-robin arrival is mixed.
    for i in 0..p.low_threads.max(p.high_threads) {
        if i < p.high_threads {
            vm.spawn(&format!("high{i}"), run, args(p.high_iters), Priority::HIGH);
        }
        if i < p.low_threads {
            vm.spawn(&format!("low{i}"), run, args(p.low_iters), Priority::LOW);
        }
    }
    let report = vm.run().expect("benchmark run");
    CellResult {
        high_elapsed: report.elapsed_for(Priority::HIGH),
        overall_elapsed: report.overall_elapsed(),
        metrics: report.global,
    }
}

/// Mean ± 90 % CI of a cell over `reps` seeds.
pub fn run_cell_avg(p: &BenchParams, reps: u64) -> (CellResult, f64, f64) {
    let mut highs = Vec::new();
    let mut overalls = Vec::new();
    let mut last = None;
    for r in 0..reps {
        let mut q = *p;
        q.seed = p.seed.wrapping_add(r.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let c = run_cell(&q);
        highs.push(c.high_elapsed as f64);
        overalls.push(c.overall_elapsed as f64);
        last = Some(c);
    }
    let mut c = last.expect("reps >= 1");
    c.high_elapsed = mean(&highs) as u64;
    c.overall_elapsed = mean(&overalls) as u64;
    (c, ci90_half_width(&highs), ci90_half_width(&overalls))
}

/// Which elapsed time a figure plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Series {
    /// Figures 5–6: total time of the high-priority threads.
    HighPriority,
    /// Figures 7–8: overall time.
    Overall,
}

/// One figure row: write ratio plus normalized values for both VMs.
#[derive(Clone, Copy, Debug)]
pub struct FigureRow {
    /// Write percentage.
    pub write_pct: i64,
    /// Modified VM, normalized.
    pub modified: f64,
    /// 90 % CI half-width of the modified value (normalized units).
    pub modified_ci: f64,
    /// Unmodified VM, normalized.
    pub unmodified: f64,
    /// 90 % CI half-width of the unmodified value.
    pub unmodified_ci: f64,
}

/// Compute one sub-figure's series: both VMs across [`WRITE_PCTS`],
/// normalized to the unmodified VM at 0 % writes (the paper's
/// normalization).
pub fn figure_series(
    high_threads: usize,
    low_threads: usize,
    high_iters: i64,
    scale: &Scale,
    series: Series,
) -> Vec<FigureRow> {
    let base_params = |write_pct: i64, modified: bool| BenchParams {
        high_threads,
        low_threads,
        high_iters,
        low_iters: scale.low_iters,
        sections: scale.sections,
        write_pct,
        modified,
        seed: 0xC0FFEE,
        quantum: scale.quantum,
    };
    let pick = |c: &CellResult, ci_h: f64, ci_o: f64| match series {
        Series::HighPriority => (c.high_elapsed as f64, ci_h),
        Series::Overall => (c.overall_elapsed as f64, ci_o),
    };
    // normalization baseline: unmodified @ 0% writes
    let (b, bh, bo) = run_cell_avg(&base_params(0, false), scale.repetitions);
    let (norm, _) = pick(&b, bh, bo);
    WRITE_PCTS
        .iter()
        .map(|&w| {
            let (m, mh, mo) = run_cell_avg(&base_params(w, true), scale.repetitions);
            let (u, uh, uo) = if w == 0 {
                (b, bh, bo)
            } else {
                run_cell_avg(&base_params(w, false), scale.repetitions)
            };
            let (mv, mci) = pick(&m, mh, mo);
            let (uv, uci) = pick(&u, uh, uo);
            FigureRow {
                write_pct: w,
                modified: mv / norm,
                modified_ci: mci / norm,
                unmodified: uv / norm,
                unmodified_ci: uci / norm,
            }
        })
        .collect()
}

/// Pretty-print a figure's three sub-plots in the paper's layout.
pub fn print_figure(
    name: &str,
    what: &str,
    high_iters: i64,
    scale: &Scale,
    series: Series,
) -> Vec<((usize, usize), Vec<FigureRow>)> {
    println!("# {name}: {what}");
    println!(
        "# scaled workload: low-priority {} ops/section, high-priority {} ops/section, {} sections/thread, {} seeds",
        scale.low_iters, high_iters, scale.sections, scale.repetitions
    );
    let mut out = Vec::new();
    for (label, (high, low)) in ["(a)", "(b)", "(c)"].iter().zip(MIXES) {
        println!("\n## {name}{label}: {high} high-priority + {low} low-priority");
        println!(
            "{:>7} {:>12} {:>8} {:>12} {:>8}",
            "write%", "MODIFIED", "±90%CI", "UNMODIFIED", "±90%CI"
        );
        let rows = figure_series(high, low, high_iters, scale, series);
        for r in &rows {
            println!(
                "{:>7} {:>12.3} {:>8.3} {:>12.3} {:>8.3}",
                r.write_pct, r.modified, r.modified_ci, r.unmodified, r.unmodified_ci
            );
        }
        out.push(((high, low), rows));
    }
    out
}

/// Percentage gain of the modified VM for high-priority threads in a
/// row: `(unmodified / modified − 1) × 100`.
pub fn gain_pct(row: &FigureRow) -> f64 {
    (row.unmodified / row.modified - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_params(modified: bool) -> BenchParams {
        // Sections must dominate the arrival pauses for contention to be
        // the story, as at paper scale.
        BenchParams {
            high_threads: 2,
            low_threads: 4,
            high_iters: 400,
            low_iters: 2_000,
            sections: 6,
            write_pct: 40,
            modified,
            seed: 7,
            quantum: 20_000,
        }
    }

    #[test]
    fn modified_vm_helps_high_priority_at_smoke_scale() {
        let (m, _, _) = run_cell_avg(&smoke_params(true), 3);
        let (u, _, _) = run_cell_avg(&smoke_params(false), 3);
        assert!(
            m.high_elapsed < u.high_elapsed,
            "modified {} vs unmodified {}",
            m.high_elapsed,
            u.high_elapsed
        );
        assert!(m.metrics.rollbacks > 0);
        assert_eq!(u.metrics.rollbacks, 0);
    }

    #[test]
    fn modified_vm_costs_overall_time() {
        let (m, _, _) = run_cell_avg(&smoke_params(true), 3);
        let (u, _, _) = run_cell_avg(&smoke_params(false), 3);
        assert!(m.overall_elapsed > u.overall_elapsed);
    }

    #[test]
    fn averaging_is_stable() {
        let (c, ci_h, _) = run_cell_avg(&smoke_params(true), 3);
        assert!(c.high_elapsed > 0);
        assert!(ci_h >= 0.0);
    }

    #[test]
    fn figure_series_normalizes_baseline_to_one() {
        let scale = Scale::smoke();
        let rows = figure_series(2, 4, scale.high_iters_small, &scale, Series::HighPriority);
        assert_eq!(rows.len(), WRITE_PCTS.len());
        assert!((rows[0].unmodified - 1.0).abs() < 1e-9, "baseline row normalizes to 1");
        // The paper's core claim at smoke scale: modified below unmodified
        // for a low high:low ratio.
        assert!(rows[0].modified < rows[0].unmodified);
    }
}
