//! Figure 6: normalized total elapsed time of high-priority threads,
//! high-priority inner loop = "500K" (scaled; equal to the low-priority
//! section length).
//!
//! Run with `cargo bench -p revmon-bench --bench fig6_high_priority_500k`.

use revmon_bench::{export, gain_pct, print_figure, Scale, Series};

fn main() {
    let scale =
        if std::env::var("REVMON_FULL").is_ok() { Scale::paper() } else { Scale::default_scale() };
    let figs = print_figure(
        "Figure 6",
        "total time for high-priority threads, 500K-class iterations",
        scale.high_iters_large,
        &scale,
        Series::HighPriority,
    );
    match export::write_figure_summary(export::results_dir(), "fig6", "high_priority", &figs) {
        Ok(p) => println!("# wrote {}", p.display()),
        Err(e) => eprintln!("# could not write summary JSON: {e}"),
    }
    println!("\n# shape checks (paper: (a)/(b) improve 25-100%; (c) at heavy writes can invert)");
    for ((high, low), rows) in &figs {
        let avg_gain = rows.iter().map(gain_pct).sum::<f64>() / rows.len() as f64;
        let wins = rows.iter().filter(|r| r.modified < r.unmodified).count();
        println!(
            "  {high}+{low}: average gain {avg_gain:+.1}%, modified wins {wins}/{} write ratios",
            rows.len()
        );
    }
}
