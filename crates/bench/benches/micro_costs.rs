//! M1: micro-costs of the mechanism (§3.1.2's logging structures), as
//! Criterion benchmarks over the real-thread library and the VM:
//!
//! * monitor enter/exit round trip (revocation vs blocking policy),
//! * write-barrier logging cost per store,
//! * rollback cost as a function of log length,
//! * VM interpreter throughput with and without barriers.
//!
//! Run with `cargo bench -p revmon-bench --bench micro_costs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revmon_core::{InversionPolicy, Priority};
use revmon_locks::{RevocableMonitor, TCell};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig};

/// How much does revocability cost against plain mutexes? The number an
/// adopter asks first.
fn bench_vs_plain_mutexes(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncontended_lock_roundtrip");
    g.sample_size(30);
    let cell = std::sync::Arc::new(parking_lot::Mutex::new(0i64));
    g.bench_function("parking_lot_mutex", |b| {
        b.iter(|| {
            let mut v = cell.lock();
            *v += 1;
        })
    });
    let std_cell = std::sync::Arc::new(std::sync::Mutex::new(0i64));
    g.bench_function("std_mutex", |b| {
        b.iter(|| {
            let mut v = std_cell.lock().unwrap();
            *v += 1;
        })
    });
    let m = RevocableMonitor::new();
    let tcell = TCell::new(0i64);
    g.bench_function("revocable_monitor", |b| {
        b.iter(|| m.enter(Priority::NORM, |tx| tx.update(&tcell, |v| v + 1)))
    });
    let mb = RevocableMonitor::with_policy(revmon_core::InversionPolicy::Blocking);
    g.bench_function("revocable_monitor_blocking_policy", |b| {
        b.iter(|| mb.enter(Priority::NORM, |tx| tx.update(&tcell, |v| v + 1)))
    });
    g.finish();
}

fn bench_enter_exit(c: &mut Criterion) {
    let mut g = c.benchmark_group("enter_exit");
    g.sample_size(30);
    for (name, policy) in
        [("revocation", InversionPolicy::Revocation), ("blocking", InversionPolicy::Blocking)]
    {
        let m = RevocableMonitor::with_policy(policy);
        g.bench_function(name, |b| b.iter(|| m.enter(Priority::NORM, |tx| tx.checkpoint())));
    }
    g.finish();
}

fn bench_logged_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("logged_writes_per_section");
    g.sample_size(20);
    let m = RevocableMonitor::new();
    let cell = TCell::new(0i64);
    for n in [1usize, 16, 256, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                m.enter(Priority::NORM, |tx| {
                    for i in 0..n as i64 {
                        tx.write(&cell, i);
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_rollback_cost(c: &mut Criterion) {
    // Measure a full (enter + N writes + forced self-revocation + retry)
    // cycle: the contender is simulated by revoking from a helper thread
    // parked on the monitor.
    let mut g = c.benchmark_group("section_with_one_revocation");
    g.sample_size(10);
    for n in [16usize, 256, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let m = std::sync::Arc::new(RevocableMonitor::new());
            let cell = TCell::new(0i64);
            b.iter(|| {
                let m2 = std::sync::Arc::clone(&m);
                let c2 = cell.clone();
                let low = std::thread::spawn(move || {
                    let mut attempt = 0;
                    m2.enter(Priority::LOW, |tx| {
                        attempt += 1;
                        for i in 0..n as i64 {
                            tx.write(&c2, i);
                        }
                        if attempt == 1 {
                            // Spin at yield points until revoked (or the
                            // high thread is done and never revoked us).
                            for _ in 0..5_000_000 {
                                tx.checkpoint();
                            }
                        }
                    });
                });
                // High-priority contender triggers the revocation.
                std::thread::sleep(std::time::Duration::from_micros(100));
                m.enter(Priority::HIGH, |tx| tx.checkpoint());
                low.join().unwrap();
            })
        });
    }
    g.finish();
}

fn bench_vm_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm_interpreter");
    g.sample_size(20);
    for (name, cfg) in
        [("unmodified", VmConfig::unmodified()), ("modified_barriers", VmConfig::modified())]
    {
        g.bench_function(name, |b| {
            b.iter(|| {
                let (p, run) = revmon_bench::workload::benchmark_program();
                let mut vm = Vm::new(p, cfg);
                let lock = vm.heap_mut().alloc(0, 0);
                let arr = vm.heap_mut().alloc_array(revmon_bench::workload::ARRAY_LEN);
                vm.spawn(
                    "t",
                    run,
                    vec![
                        Value::Ref(lock),
                        Value::Ref(arr),
                        Value::Int(2_000),
                        Value::Int(50),
                        Value::Int(2),
                        Value::Int(0),
                    ],
                    Priority::NORM,
                );
                vm.run().expect("run")
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_vs_plain_mutexes,
    bench_enter_exit,
    bench_logged_writes,
    bench_rollback_cost,
    bench_vm_throughput
);
criterion_main!(benches);
