//! Figure 7: normalized overall elapsed time (all threads), 100K-class
//! high-priority iterations.
//!
//! Run with `cargo bench -p revmon-bench --bench fig7_overall_100k`.

use revmon_bench::{export, print_figure, Scale, Series};

fn main() {
    let scale =
        if std::env::var("REVMON_FULL").is_ok() { Scale::paper() } else { Scale::default_scale() };
    let figs = print_figure(
        "Figure 7",
        "overall time, 100K-class iterations",
        scale.high_iters_small,
        &scale,
        Series::Overall,
    );
    match export::write_figure_summary(export::results_dir(), "fig7", "overall", &figs) {
        Ok(p) => println!("# wrote {}", p.display()),
        Err(e) => eprintln!("# could not write summary JSON: {e}"),
    }
    println!("\n# shape checks (paper: overall time on the modified VM is always longer)");
    for ((high, low), rows) in &figs {
        let pass = rows.iter().all(|r| r.modified >= r.unmodified * 0.98);
        let overhead = rows.iter().map(|r| (r.modified / r.unmodified - 1.0) * 100.0).sum::<f64>()
            / rows.len() as f64;
        println!(
            "  {high}+{low}: average overall overhead {overhead:+.1}% — {}",
            if pass { "PASS (modified >= unmodified)" } else { "FAIL" }
        );
    }
}
