//! Figure 5(a) rebuilt on **real OS threads** with `revmon-locks` — the
//! demonstration that the mechanism carries outside the simulator.
//!
//! 2 high-priority + 8 low-priority OS threads contend on one
//! `RevocableMonitor`; each runs `SECTIONS` synchronized sections of
//! interleaved reads/writes over a 64-cell table, with a random pause
//! before each entry. Wall-clock elapsed time of the high-priority pair
//! is compared between the revocation and blocking policies across the
//! paper's write-ratio sweep.
//!
//! Numbers are wall-clock on whatever machine runs this (the repository's
//! reference results came from a single-core container — expect noise);
//! the simulator benches remain the calibrated reproduction.
//!
//! Run with `cargo bench -p revmon-bench --bench fig5_realthreads`.

use revmon_core::{InversionPolicy, Priority};
use revmon_locks::{RevocableMonitor, TCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const HIGH: usize = 2;
const LOW: usize = 8;
const SECTIONS: usize = 12;
const LOW_OPS: usize = 4_000;
const HIGH_OPS: usize = 800;
const CELLS: usize = 64;
const REPS: usize = 3;

fn run_once(policy: InversionPolicy, write_pct: usize, seed: u64) -> (Duration, u64) {
    let m = Arc::new(RevocableMonitor::with_policy(policy));
    let cells: Arc<Vec<TCell<i64>>> = Arc::new((0..CELLS).map(|_| TCell::new(0)).collect());
    let high_span_ns = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();

    let mut handles = Vec::new();
    for i in 0..(HIGH + LOW) {
        let is_high = i < HIGH;
        let m = Arc::clone(&m);
        let cells = Arc::clone(&cells);
        let high_span_ns = Arc::clone(&high_span_ns);
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
        handles.push(thread::spawn(move || {
            let started = Instant::now();
            let ops = if is_high { HIGH_OPS } else { LOW_OPS };
            let prio = if is_high { Priority::HIGH } else { Priority::LOW };
            for _ in 0..SECTIONS {
                // random arrival pause (tens of microseconds)
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let pause = (rng >> 33) % 80;
                thread::sleep(Duration::from_micros(pause));
                m.enter(prio, |tx| {
                    for op in 0..ops {
                        let c = &cells[op % CELLS];
                        if op % 100 < write_pct {
                            tx.update(c, |v| v + 1);
                        } else {
                            let _ = tx.read(c);
                        }
                    }
                });
            }
            if is_high {
                let ns = Instant::now().duration_since(started).as_nanos() as u64;
                high_span_ns.fetch_max(ns, Ordering::Relaxed);
            }
            let _ = t0; // anchor
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let st = m.stats();
    (Duration::from_nanos(high_span_ns.load(Ordering::Relaxed)), st.rollbacks)
}

fn avg(policy: InversionPolicy, write_pct: usize) -> (Duration, u64) {
    let mut total = Duration::ZERO;
    let mut rb = 0;
    for r in 0..REPS {
        let (d, n) = run_once(policy, write_pct, 0xFEED + r as u64);
        total += d;
        rb += n;
    }
    (total / REPS as u32, rb / REPS as u64)
}

fn main() {
    println!("# Figure 5(a)-shape on real OS threads: {HIGH} high + {LOW} low, wall clock");
    println!(
        "{:>7} {:>16} {:>12} {:>16} {:>10}",
        "write%", "revocation", "rollbacks", "blocking", "gain"
    );
    let mut wins = 0;
    for write_pct in [0usize, 20, 40, 60, 80, 100] {
        let (rev, rb) = avg(InversionPolicy::Revocation, write_pct);
        let (blk, _) = avg(InversionPolicy::Blocking, write_pct);
        let gain = blk.as_secs_f64() / rev.as_secs_f64();
        if gain > 1.0 {
            wins += 1;
        }
        println!("{:>7} {:>16?} {:>12} {:>16?} {:>9.2}x", write_pct, rev, rb, blk, gain);
    }
    println!("\n# high-priority threads finished faster under revocation at {wins}/6 write ratios");
    println!("# (wall-clock, OS-scheduled: treat as directional, not calibrated)");
}
