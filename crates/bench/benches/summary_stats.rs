//! Headline statistics (§4.2 in-text claims), aggregated over the
//! Figure 5–8 grids:
//!
//! * high-priority throughput improvement of 25–100 % when the ratio of
//!   high- to low-priority threads is low,
//! * average elapsed-time percentage gain across all configurations: 78 %,
//! * discarding the 8+2 configuration: high-priority threads ~2× as fast,
//! * overall elapsed time on average ~30 % higher on the modified VM.
//!
//! Run with `cargo bench -p revmon-bench --bench summary_stats`.

use revmon_bench::{figure_series, gain_pct, Scale, Series, MIXES};

fn main() {
    let scale =
        if std::env::var("REVMON_FULL").is_ok() { Scale::paper() } else { Scale::default_scale() };
    println!("# Headline statistics over the Figure 5-8 grid (scaled workload)");

    let mut all_gains: Vec<f64> = Vec::new();
    let mut gains_excl_82: Vec<f64> = Vec::new();
    let mut overheads: Vec<f64> = Vec::new();

    for iters in [scale.high_iters_small, scale.high_iters_large] {
        for (high, low) in MIXES {
            let hp = figure_series(high, low, iters, &scale, Series::HighPriority);
            let ov = figure_series(high, low, iters, &scale, Series::Overall);
            for r in &hp {
                let g = gain_pct(r);
                all_gains.push(g);
                if (high, low) != (8, 2) {
                    gains_excl_82.push(g);
                }
            }
            for r in &ov {
                overheads.push((r.modified / r.unmodified - 1.0) * 100.0);
            }
            let mix_avg = hp.iter().map(gain_pct).sum::<f64>() / hp.len() as f64;
            println!(
                "  mix {high}+{low}, high-iters {iters}: avg high-priority gain {mix_avg:+.1}%"
            );
        }
    }

    let avg = all_gains.iter().sum::<f64>() / all_gains.len() as f64;
    let avg_excl = gains_excl_82.iter().sum::<f64>() / gains_excl_82.len() as f64;
    let avg_overhead = overheads.iter().sum::<f64>() / overheads.len() as f64;
    let speedup_excl =
        gains_excl_82.iter().map(|g| 1.0 + g / 100.0).sum::<f64>() / gains_excl_82.len() as f64;

    println!();
    println!("{:<56} {:>10} {:>10}", "statistic", "paper", "measured");
    println!("{:<56} {:>10} {:>9.1}%", "avg high-priority gain, all configurations", "78%", avg);
    println!(
        "{:<56} {:>10} {:>9.2}x",
        "avg high-priority speedup, excluding 8+2", "~2x", speedup_excl
    );
    println!("{:<56} {:>10} {:>9.1}%", "avg high-priority gain, excluding 8+2", "~100%", avg_excl);
    println!(
        "{:<56} {:>10} {:>9.1}%",
        "avg overall-time overhead (modified VM)", "~30%", avg_overhead
    );
}
