//! Ablation A1 (DESIGN.md): the same contention workload under every
//! inversion policy and both detection strategies, plus FIFO-vs-priority
//! entry queues — the design choices §1.1 and §4 call out.
//!
//! Run with `cargo bench -p revmon-bench --bench ablation_policies`.

use revmon_bench::{run_cell_with_config, BenchParams, Scale};
use revmon_core::{DetectionStrategy, InversionPolicy, Priority, QueueDiscipline};
use revmon_vm::VmConfig;

fn params(scale: &Scale, write_pct: i64) -> BenchParams {
    BenchParams {
        high_threads: 2,
        low_threads: 8,
        high_iters: scale.high_iters_small,
        low_iters: scale.low_iters,
        sections: scale.sections,
        write_pct,
        modified: true,
        seed: 0xAB1A7E,
        quantum: scale.quantum,
    }
}

fn main() {
    let scale = Scale::default_scale();
    let p = params(&scale, 40);
    println!("# Ablation: 2 high + 8 low, 40% writes, scaled workload");
    println!(
        "{:<44} {:>14} {:>14} {:>10}",
        "configuration", "high-elapsed", "overall", "rollbacks"
    );

    let cases: Vec<(&str, VmConfig)> = vec![
        ("blocking (unmodified VM)", VmConfig::unmodified()),
        ("revocation, detect at acquisition", VmConfig::modified()),
        ("revocation, background detection (quantum)", {
            let mut c = VmConfig::modified();
            c.detection = DetectionStrategy::Background { period: c.cost.quantum };
            c
        }),
        ("revocation, FIFO monitor queues", {
            let mut c = VmConfig::modified();
            c.queue_discipline = QueueDiscipline::Fifo;
            c
        }),
        ("revocation, livelock guard = 4", {
            let mut c = VmConfig::modified();
            c.max_consecutive_revocations = 4;
            c
        }),
        ("revocation + write-barrier elision", VmConfig::modified().with_elision()),
        ("priority inheritance (round-robin sched)", {
            let mut c = VmConfig::unmodified();
            c.policy = InversionPolicy::PriorityInheritance;
            c
        }),
        ("priority ceiling = MAX (round-robin sched)", {
            let mut c = VmConfig::unmodified();
            c.policy = InversionPolicy::PriorityCeiling(Priority::MAX);
            c
        }),
        ("blocking, priority-preemptive scheduler", {
            let mut c = VmConfig::unmodified();
            c.scheduler = revmon_vm::SchedulerKind::PriorityPreemptive;
            c
        }),
        ("revocation, priority-preemptive scheduler", {
            let mut c = VmConfig::modified();
            c.scheduler = revmon_vm::SchedulerKind::PriorityPreemptive;
            c
        }),
        ("priority inheritance, preemptive scheduler", {
            let mut c = VmConfig::unmodified();
            c.policy = InversionPolicy::PriorityInheritance;
            c.scheduler = revmon_vm::SchedulerKind::PriorityPreemptive;
            c
        }),
    ];

    for (name, cfg) in cases {
        let r = run_cell_with_config(&p, cfg);
        println!(
            "{:<44} {:>14} {:>14} {:>10}",
            name, r.high_elapsed, r.overall_elapsed, r.metrics.rollbacks
        );
    }

    println!("\n# sweep: quantum sensitivity (the scaled grid's one free proportion)");
    println!("{:<12} {:>14} {:>14} {:>10}", "quantum", "high-elapsed", "overall", "rollbacks");
    for q in [15_000u64, 30_000, 60_000, 120_000, 240_000] {
        let mut pp = p;
        pp.quantum = q;
        let r = run_cell_with_config(&pp, VmConfig::modified());
        println!(
            "{:<12} {:>14} {:>14} {:>10}",
            q, r.high_elapsed, r.overall_elapsed, r.metrics.rollbacks
        );
    }

    println!("\n# sweep: write-barrier cost sensitivity (revocation VM, barrier_slow in ticks)");
    println!("{:<12} {:>14} {:>14}", "barrier_slow", "high-elapsed", "overall");
    for slow in [0u64, 2, 4, 8, 16] {
        let mut c = VmConfig::modified();
        c.cost.barrier_slow = slow;
        let r = run_cell_with_config(&p, c);
        println!("{:<12} {:>14} {:>14}", slow, r.high_elapsed, r.overall_elapsed);
    }
}
