//! Extension experiment D1-bench (§1.1/§6: "such deadlocks can be
//! detected and resolved automatically, permitting the application to
//! make progress"): dining philosophers who grab chopsticks in the naive
//! (deadlock-prone) order.
//!
//! * on the **blocking** VM the table deadlocks (reported, not hung —
//!   the VM detects the global stall);
//! * on the **revocable** VM every deadlock is broken by revoking a
//!   victim and all meals complete; we report the throughput cost
//!   against the classic prevention baseline (global lock ordering on
//!   the blocking VM).
//!
//! Run with `cargo bench -p revmon-bench --bench deadlock_breaking`.

use revmon_core::Priority;
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::{MethodId, Program};
use revmon_vm::value::Value;
use revmon_vm::{Vm, VmConfig, VmError};

/// `dine(first, second, meals, bites)`: `meals` rounds of
/// `sync(first){ <spin> sync(second){ static0++ } }`.
fn philosopher_program() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let dine = pb.declare_method("dine", 4);
    let mut b = MethodBuilder::new(4, 6);
    b.const_i(0);
    b.store(4);
    let outer = b.here();
    b.load(4);
    b.load(2);
    let done = b.new_label();
    b.if_ge(done);
    b.sync_on_local(0, |b| {
        // think while holding the first chopstick (the deadlock window)
        b.const_i(0);
        b.store(5);
        let spin = b.here();
        b.load(5);
        b.load(3);
        let ate = b.new_label();
        b.if_ge(ate);
        b.load(5);
        b.const_i(1);
        b.add();
        b.store(5);
        b.goto(spin);
        b.place(ate);
        b.sync_on_local(1, |b| {
            b.get_static(0);
            b.const_i(1);
            b.add();
            b.put_static(0);
        });
    });
    b.load(4);
    b.const_i(1);
    b.add();
    b.store(4);
    b.goto(outer);
    b.place(done);
    b.ret_void();
    pb.implement(dine, b);
    (pb.finish(), dine)
}

struct Outcome {
    completed: bool,
    clock: u64,
    meals: i64,
    deadlocks_broken: u64,
    rollbacks: u64,
}

fn run_table(n: usize, meals: i64, cfg: VmConfig, ordered: bool) -> Outcome {
    let (p, dine) = philosopher_program();
    let mut vm = Vm::new(p, cfg);
    let sticks: Vec<_> = (0..n).map(|_| vm.heap_mut().alloc(0, 0)).collect();
    for i in 0..n {
        let (mut a, mut b) = (i, (i + 1) % n);
        if ordered && a > b {
            std::mem::swap(&mut a, &mut b); // global order: prevention
        }
        vm.spawn(
            &format!("phil{i}"),
            dine,
            vec![
                Value::Ref(sticks[a]),
                Value::Ref(sticks[b]),
                Value::Int(meals),
                Value::Int(2_000),
            ],
            Priority::NORM,
        );
    }
    match vm.run() {
        Ok(r) => Outcome {
            completed: true,
            clock: r.clock,
            meals: match vm.read_static(0).unwrap() {
                Value::Int(i) => i,
                _ => -1,
            },
            deadlocks_broken: r.global.deadlocks_broken,
            rollbacks: r.global.rollbacks,
        },
        Err(VmError::Stalled(_)) => {
            let r = vm.report();
            Outcome {
                completed: false,
                clock: r.clock,
                meals: match vm.read_static(0).unwrap() {
                    Value::Int(i) => i,
                    _ => -1,
                },
                deadlocks_broken: r.global.deadlocks_broken,
                rollbacks: r.global.rollbacks,
            }
        }
        Err(e) => panic!("unexpected fault: {e}"),
    }
}

fn main() {
    println!("# Dining philosophers: deadlock recovery (revocation) vs prevention (ordering)");
    println!(
        "{:>6} {:>8} {:<28} {:>10} {:>8} {:>12} {:>8} {:>10}",
        "table", "meals", "strategy", "complete", "meals", "clock", "broken", "rollbacks"
    );
    for n in [2usize, 3, 5, 8] {
        let meals = 20i64;
        let rows: Vec<(&str, VmConfig, bool)> = vec![
            ("blocking, naive order (DEADLOCK)", VmConfig::unmodified(), false),
            ("blocking, global order", VmConfig::unmodified(), true),
            ("revocation, naive order", VmConfig::modified(), false),
            ("revocation, global order", VmConfig::modified(), true),
        ];
        for (name, cfg, ordered) in rows {
            let o = run_table(n, meals, cfg, ordered);
            println!(
                "{:>6} {:>8} {:<28} {:>10} {:>8} {:>12} {:>8} {:>10}",
                n,
                meals,
                name,
                if o.completed { "yes" } else { "STALLED" },
                o.meals,
                o.clock,
                o.deadlocks_broken,
                o.rollbacks
            );
        }
        println!();
    }
    println!("# expectation: naive order stalls on blocking, completes under revocation;");
    println!("# the revocation overhead vs global ordering is the price of recovery.");
}
