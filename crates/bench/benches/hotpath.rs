//! Hot-path microbenchmarks of the `revmon-locks` runtime.
//!
//! Where the figure benches reproduce the paper's *relative* results,
//! this bench tracks the library's *absolute* overhead — the numbers the
//! paper's argument rests on ("a fast-path test on every non-local
//! update", §1.1): uncontended `enter`/`exit`, read/write barrier
//! throughput, nested sections, and the contended revocation round-trip.
//!
//! Results go to `bench_results/BENCH_hotpath.json` in the same
//! mean+ci90 shape as the figure summaries, together with the
//! seed-commit reference numbers so the speedup trajectory stays
//! visible. With `--check`, the run fails (exit 1) when uncontended
//! enter/exit regresses more than [`REGRESSION_TOLERANCE`] against the
//! committed baseline ([`BASELINE_NS`]) — the CI perf gate.
//!
//! With `--overhead`, the run additionally measures the *profiling
//! self-overhead*: `enter_exit` and `logged_write` with the always-on
//! revocation phase timers (`revmon_obs::prof`) force-disabled vs
//! enabled, interleaved sample-by-sample to cancel drift. The on/off
//! ratio must stay within [`OVERHEAD_BUDGET`] or the run fails (exit 1)
//! — the CI guard that keeps the profiling layer cheap enough to leave
//! on. The rows are published into `BENCH_hotpath.json`.
//!
//! Run with
//! `cargo bench -p revmon-bench --bench hotpath -- [--quick] [--check] [--overhead]`.

use revmon_core::metrics::{ci90_half_width, mean};
use revmon_core::Priority;
use revmon_locks::{RevocableMonitor, TCell};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Instant;

/// Reference numbers measured at the pre-optimization seed commit
/// (mutex-per-cell storage, boxed-closure undo log, full section-stack
/// poll), single-core container, ns/op. They are *historical record*,
/// not a gate: `speedup_vs_seed` in the JSON is computed against these.
const SEED_NS: &[(&str, f64)] = &[
    ("enter_exit", 304.65),
    ("enter_exit_nested", 238.02),
    ("logged_write", 76.81),
    ("read_barrier", 14.19),
    ("revocation_roundtrip", 11649.50),
];

/// Committed post-optimization baseline (ns/op) for the CI regression
/// gate. Update deliberately when a change legitimately moves the
/// number; `--check` fails when the fresh measurement exceeds
/// `baseline * (1 + REGRESSION_TOLERANCE)`.
const BASELINE_NS: &[(&str, f64)] = &[("enter_exit", 94.53)];

/// Allowed fractional regression before `--check` fails (>20 %).
const REGRESSION_TOLERANCE: f64 = 0.20;

/// `--overhead` gate: hot paths with phase timers enabled must cost at
/// most this multiple of the disabled cost (the ISSUE's "within 10%").
const OVERHEAD_BUDGET: f64 = 1.10;

struct BenchResult {
    name: &'static str,
    samples_ns: Vec<f64>,
}

impl BenchResult {
    fn mean_ns(&self) -> f64 {
        mean(&self.samples_ns)
    }
    fn ci90_ns(&self) -> f64 {
        ci90_half_width(&self.samples_ns)
    }
}

fn lookup(table: &[(&str, f64)], name: &str) -> Option<f64> {
    table.iter().find(|(n, _)| *n == name).map(|&(_, v)| v).filter(|v| *v > 0.0)
}

/// Time `iters` repetitions of `op`, returning ns/op.
fn time_ns_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        op();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn sample<F: FnMut() -> f64>(name: &'static str, samples: usize, mut one: F) -> BenchResult {
    // One untimed warmup sample: populates the thread-local pools and
    // the cells' history capacity so steady state is what gets measured.
    let _ = one();
    let samples_ns = (0..samples).map(|_| one()).collect();
    BenchResult { name, samples_ns }
}

/// Uncontended enter/exit of an empty section: the thin-lock fast path.
fn bench_enter_exit(samples: usize, iters: u64) -> BenchResult {
    let m = RevocableMonitor::new();
    sample("enter_exit", samples, || {
        time_ns_per_op(iters, || {
            m.enter(Priority::NORM, |_tx| {});
        })
    })
}

/// Reentrant nesting, depth 3 on one monitor (per enter/exit pair).
fn bench_enter_exit_nested(samples: usize, iters: u64) -> BenchResult {
    let m = RevocableMonitor::new();
    sample("enter_exit_nested", samples, || {
        time_ns_per_op(iters, || {
            m.enter(Priority::NORM, |_t1| {
                m.enter(Priority::NORM, |_t2| {
                    m.enter(Priority::NORM, |_t3| {});
                });
            });
        }) / 3.0
    })
}

/// Logged writes inside one long section (write barrier + undo log).
fn bench_logged_write(samples: usize, iters: u64) -> BenchResult {
    let m = RevocableMonitor::new();
    let cell = TCell::new(0i64);
    sample("logged_write", samples, || {
        m.enter(Priority::NORM, |tx| {
            time_ns_per_op(iters, || {
                tx.write(&cell, black_box(7i64));
            })
        })
    })
}

/// Reads inside one long section (read barrier = poll + load).
fn bench_read_barrier(samples: usize, iters: u64) -> BenchResult {
    let m = RevocableMonitor::new();
    let cell = TCell::new(3i64);
    sample("read_barrier", samples, || {
        m.enter(Priority::NORM, |tx| {
            time_ns_per_op(iters, || {
                black_box(tx.read(&cell));
            })
        })
    })
}

/// One full revocation episode: a LOW holder parks at yield points, a
/// HIGH contender flags + takes the monitor, the holder rolls back and
/// retries. Measures the HIGH thread's enter-to-exit latency.
fn bench_revocation_roundtrip(samples: usize, episodes: u64) -> BenchResult {
    sample("revocation_roundtrip", samples, || {
        let mut total_ns = 0.0;
        for _ in 0..episodes {
            let m = Arc::new(RevocableMonitor::new());
            let cell = TCell::new(0i64);
            let entered = Arc::new(Barrier::new(2));
            let hi_done = Arc::new(AtomicBool::new(false));
            let low = {
                let m = Arc::clone(&m);
                let cell = cell.clone();
                let entered = Arc::clone(&entered);
                let hi_done = Arc::clone(&hi_done);
                thread::spawn(move || {
                    let mut attempt = 0u32;
                    m.enter(Priority::LOW, |tx| {
                        attempt += 1;
                        tx.write(&cell, 1);
                        if attempt == 1 {
                            entered.wait();
                            while !hi_done.load(Ordering::Acquire) {
                                tx.checkpoint();
                                std::hint::spin_loop();
                            }
                        }
                    });
                })
            };
            entered.wait();
            let t0 = Instant::now();
            m.enter(Priority::HIGH, |tx| {
                let _ = black_box(tx.read(&cell));
            });
            total_ns += t0.elapsed().as_nanos() as f64;
            hi_done.store(true, Ordering::Release);
            low.join().unwrap();
        }
        total_ns / episodes as f64
    })
}

/// One paired profiling-overhead measurement: the same closure timed
/// with the phase timers off and on.
struct OverheadRow {
    name: &'static str,
    off_ns: f64,
    on_ns: f64,
}

impl OverheadRow {
    fn ratio(&self) -> f64 {
        if self.off_ns > 0.0 {
            self.on_ns / self.off_ns
        } else {
            1.0
        }
    }
}

/// Time `one` with the timers disabled and enabled, alternating
/// sample-by-sample so frequency drift hits both sides equally. Leaves
/// the timers enabled (the library default).
fn paired_overhead(
    name: &'static str,
    samples: usize,
    mut one: impl FnMut() -> f64,
) -> OverheadRow {
    let prof = revmon_obs::prof::timers();
    let _ = one(); // warmup
    let (mut off, mut on) = (Vec::new(), Vec::new());
    for _ in 0..samples {
        prof.set_enabled(false);
        off.push(one());
        prof.set_enabled(true);
        on.push(one());
    }
    OverheadRow { name, off_ns: mean(&off), on_ns: mean(&on) }
}

/// Measure the self-overhead of the always-on phase timers on the two
/// paths the ISSUE budgets: uncontended enter/exit and the logged write
/// barrier. Neither path *calls* the timers (they fire on the revocation
/// slow path only), so this guards against instrumentation creeping into
/// the fast path.
fn overhead_rows(samples: usize, iters: u64) -> Vec<OverheadRow> {
    let mut rows = Vec::new();
    {
        let m = RevocableMonitor::new();
        rows.push(paired_overhead("enter_exit", samples, || {
            time_ns_per_op(iters, || {
                m.enter(Priority::NORM, |_tx| {});
            })
        }));
    }
    {
        let m = RevocableMonitor::new();
        let cell = TCell::new(0i64);
        rows.push(paired_overhead("logged_write", samples, || {
            m.enter(Priority::NORM, |tx| {
                time_ns_per_op(iters, || {
                    tx.write(&cell, black_box(7i64));
                })
            })
        }));
    }
    rows
}

fn json_escape_free(name: &str) -> &str {
    name // bench names are identifiers; nothing to escape
}

fn results_json(mode: &str, results: &[BenchResult], overhead: &[OverheadRow]) -> String {
    let mut out = format!("{{\n  \"figure\": \"hotpath\",\n  \"mode\": \"{mode}\",\n");
    out.push_str("  \"unit\": \"ns_per_op\",\n");
    if !overhead.is_empty() {
        out.push_str(&format!(
            "  \"profiling_overhead\": {{\"budget_ratio\": {OVERHEAD_BUDGET:.2}, \"rows\": [\n"
        ));
        let rows: Vec<String> = overhead
            .iter()
            .map(|r| {
                format!(
                    "    {{\"name\": \"{}\", \"off_ns\": {:.2}, \"on_ns\": {:.2}, \"ratio\": {:.3}}}",
                    r.name,
                    r.off_ns,
                    r.on_ns,
                    r.ratio()
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]},\n");
    }
    out.push_str("  \"benches\": [\n");
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            let m = r.mean_ns();
            let mut row = format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.2}, \"ci90_ns\": {:.2}",
                json_escape_free(r.name),
                m,
                r.ci90_ns()
            );
            if let Some(seed) = lookup(SEED_NS, r.name) {
                row.push_str(&format!(
                    ", \"seed_mean_ns\": {:.2}, \"speedup_vs_seed\": {:.2}",
                    seed,
                    seed / m
                ));
            }
            if let Some(base) = lookup(BASELINE_NS, r.name) {
                row.push_str(&format!(", \"baseline_ns\": {base:.2}"));
            }
            row.push('}');
            row
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let overhead = args.iter().any(|a| a == "--overhead");
    // `cargo bench` passes --bench through; ignore unknown flags.

    let (samples, iters, episodes) =
        if quick { (8, 200_000u64, 40u64) } else { (20, 1_000_000u64, 200u64) };

    let results = vec![
        bench_enter_exit(samples, iters),
        bench_enter_exit_nested(samples, iters / 3),
        bench_logged_write(samples, iters),
        bench_read_barrier(samples, iters),
        bench_revocation_roundtrip(samples, episodes),
    ];

    println!("hot-path microbenchmarks ({})", if quick { "quick" } else { "full" });
    println!("{:<24} {:>12} {:>10} {:>14}", "bench", "mean ns/op", "ci90", "vs seed");
    for r in &results {
        let vs = lookup(SEED_NS, r.name)
            .map(|s| format!("{:.2}x", s / r.mean_ns()))
            .unwrap_or_else(|| "-".into());
        println!("{:<24} {:>12.2} {:>10.2} {:>14}", r.name, r.mean_ns(), r.ci90_ns(), vs);
    }

    // The roundtrip bench above drove the revocation slow path with the
    // phase timers on; their breakdown says where those ns went.
    println!("revocation slow-path phase breakdown (host-clock ns):");
    {
        let mut out = std::io::stdout().lock();
        revmon_obs::prof::timers().write_table(&mut out).expect("phase table");
    }

    let over = if overhead { overhead_rows(samples, iters) } else { Vec::new() };
    if overhead {
        println!("profiling self-overhead (phase timers off vs on, budget {OVERHEAD_BUDGET:.2}x)");
        println!("{:<24} {:>12} {:>12} {:>8}", "bench", "off ns/op", "on ns/op", "ratio");
        for r in &over {
            println!("{:<24} {:>12.2} {:>12.2} {:>7.3}x", r.name, r.off_ns, r.on_ns, r.ratio());
        }
    }

    let dir = revmon_bench::export::results_dir();
    std::fs::create_dir_all(&dir).expect("create bench_results dir");
    let path = dir.join("BENCH_hotpath.json");
    let mode = if quick { "quick" } else { "full" };
    std::fs::write(&path, results_json(mode, &results, &over)).expect("write BENCH_hotpath.json");
    println!("wrote {}", path.display());

    if overhead {
        let mut failed = false;
        for r in &over {
            if r.ratio() > OVERHEAD_BUDGET {
                eprintln!(
                    "PROFILING OVERHEAD: {} with timers on = {:.2} ns/op vs {:.2} off \
                     ({:.3}x > budget {:.2}x)",
                    r.name,
                    r.on_ns,
                    r.off_ns,
                    r.ratio(),
                    OVERHEAD_BUDGET
                );
                failed = true;
            } else {
                println!(
                    "overhead gate ok: {} {:.3}x (budget {:.2}x)",
                    r.name,
                    r.ratio(),
                    OVERHEAD_BUDGET
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }

    if check {
        let mut failed = false;
        for r in &results {
            if let Some(base) = lookup(BASELINE_NS, r.name) {
                let limit = base * (1.0 + REGRESSION_TOLERANCE);
                let m = r.mean_ns();
                if m > limit {
                    eprintln!(
                        "PERF REGRESSION: {} = {:.2} ns/op exceeds baseline {:.2} ns/op \
                         by more than {:.0}% (limit {:.2})",
                        r.name,
                        m,
                        base,
                        REGRESSION_TOLERANCE * 100.0,
                        limit
                    );
                    failed = true;
                } else {
                    println!(
                        "perf gate ok: {} = {:.2} ns/op (baseline {:.2}, limit {:.2})",
                        r.name, m, base, limit
                    );
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
