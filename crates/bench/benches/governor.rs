//! Adversarial repeat-revocation benchmarks for the revocation governor.
//!
//! Two workloads, each run ungoverned ("before") and governed ("after"):
//!
//! * **staggered_probes** — the `programs/repeat_revocation.rvm` corpus
//!   program: one low-priority aggregator in a long section, a wave of
//!   staggered high-priority probes. Both configurations terminate; the
//!   governor turns the second and third revocations into queue blocking,
//!   cutting the wasted re-execution.
//! * **forced_inversion** — the test-only `fault_force_inversion` flag
//!   makes *every* contended acquire an inversion, so two equal-priority
//!   threads revoke each other forever. Ungoverned, the run livelocks
//!   (the step budget cuts it off, `completed: false`); governed, it
//!   completes with the revocation streak bounded by `k`.
//!
//! Results go to `bench_results/BENCH_governor.json`: wall time
//! (mean + ci90 over samples) next to the deterministic virtual-machine
//! counters (clock, rollbacks, discarded undo entries, throttles,
//! fallback windows, max streak) for every configuration.
//!
//! Run with `cargo bench -p revmon-bench --bench governor -- [--quick]`.

use revmon_core::metrics::{ci90_half_width, mean};
use revmon_core::{GovernorConfig, Priority};
use revmon_vm::builder::{MethodBuilder, ProgramBuilder};
use revmon_vm::bytecode::Program;
use revmon_vm::value::Value;
use revmon_vm::{assemble, Vm, VmConfig, VmError};
use std::time::Instant;

/// The corpus program the CLI and CI drive; benched from the same bytes.
const STAGGERED_SRC: &str = include_str!("../../../programs/repeat_revocation.rvm");

/// Everything one deterministic run reports.
struct RunStats {
    completed: bool,
    virtual_clock: u64,
    rollbacks: u64,
    entries_rolled_back: u64,
    sections_committed: u64,
    governor_throttles: u64,
    policy_fallbacks: u64,
    max_streak: u32,
}

/// One configuration's row: the deterministic stats plus wall-time
/// samples.
struct ConfigResult {
    config: &'static str,
    governor: GovernorConfig,
    stats: RunStats,
    wall_ns: Vec<f64>,
}

fn collect(vm: &Vm, completed: bool) -> RunStats {
    let report = vm.report();
    RunStats {
        completed,
        virtual_clock: vm.clock(),
        rollbacks: report.global.rollbacks,
        entries_rolled_back: report.global.entries_rolled_back,
        sections_committed: report.global.sections_committed,
        governor_throttles: report.global.governor_throttles,
        policy_fallbacks: report.global.policy_fallbacks,
        max_streak: vm.governor().max_streak(),
    }
}

/// The staggered-probe workload straight from the corpus program.
fn run_staggered(governor: GovernorConfig) -> (RunStats, f64) {
    let program: Program = assemble(STAGGERED_SRC).expect("corpus program assembles");
    let main = program.method_by_name("main").expect("corpus program has main");
    let mut cfg = VmConfig::modified();
    cfg.governor = governor;
    let mut vm = Vm::new(program, cfg);
    vm.spawn("main", main, vec![], Priority::NORM);
    let t0 = Instant::now();
    vm.run().expect("staggered probes terminate under every configuration");
    let wall = t0.elapsed().as_nanos() as f64;
    (collect(&vm, true), wall)
}

/// Two equal-priority threads, each running one long synchronized
/// section (`iters` increments, spanning several quanta) on one lock,
/// with every contended acquire forced to revoke.
fn run_forced(governor: GovernorConfig, iters: i64, max_steps: u64) -> (RunStats, f64) {
    let mut pb = ProgramBuilder::new();
    pb.statics(1);
    let worker = pb.declare_method("worker", 1);
    let mut b = MethodBuilder::new(1, 2);
    b.sync_on_local(0, |b| {
        b.repeat(1, iters, |b| b.add_static(0, 1));
    });
    b.ret_void();
    pb.implement(worker, b);

    let mut cfg = VmConfig::modified();
    cfg.fault_force_inversion = true;
    cfg.governor = governor;
    cfg.max_steps = max_steps;
    let mut vm = Vm::new(pb.finish(), cfg);
    let lock = vm.heap_mut().alloc(0, 0);
    vm.spawn("a", worker, vec![Value::Ref(lock)], Priority::NORM);
    vm.spawn("b", worker, vec![Value::Ref(lock)], Priority::NORM);
    let t0 = Instant::now();
    let completed = match vm.run() {
        Ok(_) => true,
        Err(VmError::StepLimit(_)) => false, // the livelock, cut off
        Err(e) => panic!("unexpected VM fault: {e}"),
    };
    let wall = t0.elapsed().as_nanos() as f64;
    (collect(&vm, completed), wall)
}

fn measure(
    config: &'static str,
    governor: GovernorConfig,
    samples: usize,
    mut one: impl FnMut(GovernorConfig) -> (RunStats, f64),
) -> ConfigResult {
    let (_, _warmup) = one(governor);
    let mut wall_ns = Vec::with_capacity(samples);
    let mut stats = None;
    for _ in 0..samples {
        let (s, w) = one(governor);
        wall_ns.push(w);
        stats = Some(s);
    }
    ConfigResult { config, governor, stats: stats.expect("samples >= 1"), wall_ns }
}

fn governor_json(g: GovernorConfig) -> String {
    if g.enabled() {
        format!("{{\"k\": {}, \"backoff\": {}, \"decay\": {}}}", g.k, g.backoff, g.decay)
    } else {
        "null".into()
    }
}

fn run_json(r: &ConfigResult) -> String {
    let s = &r.stats;
    format!(
        "        {{\"config\": \"{}\", \"governor\": {}, \"completed\": {}, \
         \"wall_ns_mean\": {:.0}, \"wall_ns_ci90\": {:.0}, \
         \"virtual_clock\": {}, \"rollbacks\": {}, \"entries_rolled_back\": {}, \
         \"sections_committed\": {}, \"governor_throttles\": {}, \
         \"policy_fallbacks\": {}, \"max_streak\": {}}}",
        r.config,
        governor_json(r.governor),
        s.completed,
        mean(&r.wall_ns),
        ci90_half_width(&r.wall_ns),
        s.virtual_clock,
        s.rollbacks,
        s.entries_rolled_back,
        s.sections_committed,
        s.governor_throttles,
        s.policy_fallbacks,
        s.max_streak,
    )
}

fn workload_json(name: &str, runs: &[ConfigResult]) -> String {
    let rows: Vec<String> = runs.iter().map(run_json).collect();
    format!("    {{\"name\": \"{name}\", \"runs\": [\n{}\n      ]}}", rows.join(",\n"))
}

fn print_table(name: &str, runs: &[ConfigResult]) {
    println!("\n## {name}");
    println!(
        "{:<20} {:>9} {:>14} {:>12} {:>10} {:>10} {:>10} {:>7}",
        "config",
        "completed",
        "wall ns/run",
        "vclock",
        "rollbacks",
        "throttles",
        "fallbacks",
        "streak"
    );
    for r in runs {
        let s = &r.stats;
        println!(
            "{:<20} {:>9} {:>14.0} {:>12} {:>10} {:>10} {:>10} {:>7}",
            r.config,
            s.completed,
            mean(&r.wall_ns),
            s.virtual_clock,
            s.rollbacks,
            s.governor_throttles,
            s.policy_fallbacks,
            s.max_streak,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (samples, forced_iters, forced_cap) =
        if quick { (3, 2_000i64, 600_000u64) } else { (10, 2_000i64, 2_000_000u64) };

    let governed = GovernorConfig { k: 1, backoff: 4_096, decay: 0 };
    let governed_forced = GovernorConfig { k: 2, backoff: 64, decay: 0 };

    println!("governor benchmarks ({})", if quick { "quick" } else { "full" });

    let staggered = vec![
        measure("ungoverned", GovernorConfig::disabled(), samples, run_staggered),
        measure("governed_k1_b4096", governed, samples, run_staggered),
    ];
    print_table("staggered_probes (repeat_revocation.rvm)", &staggered);
    assert!(
        staggered[1].stats.rollbacks < staggered[0].stats.rollbacks,
        "the governor must save at least one revocation on the staggered wave"
    );
    assert!(staggered[1].stats.governor_throttles > 0);

    let forced = vec![
        measure("ungoverned", GovernorConfig::disabled(), samples, |g| {
            run_forced(g, forced_iters, forced_cap)
        }),
        measure("governed_k2_b64", governed_forced, samples, |g| {
            run_forced(g, forced_iters, forced_cap)
        }),
    ];
    print_table("forced_inversion (fault injection)", &forced);
    assert!(
        !forced[0].stats.completed,
        "ungoverned forced inversion must livelock into the step budget"
    );
    assert!(forced[1].stats.completed, "the governor must break the livelock");
    assert!(forced[1].stats.max_streak <= governed_forced.k, "bounded-revocation violated");

    let mode = if quick { "quick" } else { "full" };
    let json = format!(
        "{{\n  \"figure\": \"governor\",\n  \"mode\": \"{mode}\",\n  \"workloads\": [\n{},\n{}\n  ]\n}}\n",
        workload_json("staggered_probes", &staggered),
        workload_json("forced_inversion", &forced),
    );
    let dir = revmon_bench::export::results_dir();
    std::fs::create_dir_all(&dir).expect("create bench_results dir");
    let path = dir.join("BENCH_governor.json");
    std::fs::write(&path, json).expect("write BENCH_governor.json");
    println!("\nwrote {}", path.display());
}
