//! Figure 5: normalized total elapsed time of high-priority threads,
//! high-priority inner loop = "100K" (scaled), for thread mixes
//! 2+8 / 5+5 / 8+2 across write ratios 0–100 %.
//!
//! Run with `cargo bench -p revmon-bench --bench fig5_high_priority_100k`.
//! Set `REVMON_FULL=1` for the paper-scale (very long) run.

use revmon_bench::{gain_pct, print_figure, Scale, Series};

fn main() {
    let scale =
        if std::env::var("REVMON_FULL").is_ok() { Scale::paper() } else { Scale::default_scale() };
    let figs = print_figure(
        "Figure 5",
        "total time for high-priority threads, 100K-class iterations",
        scale.high_iters_small,
        &scale,
        Series::HighPriority,
    );
    // Qualitative shape checks against the paper.
    println!("\n# shape checks (paper: 25-100% improvement for (a)/(b); benefit shrinks in (c))");
    let mut ok = true;
    for ((high, low), rows) in &figs {
        let avg_gain = rows.iter().map(gain_pct).sum::<f64>() / rows.len() as f64;
        let verdict = if high <= low {
            let pass = rows.iter().all(|r| r.modified < r.unmodified);
            ok &= pass;
            if pass { "PASS (modified wins at every write ratio)" } else { "FAIL" }
        } else {
            "INFO (paper expects diminished benefit here)"
        };
        println!("  {high}+{low}: average high-priority gain {avg_gain:+.1}% — {verdict}");
    }
    println!("# overall: {}", if ok { "SHAPE OK" } else { "SHAPE MISMATCH" });
}
