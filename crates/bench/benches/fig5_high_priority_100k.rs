//! Figure 5: normalized total elapsed time of high-priority threads,
//! high-priority inner loop = "100K" (scaled), for thread mixes
//! 2+8 / 5+5 / 8+2 across write ratios 0–100 %.
//!
//! Run with `cargo bench -p revmon-bench --bench fig5_high_priority_100k`.
//! Set `REVMON_FULL=1` for the paper-scale (very long) run.

use revmon_bench::{export, gain_pct, print_figure, BenchParams, Scale, Series};

fn main() {
    let scale =
        if std::env::var("REVMON_FULL").is_ok() { Scale::paper() } else { Scale::default_scale() };
    let figs = print_figure(
        "Figure 5",
        "total time for high-priority threads, 100K-class iterations",
        scale.high_iters_small,
        &scale,
        Series::HighPriority,
    );
    // Machine-readable summary (mean + 90 % CI per configuration, plus
    // episode-level context from a representative observed run) and a
    // per-run metrics dump, for future perf comparisons.
    let rep = BenchParams {
        high_threads: 2,
        low_threads: 8,
        high_iters: scale.high_iters_small,
        low_iters: scale.low_iters,
        sections: scale.sections,
        write_pct: 40,
        modified: true,
        seed: 0xC0FFEE,
        quantum: scale.quantum,
    };
    let (_, analysis) = export::run_cell_analyzed(&rep);
    println!(
        "# representative run: {} episodes ({} revocation-resolved), {} undo entries wasted",
        analysis.episodes.len(),
        analysis.revocation_episodes(),
        analysis.wasted_entries
    );
    match export::write_figure_summary_with(
        export::results_dir(),
        "fig5",
        "high_priority",
        &figs,
        Some(&analysis),
    ) {
        Ok(p) => println!("# wrote {}", p.display()),
        Err(e) => eprintln!("# could not write summary JSON: {e}"),
    }
    match export::write_run_metrics(export::results_dir(), "fig5", &rep) {
        Ok(p) => println!("# wrote {}", p.display()),
        Err(e) => eprintln!("# could not write run metrics JSON: {e}"),
    }
    // Qualitative shape checks against the paper.
    println!("\n# shape checks (paper: 25-100% improvement for (a)/(b); benefit shrinks in (c))");
    let mut ok = true;
    for ((high, low), rows) in &figs {
        let avg_gain = rows.iter().map(gain_pct).sum::<f64>() / rows.len() as f64;
        let verdict = if high <= low {
            let pass = rows.iter().all(|r| r.modified < r.unmodified);
            ok &= pass;
            if pass {
                "PASS (modified wins at every write ratio)"
            } else {
                "FAIL"
            }
        } else {
            "INFO (paper expects diminished benefit here)"
        };
        println!("  {high}+{low}: average high-priority gain {avg_gain:+.1}% — {verdict}");
    }
    println!("# overall: {}", if ok { "SHAPE OK" } else { "SHAPE MISMATCH" });
}
