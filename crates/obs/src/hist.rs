//! Log-linear (HDR-style) latency histogram.
//!
//! Fixed memory, lock-free recording, no allocation on the record path.
//! Values 0..16 get exact buckets; above that, each power-of-two octave
//! is split into 16 linear sub-buckets, giving a worst-case relative
//! quantization error of ~6% across the full `u64` range in 976 buckets.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUBS: u64 = 1 << SUB_BITS;
/// Total bucket count for the full `u64` range.
const NBUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUBS as usize; // 976

/// Concurrent log-linear histogram over `u64` values.
pub struct Histogram {
    buckets: [AtomicU64; NBUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // >= SUB_BITS
    let sub = (v >> (msb - SUB_BITS as u64)) & (SUBS - 1);
    ((msb - SUB_BITS as u64 + 1) * SUBS + sub) as usize
}

fn bucket_floor(index: usize) -> u64 {
    let index = index as u64;
    if index < SUBS {
        return index;
    }
    let octave = index / SUBS; // >= 1
    let sub = index % SUBS;
    (SUBS + sub) << (octave - 1)
}

impl Histogram {
    /// Empty histogram. All storage is inline; nothing allocates later.
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NBUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Wait-free: a few relaxed atomic RMWs.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Value at percentile `p` (0 < p ≤ 100): the floor of the bucket
    /// holding the p-th ranked recording, clamped into the recorded
    /// `[min, max]`. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_floor(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Visit every non-empty bucket as `(floor_value, count)`, in
    /// ascending value order.
    pub fn for_each_bucket(&self, mut f: impl FnMut(u64, u64)) {
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                f(bucket_floor(i), n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every value maps into range, floors are non-decreasing, and a
        // bucket's floor is <= the values that map to it.
        let mut prev = 0usize;
        for &v in &[0u64, 1, 15, 16, 17, 31, 32, 63, 64, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < NBUCKETS, "index {i} out of range for {v}");
            assert!(i >= prev, "index not monotone at {v}");
            assert!(bucket_floor(i) <= v, "floor above value for {v}");
            prev = i;
        }
        // Exact buckets under the linear threshold.
        for v in 0..16u64 {
            assert_eq!(bucket_floor(bucket_index(v)), v);
        }
        // Contiguity at the linear/log seam.
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for shift in 4..63 {
            let v = (1u64 << shift) + (1 << (shift - 2)) + 7;
            let floor = bucket_floor(bucket_index(v));
            let err = (v - floor) as f64 / v as f64;
            assert!(err < 0.07, "relative error {err} too large at {v}");
        }
    }

    #[test]
    fn percentiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!((450..=520).contains(&p50), "p50 {p50}");
        assert!((900..=1000).contains(&p99), "p99 {p99}");
        assert!(h.percentile(100.0) <= 1000);
        assert!((h.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value_percentiles_are_exactish() {
        let h = Histogram::new();
        h.record(1_000_000);
        // Clamped into [min, max], so every percentile is the value.
        assert_eq!(h.percentile(50.0), 1_000_000);
        assert_eq!(h.percentile(99.0), 1_000_000);
    }
}
