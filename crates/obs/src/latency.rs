//! Online derivation of latency metrics from the event stream.
//!
//! The tracker watches events as they are recorded and folds them into
//! four histograms:
//!
//! * **entry blocking** — `Block` → next `Acquire` by the same thread
//!   on the same monitor;
//! * **section length** — outermost `Acquire` → full `Release` (the
//!   runtimes emit `Acquire` per acquisition but `Release` only when
//!   the recursion count reaches zero, so the first `Acquire` wins);
//! * **rollback duration** — carried in the `Rollback` event itself;
//! * **inversion resolution** — `RevokeRequest` → the requester's
//!   `Acquire` of the contended monitor.

use std::collections::HashMap;

use crate::event::{Event, EventKind};
use crate::hist::Histogram;

/// The four derived latency histograms, in the producing runtime's
/// clock units.
#[derive(Default)]
pub struct Histograms {
    /// Time spent blocked on a monitor's entry queue.
    pub entry_blocking: Histogram,
    /// Length of synchronized sections (outermost acquire to release).
    pub section_length: Histogram,
    /// Duration of rollbacks.
    pub rollback_duration: Histogram,
    /// Inversion-resolution latency: revoke request to the
    /// high-priority requester's acquire.
    pub inversion_resolution: Histogram,
}

impl Histograms {
    /// Visit the histograms with their stable export names.
    pub fn for_each(&self, mut f: impl FnMut(&'static str, &Histogram)) {
        f("entry_blocking", &self.entry_blocking);
        f("section_length", &self.section_length);
        f("rollback_duration", &self.rollback_duration);
        f("inversion_resolution", &self.inversion_resolution);
    }
}

/// Mutable matching state: who is blocked where, open sections, and
/// pending revoke requests.
#[derive(Default)]
pub struct LatencyTracker {
    block_since: HashMap<(u64, u64), u64>,
    section_since: HashMap<(u64, u64), u64>,
    revoke_pending: HashMap<u64, (u64, u64)>,
}

impl LatencyTracker {
    /// Fresh tracker with no open intervals.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one event into the histograms.
    pub fn observe(&mut self, ev: &Event, hists: &Histograms) {
        let key = (ev.thread, ev.monitor);
        match ev.kind {
            EventKind::Block => {
                self.block_since.entry(key).or_insert(ev.ts);
            }
            EventKind::Acquire => {
                if let Some(t0) = self.block_since.remove(&key) {
                    hists.entry_blocking.record(ev.ts.saturating_sub(t0));
                }
                // Reentrant acquires re-emit Acquire; only the
                // outermost one opens the section interval.
                self.section_since.entry(key).or_insert(ev.ts);
                if let Some(&(requester, t0)) = self.revoke_pending.get(&ev.monitor) {
                    if requester == ev.thread {
                        hists.inversion_resolution.record(ev.ts.saturating_sub(t0));
                        self.revoke_pending.remove(&ev.monitor);
                    }
                }
            }
            EventKind::Release => {
                if let Some(t0) = self.section_since.remove(&key) {
                    hists.section_length.record(ev.ts.saturating_sub(t0));
                }
            }
            EventKind::Rollback { duration, .. } => {
                hists.rollback_duration.record(duration);
                // The revoked holder's section is gone; drop its open
                // interval so the retry measures from its new acquire.
                self.section_since.remove(&key);
            }
            EventKind::RevokeRequest { by } => {
                self.revoke_pending.entry(ev.monitor).or_insert((by, ev.ts));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, thread: u64, monitor: u64, kind: EventKind) -> Event {
        Event { ts, thread, monitor, kind }
    }

    #[test]
    fn blocking_and_section_lengths_derive() {
        let h = Histograms::default();
        let mut t = LatencyTracker::new();
        for e in [
            ev(10, 1, 7, EventKind::Acquire),
            ev(12, 2, 7, EventKind::Block),
            ev(30, 1, 7, EventKind::Release),
            ev(30, 2, 7, EventKind::Acquire),
            ev(45, 2, 7, EventKind::Release),
        ] {
            t.observe(&e, &h);
        }
        assert_eq!(h.entry_blocking.count(), 1);
        assert_eq!(h.entry_blocking.max(), 18);
        assert_eq!(h.section_length.count(), 2);
        assert_eq!(h.section_length.min(), 15);
        assert_eq!(h.section_length.max(), 20);
    }

    #[test]
    fn reentrant_acquires_do_not_reset_section_start() {
        let h = Histograms::default();
        let mut t = LatencyTracker::new();
        for e in [
            ev(10, 1, 7, EventKind::Acquire),
            ev(15, 1, 7, EventKind::Acquire), // reentry
            ev(40, 1, 7, EventKind::Release), // full release only
        ] {
            t.observe(&e, &h);
        }
        assert_eq!(h.section_length.count(), 1);
        assert_eq!(h.section_length.max(), 30);
    }

    #[test]
    fn inversion_resolution_matches_requester() {
        let h = Histograms::default();
        let mut t = LatencyTracker::new();
        for e in [
            ev(10, 1, 7, EventKind::Acquire),
            ev(20, 2, 7, EventKind::Block),
            ev(22, 1, 7, EventKind::RevokeRequest { by: 2 }),
            ev(30, 1, 7, EventKind::Rollback { entries: 4, duration: 6 }),
            ev(31, 2, 7, EventKind::Acquire),
        ] {
            t.observe(&e, &h);
        }
        assert_eq!(h.inversion_resolution.count(), 1);
        assert_eq!(h.inversion_resolution.max(), 9); // 31 - 22
        assert_eq!(h.rollback_duration.count(), 1);
        assert_eq!(h.rollback_duration.max(), 6);
        assert_eq!(h.entry_blocking.count(), 1);
        assert_eq!(h.entry_blocking.max(), 11);
        // The rolled-back holder contributes no section length.
        assert_eq!(h.section_length.count(), 0);
    }
}
